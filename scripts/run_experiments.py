#!/usr/bin/env python
"""Regenerate every experiment in the repository with one command.

Runs the full benchmark suite (one benchmark per paper artifact — see
DESIGN.md's per-experiment index), exports the raw timings plus the
regenerated tables to ``results/benchmarks.json``, and renders
``results/RESULTS.md`` — the mechanically produced companion to the
hand-written EXPERIMENTS.md.

Usage:  python scripts/run_experiments.py [extra pytest args...]
"""

import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]


def main() -> int:
    results = ROOT / "results"
    results.mkdir(exist_ok=True)
    json_path = results / "benchmarks.json"
    command = [
        sys.executable, "-m", "pytest", str(ROOT / "benchmarks"),
        "--benchmark-only", "-q",
        f"--benchmark-json={json_path}",
        *sys.argv[1:],
    ]
    print("$", " ".join(command))
    code = subprocess.call(command, cwd=ROOT)
    if code != 0:
        return code

    from repro.analysis.reporting import render_benchmark_file
    output = results / "RESULTS.md"
    render_benchmark_file(json_path, output)
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
