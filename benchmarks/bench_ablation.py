"""A1 — ablation: what Condition 3.4 actually buys.

Three knobs the design calls out (DESIGN.md §5), each toggled off:

* **flush-at-sync** (the heart of Theorem 3.5): replaced by a broken
  model that never flushes — clause (1) of Condition 3.4 fails and the
  detector's clean report would mislead;
* **first-partition filtering**: replaced by naive reporting — precision
  collapses on weak executions;
* **doubly-directed race edges in G'**: without them the partitions
  degenerate (races stop being mutually reachable) and the partition
  order loses Theorem 4.2's guarantee.
"""

from conftest import emit
from repro.core.detector import PostMortemDetector
from repro.core.hb1 import HappensBefore1
from repro.core.partitions import partition_races
from repro.core.races import find_races
from repro.core.scp import check_condition_34
from repro.machine.models import WeakOrdering
from repro.machine.models.broken import BrokenWeakOrdering
from repro.machine.propagation import StubbornPropagation
from repro.machine.simulator import run_program
from repro.programs.figure1 import figure1b_program
from repro.programs.kernels import producer_consumer_program
from repro.programs.random_programs import random_drf_program

DET = PostMortemDetector()


def test_ablate_flush_at_sync(benchmark):
    """Compliant vs broken hardware on DRF programs."""
    programs = [figure1b_program(), producer_consumer_program(3)] + [
        random_drf_program(s) for s in range(4)
    ]

    def sweep():
        rows = []
        for model_name, model_cls in (("WO", WeakOrdering),
                                      ("BrokenWO", BrokenWeakOrdering)):
            ok = 0
            total = 0
            for i, prog in enumerate(programs):
                for seed in range(4):
                    result = run_program(
                        prog, model_cls(), seed=seed,
                        propagation=StubbornPropagation(),
                    )
                    total += 1
                    ok += check_condition_34(result).ok
            rows.append((model_name, ok, total))
        return rows

    rows = benchmark(sweep)
    table = []
    for model_name, ok, total in rows:
        table.append(f"{model_name:10s}: Condition 3.4 held on "
                     f"{ok}/{total} DRF executions")
    compliant, broken = rows
    assert compliant[1] == compliant[2]      # WO: always holds
    assert broken[1] < broken[2]             # BrokenWO: violations caught
    emit(benchmark,
         "Ablation: remove flush-at-sync (section 3.1 'first problem')",
         table)


def test_ablate_race_edges_in_gprime(benchmark, figure2_trace):
    """G' without the doubly-directed race edges: the queue race's two
    events stop being mutually reachable, so races no longer map to
    single SCCs and the affects relation is lost."""
    hb = HappensBefore1(figure2_trace)
    races = find_races(figure2_trace, hb)

    def without_race_edges():
        from repro.graph import condensation
        cond = condensation(hb.graph)  # plain hb1, no race edges
        split = sum(
            1 for race in races
            if cond.index_of[race.a] != cond.index_of[race.b]
        )
        return split

    split = benchmark(without_race_edges)
    assert split == len(races)  # every race straddles two components
    emit(
        benchmark,
        "Ablation: drop race edges from G'",
        [f"{split}/{len(races)} races straddle SCCs without their "
         f"doubly-directed edge - partitioning (Definition 4.1) "
         f"becomes ill-defined"],
    )


def test_ablate_first_partition_filter(benchmark, figure2_result,
                                       figure2_trace):
    """Naive reporting vs first-partition filtering (precision)."""
    from repro.analysis.metrics import event_race_accuracy
    from repro.analysis.naive import NaiveDetector

    def measure():
        ours = DET.analyze(figure2_trace)
        naive = NaiveDetector().analyze(figure2_trace)
        return (
            event_race_accuracy(
                figure2_result, figure2_trace, ours.reported_races
            ).precision,
            event_race_accuracy(
                figure2_result, figure2_trace, naive.data_races
            ).precision,
        )

    ours_prec, naive_prec = benchmark(measure)
    assert ours_prec == 1.0 and naive_prec < 1.0
    emit(
        benchmark,
        "Ablation: drop first-partition filtering",
        [f"first-partition precision {ours_prec:.2f} -> "
         f"naive precision {naive_prec:.2f}"],
    )
