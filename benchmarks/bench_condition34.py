"""T3.5 — Theorem 3.5: all simulated weak implementations obey
Condition 3.4.

Sweeps programs x weak models x propagation policies, verifying both
clauses on every execution, and times the checker itself.
"""

import pytest

from conftest import emit
from repro.core.scp import check_condition_34
from repro.machine.models import WEAK_MODEL_NAMES, make_model
from repro.machine.propagation import (
    EagerPropagation,
    RandomPropagation,
    StubbornPropagation,
)
from repro.machine.simulator import run_program
from repro.programs.kernels import (
    locked_counter_program,
    producer_consumer_program,
    racy_counter_program,
)
from repro.programs.random_programs import random_racy_program
from repro.programs.workqueue import buggy_workqueue_program


def _sweep(model_name):
    programs = [
        ("locked-counter", locked_counter_program(2, 3)),
        ("producer-consumer", producer_consumer_program(4)),
        ("racy-counter", racy_counter_program(2, 3)),
        ("workqueue-buggy", buggy_workqueue_program()),
    ] + [
        (f"random-racy-{s}", random_racy_program(s, race_prob=0.5))
        for s in range(4)
    ]
    propagations = [
        StubbornPropagation(), RandomPropagation(0.3), EagerPropagation()
    ]
    checked = clause1 = clause2 = 0
    for i, (name, prog) in enumerate(programs):
        for prop in propagations:
            result = run_program(
                prog, make_model(model_name), seed=i, propagation=prop
            )
            report = check_condition_34(result)
            checked += 1
            clause1 += report.clause1_ok
            clause2 += report.clause2_ok
            assert report.ok, (model_name, name, type(prop).__name__)
    return checked, clause1, clause2


@pytest.mark.parametrize("model", WEAK_MODEL_NAMES)
def test_condition_34_sweep(benchmark, model):
    checked, clause1, clause2 = benchmark(lambda: _sweep(model))
    emit(
        benchmark,
        f"Theorem 3.5 on {model}",
        [
            f"{checked} executions checked "
            f"(programs x propagation policies)",
            f"Condition 3.4(1) held: {clause1}/{checked}",
            f"Condition 3.4(2) held: {clause2}/{checked}",
        ],
    )


def test_condition_34_checker_cost(benchmark, figure2_result):
    """The checker's own cost on the Figure 2 execution (406 ops)."""
    report = benchmark(lambda: check_condition_34(figure2_result))
    assert report.ok
    emit(
        benchmark,
        "Condition 3.4 checker cost",
        [f"{len(figure2_result.operations)} operations, "
         f"{len(report.op_races)} op races, SCP size {report.scp.size}"],
    )
