"""Shared benchmark fixtures and reporting helpers.

Every benchmark regenerates the content of one paper artifact (figure,
theorem, or prose claim — see DESIGN.md's per-experiment index) and
times the relevant pipeline stage with pytest-benchmark.  The
regenerated rows are attached as ``benchmark.extra_info`` and printed,
so ``pytest benchmarks/ --benchmark-only -s`` shows the full tables.
"""

from __future__ import annotations

import pytest

from repro.core.detector import PostMortemDetector
from repro.machine.models import make_model
from repro.machine.simulator import run_program
from repro.programs.workqueue import run_figure2
from repro.trace.build import build_trace


@pytest.fixture(scope="session")
def detector():
    return PostMortemDetector()


@pytest.fixture(scope="session")
def figure2_result():
    return run_figure2(make_model("WO"))


@pytest.fixture(scope="session")
def figure2_trace(figure2_result):
    return build_trace(figure2_result)


def emit(benchmark, title, rows):
    """Attach regenerated table rows to the benchmark record and print
    them (visible with -s)."""
    benchmark.extra_info["artifact"] = title
    benchmark.extra_info["rows"] = rows
    print(f"\n--- {title} ---")
    for row in rows:
        print(f"    {row}")
