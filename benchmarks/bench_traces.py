"""Trace-format benchmarks: on-disk size, analyze throughput, and the
streaming detector's memory bound.

Three rows per format (jsonl / binary / columnar): file size, post-
mortem analyze time, streaming analyze time.  Plus the tentpole
evidence for online detection: the token-ring operation stream is fed
to the streaming detector at 1x / 10x / 100x length in a fresh
subprocess each, and peak RSS must stay flat — the engine's state
scales with the scheduler-skew window (O(P*V) clocks + the not-yet-
globally-seen access window), never with the stream length.

Quick mode (``python benchmarks/bench_traces.py``) merges a
``trace_formats`` section into ``BENCH_hunting.json`` (the committed
benchmark summary) and ``--compare`` guards against >20% analyze-
throughput regressions.
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import pytest

from conftest import emit
import repro
from repro.core.streaming import StreamingDetector
from repro.ioutil import atomic_write_json
from repro.machine.models import make_model
from repro.machine.operations import MemoryOperation, OperationKind, SyncRole
from repro.machine.program import Program, ProgramBuilder
from repro.machine.simulator import run_program
from repro.trace.build import build_trace

FORMATS = ("jsonl", "binary", "columnar")
_SUFFIX = {"jsonl": ".jsonl", "binary": ".bin", "columnar": ".wrct"}

# streaming-scaling parameters: 4-proc token ring, ~2k ops at scale 1
RING_PROCS = 4
RING_ROUNDS = 50
RING_WORK = 4
RING_SCALES = (1, 10, 100)


def pingpong_program(rounds: int) -> Program:
    """Data-race-free two-proc handshake: release/acquire round trips
    whose trace length scales with *rounds*."""
    b = ProgramBuilder()
    flag = b.var("flag")
    ack = b.var("ack")
    data = b.var("data")
    with b.thread() as t:  # producer
        for i in range(rounds):
            t.write(data, i)
            t.release_write(flag, i + 1)
            t.spin_until_ge(ack, i + 1)
    with b.thread() as t:  # consumer
        for i in range(rounds):
            t.spin_until_ge(flag, i + 1)
            t.read(data)
            t.release_write(ack, i + 1)
    return b.build()


def token_ring(procs: int, rounds: int, work: int):
    """A perfectly synchronized operation stream, as a generator: the
    token passes p0 -> p1 -> ... -> p0, every acquire pairs with the
    release that produced its value, and each holder does *work*
    read+write pairs on its own scratch cell.  Zero races; the stream
    is never materialized."""
    seq = 0
    local = [0] * procs

    def op(p, kind, role, addr, value):
        nonlocal seq
        seq += 1
        local[p] += 1
        return MemoryOperation(
            seq=seq, proc=p, local_index=local[p] - 1,
            kind=kind, role=role, addr=addr, value=value,
        )

    for r in range(rounds):
        for p in range(procs):
            if not (r == 0 and p == 0):
                # token location p, value written by the last release
                value = r + 1 if p else r
                yield op(p, OperationKind.READ, SyncRole.ACQUIRE, p, value)
            for _ in range(work):
                yield op(p, OperationKind.READ, SyncRole.NONE,
                         procs + p, 0)
                yield op(p, OperationKind.WRITE, SyncRole.NONE,
                         procs + p, r)
            nxt = (p + 1) % procs
            yield op(p, OperationKind.WRITE, SyncRole.RELEASE, nxt, r + 1)


def _save_all(trace, directory: Path) -> dict:
    paths = {}
    for fmt in FORMATS:
        path = directory / f"trace{_SUFFIX[fmt]}"
        repro.save_trace(trace, path, format=fmt)
        paths[fmt] = path
    return paths


# ----------------------------------------------------------------------
# pytest-benchmark rows
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def pingpong_trace():
    return build_trace(run_program(
        pingpong_program(64), make_model("WO"), seed=0,
    ))


def test_format_sizes(benchmark, pingpong_trace, tmp_path):
    paths = benchmark.pedantic(
        lambda: _save_all(pingpong_trace, tmp_path),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    sizes = {fmt: paths[fmt].stat().st_size for fmt in FORMATS}
    emit(
        benchmark,
        f"Trace file sizes ({pingpong_trace.event_count} events)",
        [
            f"{fmt}: {sizes[fmt]} bytes "
            f"(~{sizes[fmt] / pingpong_trace.event_count:.0f} B/event)"
            for fmt in FORMATS
        ],
    )
    assert sizes["binary"] < sizes["jsonl"] / 2
    assert sizes["columnar"] < sizes["jsonl"]


@pytest.mark.parametrize("fmt", FORMATS)
def test_analyze_throughput(benchmark, pingpong_trace, tmp_path, fmt):
    path = tmp_path / f"t{_SUFFIX[fmt]}"
    repro.save_trace(pingpong_trace, path, format=fmt)
    report = benchmark(lambda: repro.detect(path))
    emit(
        benchmark,
        f"Post-mortem analyze from {fmt}",
        [f"{pingpong_trace.event_count} events, {len(report.races)} races"],
    )


@pytest.mark.parametrize("fmt", FORMATS)
def test_streaming_throughput(benchmark, pingpong_trace, tmp_path, fmt):
    path = tmp_path / f"t{_SUFFIX[fmt]}"
    repro.save_trace(pingpong_trace, path, format=fmt)
    report = benchmark(
        lambda: repro.detect(path, detector="streaming")
    )
    emit(
        benchmark,
        f"Streaming analyze from {fmt}",
        [
            f"{report.event_count} events, retained peak "
            f"{report.retained_peak}, {len(report.races)} races",
        ],
    )


def test_streaming_state_flat_across_100x(benchmark):
    """The engine's retained-access window must not grow with stream
    length on a synchronized stream — 100x the operations, same peak."""
    peaks = {}
    for scale in (1, 100):
        report = StreamingDetector().analyze_operations(
            token_ring(RING_PROCS, RING_ROUNDS * scale, RING_WORK),
            processor_count=RING_PROCS,
        )
        assert not report.races
        peaks[scale] = (report.retained_peak, report.operation_count)
    benchmark.pedantic(
        lambda: StreamingDetector().analyze_operations(
            token_ring(RING_PROCS, RING_ROUNDS, RING_WORK),
            processor_count=RING_PROCS,
        ),
        rounds=3, iterations=1, warmup_rounds=0,
    )
    emit(
        benchmark,
        "Streaming retained peak vs stream length",
        [
            f"scale {scale}x: {ops} ops -> retained peak {peak}"
            for scale, (peak, ops) in sorted(peaks.items())
        ],
    )
    assert peaks[100][1] == 100 * peaks[1][1] + 99  # 100x the stream
    assert peaks[100][0] <= peaks[1][0] + RING_PROCS  # flat window


# ----------------------------------------------------------------------
# quick mode: subprocess RSS measurements + the committed summary
# ----------------------------------------------------------------------
#
# ru_maxrss is a process-lifetime high-water mark, so every RSS number
# comes from a fresh subprocess running exactly one measurement.

_ANALYZE_CHILD = r"""
import json, resource, sys, time
import repro
path, detector = sys.argv[1], sys.argv[2]
start = time.perf_counter()
report = repro.detect(path, detector=detector)
elapsed = time.perf_counter() - start
print(json.dumps({
    "elapsed_sec": round(elapsed, 4),
    "peak_rss_kb": int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss),
    "races": len(report.races),
}))
"""

_STREAM_CHILD = r"""
import json, resource, sys, time
sys.path.insert(0, sys.argv[4])
from bench_traces import token_ring
from repro.core.streaming import StreamingDetector
procs, rounds, work = int(sys.argv[1]), int(sys.argv[2]), int(sys.argv[3])
start = time.perf_counter()
report = StreamingDetector().analyze_operations(
    token_ring(procs, rounds, work), processor_count=procs,
)
elapsed = time.perf_counter() - start
print(json.dumps({
    "elapsed_sec": round(elapsed, 4),
    "peak_rss_kb": int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss),
    "operations": report.operation_count,
    "events": report.event_count,
    "races": len(report.races),
    "retained_peak": report.retained_peak,
}))
"""


def _run_child(code: str, *argv: str) -> dict:
    proc = subprocess.run(
        [sys.executable, "-c", code, *argv],
        capture_output=True, text=True, env=dict(os.environ),
    )
    if proc.returncode != 0:
        raise RuntimeError(f"measurement subprocess failed: {proc.stderr}")
    return json.loads(proc.stdout)


def _measure_formats(trace, directory: Path, repeats: int) -> dict:
    rows = {}
    paths = _save_all(trace, directory)
    for fmt in FORMATS:
        path = paths[fmt]
        analyze = min(
            (_run_child(_ANALYZE_CHILD, str(path), "postmortem")
             for _ in range(repeats)),
            key=lambda r: r["elapsed_sec"],
        )
        streaming = min(
            (_run_child(_ANALYZE_CHILD, str(path), "streaming")
             for _ in range(repeats)),
            key=lambda r: r["elapsed_sec"],
        )
        rows[fmt] = {
            "bytes": path.stat().st_size,
            "bytes_per_event": round(
                path.stat().st_size / trace.event_count, 1
            ),
            "analyze_sec": analyze["elapsed_sec"],
            "analyze_events_per_sec": round(
                trace.event_count / analyze["elapsed_sec"], 1
            ) if analyze["elapsed_sec"] else None,
            "analyze_peak_rss_kb": analyze["peak_rss_kb"],
            "streaming_sec": streaming["elapsed_sec"],
            "streaming_peak_rss_kb": streaming["peak_rss_kb"],
        }
    return rows


def _measure_streaming_scaling() -> list:
    rows = []
    bench_dir = str(Path(__file__).resolve().parent)
    for scale in RING_SCALES:
        out = _run_child(
            _STREAM_CHILD, str(RING_PROCS),
            str(RING_ROUNDS * scale), str(RING_WORK), bench_dir,
        )
        out["scale"] = scale
        rows.append(out)
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Trace-format smoke: sizes, analyze throughput, "
                    "and the streaming flat-RSS guarantee",
    )
    parser.add_argument(
        "-o", "--output", default="BENCH_hunting.json",
        help="summary JSON to merge the trace_formats section into",
    )
    parser.add_argument(
        "--rounds", type=int, default=128,
        help="ping-pong rounds for the format rows",
    )
    parser.add_argument(
        "--repeats", type=int, default=2,
        help="per-measurement repeats; best elapsed wins",
    )
    parser.add_argument("--quick", action="store_true",
                        help="CI preset (same as the defaults)")
    parser.add_argument(
        "--compare", metavar="BASELINE.json",
        help="committed summary to guard regressions against",
    )
    parser.add_argument(
        "--max-regression", type=float, default=0.20, metavar="FRAC",
        help="allowed fractional analyze-throughput drop vs --compare "
             "(default %(default)s)",
    )
    args = parser.parse_args(argv)

    committed = None
    if args.compare:
        with open(args.compare) as fh:
            committed = json.load(fh)

    trace = build_trace(run_program(
        pingpong_program(args.rounds), make_model("WO"), seed=0,
    ))
    with tempfile.TemporaryDirectory() as tmp:
        formats = _measure_formats(trace, Path(tmp), args.repeats)
    scaling = _measure_streaming_scaling()

    section = {
        "workload": f"pingpong/{args.rounds} rounds",
        "event_count": trace.event_count,
        "formats": formats,
        "streaming_scaling": {
            "workload": (
                f"token-ring procs={RING_PROCS} work={RING_WORK} "
                f"rounds={RING_ROUNDS}x(1,10,100)"
            ),
            "rows": scaling,
        },
    }

    print(f"trace formats (pingpong, {trace.event_count} events):")
    for fmt in FORMATS:
        row = formats[fmt]
        print(f"  {fmt:9s} {row['bytes']:8d} B  "
              f"analyze {row['analyze_sec']:6.2f}s "
              f"(rss {row['analyze_peak_rss_kb'] // 1024} MB)  "
              f"streaming {row['streaming_sec']:5.2f}s "
              f"(rss {row['streaming_peak_rss_kb'] // 1024} MB)")
    print("streaming RSS vs stream length (one subprocess each):")
    for row in scaling:
        print(f"  {row['scale']:4d}x  {row['operations']:8d} ops  "
              f"rss {row['peak_rss_kb'] // 1024:4d} MB  "
              f"retained peak {row['retained_peak']:4d}  "
              f"{row['elapsed_sec']:.2f}s")

    # the tentpole guarantee, hard-asserted: 100x the stream, flat RSS
    base, top = scaling[0], scaling[-1]
    assert top["operations"] >= 100 * base["operations"], "bad scaling"
    assert top["races"] == base["races"] == 0, "token ring must be clean"
    assert top["retained_peak"] <= base["retained_peak"] + RING_PROCS, (
        f"retained window grew with stream length: "
        f"{base['retained_peak']} -> {top['retained_peak']}"
    )
    rss_growth = top["peak_rss_kb"] / base["peak_rss_kb"]
    assert rss_growth < 1.30, (
        f"streaming peak RSS grew {rss_growth:.2f}x over a 100x longer "
        f"stream ({base['peak_rss_kb']} -> {top['peak_rss_kb']} KB)"
    )

    # merge into the committed summary without clobbering other benches
    payload = {}
    if os.path.exists(args.output):
        with open(args.output) as fh:
            payload = json.load(fh)
    payload["trace_formats"] = section
    atomic_write_json(args.output, payload)
    print(f"merged trace_formats into {args.output}")

    if committed is not None:
        baseline = (committed.get("trace_formats") or {}).get("formats")
        if baseline:
            failed = False
            for fmt, cell in baseline.items():
                was = cell.get("analyze_events_per_sec")
                now = (formats.get(fmt) or {}).get("analyze_events_per_sec")
                if not was or not now:
                    continue
                if now < was * (1.0 - args.max_regression):
                    print(
                        f"FAIL: {fmt} analyze throughput dropped "
                        f"{1 - now / was:.1%} ({was:.0f} -> {now:.0f} "
                        f"events/sec, > {args.max_regression:.0%} allowed)",
                        file=sys.stderr,
                    )
                    failed = True
            if failed:
                return 1
            print("regression guard: analyze throughput OK "
                  f"(within {args.max_regression:.0%} of committed)")
        else:
            print("regression guard: no committed trace_formats section; "
                  "skipped")
    return 0


if __name__ == "__main__":
    sys.exit(main())
