"""C5 — detector scalability: analysis cost versus trace size and
processor count.

Section 5 argues the post-mortem analysis "requires computation similar
to the more accurate techniques for sequentially consistent systems";
this bench measures how the pipeline scales as the execution grows.
"""

import pytest

from conftest import emit
from repro.core.detector import PostMortemDetector
from repro.machine.models import make_model
from repro.machine.simulator import run_program
from repro.programs.random_programs import random_racy_program
from repro.trace.build import build_trace

DET = PostMortemDetector()


def _execution(processors, ops_per_thread, seed=7):
    program = random_racy_program(
        seed, processors=processors, ops_per_thread=ops_per_thread,
        shared_vars=4, race_prob=0.3,
    )
    return run_program(program, make_model("WO"), seed=seed)


@pytest.mark.parametrize("ops_per_thread", [10, 40, 160])
def test_scaling_with_trace_length(benchmark, ops_per_thread):
    result = _execution(3, ops_per_thread)
    trace = build_trace(result)
    report = benchmark(lambda: DET.analyze(trace))
    emit(
        benchmark,
        f"Detection cost vs trace length (ops/thread={ops_per_thread})",
        [f"{len(result.operations)} operations, {trace.event_count} events "
         f"-> {len(report.data_races)} data races, "
         f"{len(report.first_partitions)} first partition(s)"],
    )


@pytest.mark.parametrize("processors", [2, 4, 8])
def test_scaling_with_processor_count(benchmark, processors):
    result = _execution(processors, 30)
    trace = build_trace(result)
    report = benchmark(lambda: DET.analyze(trace))
    emit(
        benchmark,
        f"Detection cost vs processors (p={processors})",
        [f"{len(result.operations)} operations, {trace.event_count} events "
         f"-> {len(report.data_races)} data races"],
    )


def test_simulation_vs_detection_split(benchmark):
    """Where the time goes: simulate vs instrument vs detect."""
    import time

    def phases():
        t0 = time.perf_counter()
        result = _execution(4, 80)
        t1 = time.perf_counter()
        trace = build_trace(result)
        t2 = time.perf_counter()
        DET.analyze(trace)
        t3 = time.perf_counter()
        return t1 - t0, t2 - t1, t3 - t2

    sim, instr, det = benchmark(phases)
    total = sim + instr + det
    emit(
        benchmark,
        "Pipeline phase split",
        [f"simulate {sim/total:.0%}, instrument {instr/total:.0%}, "
         f"detect {det/total:.0%} of {total*1000:.1f} ms"],
    )


def test_bounded_queue_pipeline(benchmark):
    """The Figure 2 idea at production scale: a lock-protected MPMC
    circular buffer.  Full pipeline on the locked (clean) variant plus
    a race check on the unlocked one."""
    from repro.programs.queue import (
        bounded_queue_program, expected_checksum_total,
    )

    locked = bounded_queue_program(2, 2, 4)

    def pipeline():
        result = run_program(locked, make_model("RCsc"), seed=9,
                             max_steps=400_000)
        report = DET.analyze(build_trace(result))
        return result, report

    result, report = benchmark(pipeline)
    assert result.completed
    assert report.race_free
    base = result.symbols.addr_of("sum")
    total = sum(result.final_memory[base + c] for c in range(2))
    assert total == expected_checksum_total(2, 4)

    buggy = bounded_queue_program(2, 2, 4, locked=False)
    buggy_result = run_program(buggy, make_model("RCsc"), seed=9,
                               max_steps=15_000)
    buggy_report = DET.analyze(build_trace(buggy_result))
    assert not buggy_report.race_free
    emit(
        benchmark,
        "Bounded MPMC queue (scaled Figure 2)",
        [f"locked: {len(result.operations)} ops, race-free, "
         f"FIFO checksum balanced",
         f"unlocked: {len(buggy_report.data_races)} data races, "
         f"{len(buggy_report.first_partitions)} first partition(s) on the "
         f"queue state"],
    )
