"""C1 — Section 2.2's performance motivation: weak models outrun SC on
data-race-free programs because data writes buffer between syncs.

Regenerates a stall-cycle table over the DRF kernels for all five
models; the expected shape is SC > WO = DRF0 >= RCsc = DRF1.  Times the
simulation under each model on the write-heavy kernel.
"""

import pytest

from conftest import emit
from repro.machine.models import ALL_MODEL_NAMES, make_model
from repro.machine.simulator import run_program
from repro.programs.kernels import (
    fanin_barrier_program,
    locked_counter_program,
    producer_consumer_program,
    region_then_lock_program,
)

KERNELS = {
    "locked-counter": lambda: locked_counter_program(4, 6),
    "producer-consumer": lambda: producer_consumer_program(12),
    "fanin-barrier": lambda: fanin_barrier_program(3, 12),
    "region-then-lock": lambda: region_then_lock_program(3, 10, 4),
}


@pytest.mark.parametrize("model", ALL_MODEL_NAMES)
def test_model_stall_cycles(benchmark, model):
    program = region_then_lock_program(3, 10, 4)
    result = benchmark(
        lambda: run_program(program, make_model(model), seed=13)
    )
    assert result.completed
    emit(
        benchmark,
        f"region-then-lock on {model}",
        [f"stall cycles={result.total_stall_cycles}, "
         f"total cycles={result.total_cycles}"],
    )


def test_model_comparison_table(benchmark):
    def sweep():
        table = {}
        for name, make_prog in KERNELS.items():
            prog = make_prog()
            table[name] = {
                model: run_program(
                    prog, make_model(model), seed=13
                ).total_stall_cycles
                for model in ALL_MODEL_NAMES
            }
        return table

    table = benchmark(sweep)
    rows = [
        f"{'kernel':20s}" + "".join(f"{m:>8s}" for m in ALL_MODEL_NAMES)
    ]
    for name, stalls in table.items():
        rows.append(
            f"{name:20s}"
            + "".join(f"{stalls[m]:8d}" for m in ALL_MODEL_NAMES)
        )
        # the paper's shape: every weak model at most SC's stalls, and
        # strictly better on the write-heavy kernels
        for m in ("WO", "RCsc", "DRF0", "DRF1"):
            assert stalls[m] <= stalls["SC"], (name, m)
    wh = table["region-then-lock"]
    assert wh["RCsc"] < wh["WO"] < wh["SC"]
    assert wh["DRF1"] < wh["DRF0"] < wh["SC"]
    emit(benchmark, "Section 2.2 stall-cycle table (lower is better)", rows)


def test_lockfree_vs_locked_counter(benchmark):
    """Lock-free CAS-retry vs Test&Set-locked counter under each model:
    the lock-free version avoids the spin-lock's failed Test&Sets and
    their stalls, while staying data-race-free on every model."""
    from repro.core.detector import PostMortemDetector
    from repro.programs.kernels import cas_counter_program

    det = PostMortemDetector()

    def sweep():
        table = {}
        locked = locked_counter_program(4, 6)
        lockfree = cas_counter_program(4, 6)
        for model in ALL_MODEL_NAMES:
            locked_run = run_program(locked, make_model(model), seed=13)
            free_run = run_program(lockfree, make_model(model), seed=13)
            assert locked_run.value_of("counter") == 24
            assert free_run.value_of("counter") == 24
            assert det.analyze_execution(free_run).race_free
            table[model] = (
                locked_run.total_stall_cycles, free_run.total_stall_cycles,
            )
        return table

    table = benchmark(sweep)
    rows = [f"{'model':>6s} {'locked stalls':>14s} {'lock-free stalls':>17s}"]
    for model, (locked_stalls, free_stalls) in table.items():
        rows.append(f"{model:>6s} {locked_stalls:14d} {free_stalls:17d}")
    emit(benchmark,
         "Lock-free (CAS) vs locked counter, 4 procs x 6 increments",
         rows)
