"""F2 — Figure 2 of the paper: the buggy work-queue on a weak machine.

Regenerates the figure's content: the stale ``read(Q,37)``, the
sequentially consistent data races (queue accesses) versus the
non-sequentially-consistent ones (region overlap), and the SCP cut.
Times the weak-execution simulation itself.
"""

from conftest import emit
from repro.core.scp import extract_scp
from repro.machine.models import WEAK_MODEL_NAMES, make_model
from repro.programs.workqueue import run_figure2

import pytest


@pytest.mark.parametrize("model", WEAK_MODEL_NAMES)
def test_figure2_weak_execution(benchmark, model):
    result = benchmark(lambda: run_figure2(make_model(model)))
    assert result.completed

    stale = result.stale_reads
    assert len(stale) == 1
    scp = extract_scp(result)
    rows = [
        f"model={model}: {len(result.operations)} operations",
        f"non-SC behaviour: {result.describe_op(stale[0])} "
        f"(SC would have returned 100)",
        f"P2 worked region 37..136, overlapping P3's 0..99",
        f"SCP cuts per processor: {scp.cuts} "
        f"(P2 leaves the SCP at its first region access, "
        f"after read(Q,37) and Unset(s) - matching the figure)",
        f"SCP covers {scp.size}/{len(result.operations)} operations",
    ]
    emit(benchmark, f"Figure 2b reproduced on {model}", rows)


def test_figure2_race_census(benchmark, figure2_result, detector):
    """Counts the figure's two race families: SC races (queue) and
    non-SC races (regions), at operation level."""
    from repro.analysis.metrics import op_races_in_scp
    from repro.core.ophb import find_op_races

    def census():
        races = [
            r for r in find_op_races(figure2_result.operations)
            if r.is_data_race
        ]
        sc_races, _ = op_races_in_scp(figure2_result)
        return races, sc_races

    races, sc_races = benchmark(census)
    non_sc = len(races) - len(sc_races)
    name = figure2_result.addr_name
    rows = [
        f"total lower-level data races: {len(races)}",
        f"sequentially consistent races (in SCP): {len(sc_races)} "
        f"on {sorted({name(r.addr) for r in sc_races})}",
        f"non-sequentially-consistent races: {non_sc} "
        f"(region overlap; would never occur on SC hardware)",
    ]
    assert len(sc_races) == 2  # <W(Q),R(Q)> and <W(QEmpty),R(QEmpty)>
    assert non_sc > 50
    emit(benchmark, "Figure 2b race census (SC vs non-SC data races)", rows)
