"""C8 — the paper's stated future work (section 5): locating the
*first* data races on-the-fly.

Regenerates the comparison between the streaming first-race prototype
and the post-mortem first partitions on the Figure 2b execution, and
times the streaming pass.  The prototype's guarantee is weaker than the
post-mortem method's (it reports a representative subset of the first
races, detection-ordered), which is exactly the accuracy gap the paper
anticipates for on-the-fly variants.
"""

from conftest import emit
from repro.core.detector import PostMortemDetector
from repro.core.onthefly_first import FirstRaceOnTheFlyDetector
from repro.trace.build import build_trace, event_of_op

DET = PostMortemDetector()


def test_first_race_streaming(benchmark, figure2_result):
    def run():
        detector = FirstRaceOnTheFlyDetector(
            figure2_result.processor_count,
            reader_history=8, writer_history=4,
        )
        detector.process_all(figure2_result.operations)
        return detector

    detector = benchmark(run)
    name = figure2_result.addr_name
    first_addrs = sorted({name(r.addr) for r in detector.first_races})
    rows = [
        f"streaming pass over {len(figure2_result.operations)} operations",
        f"first races: {len(detector.first_races)} on {first_addrs}",
        f"non-first races: {len(detector.non_first_races)} "
        f"(region cascade correctly classified as affected)",
    ]
    assert set(first_addrs) <= {"Q", "QEmpty"}
    assert all(
        not name(r.addr).startswith("region[")
        for r in detector.first_races
    )
    emit(benchmark, "On-the-fly first-race location (future work, section 5)",
         rows)


def test_streaming_first_agrees_with_postmortem(benchmark, figure2_result):
    """Every streaming 'first' race must map into a post-mortem first
    partition (the prototype may under-report, never misclassify on
    this workload)."""
    trace = build_trace(figure2_result)
    report = DET.analyze(trace)
    first_partition_events = {
        eid for p in report.first_partitions for eid in p.events
    }

    def classify():
        detector = FirstRaceOnTheFlyDetector(
            figure2_result.processor_count,
            reader_history=8, writer_history=4,
        )
        detector.process_all(figure2_result.operations)
        return detector.first_races

    streaming_first = benchmark(classify)
    mapped = 0
    for race in streaming_first:
        ea = event_of_op(trace, race.a)
        eb = event_of_op(trace, race.b)
        assert ea in first_partition_events
        assert eb in first_partition_events
        mapped += 1
    emit(
        benchmark,
        "Streaming-first vs post-mortem first partitions",
        [f"{mapped}/{len(streaming_first)} streaming first races map "
         f"into the post-mortem first partition"],
    )
