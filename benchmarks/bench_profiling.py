"""Observability overhead: disabled-mode cost must stay below 3%.

The instrumentation contract (see ``repro.obs``) is that the hot path
pays one attribute load and one ``None`` check per pipeline *stage*
when no profiler is active — and the telemetry layer
(``repro.obs.metrics`` / ``repro.obs.events``) pays one registry
lookup per *hunt*, nothing per job, when disabled.  This bench
verifies that contract on the hunt workload two ways:

* **accounting** — count every ``obs.span``/``obs.count``/
  ``obs.enabled`` call the workload makes, microbenchmark the per-call
  disabled cost, and assert ``calls x cost / workload_time < 3%``;
* **measurement** — report the wall-clock ratio of the enabled
  (profiler active) run over the disabled run, which bounds what a
  user opting in actually pays.
"""

from __future__ import annotations

import time

from conftest import emit
from repro import obs
from repro.analysis.hunting import hunt_races
from repro.machine.models import make_model
from repro.programs.kernels import racy_counter_program

TRIES = 24
MICRO_REPS = 200_000
BUDGET = 0.03


def _workload():
    return hunt_races(
        racy_counter_program(4, 8),
        lambda: make_model("WO"),
        tries=TRIES,
        jobs=1,
    )


def _best_of(fn, runs: int = 3) -> float:
    best = float("inf")
    for _ in range(runs):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _count_disabled_calls() -> dict:
    """Run the workload with counting wrappers around the hot-path
    primitives (still disabled: no profiler or metrics registry is
    active).  ``metrics_active`` counts the metrics layer's one
    registry lookup per hunt (see repro.analysis.parallel.run_hunt)."""
    calls = {"span": 0, "count": 0, "enabled": 0, "metrics_active": 0}
    real = {
        "span": obs.span, "count": obs.count, "enabled": obs.enabled,
        "metrics_active": obs.metrics.active,
    }

    def span(name):
        calls["span"] += 1
        return real["span"](name)

    def count(name, n=1):
        calls["count"] += 1
        return real["count"](name, n)

    def enabled():
        calls["enabled"] += 1
        return real["enabled"]()

    def metrics_active():
        calls["metrics_active"] += 1
        return real["metrics_active"]()

    obs.span, obs.count, obs.enabled = span, count, enabled
    obs.metrics.active = metrics_active
    try:
        _workload()
    finally:
        obs.span, obs.count, obs.enabled = (
            real["span"], real["count"], real["enabled"],
        )
        obs.metrics.active = real["metrics_active"]
    return calls


def _per_call_disabled_cost() -> dict:
    """Microbenchmark one disabled-path call of each primitive."""
    out = {}
    for name, fn in (
        ("span", lambda: obs.span("bench")),
        ("count", lambda: obs.count("bench")),
        ("enabled", obs.enabled),
        ("metrics_active", obs.metrics.active),
    ):
        start = time.perf_counter()
        for _ in range(MICRO_REPS):
            fn()
        out[name] = (time.perf_counter() - start) / MICRO_REPS
    return out


def test_disabled_overhead_under_budget(benchmark):
    assert obs.active() is None, "bench requires profiling off"
    assert obs.metrics.active() is None, "bench requires metrics off"
    calls = _count_disabled_calls()
    per_call = _per_call_disabled_cost()
    t_work = _best_of(_workload)
    benchmark(_workload)
    overhead = sum(calls[name] * per_call[name] for name in calls)
    fraction = overhead / t_work
    emit(
        benchmark,
        "Disabled-mode instrumentation overhead (hunt workload)",
        [
            f"workload: racy_counter hunt, {TRIES} executions, "
            f"{t_work * 1000:.1f}ms",
            f"primitive calls: span={calls['span']}, "
            f"count={calls['count']}, enabled={calls['enabled']}, "
            f"metrics.active={calls['metrics_active']}",
            f"per-call cost: span={per_call['span'] * 1e9:.0f}ns, "
            f"count={per_call['count'] * 1e9:.0f}ns, "
            f"enabled={per_call['enabled'] * 1e9:.0f}ns",
            f"accounted overhead: {overhead * 1e6:.1f}us "
            f"({fraction:.4%} of workload, budget {BUDGET:.0%})",
        ],
    )
    assert fraction < BUDGET, (
        f"disabled-mode overhead {fraction:.4%} exceeds {BUDGET:.0%}"
    )


def test_enabled_overhead_reported(benchmark):
    """The opt-in cost: same workload with a profiler recording."""
    t_off = _best_of(_workload)

    def profiled():
        profiler = obs.Profiler()
        with profiler.activate():
            return _workload()

    t_on = _best_of(profiled)
    benchmark(profiled)
    ratio = t_on / t_off if t_off > 0 else float("inf")
    emit(
        benchmark,
        "Enabled-mode profiling overhead (hunt workload)",
        [
            f"disabled: {t_off * 1000:.1f}ms, "
            f"enabled: {t_on * 1000:.1f}ms ({ratio:.2f}x)",
        ],
    )
    # Spans wrap stages, not iterations: even recording everything the
    # workload should not double in cost.
    assert ratio < 2.0, f"enabled-mode profiling costs {ratio:.2f}x"
