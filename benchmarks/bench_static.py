"""C6 — section 1's complementarity claim: static techniques detect "a
superset of all possible data races ... in all possible sequentially
consistent executions" and apply to weak systems unchanged; dynamic
techniques then give precise per-execution answers.

Regenerates the static-vs-dynamic comparison table and times the static
analyzer (CFG + lockset dataflow + pair enumeration).
"""

from conftest import emit
from repro.core.detector import PostMortemDetector
from repro.machine.models import make_model
from repro.machine.simulator import run_program
from repro.programs.figure1 import figure1a_program, figure1b_program
from repro.programs.kernels import (
    locked_counter_program,
    producer_consumer_program,
    racy_counter_program,
)
from repro.programs.workqueue import (
    buggy_workqueue_program,
    fixed_workqueue_program,
)
from repro.staticanalysis import find_static_races

DET = PostMortemDetector()

WORKLOADS = [
    ("figure1a", figure1a_program),
    ("figure1b", figure1b_program),
    ("locked-counter", lambda: locked_counter_program(3, 2)),
    ("racy-counter", lambda: racy_counter_program(2, 2)),
    ("producer-consumer", lambda: producer_consumer_program(4)),
    ("workqueue-buggy", buggy_workqueue_program),
    ("workqueue-fixed", fixed_workqueue_program),
]


def test_static_vs_dynamic_table(benchmark):
    def sweep():
        rows = []
        for name, make_prog in WORKLOADS:
            program = make_prog()
            static = find_static_races(program)
            result = run_program(program, make_model("WO"), seed=7)
            dynamic = DET.analyze_execution(result)
            rows.append((
                name,
                len(static.races),
                len(dynamic.data_races),
                static.potentially_racy,
                not dynamic.race_free,
            ))
        return rows

    rows = benchmark(sweep)
    table = [
        f"{'workload':20s} {'static pairs':>12s} {'dynamic races':>14s} "
        f"{'static verdict':>15s} {'dynamic verdict':>16s}"
    ]
    for name, s_count, d_count, s_racy, d_racy in rows:
        table.append(
            f"{name:20s} {s_count:12d} {d_count:14d} "
            f"{'racy?':>15s} {'racy':>16s}"
            if s_racy and d_racy else
            f"{name:20s} {s_count:12d} {d_count:14d} "
            f"{('racy?' if s_racy else 'clean'):>15s} "
            f"{('racy' if d_racy else 'clean'):>16s}"
        )
        # static must never be clean when dynamic found a race
        # (superset property)
        assert s_racy or not d_racy, name
    emit(benchmark, "Static vs dynamic race detection (section 1)", table)


def test_static_analyzer_cost(benchmark):
    program = buggy_workqueue_program()
    report = benchmark(lambda: find_static_races(program))
    emit(
        benchmark,
        "Static analyzer cost on the work-queue program",
        [f"{len(report.accesses)} access sites -> "
         f"{len(report.races)} potential race pairs"],
    )


def test_static_locksets_suppress_locked_reports(benchmark):
    """The lock discipline is what the dataflow buys: the fixed queue
    program's Q/QEmpty reports disappear."""
    def measure():
        buggy = find_static_races(buggy_workqueue_program())
        fixed = find_static_races(fixed_workqueue_program())
        def queue_pairs(report):
            return [
                r for r in report.races
                if report.program.symbols.name_of(r.a.region.lo)
                in ("Q", "QEmpty")
            ]
        return len(queue_pairs(buggy)), len(queue_pairs(fixed))

    buggy_pairs, fixed_pairs = benchmark(measure)
    assert buggy_pairs > 0 and fixed_pairs == 0
    emit(
        benchmark,
        "Lockset discipline visible statically",
        [f"buggy queue program: {buggy_pairs} Q/QEmpty race pairs",
         f"fixed queue program: {fixed_pairs} (Test&Set discipline proven)"],
    )
