"""F3 — Figure 3 of the paper: the augmented happens-before-1 graph G'
with first and non-first race partitions.

Regenerates the partition structure for the Figure 2b execution: the
first partition holds the queue races (on Q and QEmpty), the non-first
partition holds the region races, and the partition order matches the
figure's "first partition -> non-first partition" arrow.  Times the
partitioning stage (G' construction + SCC + ordering).
"""

from conftest import emit
from repro.core.augmented import build_augmented_graph
from repro.core.hb1 import HappensBefore1
from repro.core.partitions import partition_races
from repro.core.races import find_races


def test_figure3_partitioning(benchmark, figure2_trace):
    hb = HappensBefore1(figure2_trace)
    races = find_races(figure2_trace, hb)

    analysis = benchmark(lambda: partition_races(figure2_trace, hb, races))

    data_partitions = [p for p in analysis.partitions if p.has_data_race]
    assert len(data_partitions) == 2
    first = next(p for p in data_partitions if p.is_first)
    non_first = next(p for p in data_partitions if not p.is_first)
    assert analysis.precedes(first, non_first)

    name = figure2_trace.addr_name
    first_locs = sorted({
        name(a) for r in first.data_races for a in r.locations
    })
    nf_locs = sorted({
        name(a) for r in non_first.data_races for a in r.locations
    })
    rows = [
        f"G': {analysis.gprime.node_count} events, "
        f"{analysis.gprime.edge_count} edges "
        f"({2 * len(races)} of them race edges)",
        f"first partition: races on {first_locs}",
        f"non-first partition: races on {nf_locs[:3]}"
        + ("..." if len(nf_locs) > 3 else ""),
        "partition order: first P non-first (Definition 4.1) - "
        "matches the figure's layout",
    ]
    emit(benchmark, "Figure 3 partitions regenerated", rows)


def test_figure3_dot_render(benchmark, figure2_trace, detector):
    """Times rendering the figure itself (DOT text generation)."""
    report = detector.analyze(figure2_trace)
    dot = benchmark(report.to_dot)
    assert "dashed" in dot and "cluster" in dot
    emit(
        benchmark,
        "Figure 3 DOT render",
        [f"{len(dot.splitlines())} DOT lines; race edges dashed, "
         f"partitions boxed (render: dot -Tpng)"],
    )


def test_figure3_augmented_graph_construction(benchmark, figure2_trace):
    hb = HappensBefore1(figure2_trace)
    races = find_races(figure2_trace, hb)
    gprime = benchmark(lambda: build_augmented_graph(hb, races))
    assert gprime.edge_count == hb.graph.edge_count + 2 * len(races)
    emit(
        benchmark,
        "G' construction",
        [f"hb1 edges={hb.graph.edge_count}, races={len(races)}, "
         f"G' edges={gprime.edge_count}"],
    )
