"""C3 — the section 4.1 overhead claim: recording READ/WRITE bit-vector
sets per computation event "avoids writing a trace record for every
memory operation".

Regenerates the trace-size comparison (event records vs operation
records, and serialized bytes) across growing workloads, and times the
instrumentation pass.
"""

import json
import os
import tempfile

import pytest

from conftest import emit
from repro.analysis.metrics import trace_overhead
from repro.machine.models import make_model
from repro.machine.simulator import run_program
from repro.programs.kernels import region_then_lock_program
from repro.trace.build import build_trace
from repro.trace.tracefile import write_trace


def _per_op_record_bytes(result):
    """What a per-operation trace would cost, serialized the same way."""
    total = 0
    for op in result.operations:
        total += len(json.dumps({
            "proc": op.proc, "kind": op.kind.value, "addr": op.addr,
        })) + 1
    return total


@pytest.mark.parametrize("cells", [4, 16, 64])
def test_event_tracing_overhead(benchmark, cells):
    program = region_then_lock_program(3, cells, 3)
    result = run_program(program, make_model("WO"), seed=5)

    trace = benchmark(lambda: build_trace(result))

    overhead = trace_overhead(result, trace)
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "t.trace")
        write_trace(trace, path)
        event_bytes = os.path.getsize(path)
    op_bytes = _per_op_record_bytes(result)

    assert overhead.events < overhead.operations
    rows = [
        f"cells/region={cells}: {overhead.operations} operations -> "
        f"{overhead.events} event records "
        f"(ratio {overhead.record_ratio:.2f})",
        f"serialized: {event_bytes} bytes (events+bitvectors) vs "
        f"{op_bytes} bytes (per-operation log) -> "
        f"{event_bytes / op_bytes:.2f}x",
        f"{overhead.sync_events} sync events, "
        f"{overhead.computation_events} computation events, "
        f"{overhead.bitvector_bits} bits set across READ/WRITE sets",
    ]
    emit(benchmark, f"Section 4.1 trace compactness (cells={cells})", rows)


def test_record_ratio_shrinks_with_event_size(benchmark):
    """The bigger the computation events, the bigger the win."""
    def measure():
        ratios = {}
        for cells in (2, 8, 32):
            program = region_then_lock_program(2, cells, 2)
            result = run_program(program, make_model("WO"), seed=5)
            trace = build_trace(result)
            ratios[cells] = trace_overhead(result, trace).record_ratio
        return ratios

    ratios = benchmark(measure)
    assert ratios[32] < ratios[8] < ratios[2]
    emit(
        benchmark,
        "Record ratio vs computation-event size",
        [f"cells={c}: {r:.3f} event records per operation"
         for c, r in ratios.items()],
    )


def test_binary_vs_json_trace_size(benchmark):
    """The binary format carries exactly the paper's trace contents and
    is several times smaller than the JSON-lines encoding."""
    from repro.trace.binfile import write_binary_trace

    program = region_then_lock_program(3, 32, 3)
    result = run_program(program, make_model("WO"), seed=5)
    trace = build_trace(result)

    def serialize_both():
        with tempfile.TemporaryDirectory() as tmp:
            bin_path = os.path.join(tmp, "t.bin")
            json_path = os.path.join(tmp, "t.jsonl")
            write_binary_trace(trace, bin_path)
            write_trace(trace, json_path)
            return os.path.getsize(bin_path), os.path.getsize(json_path)

    bin_size, json_size = benchmark(serialize_both)
    assert bin_size < json_size
    emit(
        benchmark,
        "Binary vs JSON trace encoding",
        [f"{trace.event_count} events: binary {bin_size} bytes, "
         f"JSON {json_size} bytes ({json_size / bin_size:.1f}x larger)"],
    )
