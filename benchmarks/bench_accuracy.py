"""C2 — the accuracy claim of sections 3.1/4.2: naive reporting of a
weak execution includes races that could never happen on SC hardware;
first-partition reporting narrows the report to partitions guaranteed
to contain a sequentially consistent race.

Regenerates a precision table (fraction of reported races that are
SC-valid) for both detectors over the buggy workloads.
"""

from conftest import emit
from repro.analysis.metrics import event_race_accuracy
from repro.analysis.naive import NaiveDetector
from repro.core.detector import PostMortemDetector
from repro.machine.models import make_model
from repro.programs.workqueue import (
    WorkQueueParams,
    figure2_weak_setup,
)
from repro.trace.build import build_trace

OURS = PostMortemDetector()
NAIVE = NaiveDetector()


def _workloads():
    """Figure-2-style executions at several geometries."""
    out = []
    for params in (
        WorkQueueParams(),  # the paper's 37/100 geometry
        WorkQueueParams(stale_addr=10, enqueued_addr=60,
                        region_len=50, work_len=50),
        WorkQueueParams(stale_addr=5, enqueued_addr=20,
                        region_len=15, work_len=15),
    ):
        out.append(figure2_weak_setup(make_model("WO"), params).run())
    return out


def test_accuracy_first_partition_vs_naive(benchmark):
    def measure():
        rows = []
        for result in _workloads():
            trace = build_trace(result)
            ours = OURS.analyze(trace)
            naive = NAIVE.analyze(trace)
            acc_ours = event_race_accuracy(
                result, trace, ours.reported_races
            )
            acc_naive = event_race_accuracy(
                result, trace, naive.data_races
            )
            rows.append((
                len(result.operations),
                len(naive.data_races), acc_naive.precision,
                len(ours.reported_races), acc_ours.precision,
            ))
        return rows

    rows = benchmark(measure)
    table = [
        f"{'ops':>6s} {'naive races':>12s} {'naive prec':>11s} "
        f"{'first races':>12s} {'first prec':>11s}"
    ]
    for ops, n_races, n_prec, f_races, f_prec in rows:
        table.append(
            f"{ops:6d} {n_races:12d} {n_prec:11.2f} "
            f"{f_races:12d} {f_prec:11.2f}"
        )
        assert f_prec == 1.0          # first partitions: only SC races
        assert n_prec < 1.0           # naive: polluted with non-SC races
        assert f_races < n_races      # and much shorter reports
    emit(
        benchmark,
        "Reporting precision: naive vs first-partition (sections 3.1/4.2)",
        table,
    )
