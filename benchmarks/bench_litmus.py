"""C9 — litmus outcome tables: the complete behaviour sets each model
admits, enumerated exhaustively (processor steps AND buffered-write
deliveries as transitions).

Regenerates the herd-style table separating the models: the
store-buffering "both enter" outcome is absent under SC and present
under every weak model, while the data-race-free Figure 1b program has
the *same* outcome set on all five models — the semantic content of the
SC-for-DRF guarantee the paper's weak models are defined by.
"""

import pytest

from conftest import emit
from repro.analysis.outcomes import enumerate_outcomes
from repro.machine.models import ALL_MODEL_NAMES, make_model
from repro.programs.figure1 import figure1b_program
from repro.programs.litmus import store_buffering_program


def test_store_buffering_outcome_table(benchmark):
    def sweep():
        table = {}
        for model in ALL_MODEL_NAMES:
            out = enumerate_outcomes(
                store_buffering_program(), make_model(model),
                interesting=["critical[0]", "critical[1]"],
            )
            table[model] = (
                sorted(out.values_of("critical[0]", "critical[1]")),
                out.states_visited,
            )
        return table

    table = benchmark(sweep)
    rows = [f"{'model':>6s}  {'outcomes (c0, c1)':<38s} {'states':>7s}"]
    for model, (outcomes, states) in table.items():
        rows.append(f"{model:>6s}  {str(outcomes):<38s} {states:7d}")
        if model == "SC":
            assert (1, 1) not in outcomes
        else:
            assert (1, 1) in outcomes
    emit(benchmark,
         "Store-buffering litmus outcome table (both-enter forbidden on SC)",
         rows)


def test_drf_outcomes_model_independent(benchmark):
    def sweep():
        sets = {}
        for model in ALL_MODEL_NAMES:
            out = enumerate_outcomes(figure1b_program(), make_model(model))
            sets[model] = (out.values_of("x", "y", "s"), out.states_visited)
        return sets

    sets = benchmark(sweep)
    reference = sets["SC"][0]
    rows = []
    for model, (values, states) in sets.items():
        assert values == reference, model
        rows.append(f"{model}: outcomes={sorted(values)} states={states}")
    rows.append("identical on every model: the SC-for-DRF guarantee, "
                "verified exhaustively")
    emit(benchmark, "DRF program outcome sets across models (Figure 1b)",
         rows)


def test_peterson_sc_dependence(benchmark):
    """Peterson's algorithm: mutual exclusion proven exhaustively under
    SC, violated on every weak model — the canonical example of an
    algorithm whose correctness argument assumes sequential
    consistency, and exactly the kind of program the paper's detector
    exists to flag (it reports the flag/turn races as first)."""
    from repro.machine.models import WEAK_MODEL_NAMES
    from repro.programs.litmus import peterson_program, run_peterson_witness

    def sweep():
        sc = enumerate_outcomes(
            peterson_program(), make_model("SC"), interesting=["overlap"]
        )
        weak = {
            model: run_peterson_witness(make_model(model)).value_of("overlap")
            for model in WEAK_MODEL_NAMES
        }
        return sc, weak

    sc, weak = benchmark(sweep)
    assert sc.values_of("overlap") == {(0,)}
    rows = [
        f"SC: overlap=0 in all executions "
        f"({sc.states_visited} states, exhaustive)",
    ]
    for model, overlap in weak.items():
        assert overlap == 1
        rows.append(f"{model}: mutual exclusion VIOLATED (overlap={overlap})")
    emit(benchmark, "Peterson's algorithm: SC-correct, weak-broken", rows)
