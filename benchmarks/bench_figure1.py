"""F1 — Figure 1 of the paper: the canonical racy (1a) and
data-race-free (1b) executions, detected under every memory model.

Regenerates: execution (a) exhibits the <Write(x),Read(x)> and
<Write(y),Read(y)> data races; execution (b) exhibits none.  Times the
full simulate+detect pipeline for each.
"""

import pytest

from conftest import emit
from repro.core.detector import PostMortemDetector
from repro.machine.models import ALL_MODEL_NAMES, make_model
from repro.machine.simulator import run_program
from repro.programs.figure1 import figure1a_program, figure1b_program

DET = PostMortemDetector()


@pytest.mark.parametrize("model", ALL_MODEL_NAMES)
def test_figure1a_detection(benchmark, model):
    program = figure1a_program()

    def pipeline():
        result = run_program(program, make_model(model), seed=0)
        return DET.analyze_execution(result)

    report = benchmark(pipeline)
    assert not report.race_free
    race = report.reported_races[0]
    rows = [
        f"model={model}: {len(report.data_races)} data race(s) reported",
        f"racing events: {report.trace.label(race.a)}  <->  "
        f"{report.trace.label(race.b)}",
        "locations: "
        + ", ".join(report.trace.addr_name(a) for a in race.locations),
    ]
    emit(benchmark, f"Figure 1a under {model}: data races present", rows)


@pytest.mark.parametrize("model", ALL_MODEL_NAMES)
def test_figure1b_detection(benchmark, model):
    program = figure1b_program()

    def pipeline():
        result = run_program(program, make_model(model), seed=0)
        return DET.analyze_execution(result)

    report = benchmark(pipeline)
    assert report.race_free
    emit(
        benchmark,
        f"Figure 1b under {model}: data-race-free",
        [
            f"model={model}: 0 data races; by Condition 3.4(1) the "
            f"execution was sequentially consistent",
            f"synchronization pairing (Unset -> Test&Set) ordered all "
            f"conflicting accesses ({len(report.trace.sync_events())} "
            f"sync events)",
        ],
    )
