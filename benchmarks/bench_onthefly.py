"""C4 — section 5: post-mortem vs on-the-fly detection.

On-the-fly methods avoid trace files by buffering bounded access
histories, at the cost of missed races.  Regenerates the races-found /
memory-used curve over the history bound, against the post-mortem
detector's complete answer, and times both detectors on the same
operation stream.
"""

import pytest

from conftest import emit
from repro.core.detector import PostMortemDetector
from repro.core.onthefly import OnTheFlyDetector
from repro.core.ophb import find_op_races
from repro.machine.models import make_model
from repro.machine.program import ProgramBuilder
from repro.machine.scheduler import ScriptedScheduler
from repro.machine.simulator import Simulator


def _many_readers_execution(readers=8):
    b = ProgramBuilder()
    x = b.var("x")
    for _ in range(readers):
        with b.thread() as t:
            t.read(x)
    with b.thread() as t:
        t.write(x, 1)
    script = list(range(readers)) + [readers]
    return Simulator(
        b.build(), make_model("SC"),
        scheduler=ScriptedScheduler(script), seed=0,
    ).run()


def test_history_bound_sweep(benchmark):
    result = _many_readers_execution(8)
    ground_truth = len([
        r for r in find_op_races(result.operations) if r.is_data_race
    ])

    def sweep():
        out = {}
        for bound in (1, 2, 4, 8):
            detector = OnTheFlyDetector(
                result.processor_count, reader_history=bound
            )
            detector.process_all(result.operations)
            out[bound] = (len(detector.races), detector.evicted_accesses,
                          detector.memory_footprint)
        return out

    table = benchmark(sweep)
    rows = [f"ground truth (post-mortem): {ground_truth} races"]
    prev_found = -1
    for bound, (found, evicted, footprint) in sorted(table.items()):
        rows.append(
            f"history={bound}: found {found} races, "
            f"{evicted} evictions, {footprint} buffered accesses"
        )
        assert found >= prev_found  # more history never hurts here
        prev_found = found
    assert table[1][0] < ground_truth      # bounded history misses races
    assert table[8][0] == ground_truth     # full history finds all
    emit(benchmark, "Section 5: on-the-fly accuracy vs history bound", rows)


def test_onthefly_runtime(benchmark, figure2_result):
    def run():
        detector = OnTheFlyDetector(figure2_result.processor_count,
                                    reader_history=4)
        detector.process_all(figure2_result.operations)
        return detector

    detector = benchmark(run)
    emit(
        benchmark,
        "On-the-fly pass over Figure 2b execution",
        [f"{len(figure2_result.operations)} ops -> "
         f"{len(detector.races)} races flagged, "
         f"footprint {detector.memory_footprint} accesses "
         f"(no trace file written)"],
    )


def test_postmortem_runtime(benchmark, figure2_result):
    det = PostMortemDetector()
    report = benchmark(lambda: det.analyze_execution(figure2_result))
    emit(
        benchmark,
        "Post-mortem pass over Figure 2b execution",
        [f"{len(figure2_result.operations)} ops -> "
         f"{len(report.data_races)} event races, "
         f"{len(report.first_partitions)} first partition(s) "
         f"(full trace, full accuracy)"],
    )
