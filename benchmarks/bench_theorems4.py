"""T4.x — Theorems 4.1 and 4.2, verified over a workload sweep.

Theorem 4.1: no first partitions containing data races iff the
execution exhibited no data races.  Theorem 4.2: each first partition
containing data races has at least one race belonging to an SCP.
"""

from conftest import emit
from repro.analysis.metrics import op_races_in_scp
from repro.core.detector import PostMortemDetector
from repro.machine.models import make_model
from repro.machine.propagation import StubbornPropagation
from repro.machine.simulator import run_program
from repro.programs.kernels import (
    fanin_barrier_program,
    locked_counter_program,
    racy_counter_program,
)
from repro.programs.random_programs import (
    random_drf_program,
    random_racy_program,
)
from repro.programs.workqueue import buggy_workqueue_program
from repro.trace.build import build_trace, event_of_op

DET = PostMortemDetector()


def _programs():
    return (
        [("locked", locked_counter_program(2, 3), False),
         ("barrier", fanin_barrier_program(2, 2), False),
         ("racy-counter", racy_counter_program(2, 3), True),
         ("workqueue", buggy_workqueue_program(), True)]
        + [(f"drf-{s}", random_drf_program(s), False) for s in range(4)]
        + [(f"racy-{s}", random_racy_program(s, race_prob=0.6), None)
           for s in range(4)]
    )


def test_theorem_41_equivalence(benchmark):
    def sweep():
        agreements = 0
        total = 0
        for i, (name, prog, _expect_racy) in enumerate(_programs()):
            for model in ("SC", "WO", "RCsc"):
                result = run_program(prog, make_model(model), seed=i)
                report = DET.analyze_execution(result)
                total += 1
                assert bool(report.first_partitions) == bool(report.data_races)
                agreements += 1
        return agreements, total

    agreements, total = benchmark(sweep)
    emit(
        benchmark,
        "Theorem 4.1 (first partitions <=> data races)",
        [f"{agreements}/{total} executions: equivalence held"],
    )


def test_theorem_42_scp_membership(benchmark):
    def sweep():
        partitions_checked = 0
        for i, (name, prog, _ignored) in enumerate(_programs()):
            for model in ("WO", "RCsc"):
                result = run_program(
                    prog, make_model(model), seed=i,
                    propagation=StubbornPropagation(),
                )
                trace = build_trace(result)
                report = DET.analyze(trace)
                if report.race_free:
                    continue
                sc_races, _ = op_races_in_scp(result)
                sc_pairs = set()
                for race in sc_races:
                    ea = event_of_op(trace, race.a)
                    eb = event_of_op(trace, race.b)
                    if ea and eb:
                        sc_pairs.add(frozenset((ea, eb)))
                for partition in report.first_partitions:
                    keys = {frozenset((r.a, r.b)) for r in partition.data_races}
                    assert keys & sc_pairs, (name, model)
                    partitions_checked += 1
        return partitions_checked

    checked = benchmark(sweep)
    assert checked > 0
    emit(
        benchmark,
        "Theorem 4.2 (first partitions contain an SCP race)",
        [f"{checked} first partitions checked: every one contained a "
         f"sequentially consistent data race"],
    )
