"""Hunting throughput: serial versus the parallel execution engine.

The hunt's value scales with executions per second (one clean run
proves nothing — §1), so this bench measures the engine's throughput
on the ``racy-counter`` workload at increasing worker counts and
reports the speedup over the serial path.  The >1.5x-at-4-workers
scaling assertion only applies on machines that actually have 4 cores
to scale onto; on smaller machines the numbers are still reported.
"""

import argparse
import json
import os
import statistics
import sys
import tempfile
import time

import pytest

from conftest import emit
from repro.analysis.hunting import hunt_races
from repro.ioutil import atomic_write_json
from repro.machine.models import make_model
from repro.programs.kernels import lock_shadow_program, racy_counter_program
from repro.programs.litmus import store_buffering_program
from repro.programs.workqueue import buggy_workqueue_program

TRIES = 96

# Detector comparison: races found per try, by workload x backend.
# The counts are deterministic (hunts are a pure function of the job
# set), so the quick mode hard-asserts the predictive backends' edge
# and the --compare guard treats any >20% per-try drop as a failure.
DETECTOR_WORKLOADS = [
    ("racy-counter", lambda: racy_counter_program(3, 4)),
    ("workqueue-buggy", buggy_workqueue_program),
    ("lock-shadow", lock_shadow_program),
]
DETECTORS = ("postmortem", "shb", "wcp")
DETECTOR_TRIES = 24

# Pre-overhaul serial hunt throughput on the acceptance workload
# (workqueue-buggy/WO, tries=30), measured at commit 069c0c4.  The
# quick mode reports its speedup against this number.
BASELINE_COMMIT = "069c0c4"
BASELINE_SERIAL_TRIES_PER_SEC = 75.10


def _available_cores() -> int:
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


def _hunt(jobs: int):
    return hunt_races(
        racy_counter_program(4, 8),
        lambda: make_model("WO"),
        tries=TRIES,
        jobs=jobs,
    )


@pytest.mark.parametrize("jobs", [1, 2, 4])
def test_hunt_throughput(benchmark, jobs):
    result = benchmark(lambda: _hunt(jobs))
    emit(
        benchmark,
        f"Hunt throughput (jobs={jobs}, {_available_cores()} core(s))",
        [
            f"{result.tries} executions in {result.elapsed:.3f}s -> "
            f"{result.executions_per_second:.0f} exec/s; "
            f"{result.racy_runs} racy, {result.clean_runs} clean",
        ],
    )


def test_parallel_scaling(benchmark):
    """Serial-vs-parallel scaling table; asserts >1.5x at 4 workers
    when the hardware has >= 4 cores."""
    cores = _available_cores()
    serial = _hunt(1)
    rates = {1: serial.executions_per_second}
    for jobs in (2, 4):
        result = _hunt(jobs)
        assert result.stats() == serial.stats()  # determinism, always
        rates[jobs] = result.executions_per_second
    benchmark(lambda: _hunt(min(4, max(cores, 1))))
    rows = [
        f"jobs={jobs}: {rate:.0f} exec/s "
        f"(speedup {rate / rates[1]:.2f}x)"
        for jobs, rate in sorted(rates.items())
    ]
    rows.append(f"available cores: {cores}")
    emit(benchmark, "Hunt scaling (serial vs parallel)", rows)
    if cores >= 4:
        assert rates[4] > 1.5 * rates[1], (
            f"expected >1.5x at 4 workers on {cores} cores, got "
            f"{rates[4] / rates[1]:.2f}x"
        )


def _workqueue_hunt(jobs: int, trace_cache: bool = True):
    return hunt_races(
        buggy_workqueue_program(),
        lambda: make_model("WO"),
        tries=30,
        jobs=jobs,
        trace_cache=trace_cache,
    )


def _detector_sweep(tries: int = DETECTOR_TRIES) -> dict:
    """Races found per try, for each workload x detector cell."""
    table = {}
    for workload, build in DETECTOR_WORKLOADS:
        row = {}
        for detector in DETECTORS:
            result = hunt_races(
                build(), lambda: make_model("WO"),
                tries=tries, detector=detector,
            )
            row[detector] = {
                "racy_runs": result.racy_runs,
                "certified_races": result.certified_races,
                "certified_per_try": round(
                    result.certified_races / tries, 4
                ),
            }
        table[workload] = row
    return table


@pytest.mark.parametrize("detector", DETECTORS)
def test_detector_hunt_throughput(benchmark, detector):
    """Relative cost of the predictive backends on the acceptance
    workload (SHB pays an extra VC sweep, WCP only pays when it drops
    edges)."""
    result = benchmark(lambda: hunt_races(
        buggy_workqueue_program(), lambda: make_model("WO"),
        tries=30, detector=detector,
    ))
    emit(
        benchmark,
        f"Hunt throughput by detector ({detector})",
        [
            f"{result.tries} executions in {result.elapsed:.3f}s -> "
            f"{result.executions_per_second:.0f} exec/s; "
            f"{result.racy_runs} racy, "
            f"{result.certified_races} certified race(s)",
        ],
    )


def test_detector_races_found_per_try(benchmark):
    """The detector-quality table: certified real races per try.  SHB
    must certify strictly more than the baseline on a buggy workload,
    and WCP must flag schedules the baseline calls clean on the
    lock-shadow kernel."""
    table = benchmark.pedantic(
        _detector_sweep, rounds=1, iterations=1, warmup_rounds=0,
    )
    rows = []
    for workload, row in table.items():
        cells = "  ".join(
            f"{d}={row[d]['certified_per_try']:.3f}" for d in DETECTORS
        )
        rows.append(f"{workload}: certified/try {cells}")
    emit(benchmark, "Races found per try, by detector", rows)
    assert any(
        row["shb"]["certified_races"] > row["postmortem"]["certified_races"]
        for row in table.values()
    )
    shadow = table["lock-shadow"]
    assert shadow["wcp"]["racy_runs"] > shadow["postmortem"]["racy_runs"]


@pytest.mark.parametrize("cache", [True, False], ids=["cache", "no-cache"])
def test_workqueue_hunt_throughput(benchmark, cache):
    """The acceptance workload: serial workqueue-buggy/WO hunt."""
    result = benchmark(lambda: _workqueue_hunt(1, trace_cache=cache))
    emit(
        benchmark,
        f"Workqueue hunt throughput (serial, cache={'on' if cache else 'off'})",
        [
            f"{result.tries} executions in {result.elapsed:.3f}s -> "
            f"{result.executions_per_second:.0f} exec/s; "
            f"{result.trace_cache_hits} trace-cache hit(s); "
            f"baseline {BASELINE_SERIAL_TRIES_PER_SEC:.1f} exec/s "
            f"at {BASELINE_COMMIT}",
        ],
    )


# --- quick mode -------------------------------------------------------
#
# ``PYTHONPATH=src python benchmarks/bench_hunting.py -o BENCH_hunting.json``
# runs a self-contained smoke (no pytest-benchmark) and writes a JSON
# summary: serial tries/sec on the acceptance workload, a
# ``parallel_scaling`` table at 1/2/4/8 workers, the trace-cache hit
# rate, and the speedup over the recorded baseline.  Every rate is the
# median of N repeats after one discarded warmup hunt (the warmup pays
# numpy import + fork start-up), reported with its spread so noisy
# readings are visible instead of silently flattering; derived overhead
# fractions are clamped at zero (a *negative* overhead is measurement
# noise by definition).  CI runs this on every push (``--quick
# --compare BENCH_hunting.json``: fail on >20% serial regression, on a
# 4-worker scaling regression when the hardware can scale, and — with
# ``--check-scaling`` — when 2 workers fail to reach 1.2x serial on a
# multi-core runner; ``--events hunt-events.jsonl``: write an event log
# to upload as an artifact) and uploads the summary.


def _rate_stats(jobs: int, tries: int, repeats: int,
                trace_cache: bool = True, checkpoint=None):
    """Median-of-N throughput after one discarded warmup hunt.

    Returns ``({"rate", "spread_frac", "samples"}, last_result)``:
    ``rate`` is the median tries/sec, ``spread_frac`` the
    (max - min) / median of the counted repeats — the noise figure the
    summary carries so a flaky runner is visible in the artifact."""
    last = None
    samples = []
    for i in range(repeats + 1):
        start = time.perf_counter()
        last = hunt_races(
            buggy_workqueue_program(),
            lambda: make_model("WO"),
            tries=tries,
            jobs=jobs,
            trace_cache=trace_cache,
            checkpoint=checkpoint,
        )
        elapsed = time.perf_counter() - start
        if i == 0:
            continue  # warmup: numpy import, fork start-up, page cache
        samples.append(tries / elapsed if elapsed > 0 else float("inf"))
    rate = statistics.median(samples)
    spread = (max(samples) - min(samples)) / rate if rate else 0.0
    return {
        "rate": rate,
        "spread_frac": round(spread, 4),
        "samples": [round(s, 2) for s in samples],
    }, last


# Robustness-verdict overhead: store-buffering/TSO is the acceptance
# workload (small ops, every try verified, a deterministic robust /
# non-robust mix), so the verified-vs-unverified ratio isolates the
# per-try cost of building po ∪ rf ∪ co ∪ fr and sorting/cycle-finding.
ROBUSTNESS_TRIES = 24


def _robustness_bench(tries: int, repeats: int) -> dict:
    """Median-of-N serial hunt throughput with the robustness verdict
    off and on, plus the (deterministic) verdict mix of the run."""

    def rate(verify: bool):
        samples = []
        last = None
        for i in range(repeats + 1):
            start = time.perf_counter()
            last = hunt_races(
                store_buffering_program(),
                lambda: make_model("TSO"),
                tries=tries,
                jobs=1,
                verify_robustness=verify,
            )
            elapsed = time.perf_counter() - start
            if i == 0:
                continue  # warmup
            samples.append(tries / elapsed if elapsed > 0 else float("inf"))
        med = statistics.median(samples)
        spread = (max(samples) - min(samples)) / med if med else 0.0
        return {
            "rate": med,
            "spread_frac": round(spread, 4),
        }, last

    base_stats, _ = rate(False)
    verified_stats, verified = rate(True)
    assert verified.verified_tries == tries
    assert verified.non_robust_tries >= 1, (
        "store-buffering on TSO lost its non-robust outcomes"
    )
    overhead = max(
        0.0,
        1.0 - verified_stats["rate"] / base_stats["rate"]
        if base_stats["rate"] else 0.0,
    )
    return {
        "workload": "store-buffering/TSO",
        "tries": tries,
        "unverified_tries_per_sec": round(base_stats["rate"], 2),
        "verified_tries_per_sec": round(verified_stats["rate"], 2),
        "verdict_overhead_frac": round(overhead, 4),
        "robust_tries": verified.robust_tries,
        "non_robust_tries": verified.non_robust_tries,
        "soundness": verified.soundness,
        "spread_frac": {
            "unverified": base_stats["spread_frac"],
            "verified": verified_stats["spread_frac"],
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Quick hunt-throughput smoke (writes BENCH_hunting.json)"
    )
    parser.add_argument(
        "-o", "--output", default="BENCH_hunting.json",
        help="path of the JSON summary to write",
    )
    parser.add_argument(
        "--tries", type=int, default=30,
        help="executions per hunt (default matches the baseline run)",
    )
    parser.add_argument(
        "--scaling-tries", type=int, default=120,
        help="executions per hunt for the parallel_scaling table "
             "(larger than --tries so fork/pool start-up amortizes and "
             "the table measures steady-state throughput)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="measurement repeats after one discarded warmup; the "
             "median rate is reported",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI preset: keep the default tries but drop to 2 repeats",
    )
    parser.add_argument(
        "--compare", metavar="BASELINE.json",
        help="compare serial throughput against a committed summary "
             "(e.g. BENCH_hunting.json) and fail on regression",
    )
    parser.add_argument(
        "--max-regression", type=float, default=0.20, metavar="FRAC",
        help="allowed fractional serial-throughput drop vs --compare "
             "(default %(default)s)",
    )
    parser.add_argument(
        "--check-scaling", action="store_true",
        help="fail unless 2 workers reach --scaling-floor x serial "
             "tries/sec (skipped, with a notice, on single-core "
             "machines where parallel speedup is impossible)",
    )
    parser.add_argument(
        "--scaling-floor", type=float, default=1.2, metavar="X",
        help="required 2-worker speedup for --check-scaling "
             "(default %(default)s)",
    )
    parser.add_argument(
        "--events", metavar="FILE", dest="events_path",
        help="also run one untimed hunt with a JSONL event log "
             "written here (the CI artifact)",
    )
    args = parser.parse_args(argv)
    if args.quick:
        args.repeats = min(args.repeats, 2)

    committed = None
    if args.compare:
        # Read before measuring/writing: -o may overwrite the baseline.
        with open(args.compare) as fh:
            committed = json.load(fh)

    cores = _available_cores()
    serial_stats, serial = _rate_stats(1, args.tries, args.repeats)
    serial_rate = serial_stats["rate"]
    # The scaling table runs at its own (larger) tries so the pool's
    # one-time fork start-up amortizes and the rows measure
    # steady-state throughput; speedups are relative to the table's own
    # serial row, measured at the same size.
    scaling_workers = {}
    scaling_spread = {}
    scaling_serial_result = None
    parallel_rate = None
    for workers in (1, 2, 4, 8):
        stats, result = _rate_stats(workers, args.scaling_tries,
                                    args.repeats)
        if workers == 1:
            scaling_serial_result = result
        else:
            # determinism cross-check rides along with the smoke, at
            # every worker count
            assert result.stats() == scaling_serial_result.stats(), (
                f"parallel hunt statistics diverged from serial at "
                f"{workers} workers"
            )
        scaling_workers[str(workers)] = round(stats["rate"], 2)
        scaling_spread[str(workers)] = stats["spread_frac"]
        if workers == 4:
            parallel_rate = stats["rate"]
    scaling_serial_rate = scaling_workers["1"]
    nocache_stats, _ = _rate_stats(
        1, args.tries, args.repeats, trace_cache=False
    )
    nocache_rate = nocache_stats["rate"]
    # Checkpoint overhead guard: the default interval (100) means a
    # 30-try hunt pays only the final flush, so enabling checkpointing
    # must cost next to nothing; the overhead number is reported (and
    # uploaded by CI) rather than hard-asserted — wall-clock ratios on
    # shared runners are too noisy for a sub-2% assertion.  Clamped at
    # zero: "checkpointing made the hunt faster" is noise, and letting
    # it go negative makes downstream guards flaky.
    with tempfile.TemporaryDirectory() as ckpt_dir:
        ckpt_stats, _ = _rate_stats(
            1, args.tries, args.repeats,
            checkpoint=os.path.join(ckpt_dir, "bench.ckpt"),
        )
    checkpointed_rate = ckpt_stats["rate"]
    checkpoint_overhead = max(
        0.0, 1.0 - checkpointed_rate / serial_rate if serial_rate else 0.0
    )

    detector_table = _detector_sweep()
    robustness = _robustness_bench(ROBUSTNESS_TRIES, args.repeats)

    payload = {
        "workload": "workqueue-buggy/WO",
        "tries": args.tries,
        "repeats": args.repeats,
        "measurement": {
            "warmup_hunts": 1,
            "stat": "median",
            "spread_frac": {
                "serial": serial_stats["spread_frac"],
                "no_cache": nocache_stats["spread_frac"],
                "checkpointed": ckpt_stats["spread_frac"],
            },
        },
        "serial_tries_per_sec": round(serial_rate, 2),
        "parallel4_tries_per_sec": round(parallel_rate, 2),
        "serial_no_cache_tries_per_sec": round(nocache_rate, 2),
        "serial_checkpointed_tries_per_sec": round(checkpointed_rate, 2),
        "checkpoint_overhead_frac": round(checkpoint_overhead, 4),
        "parallel_scaling": {
            "cores": cores,
            "tries": args.scaling_tries,
            "workers": scaling_workers,
            "speedup": {
                w: (round(rate / scaling_serial_rate, 2)
                    if scaling_serial_rate else 0.0)
                for w, rate in scaling_workers.items()
            },
            "spread_frac": scaling_spread,
        },
        "trace_cache_hits": serial.trace_cache_hits,
        "trace_cache_hit_rate": round(
            serial.trace_cache_hits / args.tries, 3
        ),
        "racy_runs": serial.racy_runs,
        "clean_runs": serial.clean_runs,
        "baseline_commit": BASELINE_COMMIT,
        "baseline_serial_tries_per_sec": BASELINE_SERIAL_TRIES_PER_SEC,
        "serial_speedup_vs_baseline": round(
            serial_rate / BASELINE_SERIAL_TRIES_PER_SEC, 2
        ),
        "detector_tries": DETECTOR_TRIES,
        "detectors": detector_table,
        "bench_robustness": robustness,
    }
    # acceptance: SHB's per-race certificates beat the baseline's
    # one-per-partition guarantee on at least one buggy workload
    assert any(
        row["shb"]["certified_races"] > row["postmortem"]["certified_races"]
        for row in detector_table.values()
    ), "SHB no longer certifies more races than the baseline"

    # merge into the committed summary without clobbering sections other
    # benches own (bench_traces.py keeps trace_formats there)
    summary = {}
    try:
        with open(args.output) as fh:
            summary = json.load(fh)
    except (OSError, ValueError):
        summary = {}
    summary.update(payload)
    atomic_write_json(args.output, summary)

    print(f"workqueue-buggy/WO, tries={args.tries} "
          f"(median of {args.repeats} after 1 warmup, {cores} core(s)):")
    print(f"  serial      {serial_rate:8.2f} tries/sec "
          f"±{serial_stats['spread_frac']:.1%} "
          f"({payload['serial_speedup_vs_baseline']:.2f}x baseline "
          f"{BASELINE_SERIAL_TRIES_PER_SEC:.2f} at {BASELINE_COMMIT})")
    print(f"  no cache    {nocache_rate:8.2f} tries/sec")
    print(f"  checkpoint  {checkpointed_rate:8.2f} tries/sec "
          f"({checkpoint_overhead:.1%} overhead)")
    print(f"scaling (tries={args.scaling_tries}):")
    for w in ("1", "2", "4", "8"):
        print(f"  jobs={w:<2}     {scaling_workers[w]:8.2f} tries/sec "
              f"(speedup {payload['parallel_scaling']['speedup'][w]:.2f}x, "
              f"±{scaling_spread[w]:.1%})")
    print(f"  cache hits  {serial.trace_cache_hits}/{args.tries} "
          f"({payload['trace_cache_hit_rate']:.0%})")
    print(f"races found per try (certified, {DETECTOR_TRIES} tries):")
    for workload, row in detector_table.items():
        cells = "  ".join(
            f"{d}={row[d]['certified_per_try']:.3f}" for d in DETECTORS
        )
        print(f"  {workload:16s} {cells}")
    print(
        f"robustness verdicts ({robustness['workload']}, "
        f"tries={robustness['tries']}): "
        f"verified {robustness['verified_tries_per_sec']:.2f} vs "
        f"unverified {robustness['unverified_tries_per_sec']:.2f} "
        f"tries/sec ({robustness['verdict_overhead_frac']:.1%} overhead; "
        f"{robustness['robust_tries']} robust / "
        f"{robustness['non_robust_tries']} non-robust)"
    )
    print(f"wrote {args.output}")

    if args.events_path:
        from repro.obs.events import HuntEventLog
        log = HuntEventLog(args.events_path, meta={
            "workload": "workqueue-buggy", "model": "WO",
            "tries": args.tries, "jobs": 1, "source": "bench_hunting",
        })
        bench_run = hunt_races(
            buggy_workqueue_program(),
            lambda: make_model("WO"),
            tries=args.tries,
            jobs=1,
            on_outcome=log.on_outcome,
        )
        log.write_summary({
            "tries": bench_run.tries,
            "racy_runs": bench_run.racy_runs,
            "elapsed_sec": round(bench_run.elapsed, 6),
            "executions_per_sec": round(
                bench_run.executions_per_second, 1
            ),
        })
        log.close()
        print(f"wrote {args.events_path} ({bench_run.tries} try records)")

    if committed is not None:
        committed_rate = committed["serial_tries_per_sec"]
        floor = committed_rate * (1.0 - args.max_regression)
        verdict = "OK" if serial_rate >= floor else "REGRESSION"
        print(
            f"regression guard: serial {serial_rate:.2f} vs committed "
            f"{committed_rate:.2f} tries/sec "
            f"(floor {floor:.2f} at -{args.max_regression:.0%}): {verdict}"
        )
        if serial_rate < floor:
            print(
                f"FAIL: serial throughput regressed "
                f"{1 - serial_rate / committed_rate:.1%} "
                f"(> {args.max_regression:.0%} allowed)",
                file=sys.stderr,
            )
            return 1
        # 4-worker scaling guard: only meaningful when both the
        # committed row and this machine had >= 4 cores to scale onto
        # (a 1-core container cannot regress what it could never do).
        committed_scaling = committed.get("parallel_scaling") or {}
        committed_p4 = (committed_scaling.get("workers") or {}).get("4")
        committed_cores = committed_scaling.get("cores", 0)
        if committed_p4 and cores >= 4 and committed_cores >= 4:
            p4_floor = committed_p4 * (1.0 - args.max_regression)
            verdict = "OK" if parallel_rate >= p4_floor else "REGRESSION"
            print(
                f"scaling guard: jobs=4 {parallel_rate:.2f} vs committed "
                f"{committed_p4:.2f} tries/sec (floor {p4_floor:.2f}): "
                f"{verdict}"
            )
            if parallel_rate < p4_floor:
                print(
                    f"FAIL: 4-worker throughput regressed "
                    f"{1 - parallel_rate / committed_p4:.1%} "
                    f"(> {args.max_regression:.0%} allowed)",
                    file=sys.stderr,
                )
                return 1
        elif committed_p4:
            print(
                f"scaling guard: skipped (needs >= 4 cores here and in "
                f"the committed run; have {cores}, committed "
                f"{committed_cores})"
            )
        # Detector-quality guard: certified races per try are
        # deterministic counts, so any >20% drop against the committed
        # table is a behavior change, not noise.  Workloads/detectors
        # absent from the committed summary are new rows and pass.
        failed = False
        for workload, row in (committed.get("detectors") or {}).items():
            for det, cell in row.items():
                now = (
                    detector_table.get(workload, {})
                    .get(det, {})
                    .get("certified_per_try")
                )
                if now is None:
                    continue
                was = cell["certified_per_try"]
                if was > 0 and now < was * (1.0 - args.max_regression):
                    print(
                        f"FAIL: {workload}/{det} certified races per "
                        f"try dropped {1 - now / was:.1%} "
                        f"({was:.3f} -> {now:.3f}, "
                        f"> {args.max_regression:.0%} allowed)",
                        file=sys.stderr,
                    )
                    failed = True
        if failed:
            return 1
        # Robustness guard: verified throughput must not regress, and
        # the verdict mix is deterministic — any drift in the robust /
        # non-robust split is a behavior change, not noise.  A missing
        # committed section is a new row and passes.
        committed_rob = committed.get("bench_robustness") or {}
        committed_verified = committed_rob.get("verified_tries_per_sec")
        if committed_verified and \
                committed_rob.get("tries") == robustness["tries"]:
            rob_floor = committed_verified * (1.0 - args.max_regression)
            now_verified = robustness["verified_tries_per_sec"]
            verdict = "OK" if now_verified >= rob_floor else "REGRESSION"
            print(
                f"robustness guard: verified {now_verified:.2f} vs "
                f"committed {committed_verified:.2f} tries/sec "
                f"(floor {rob_floor:.2f}): {verdict}"
            )
            if now_verified < rob_floor:
                print(
                    f"FAIL: verified-hunt throughput regressed "
                    f"{1 - now_verified / committed_verified:.1%} "
                    f"(> {args.max_regression:.0%} allowed)",
                    file=sys.stderr,
                )
                return 1
            for key in ("robust_tries", "non_robust_tries", "soundness"):
                if committed_rob.get(key) != robustness[key]:
                    print(
                        f"FAIL: robustness verdict mix changed: {key} "
                        f"{committed_rob.get(key)!r} -> "
                        f"{robustness[key]!r}",
                        file=sys.stderr,
                    )
                    return 1

    if args.check_scaling:
        # The CI scaling smoke: 2 workers must beat serial by the
        # floor.  Core-gated — on a single-core machine a parallel
        # speedup is physically impossible, so the check reports and
        # skips instead of failing on hardware it cannot measure.
        p2 = scaling_workers["2"]
        if cores < 2:
            print(
                f"scaling check: skipped ({cores} core(s); 2-worker "
                f"speedup needs multi-core hardware) — jobs=2 "
                f"{p2:.2f} vs serial {scaling_serial_rate:.2f} tries/sec"
            )
        else:
            required = scaling_serial_rate * args.scaling_floor
            verdict = "OK" if p2 >= required else "FAIL"
            print(
                f"scaling check: jobs=2 {p2:.2f} vs serial "
                f"{scaling_serial_rate:.2f} tries/sec on {cores} cores "
                f"(floor {args.scaling_floor:.2f}x = {required:.2f}): "
                f"{verdict}"
            )
            if p2 < required:
                print(
                    f"FAIL: 2-worker throughput {p2:.2f} below "
                    f"{args.scaling_floor:.2f}x serial "
                    f"({required:.2f} tries/sec)",
                    file=sys.stderr,
                )
                return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
