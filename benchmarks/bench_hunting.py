"""Hunting throughput: serial versus the parallel execution engine.

The hunt's value scales with executions per second (one clean run
proves nothing — §1), so this bench measures the engine's throughput
on the ``racy-counter`` workload at increasing worker counts and
reports the speedup over the serial path.  The >1.5x-at-4-workers
scaling assertion only applies on machines that actually have 4 cores
to scale onto; on smaller machines the numbers are still reported.
"""

import argparse
import json
import os
import sys
import tempfile
import time

import pytest

from conftest import emit
from repro.analysis.hunting import hunt_races
from repro.ioutil import atomic_write_json
from repro.machine.models import make_model
from repro.programs.kernels import lock_shadow_program, racy_counter_program
from repro.programs.workqueue import buggy_workqueue_program

TRIES = 96

# Detector comparison: races found per try, by workload x backend.
# The counts are deterministic (hunts are a pure function of the job
# set), so the quick mode hard-asserts the predictive backends' edge
# and the --compare guard treats any >20% per-try drop as a failure.
DETECTOR_WORKLOADS = [
    ("racy-counter", lambda: racy_counter_program(3, 4)),
    ("workqueue-buggy", buggy_workqueue_program),
    ("lock-shadow", lock_shadow_program),
]
DETECTORS = ("postmortem", "shb", "wcp")
DETECTOR_TRIES = 24

# Pre-overhaul serial hunt throughput on the acceptance workload
# (workqueue-buggy/WO, tries=30), measured at commit 069c0c4.  The
# quick mode reports its speedup against this number.
BASELINE_COMMIT = "069c0c4"
BASELINE_SERIAL_TRIES_PER_SEC = 75.10


def _available_cores() -> int:
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


def _hunt(jobs: int):
    return hunt_races(
        racy_counter_program(4, 8),
        lambda: make_model("WO"),
        tries=TRIES,
        jobs=jobs,
    )


@pytest.mark.parametrize("jobs", [1, 2, 4])
def test_hunt_throughput(benchmark, jobs):
    result = benchmark(lambda: _hunt(jobs))
    emit(
        benchmark,
        f"Hunt throughput (jobs={jobs}, {_available_cores()} core(s))",
        [
            f"{result.tries} executions in {result.elapsed:.3f}s -> "
            f"{result.executions_per_second:.0f} exec/s; "
            f"{result.racy_runs} racy, {result.clean_runs} clean",
        ],
    )


def test_parallel_scaling(benchmark):
    """Serial-vs-parallel scaling table; asserts >1.5x at 4 workers
    when the hardware has >= 4 cores."""
    cores = _available_cores()
    serial = _hunt(1)
    rates = {1: serial.executions_per_second}
    for jobs in (2, 4):
        result = _hunt(jobs)
        assert result.stats() == serial.stats()  # determinism, always
        rates[jobs] = result.executions_per_second
    benchmark(lambda: _hunt(min(4, max(cores, 1))))
    rows = [
        f"jobs={jobs}: {rate:.0f} exec/s "
        f"(speedup {rate / rates[1]:.2f}x)"
        for jobs, rate in sorted(rates.items())
    ]
    rows.append(f"available cores: {cores}")
    emit(benchmark, "Hunt scaling (serial vs parallel)", rows)
    if cores >= 4:
        assert rates[4] > 1.5 * rates[1], (
            f"expected >1.5x at 4 workers on {cores} cores, got "
            f"{rates[4] / rates[1]:.2f}x"
        )


def _workqueue_hunt(jobs: int, trace_cache: bool = True):
    return hunt_races(
        buggy_workqueue_program(),
        lambda: make_model("WO"),
        tries=30,
        jobs=jobs,
        trace_cache=trace_cache,
    )


def _detector_sweep(tries: int = DETECTOR_TRIES) -> dict:
    """Races found per try, for each workload x detector cell."""
    table = {}
    for workload, build in DETECTOR_WORKLOADS:
        row = {}
        for detector in DETECTORS:
            result = hunt_races(
                build(), lambda: make_model("WO"),
                tries=tries, detector=detector,
            )
            row[detector] = {
                "racy_runs": result.racy_runs,
                "certified_races": result.certified_races,
                "certified_per_try": round(
                    result.certified_races / tries, 4
                ),
            }
        table[workload] = row
    return table


@pytest.mark.parametrize("detector", DETECTORS)
def test_detector_hunt_throughput(benchmark, detector):
    """Relative cost of the predictive backends on the acceptance
    workload (SHB pays an extra VC sweep, WCP only pays when it drops
    edges)."""
    result = benchmark(lambda: hunt_races(
        buggy_workqueue_program(), lambda: make_model("WO"),
        tries=30, detector=detector,
    ))
    emit(
        benchmark,
        f"Hunt throughput by detector ({detector})",
        [
            f"{result.tries} executions in {result.elapsed:.3f}s -> "
            f"{result.executions_per_second:.0f} exec/s; "
            f"{result.racy_runs} racy, "
            f"{result.certified_races} certified race(s)",
        ],
    )


def test_detector_races_found_per_try(benchmark):
    """The detector-quality table: certified real races per try.  SHB
    must certify strictly more than the baseline on a buggy workload,
    and WCP must flag schedules the baseline calls clean on the
    lock-shadow kernel."""
    table = benchmark.pedantic(
        _detector_sweep, rounds=1, iterations=1, warmup_rounds=0,
    )
    rows = []
    for workload, row in table.items():
        cells = "  ".join(
            f"{d}={row[d]['certified_per_try']:.3f}" for d in DETECTORS
        )
        rows.append(f"{workload}: certified/try {cells}")
    emit(benchmark, "Races found per try, by detector", rows)
    assert any(
        row["shb"]["certified_races"] > row["postmortem"]["certified_races"]
        for row in table.values()
    )
    shadow = table["lock-shadow"]
    assert shadow["wcp"]["racy_runs"] > shadow["postmortem"]["racy_runs"]


@pytest.mark.parametrize("cache", [True, False], ids=["cache", "no-cache"])
def test_workqueue_hunt_throughput(benchmark, cache):
    """The acceptance workload: serial workqueue-buggy/WO hunt."""
    result = benchmark(lambda: _workqueue_hunt(1, trace_cache=cache))
    emit(
        benchmark,
        f"Workqueue hunt throughput (serial, cache={'on' if cache else 'off'})",
        [
            f"{result.tries} executions in {result.elapsed:.3f}s -> "
            f"{result.executions_per_second:.0f} exec/s; "
            f"{result.trace_cache_hits} trace-cache hit(s); "
            f"baseline {BASELINE_SERIAL_TRIES_PER_SEC:.1f} exec/s "
            f"at {BASELINE_COMMIT}",
        ],
    )


# --- quick mode -------------------------------------------------------
#
# ``PYTHONPATH=src python benchmarks/bench_hunting.py -o BENCH_hunting.json``
# runs a self-contained smoke (no pytest-benchmark) and writes a JSON
# summary: serial and 4-worker tries/sec on the acceptance workload,
# the trace-cache hit rate, and the speedup over the recorded baseline.
# CI runs this on every push (``--quick --compare BENCH_hunting.json``:
# fail on >20% serial regression against the committed numbers,
# ``--events hunt-events.jsonl``: write an event log to upload as an
# artifact) and uploads the summary.


def _best_rate(jobs: int, tries: int, repeats: int, trace_cache: bool = True,
               checkpoint=None):
    """Best-of-N throughput measurement (first iteration pays numpy /
    fork warmup; the max is the stable figure)."""
    best = None
    last = None
    for _ in range(repeats):
        start = time.perf_counter()
        last = hunt_races(
            buggy_workqueue_program(),
            lambda: make_model("WO"),
            tries=tries,
            jobs=jobs,
            trace_cache=trace_cache,
            checkpoint=checkpoint,
        )
        elapsed = time.perf_counter() - start
        rate = tries / elapsed if elapsed > 0 else float("inf")
        best = rate if best is None else max(best, rate)
    return best, last


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Quick hunt-throughput smoke (writes BENCH_hunting.json)"
    )
    parser.add_argument(
        "-o", "--output", default="BENCH_hunting.json",
        help="path of the JSON summary to write",
    )
    parser.add_argument(
        "--tries", type=int, default=30,
        help="executions per hunt (default matches the baseline run)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="measurement repeats; the best rate is reported",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI preset: keep the default tries but drop to 2 repeats",
    )
    parser.add_argument(
        "--compare", metavar="BASELINE.json",
        help="compare serial throughput against a committed summary "
             "(e.g. BENCH_hunting.json) and fail on regression",
    )
    parser.add_argument(
        "--max-regression", type=float, default=0.20, metavar="FRAC",
        help="allowed fractional serial-throughput drop vs --compare "
             "(default %(default)s)",
    )
    parser.add_argument(
        "--events", metavar="FILE", dest="events_path",
        help="also run one untimed hunt with a JSONL event log "
             "written here (the CI artifact)",
    )
    args = parser.parse_args(argv)
    if args.quick:
        args.repeats = min(args.repeats, 2)

    committed = None
    if args.compare:
        # Read before measuring/writing: -o may overwrite the baseline.
        with open(args.compare) as fh:
            committed = json.load(fh)

    serial_rate, serial = _best_rate(1, args.tries, args.repeats)
    parallel_rate, parallel_result = _best_rate(4, args.tries, args.repeats)
    nocache_rate, _ = _best_rate(1, args.tries, args.repeats, trace_cache=False)
    # Checkpoint overhead guard: the default interval (100) means a
    # 30-try hunt pays only the final flush, so enabling checkpointing
    # must cost next to nothing; the overhead number is reported (and
    # uploaded by CI) rather than hard-asserted — wall-clock ratios on
    # shared runners are too noisy for a sub-2% assertion.
    with tempfile.TemporaryDirectory() as ckpt_dir:
        checkpointed_rate, _ = _best_rate(
            1, args.tries, args.repeats,
            checkpoint=os.path.join(ckpt_dir, "bench.ckpt"),
        )
    checkpoint_overhead = (
        1.0 - checkpointed_rate / serial_rate if serial_rate else 0.0
    )

    detector_table = _detector_sweep()

    payload = {
        "workload": "workqueue-buggy/WO",
        "tries": args.tries,
        "repeats": args.repeats,
        "serial_tries_per_sec": round(serial_rate, 2),
        "parallel4_tries_per_sec": round(parallel_rate, 2),
        "serial_no_cache_tries_per_sec": round(nocache_rate, 2),
        "serial_checkpointed_tries_per_sec": round(checkpointed_rate, 2),
        "checkpoint_overhead_frac": round(checkpoint_overhead, 4),
        "trace_cache_hits": serial.trace_cache_hits,
        "trace_cache_hit_rate": round(
            serial.trace_cache_hits / args.tries, 3
        ),
        "racy_runs": serial.racy_runs,
        "clean_runs": serial.clean_runs,
        "baseline_commit": BASELINE_COMMIT,
        "baseline_serial_tries_per_sec": BASELINE_SERIAL_TRIES_PER_SEC,
        "serial_speedup_vs_baseline": round(
            serial_rate / BASELINE_SERIAL_TRIES_PER_SEC, 2
        ),
        "detector_tries": DETECTOR_TRIES,
        "detectors": detector_table,
    }
    # determinism cross-check rides along with the smoke
    assert parallel_result.stats() == serial.stats(), (
        "parallel hunt statistics diverged from serial"
    )
    # acceptance: SHB's per-race certificates beat the baseline's
    # one-per-partition guarantee on at least one buggy workload
    assert any(
        row["shb"]["certified_races"] > row["postmortem"]["certified_races"]
        for row in detector_table.values()
    ), "SHB no longer certifies more races than the baseline"

    atomic_write_json(args.output, payload)

    print(f"workqueue-buggy/WO, tries={args.tries}:")
    print(f"  serial      {serial_rate:8.2f} tries/sec "
          f"({payload['serial_speedup_vs_baseline']:.2f}x baseline "
          f"{BASELINE_SERIAL_TRIES_PER_SEC:.2f} at {BASELINE_COMMIT})")
    print(f"  no cache    {nocache_rate:8.2f} tries/sec")
    print(f"  checkpoint  {checkpointed_rate:8.2f} tries/sec "
          f"({checkpoint_overhead:+.1%} overhead)")
    print(f"  jobs=4      {parallel_rate:8.2f} tries/sec")
    print(f"  cache hits  {serial.trace_cache_hits}/{args.tries} "
          f"({payload['trace_cache_hit_rate']:.0%})")
    print(f"races found per try (certified, {DETECTOR_TRIES} tries):")
    for workload, row in detector_table.items():
        cells = "  ".join(
            f"{d}={row[d]['certified_per_try']:.3f}" for d in DETECTORS
        )
        print(f"  {workload:16s} {cells}")
    print(f"wrote {args.output}")

    if args.events_path:
        from repro.obs.events import HuntEventLog
        log = HuntEventLog(args.events_path, meta={
            "workload": "workqueue-buggy", "model": "WO",
            "tries": args.tries, "jobs": 1, "source": "bench_hunting",
        })
        bench_run = hunt_races(
            buggy_workqueue_program(),
            lambda: make_model("WO"),
            tries=args.tries,
            jobs=1,
            on_outcome=log.on_outcome,
        )
        log.write_summary({
            "tries": bench_run.tries,
            "racy_runs": bench_run.racy_runs,
            "elapsed_sec": round(bench_run.elapsed, 6),
            "executions_per_sec": round(
                bench_run.executions_per_second, 1
            ),
        })
        log.close()
        print(f"wrote {args.events_path} ({bench_run.tries} try records)")

    if committed is not None:
        committed_rate = committed["serial_tries_per_sec"]
        floor = committed_rate * (1.0 - args.max_regression)
        verdict = "OK" if serial_rate >= floor else "REGRESSION"
        print(
            f"regression guard: serial {serial_rate:.2f} vs committed "
            f"{committed_rate:.2f} tries/sec "
            f"(floor {floor:.2f} at -{args.max_regression:.0%}): {verdict}"
        )
        if serial_rate < floor:
            print(
                f"FAIL: serial throughput regressed "
                f"{1 - serial_rate / committed_rate:.1%} "
                f"(> {args.max_regression:.0%} allowed)",
                file=sys.stderr,
            )
            return 1
        # Detector-quality guard: certified races per try are
        # deterministic counts, so any >20% drop against the committed
        # table is a behavior change, not noise.  Workloads/detectors
        # absent from the committed summary are new rows and pass.
        failed = False
        for workload, row in (committed.get("detectors") or {}).items():
            for det, cell in row.items():
                now = (
                    detector_table.get(workload, {})
                    .get(det, {})
                    .get("certified_per_try")
                )
                if now is None:
                    continue
                was = cell["certified_per_try"]
                if was > 0 and now < was * (1.0 - args.max_regression):
                    print(
                        f"FAIL: {workload}/{det} certified races per "
                        f"try dropped {1 - now / was:.1%} "
                        f"({was:.3f} -> {now:.3f}, "
                        f"> {args.max_regression:.0%} allowed)",
                        file=sys.stderr,
                    )
                    failed = True
        if failed:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
