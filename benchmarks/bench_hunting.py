"""Hunting throughput: serial versus the parallel execution engine.

The hunt's value scales with executions per second (one clean run
proves nothing — §1), so this bench measures the engine's throughput
on the ``racy-counter`` workload at increasing worker counts and
reports the speedup over the serial path.  The >1.5x-at-4-workers
scaling assertion only applies on machines that actually have 4 cores
to scale onto; on smaller machines the numbers are still reported.
"""

import os

import pytest

from conftest import emit
from repro.analysis.hunting import hunt_races
from repro.machine.models import make_model
from repro.programs.kernels import racy_counter_program

TRIES = 96


def _available_cores() -> int:
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


def _hunt(jobs: int):
    return hunt_races(
        racy_counter_program(4, 8),
        lambda: make_model("WO"),
        tries=TRIES,
        jobs=jobs,
    )


@pytest.mark.parametrize("jobs", [1, 2, 4])
def test_hunt_throughput(benchmark, jobs):
    result = benchmark(lambda: _hunt(jobs))
    emit(
        benchmark,
        f"Hunt throughput (jobs={jobs}, {_available_cores()} core(s))",
        [
            f"{result.tries} executions in {result.elapsed:.3f}s -> "
            f"{result.executions_per_second:.0f} exec/s; "
            f"{result.racy_runs} racy, {result.clean_runs} clean",
        ],
    )


def test_parallel_scaling(benchmark):
    """Serial-vs-parallel scaling table; asserts >1.5x at 4 workers
    when the hardware has >= 4 cores."""
    cores = _available_cores()
    serial = _hunt(1)
    rates = {1: serial.executions_per_second}
    for jobs in (2, 4):
        result = _hunt(jobs)
        assert result.stats() == serial.stats()  # determinism, always
        rates[jobs] = result.executions_per_second
    benchmark(lambda: _hunt(min(4, max(cores, 1))))
    rows = [
        f"jobs={jobs}: {rate:.0f} exec/s "
        f"(speedup {rate / rates[1]:.2f}x)"
        for jobs, rate in sorted(rates.items())
    ]
    rows.append(f"available cores: {cores}")
    emit(benchmark, "Hunt scaling (serial vs parallel)", rows)
    if cores >= 4:
        assert rates[4] > 1.5 * rates[1], (
            f"expected >1.5x at 4 workers on {cores} cores, got "
            f"{rates[4] / rates[1]:.2f}x"
        )
