"""C7 — Definition 2.4 decided exactly: data-race-freedom is a property
of *all* sequentially consistent executions, and the weak models'
guarantee is conditioned on it.  This bench times the exhaustive SC
exploration on the canonical programs and regenerates the verdict
table, including the search sizes.
"""

import pytest

from conftest import emit
from repro.analysis.exhaustive import explore_program
from repro.programs.figure1 import figure1a_program, figure1b_program
from repro.programs.kernels import (
    locked_counter_program,
    producer_consumer_program,
    racy_counter_program,
)
from repro.programs.litmus import (
    locked_mutual_exclusion_program,
    store_buffering_program,
)

CASES = {
    "figure1a": (figure1a_program, False),
    "figure1b": (figure1b_program, True),
    "store-buffering": (store_buffering_program, False),
    "locked-mutex": (locked_mutual_exclusion_program, True),
    "racy-counter": (lambda: racy_counter_program(2, 1), False),
    "locked-counter": (lambda: locked_counter_program(2, 2), True),
    "producer-consumer": (lambda: producer_consumer_program(2), True),
}


@pytest.mark.parametrize("name", sorted(CASES))
def test_exhaustive_drf_decision(benchmark, name):
    make_prog, expect_drf = CASES[name]
    program = make_prog()
    result = benchmark(lambda: explore_program(program))
    assert result.program_is_data_race_free == expect_drf
    verdict = "DRF" if result.program_is_data_race_free else "NOT DRF"
    rows = [
        f"{name}: {verdict} - {result.executions_explored} complete "
        f"executions, {result.states_visited} states",
    ]
    if result.racing_schedule is not None:
        rows.append(f"witness schedule: {result.racing_schedule}")
    emit(benchmark, f"Definition 2.4 decision for {name}", rows)


def test_exploration_summary(benchmark):
    def sweep():
        rows = []
        for name, (make_prog, expect) in sorted(CASES.items()):
            res = explore_program(make_prog())
            assert res.program_is_data_race_free == expect
            rows.append((name, res.program_is_data_race_free,
                         res.executions_explored, res.states_visited))
        return rows

    rows = benchmark(sweep)
    table = [f"{'program':20s} {'DRF':>5s} {'executions':>11s} {'states':>8s}"]
    for name, drf, execs, states in rows:
        table.append(f"{name:20s} {str(drf):>5s} {execs:11d} {states:8d}")
    emit(benchmark, "Exhaustive SC exploration summary", table)
