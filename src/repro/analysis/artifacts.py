"""Artifact analysis for sequentially consistent systems ([NeM91]).

Section 5 of the paper rests on an analogy: on SC systems, a data race
can be an *artifact* — it "occurs only because a previous data race
left the program's data in an inconsistent state", so it is not a
direct manifestation of a bug.  The accurate SC-system methods
([NeM90], [NeM91]) therefore "also order partitions of data races to
enable detection of the non-artifact races", with the same two
limitations the paper's weak-system method has.

Machinery-wise this *is* the partitioning of section 4.2 — the analogy
is the point — but the interpretation differs: on SC hardware every
race in the execution really happened; the partition order separates
the races that cannot be blamed on an earlier race (non-artifact
candidates) from those that might be downstream damage.  This module
packages that SC-side reading, so the analogy in section 5 can be
demonstrated rather than asserted: run the same buggy program on SC and
on a weak model, and the first partitions coincide.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..core.partitions import RacePartition
from ..core.races import EventRace
from ..core.report import RaceReport
from ..machine.simulator import ExecutionResult
from ..trace.build import Trace


@dataclass
class ArtifactReport:
    """Races of an SC execution, split non-artifact-candidates vs
    possible artifacts."""

    report: RaceReport

    @property
    def trace(self) -> Trace:
        return self.report.trace

    @property
    def non_artifact_partitions(self) -> List[RacePartition]:
        """First partitions: each contains at least one race that is
        not an artifact of any other race."""
        return self.report.first_partitions

    @property
    def non_artifact_candidates(self) -> List[EventRace]:
        return self.report.reported_races

    @property
    def possible_artifacts(self) -> List[EventRace]:
        """Races affected by earlier races — possibly just downstream
        damage from the real bug."""
        return self.report.suppressed_races

    def format(self) -> str:
        lines = [
            f"Artifact analysis (SC execution, "
            f"{len(self.report.data_races)} data races)"
        ]
        if not self.report.data_races:
            lines.append("  no data races: nothing to classify")
            return "\n".join(lines)
        lines.append(
            f"  non-artifact candidates ({len(self.non_artifact_candidates)}):"
        )
        for race in self.non_artifact_candidates:
            lines.append(f"    {race.describe(self.trace)}")
        lines.append(
            f"  possible artifacts ({len(self.possible_artifacts)}):"
        )
        for race in self.possible_artifacts:
            lines.append(f"    {race.describe(self.trace)}")
        return "\n".join(lines)


def analyze_artifacts(execution_or_trace) -> ArtifactReport:
    """Run the [NeM91]-style artifact partitioning on an SC execution.

    Accepts an :class:`ExecutionResult` or a :class:`Trace`.  (Nothing
    enforces that the input came from SC hardware — on a weak trace the
    result is exactly the weak-system report, which is the section 5
    analogy in code form.)
    """
    if not isinstance(execution_or_trace, (ExecutionResult, Trace)):
        raise TypeError(
            f"expected ExecutionResult or Trace, "
            f"got {type(execution_or_trace).__name__}"
        )
    from ..api import detect

    return ArtifactReport(report=detect(execution_or_trace))
