"""The naive baseline: report every race of the weak execution.

Section 3.1: "naively using the dynamic techniques would report all of
these data races" — including the non-sequentially-consistent ones that
could never occur on SC hardware and only confuse the programmer.  This
detector is the paper's strawman, implemented so the accuracy benches
can quantify how much the first-partition method narrows the report.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Dict, List

from .. import obs
from ..core.hb1 import HappensBefore1
from ..core.races import EventRace, find_races
from ..core.report import REPORT_FORMAT, _race_from_record, _race_record
from ..machine.simulator import ExecutionResult
from ..trace.build import Trace, build_trace


@dataclass
class NaiveReport:
    """Everything the naive detector says: all data races, unfiltered."""

    trace: Trace
    races: List[EventRace]

    @property
    def data_races(self) -> List[EventRace]:
        return [race for race in self.races if race.is_data_race]

    @property
    def race_free(self) -> bool:
        return not self.data_races

    def format(self) -> str:
        lines = [
            f"Naive race report ({self.trace.model_name} execution): "
            f"{len(self.data_races)} data race(s)"
        ]
        for race in self.data_races:
            lines.append(f"  {race.describe(self.trace)}")
        return "\n".join(lines)

    # -- shared report protocol ----------------------------------------
    def to_json(self) -> Dict:
        from ..trace.tracefile import trace_to_json

        return {
            "kind": "naive",
            "format": REPORT_FORMAT,
            "race_free": self.race_free,
            "trace": trace_to_json(self.trace),
            "races": [_race_record(race) for race in self.races],
        }

    @classmethod
    def from_json(cls, payload: Dict) -> "NaiveReport":
        from ..trace.tracefile import trace_from_json

        if payload.get("kind") != "naive":
            raise ValueError(
                f"expected a naive report payload, "
                f"got kind {payload.get('kind')!r}"
            )
        return cls(
            trace=trace_from_json(payload["trace"]),
            races=[_race_from_record(r) for r in payload["races"]],
        )


class NaiveDetector:
    """Applies the SC-system dynamic technique to a weak trace verbatim."""

    def analyze(self, trace: Trace) -> NaiveReport:
        with obs.span("detect.naive"):
            hb = HappensBefore1(trace)
            return NaiveReport(trace=trace, races=find_races(trace, hb))

    def analyze_execution(self, result: ExecutionResult) -> NaiveReport:
        warnings.warn(
            "NaiveDetector.analyze_execution is deprecated; use "
            "repro.detect(result, detector='naive')",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.analyze(build_trace(result))
