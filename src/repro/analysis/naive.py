"""The naive baseline: report every race of the weak execution.

Section 3.1: "naively using the dynamic techniques would report all of
these data races" — including the non-sequentially-consistent ones that
could never occur on SC hardware and only confuse the programmer.  This
detector is the paper's strawman, implemented so the accuracy benches
can quantify how much the first-partition method narrows the report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..core.hb1 import HappensBefore1
from ..core.races import EventRace, find_races
from ..machine.simulator import ExecutionResult
from ..trace.build import Trace, build_trace


@dataclass
class NaiveReport:
    """Everything the naive detector says: all data races, unfiltered."""

    trace: Trace
    races: List[EventRace]

    @property
    def data_races(self) -> List[EventRace]:
        return [race for race in self.races if race.is_data_race]

    def format(self) -> str:
        lines = [
            f"Naive race report ({self.trace.model_name} execution): "
            f"{len(self.data_races)} data race(s)"
        ]
        for race in self.data_races:
            lines.append(f"  {race.describe(self.trace)}")
        return "\n".join(lines)


class NaiveDetector:
    """Applies the SC-system dynamic technique to a weak trace verbatim."""

    def analyze(self, trace: Trace) -> NaiveReport:
        hb = HappensBefore1(trace)
        return NaiveReport(trace=trace, races=find_races(trace, hb))

    def analyze_execution(self, result: ExecutionResult) -> NaiveReport:
        return self.analyze(build_trace(result))
