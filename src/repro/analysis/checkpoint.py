"""Hunt checkpoints: durable, resumable progress for long hunts.

The paper's pipeline is post-mortem (§4.1): a hunt's value is the
recorded executions and race statistics it accumulates, so a worker
crash or a killed parent at try 40k of 50k must never cost the whole
run.  The engine (:func:`repro.analysis.parallel.run_hunt`) therefore
periodically persists every *settled* job outcome to a checkpoint
file; a resumed hunt re-plans the sweep, skips the settled indices,
and merges restored + fresh outcomes — because each job is a pure
function of ``(program, model, policy, seed)``, the merged
``HuntResult.stats()``/``summary()`` are byte-identical to an
uninterrupted run.

Checkpoints cut at *settled outcomes*, never at the pool's dispatch
batches: a parent killed mid-batch persists exactly the outcomes that
reached it, and resume re-plans every unsettled job individually —
batch boundaries are an executor detail with no representation here.
Likewise the pool's wire-level recording compaction is invisible: a
racy outcome whose recording was dropped in flight could not have been
the lowest racy index at the time, and if a crash erases the then-lower
index, resume simply re-runs it (purity reproduces the recording).

Format (``CHECKPOINT_FORMAT`` = 1) — one JSON document::

    {
      "format": 1,
      "complete": false,                # True once the sweep finished
      "hunt_id": "a1b2...",             # telemetry correlation id
                                        # (absent in legacy checkpoints;
                                        # resume keeps it, so a resumed
                                        # hunt's metrics/events/results
                                        # join with the original's)
      "spec": {                         # identity of the hunt
        "program_sha": "...",           # BLAKE2b of the assembly text
        "model": "WO",
        "tries": 50000,                 # the seed range, via seed-major
        "policies": ["stubborn", ...],  # names, in sweep order
        "max_steps": 200000,
        "stop_at_first": false,
        "detector": "postmortem",       # absent in legacy checkpoints
        "verify_robustness": false      # absent in legacy checkpoints
      },
      "outcomes": [ {...}, ... ]        # settled jobs, by index
    }

Checkpoints are always written atomically (write-tmp + fsync +
rename, :func:`repro.ioutil.atomic_write_text`), so a crash mid-write
leaves the previous complete checkpoint intact; a file torn by
anything else is rejected with :class:`CheckpointError` rather than
silently resumed.  Resume validates the spec field by field —
resuming a checkpoint against a different program, model, policy
list, seed range, or step bound is a :class:`CheckpointMismatch` hard
error, never a best-effort merge.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import List, Optional, Sequence, Union

from ..ioutil import atomic_write_text
from ..machine.program import Program
from ..machine.replay import ExecutionRecording

CHECKPOINT_FORMAT = 1


class CheckpointError(ValueError):
    """The checkpoint file is unreadable, torn, or schema-invalid."""


class CheckpointMismatch(CheckpointError):
    """The checkpoint belongs to a different hunt spec."""


def program_fingerprint(program: Program) -> str:
    """BLAKE2b over the program's canonical assembly text — the
    checkpoint's program-identity key."""
    from ..machine.assembler import format_program

    return hashlib.blake2b(
        format_program(program).encode("utf-8"), digest_size=16
    ).hexdigest()


def hunt_spec(
    program: Program,
    model_name: str,
    tries: int,
    policy_names: Sequence[str],
    max_steps: int,
    stop_at_first: bool,
    detector: str = "postmortem",
    verify_robustness: bool = False,
) -> dict:
    """The hunt-identity record a checkpoint is validated against.

    The detector is part of the hunt's identity: outcomes analyzed by
    different detectors disagree on racy/clean (the predictive backends
    flag traces the baseline calls clean), so resuming across detectors
    would silently merge incompatible verdicts.  Checkpoints written
    before the field existed are treated as ``"postmortem"`` on load.

    ``verify_robustness`` is identity for the same reason: a hunt that
    verified every try cannot honestly merge outcomes from one that
    did not (the restored tries would have no verdicts).  Legacy
    checkpoints load as ``False`` — the only mode hunts then had.
    """
    return {
        "program_sha": program_fingerprint(program),
        "model": model_name,
        "tries": tries,
        "policies": list(policy_names),
        "max_steps": max_steps,
        "stop_at_first": bool(stop_at_first),
        "detector": detector,
        "verify_robustness": bool(verify_robustness),
    }


def make_hunt_id(spec: dict, nonce: Optional[str] = None) -> str:
    """A compact correlation id for one hunt *run*: BLAKE2b over the
    hunt spec plus a per-start nonce.

    The spec half ties the id to the hunt's identity (program, model,
    seed range, policies, detector); the nonce half distinguishes
    repeated runs of the same spec — two back-to-back identical hunts
    get different ids, while a *resume* keeps the original id by
    reading it back from the checkpoint instead of minting a new one.
    The id is deliberately *not* in the spec record itself: the spec is
    validated field-by-field on resume, and the id is the one field
    that legitimately rides across spec-identical runs.
    """
    if nonce is None:
        nonce = os.urandom(8).hex()
    digest = hashlib.blake2b(
        (json.dumps(spec, sort_keys=True) + "|" + nonce).encode("utf-8"),
        digest_size=8,
    )
    return digest.hexdigest()


def peek_hunt_id(path: Union[str, Path]) -> Optional[str]:
    """Best-effort read of a checkpoint's hunt_id — ``None`` for
    missing/legacy/corrupt files (the real load reports those properly;
    this is for callers that need the id *before* the hunt starts, like
    the CLI wiring the event log and telemetry server on a resume)."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
        hunt_id = payload.get("hunt_id")
        return hunt_id if isinstance(hunt_id, str) and hunt_id else None
    except (OSError, ValueError, AttributeError):
        return None


# ----------------------------------------------------------------------
# outcome (de)serialization — exactly what the deterministic merge and
# the first-racy replay need, in plain JSON
# ----------------------------------------------------------------------

def outcome_to_payload(outcome, include_recording: bool = True) -> dict:
    """Serialize one settled :class:`~repro.analysis.parallel.JobOutcome`
    (live executions/reports never ride along — resume reconstructs
    the first racy execution by replaying the recording).  With
    *include_recording* false the recording is dropped: the merge only
    ever attaches the lowest-index racy outcome's recording, so a
    checkpoint persists exactly that one and stays small."""
    job = outcome.job
    payload = {
        "index": job.index,
        "seed": job.seed,
        "policy_index": job.policy_index,
        "policy": job.policy_name,
        "attempt": job.attempt,
        "status": outcome.status,
        "completed": outcome.completed,
        "operations": outcome.operations,
        "error": outcome.error,
        "traceback": outcome.traceback,
        "report_digest": outcome.report_digest,
        "cache_hit": outcome.cache_hit,
        "fingerprint": outcome.fingerprint,
        "race_count": outcome.race_count,
        "certified_races": outcome.certified_races,
        "duration": round(outcome.duration, 6),
        "retries": outcome.retries,
        "failure_kind": outcome.failure_kind,
        "partition_keys": list(outcome.partition_keys),
        "robust": outcome.robust,
        "robustness": outcome.robustness,
        "recording": (
            outcome.recording.to_payload()
            if include_recording and outcome.recording is not None
            else None
        ),
    }
    return payload


def outcome_from_payload(payload: dict):
    from .parallel import HuntJob, JobOutcome  # circular at import time

    try:
        job = HuntJob(
            index=payload["index"],
            seed=payload["seed"],
            policy_index=payload["policy_index"],
            policy_name=payload["policy"],
            attempt=payload.get("attempt", 0),
        )
        recording = payload.get("recording")
        return JobOutcome(
            job=job,
            status=payload["status"],
            completed=payload["completed"],
            operations=payload["operations"],
            error=payload.get("error", ""),
            traceback=payload.get("traceback", ""),
            report_digest=payload.get("report_digest", ""),
            cache_hit=payload.get("cache_hit", False),
            fingerprint=payload.get("fingerprint", ""),
            race_count=payload.get("race_count", 0),
            certified_races=payload.get("certified_races", 0),
            duration=payload.get("duration", 0.0),
            retries=payload.get("retries", 0),
            failure_kind=payload.get("failure_kind", ""),
            partition_keys=tuple(payload.get("partition_keys", ())),
            robust=payload.get("robust"),
            robustness=payload.get("robustness"),
            recording=(
                ExecutionRecording.from_payload(recording)
                if recording is not None else None
            ),
        )
    except (KeyError, TypeError) as exc:
        raise CheckpointError(f"malformed outcome record: {exc}") from exc


# ----------------------------------------------------------------------
# save / load
# ----------------------------------------------------------------------

def save_checkpoint(
    path: Union[str, Path],
    spec: dict,
    outcomes: Sequence[object],
    complete: bool,
    hunt_id: Optional[str] = None,
) -> None:
    """Atomically persist the settled outcomes (sorted by index).

    Only the lowest-index racy outcome keeps its recording: it is the
    one the deterministic merge attaches as the hunt's replayable
    race, and the settled set only ever grows, so the minimum can only
    move to a *new* outcome (which arrives carrying its own
    recording).  Persisting the rest would bloat the checkpoint by
    kilobytes per racy run and make every periodic write O(racy
    recordings)."""
    ordered = sorted(outcomes, key=lambda o: o.job.index)
    first_racy = next((o for o in ordered if o.status == "racy"), None)
    payload = {
        "format": CHECKPOINT_FORMAT,
        "complete": bool(complete),
        "spec": spec,
        "outcomes": [
            outcome_to_payload(o, include_recording=o is first_racy)
            for o in ordered
        ],
    }
    if hunt_id:
        payload["hunt_id"] = hunt_id
    # Compact separators: checkpoints are rewritten periodically, so
    # the serialization cost is the overhead knob that matters.
    atomic_write_text(
        path, json.dumps(payload, sort_keys=True, separators=(",", ":"))
    )


class LoadedCheckpoint:
    """A parsed checkpoint: the spec it was written for, whether the
    sweep had finished, and the settled outcomes."""

    def __init__(self, spec: dict, complete: bool,
                 outcomes: List[object],
                 hunt_id: Optional[str] = None) -> None:
        self.spec = spec
        self.complete = complete
        self.outcomes = outcomes
        #: correlation id the checkpoint was written under (None for
        #: legacy checkpoints); resume adopts it so telemetry joins
        self.hunt_id = hunt_id

    @property
    def settled_indices(self):
        return {o.job.index for o in self.outcomes}

    @property
    def first_racy_index(self) -> Optional[int]:
        """Lowest settled racy job index, or ``None``.

        Resume seeds the engine's shared racy bounds with this: under
        ``stop_at_first`` nothing beyond it is re-planned, and either
        way pool workers skip shipping recordings that cannot beat it
        in the lowest-racy-index merge (the checkpoint already holds
        the winner's recording)."""
        racy = [o.job.index for o in self.outcomes if o.status == "racy"]
        return min(racy) if racy else None


def load_checkpoint(
    path: Union[str, Path],
    expected_spec: Optional[dict] = None,
) -> LoadedCheckpoint:
    """Read and validate a checkpoint; with *expected_spec*, any
    field-level difference is a :class:`CheckpointMismatch` hard
    error."""
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise CheckpointError(f"{path}: unreadable: {exc}") from exc
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise CheckpointError(
            f"{path}: torn or corrupt checkpoint (invalid JSON: {exc}); "
            f"checkpoints are written atomically — this file was "
            f"damaged after the fact, delete it to start fresh"
        ) from exc
    if not isinstance(payload, dict):
        raise CheckpointError(f"{path}: checkpoint is not a JSON object")
    version = payload.get("format")
    if version != CHECKPOINT_FORMAT:
        raise CheckpointError(
            f"{path}: unknown checkpoint format {version!r} "
            f"(this reader understands {CHECKPOINT_FORMAT})"
        )
    spec = payload.get("spec")
    if not isinstance(spec, dict):
        raise CheckpointError(f"{path}: checkpoint has no spec record")
    # Legacy checkpoints predate the detector field; they were written
    # by the only detector hunts then had.  Same for verify_robustness:
    # legacy hunts never verified.
    spec.setdefault("detector", "postmortem")
    spec.setdefault("verify_robustness", False)
    if expected_spec is not None:
        mismatched = [
            key for key in sorted(set(expected_spec) | set(spec))
            if spec.get(key) != expected_spec.get(key)
        ]
        if mismatched:
            detail = "; ".join(
                f"{key}: checkpoint has {spec.get(key)!r}, "
                f"hunt wants {expected_spec.get(key)!r}"
                for key in mismatched
            )
            raise CheckpointMismatch(
                f"{path}: checkpoint belongs to a different hunt ({detail})"
            )
    raw_outcomes = payload.get("outcomes")
    if not isinstance(raw_outcomes, list):
        raise CheckpointError(f"{path}: checkpoint has no outcome list")
    outcomes = [outcome_from_payload(record) for record in raw_outcomes]
    seen = set()
    for outcome in outcomes:
        if outcome.job.index in seen:
            raise CheckpointError(
                f"{path}: duplicate outcome for job {outcome.job.index}"
            )
        seen.add(outcome.job.index)
    hunt_id = payload.get("hunt_id")
    if hunt_id is not None and not isinstance(hunt_id, str):
        raise CheckpointError(f"{path}: hunt_id is not a string")
    return LoadedCheckpoint(
        spec=spec, complete=bool(payload.get("complete")),
        outcomes=outcomes, hunt_id=hunt_id,
    )


class CheckpointWriter:
    """Periodic checkpoint persistence for a running hunt.

    Writes every *interval* settled outcomes (plus a final write at
    hunt end, marked ``complete`` when the sweep ran to completion).
    Each write persists the full settled set atomically, so the file
    on disk is always a self-contained resume point.
    """

    def __init__(self, path: Union[str, Path], spec: dict,
                 interval: int, hunt_id: Optional[str] = None) -> None:
        if interval < 1:
            raise ValueError("checkpoint interval must be positive")
        self.path = Path(path)
        self.spec = spec
        self.interval = interval
        self.hunt_id = hunt_id
        self.writes = 0
        self._since_last = 0

    def tick(self, outcomes: Sequence[object]) -> None:
        """Note one newly settled outcome; persists on the interval."""
        self._since_last += 1
        if self._since_last >= self.interval:
            self.flush(outcomes, complete=False)

    def flush(self, outcomes: Sequence[object], complete: bool) -> None:
        save_checkpoint(self.path, self.spec, outcomes, complete=complete,
                        hunt_id=self.hunt_id)
        self.writes += 1
        self._since_last = 0
