"""The parallel race-hunting engine.

One dynamic run proves nothing (paper §1), so the hunt's currency is
*executions per second*.  This module turns the seed x policy sweep of
:mod:`repro.analysis.hunting` into an explicit job list and executes it
either in-process (``jobs=1`` — today's serial path) or across a
``fork``-based :mod:`multiprocessing` pool, with three properties the
serial loop gets for free and a pool must work for:

* **Determinism** — jobs carry a canonical index (seed-major over the
  policy list) and outcomes are merged in index order, so the merged
  :class:`~repro.analysis.hunting.HuntResult` statistics are identical
  for any worker count and any completion order.
* **Early stop** — with ``stop_at_first`` the lowest racy job index is
  broadcast through a shared value (written by whichever worker finds
  it); workers skip jobs *beyond* it (jobs before it still run,
  preserving the serial semantics of "everything up to and including
  the first racy run").
* **Isolation** — a job that raises, or exceeds ``job_timeout``
  wall-clock seconds, becomes a recorded
  :class:`~repro.analysis.hunting.JobFailure` instead of killing the
  hunt; an execution that hits the step bound is counted but flagged.

Parallelism only pays when the coordination layer is cheaper than the
work it shards, so the pool path batches aggressively (the per-event
cost of detection is near-linear — Kini et al. 2017 — which leaves
coordination as the scaling bottleneck):

* **Batched jobs** — the job list is split into seed batches; a worker
  runs a whole batch and ships one compact :class:`BatchOutcome`
  (parallel arrays of status/duration/race-count/fingerprint fields
  plus sparse maps for the rare payloads), which the parent unfolds
  back into per-try :class:`JobOutcome` streams so the merge,
  observers, event logs, retries, and checkpoints are byte-identical
  to the unbatched protocol.
* **Compact wire outcomes** — a worker consults the shared best-racy
  index before pickling a racy try's
  :class:`~repro.machine.replay.ExecutionRecording`: a try that can no
  longer win the lowest-racy-index merge ships without it (the winner
  always ships its own).  Per-try span lists never cross the pipe —
  profile spans and the status-independent metric instruments are
  pre-aggregated in the worker and folded once per batch.
* **Shared trace cache** — the per-worker analysis cache is backed by
  a fork-safe shared structure (:mod:`repro.analysis.sharedcache`:
  append-only file, lock-guarded writes, lock-free tail reads), so one
  worker's analysis of a trace fingerprint serves every other worker
  and the serial cache hit rate survives ``--jobs``.
* **In-batch early stop** — workers re-check the cancel flag and the
  racy bound before every job *inside* a batch, so ``stop_at_first``
  and SIGINT draining stay responsive without giving back the batching
  win (the old protocol fell back to one-job tasks for this).

On top of isolation sits **recovery** (a long hunt's value is what it
has accumulated, so failures must cost one job, not the run):

* Transient failures are retried up to ``max_retries`` with
  exponential backoff and deterministic seeded jitter; a job that
  fails *identically* twice in a row is classified deterministic and
  surfaced as a failure instead of being retried again.  Retried
  attempts are visible to the observer hooks
  (``hunt_tries_total{status="retried"}``, event-log ``try`` records)
  but never change the merged statistics.
* With ``checkpoint=PATH`` the parent periodically persists every
  settled outcome (atomically — see :mod:`repro.analysis.checkpoint`);
  ``resume=True`` validates the checkpoint against the hunt spec,
  skips settled jobs, and merges to statistics byte-identical to an
  uninterrupted run.  Checkpoints cut at *settled outcomes*, never at
  batch boundaries: a parent killed mid-batch persists exactly the
  outcomes that settled, and resume re-plans the rest (jobs are pure
  functions of ``(program, model, policy, seed)``, so re-running a
  half-delivered batch reproduces it).
* A *cancel* event (``threading.Event``) stops dispatch, drains
  in-flight jobs, and finishes with a final checkpoint and a partial
  result marked ``interrupted`` — the CLI wires SIGINT/SIGTERM to it.
* The :mod:`repro.faults` package can inject crashes, hangs, and a
  mid-hunt parent SIGKILL at deterministic points, which is how the
  recovery paths above are actually proven.

Workers never ship :class:`~repro.machine.simulator.ExecutionResult`
objects back — they return the racy run's
:class:`~repro.machine.replay.ExecutionRecording` (plain lists of
ints, cheap to pickle) plus a report digest, and the parent *replays*
the recording to reconstruct the execution.  That replay doubles as
verification that the advertised recording actually reproduces the
race (``HuntResult.recording_verified``).

Parallel execution requires the ``fork`` start method (policy and
model factories may be closures, which ``spawn`` cannot pickle); on
platforms without it the engine silently degrades to the serial path.
"""

from __future__ import annotations

import multiprocessing
import random as _random
import signal
import threading
import time
import traceback as _tb
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from .. import faults as _faults
from .. import obs
from ..machine.models.base import MemoryModel
from ..machine.program import Program
from ..machine.replay import (
    ExecutionRecording,
    ReplayError,
    record_execution,
    replay_execution,
    verify_recording,
)
from ..core.provenance import partition_coverage_keys
from ..obs.profiler import AggregateRecord, merge_aggregate_maps
from ..trace.build import build_trace
from ..trace.fingerprint import trace_fingerprint
from . import sharedcache
from .checkpoint import (
    CheckpointWriter,
    hunt_spec,
    load_checkpoint,
    make_hunt_id,
)
from .hunting import HuntResult, JobFailure, PolicyFactory

ProgressCallback = Callable[[int, int, int], None]
#: Observer hook: called with each JobOutcome as it completes, plus the
#: running (done, total, racy) tallies the progress callback sees.
OutcomeObserver = Callable[["JobOutcome", int, int, int], None]


#: Detector backends a hunt can sweep with.  ``onthefly`` is excluded:
#: it consumes the operation stream, which the trace cache (keyed on
#: the trace, which deliberately drops operations — §4.1) cannot serve.
#: ``streaming`` consumes each execution's operation stream online and
#: never materializes a trace, so it runs with the cache bypassed.
HUNT_DETECTORS = ("postmortem", "naive", "shb", "wcp", "streaming")

#: Batch sizing: aim for this many batches per worker (enough slack to
#: balance uneven batch durations) without exceeding the cap (which
#: bounds how much work one straggler batch can hold hostage).
_BATCHES_PER_WORKER = 2
_BATCH_MAX = 64


def _analyze(source, detector: str = "postmortem"):
    """Route report construction through the unified entry point
    (imported lazily: repro.api itself imports this package)."""
    from ..api import detect

    return detect(source, detector=detector)


# Per-process analysis cache: trace fingerprint -> (racy, report
# digest, race count, certified races).  The detector is a pure
# function of the trace (see repro.trace.fingerprint), so seeds that
# collapse to an identical trace need analyzing once; one hunt runs one
# detector and the cache is cleared per hunt, so the key needs no
# detector component.  In the fork pool this dict is the L1 of the
# cross-worker shared cache (see _init_worker): misses fall through to
# the hunt's append-only shared file, so one worker's analysis serves
# the others and the hit rate matches the serial run.  Merged
# *statistics* stay worker-count-independent because a cache hit
# returns the exact result the analysis would have produced.
_TRACE_CACHE: Dict[str, Tuple[bool, str, int, int]] = {}
_TRACE_CACHE_MAX = 4096


@dataclass(frozen=True)
class HuntJob:
    """One unit of hunt work: run one seed under one policy.

    ``index`` is the job's position in the canonical seed-major
    enumeration; merging folds outcomes in ``index`` order, which is
    what makes the hunt's result independent of worker count.
    ``attempt`` counts retries (0 = first attempt) and ``delay`` is
    the retry attempt's backoff sleep, executed worker-side before the
    timed body.
    """

    index: int
    seed: int
    policy_index: int
    policy_name: str
    attempt: int = 0
    delay: float = 0.0


@dataclass
class JobOutcome:
    """What one job produced, in picklable form.

    ``execution``/``report`` are populated only when the job ran
    in-process (the serial path keeps the live objects); workers leave
    them ``None`` and the parent reconstructs the racy execution by
    replaying ``recording``.
    """

    job: HuntJob
    status: str  # "racy" | "clean" | "error" | "retried" | "skipped"
    completed: bool = True
    operations: int = 0
    error: str = ""
    recording: Optional[ExecutionRecording] = None
    report_digest: str = ""
    execution: Optional[object] = None
    report: Optional[object] = None
    profile: Optional[List[dict]] = None  # flat span records, if profiled
    cache_hit: bool = False  # analysis served from the trace cache
    duration: float = 0.0  # wall-clock seconds spent on this job
    fingerprint: str = ""  # canonical trace fingerprint ("" = cache off)
    race_count: int = 0  # races the analysis reported
    certified_races: int = 0  # report.certified_race_count (see report.py)
    traceback: str = ""  # full traceback when status == "error"
    retries: int = 0  # retry attempts that preceded this settled outcome
    failure_kind: str = ""  # error classification (see JobFailure.kind)
    #: robustness verdict (None = not verified): does the execution
    #: have a sequentially consistent justification?
    robust: Optional[bool] = None
    #: full RobustnessReport.to_json() payload, kept for non-robust
    #: tries only (the violating cycle and SC-prefix boundary are the
    #: part worth persisting; robust tries' witnesses are one op-count-
    #: sized list each and fully reproducible from the job identity)
    robustness: Optional[dict] = None
    #: coverage signatures of the report's first-race provenance
    #: partitions (see repro.core.provenance.partition_coverage_keys);
    #: computed only for racy cache-misses while metrics collect — a
    #: cache hit repeats a fingerprint already counted, so it cannot
    #: contribute a new distinct partition either
    partition_keys: Tuple[str, ...] = ()


@dataclass
class BatchOutcome:
    """One batch of job outcomes in compact wire form.

    Parallel arrays hold the per-try fields every outcome has; sparse
    position-keyed maps hold the rare payloads (recordings that can
    still win the merge, racy report digests, error texts).  Profile
    spans and status-independent metrics are pre-aggregated — the
    parent folds them once per batch instead of once per try.

    :meth:`pack`/:meth:`unfold` are exact inverses over everything a
    worker can produce (live executions/reports and per-try span lists
    never cross the pipe), so the parent-side per-try outcome stream is
    byte-identical to the old one-pickle-per-job protocol.
    """

    indices: List[int] = field(default_factory=list)
    statuses: List[str] = field(default_factory=list)
    completed: List[bool] = field(default_factory=list)
    operations: List[int] = field(default_factory=list)
    durations: List[float] = field(default_factory=list)
    cache_hits: List[bool] = field(default_factory=list)
    fingerprints: List[str] = field(default_factory=list)
    race_counts: List[int] = field(default_factory=list)
    certified: List[int] = field(default_factory=list)
    digests: Dict[int, str] = field(default_factory=dict)
    recordings: Dict[int, ExecutionRecording] = field(default_factory=dict)
    errors: Dict[int, Tuple[str, str]] = field(default_factory=dict)
    #: coverage partition keys, racy cache-misses only (sparse like the
    #: other rare payloads)
    partitions: Dict[int, List[str]] = field(default_factory=dict)
    #: robustness verdicts, verified tries only (sparse: absent when
    #: the hunt did not verify robustness)
    robust: Dict[int, bool] = field(default_factory=dict)
    #: non-robust tries' RobustnessReport payloads (cycle + SC prefix)
    robustness: Dict[int, dict] = field(default_factory=dict)
    #: span-path -> AggregateRecord.to_dict(), pre-folded over the batch
    profile_aggs: Optional[Dict[str, dict]] = None
    #: MetricsRegistry.to_records() of the worker-side instrument fold
    metric_records: Optional[List[dict]] = None

    @classmethod
    def pack(cls, outcomes: Sequence[JobOutcome]) -> "BatchOutcome":
        batch = cls()
        for pos, outcome in enumerate(outcomes):
            batch.indices.append(outcome.job.index)
            batch.statuses.append(outcome.status)
            batch.completed.append(outcome.completed)
            batch.operations.append(outcome.operations)
            batch.durations.append(outcome.duration)
            batch.cache_hits.append(outcome.cache_hit)
            batch.fingerprints.append(outcome.fingerprint)
            batch.race_counts.append(outcome.race_count)
            batch.certified.append(outcome.certified_races)
            if outcome.report_digest:
                batch.digests[pos] = outcome.report_digest
            if outcome.recording is not None:
                batch.recordings[pos] = outcome.recording
            if outcome.error or outcome.traceback:
                batch.errors[pos] = (outcome.error, outcome.traceback)
            if outcome.partition_keys:
                batch.partitions[pos] = list(outcome.partition_keys)
            if outcome.robust is not None:
                batch.robust[pos] = outcome.robust
            if outcome.robustness is not None:
                batch.robustness[pos] = outcome.robustness
        return batch

    def unfold(self, jobs_by_index: Dict[int, HuntJob]) -> List[JobOutcome]:
        """Rebuild the per-try outcome stream the rest of the engine
        (merge, observers, events, retries, checkpoints) consumes."""
        outcomes = []
        for pos, index in enumerate(self.indices):
            error, tb = self.errors.get(pos, ("", ""))
            outcomes.append(JobOutcome(
                job=jobs_by_index[index],
                status=self.statuses[pos],
                completed=self.completed[pos],
                operations=self.operations[pos],
                error=error,
                traceback=tb,
                recording=self.recordings.get(pos),
                report_digest=self.digests.get(pos, ""),
                cache_hit=self.cache_hits[pos],
                duration=self.durations[pos],
                fingerprint=self.fingerprints[pos],
                race_count=self.race_counts[pos],
                certified_races=self.certified[pos],
                partition_keys=tuple(self.partitions.get(pos, ())),
                robust=self.robust.get(pos),
                robustness=self.robustness.get(pos),
            ))
        return outcomes


def plan_jobs(tries: int, policy_names: Sequence[str]) -> List[HuntJob]:
    """The canonical seed-major job list: attempt ``i`` is seed
    ``i // P`` under policy ``i % P``, so every policy sweeps the same
    seed range (seed ``s`` runs under all ``P`` policies before seed
    ``s + 1`` starts)."""
    if not policy_names:
        raise ValueError("policies must not be empty")
    count = len(policy_names)
    return [
        HuntJob(
            index=i,
            seed=i // count,
            policy_index=i % count,
            policy_name=policy_names[i % count],
        )
        for i in range(tries)
    ]


def plan_batches(
    jobs: Sequence[HuntJob],
    workers: int,
    batch_size: Optional[int] = None,
) -> List[List[HuntJob]]:
    """Split the job list into contiguous dispatch batches.

    The default size targets :data:`_BATCHES_PER_WORKER` batches per
    worker (load-balancing slack) capped at :data:`_BATCH_MAX` (bounds
    the work one straggler batch holds hostage on huge sweeps).
    Contiguity keeps each batch a run of consecutive job indices, so
    with ``stop_at_first`` most post-racy work collapses into whole
    batches of in-batch skips."""
    if batch_size is None:
        batch_size = max(
            1,
            min(_BATCH_MAX, -(-len(jobs) // (workers * _BATCHES_PER_WORKER))),
        )
    if batch_size < 1:
        raise ValueError("batch_size must be positive")
    return [
        list(jobs[i:i + batch_size])
        for i in range(0, len(jobs), batch_size)
    ]


class JobTimeout(Exception):
    """A job exceeded its wall-clock budget."""


@contextmanager
def _time_limit(seconds: Optional[float]) -> Iterator[None]:
    """Raise :class:`JobTimeout` if the body runs longer than
    *seconds* (SIGALRM-based; silently a no-op off the main thread or
    on platforms without SIGALRM).  Zero/negative budgets are caller
    bugs and rejected eagerly — ``setitimer(0)`` would silently mean
    "no limit", the opposite of what was asked for."""
    if seconds is not None and seconds <= 0:
        raise ValueError(f"time limit must be positive, got {seconds}")
    usable = (
        seconds is not None
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        yield
        return

    def _alarm(signum, frame):
        raise JobTimeout(f"execution exceeded {seconds}s")

    previous = signal.signal(signal.SIGALRM, _alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


class _HuntState:
    """Everything a job needs to run; shared with workers via fork."""

    def __init__(
        self,
        program: Program,
        model_factory: Callable[[], MemoryModel],
        policies: Sequence[Tuple[str, PolicyFactory]],
        max_steps: int,
        job_timeout: Optional[float],
        profile: bool = False,
        trace_cache: bool = True,
        detector: str = "postmortem",
        collect_metrics: bool = False,
        verify_robustness: bool = False,
    ) -> None:
        self.program = program
        self.model_factory = model_factory
        self.policies = list(policies)
        self.max_steps = max_steps
        self.job_timeout = job_timeout
        self.profile = profile
        self.trace_cache = trace_cache
        self.detector = detector
        # True when the parent has a metrics registry collecting: batch
        # workers then pre-fold the status-independent instruments
        # (durations, cache hits) and ship them once per batch.
        self.collect_metrics = collect_metrics
        # Attach a robustness verdict (repro.core.robustness) to every
        # try: does the execution have an SC justification?
        self.verify_robustness = verify_robustness


def _execute_job(
    state: _HuntState, job: HuntJob, keep_execution: bool
) -> JobOutcome:
    """Run one job; with profiling on, record it into a job-local
    profiler whose flat span records ride back on the outcome (cheap
    to pickle, aggregated by the parent across workers)."""
    if job.delay > 0:
        time.sleep(job.delay)  # retry backoff; not part of the timed body
    begin = time.perf_counter()
    if not state.profile:
        outcome = _execute_job_inner(state, job, keep_execution)
        outcome.duration = time.perf_counter() - begin
        return outcome
    profiler = obs.Profiler()
    with profiler.activate():
        with obs.span("hunt.job") as sp:
            outcome = _execute_job_inner(state, job, keep_execution)
            sp.add("executions", 1)
            if outcome.status == "racy":
                sp.add("racy", 1)
            if outcome.cache_hit:
                sp.add("trace_cache_hits", 1)
    outcome.profile = profiler.to_records()
    outcome.duration = time.perf_counter() - begin
    return outcome


def _execute_job_inner(
    state: _HuntState, job: HuntJob, keep_execution: bool
) -> JobOutcome:
    """Run one job with failure/timeout isolation."""
    _, factory = state.policies[job.policy_index]
    try:
        with _time_limit(state.job_timeout):
            plan = _faults.active_plan()
            if plan is not None:
                # Inside the time limit on purpose: an injected hang
                # must drive the real JobTimeout path.
                plan.on_job_start(job.index, job.attempt)
            execution, recording = record_execution(
                state.program,
                state.model_factory(),
                seed=job.seed,
                propagation=factory(),
                max_steps=state.max_steps,
            )
            report = None
            cache_hit = False
            fingerprint = ""
            # streaming detection consumes the operation stream online
            # and never builds a trace — so there is nothing to
            # fingerprint and the trace cache is bypassed
            use_cache = state.trace_cache and state.detector != "streaming"
            if use_cache:
                trace = build_trace(execution)
                fingerprint = trace_fingerprint(trace)
                shared = _SHARED_CACHE
                cached = (
                    shared.get(fingerprint) if shared is not None
                    else _TRACE_CACHE.get(fingerprint)
                )
                if cached is None:
                    report = _analyze(trace, state.detector)
                    racy = not report.race_free
                    digest = report.format() if racy else ""
                    race_count = len(report.races)
                    certified = (
                        getattr(report, "certified_race_count", 0)
                        if racy else 0
                    )
                    value = (racy, digest, race_count, certified)
                    if shared is not None:
                        shared.put(fingerprint, value)
                    else:
                        if len(_TRACE_CACHE) >= _TRACE_CACHE_MAX:
                            _TRACE_CACHE.clear()
                        _TRACE_CACHE[fingerprint] = value
                else:
                    cache_hit = True
                    racy, digest, race_count, certified = cached
            else:
                report = _analyze(execution, state.detector)
                racy = not report.race_free
                digest = report.format() if racy else ""
                race_count = len(report.races)
                certified = (
                    getattr(report, "certified_race_count", 0)
                    if racy else 0
                )
            # The robustness verdict consumes the operation stream
            # (reads-from never reaches the trace — §4.1), so the
            # trace cache cannot serve it; it runs per execution,
            # inside the time limit like the rest of the job body.
            robust: Optional[bool] = None
            robustness_payload: Optional[dict] = None
            if state.verify_robustness:
                from ..core.robustness import (
                    check_robustness as _check_robust,
                )

                verdict = _check_robust(execution)
                robust = verdict.robust
                if not verdict.robust:
                    robustness_payload = verdict.to_json()
    except Exception as exc:  # isolated, recorded by the merge
        return JobOutcome(
            job=job, status="error",
            error=f"{type(exc).__name__}: {exc}",
            traceback=_tb.format_exc(),
        )
    # Coverage keys: only racy first-analyses can contribute — a cache
    # hit repeats a fingerprint whose partitions were keyed when first
    # analyzed — and only while a registry collects (the disabled path
    # stays inside the profiling-overhead budget).
    partition_keys: Tuple[str, ...] = ()
    if racy and report is not None and state.collect_metrics:
        partition_keys = partition_coverage_keys(report)
    outcome = JobOutcome(
        job=job,
        status="racy" if racy else "clean",
        completed=execution.completed,
        operations=len(execution.operations),
        recording=recording if racy else None,
        report_digest=digest if racy else "",
        cache_hit=cache_hit,
        fingerprint=fingerprint,
        race_count=race_count,
        certified_races=certified,
        partition_keys=partition_keys,
        robust=robust,
        robustness=robustness_payload,
    )
    if keep_execution:
        outcome.execution = execution
        outcome.report = report  # None on a cache hit; merge re-analyzes
    return outcome


# ----------------------------------------------------------------------
# worker-side plumbing (module-level so the pool task is picklable; the
# heavyweight state rides the fork, not the task pipe)
# ----------------------------------------------------------------------

_WORKER_STATE: Optional[_HuntState] = None
_WORKER_STOP = None  # multiprocessing.Value: lowest racy index, -1 = none
_WORKER_CANCEL = None  # multiprocessing.Value: 1 = drain, don't start work
_WORKER_BEST = None  # multiprocessing.Value: lowest racy index seen anywhere
_SHARED_CACHE: Optional[sharedcache.SharedTraceCache] = None


def _init_worker(state: _HuntState, stop_at, cancel_flag, best_racy,
                 cache_path, cache_lock) -> None:
    global _WORKER_STATE, _WORKER_STOP, _WORKER_CANCEL, _WORKER_BEST
    global _SHARED_CACHE
    _WORKER_STATE = state
    _WORKER_STOP = stop_at
    _WORKER_CANCEL = cancel_flag
    _WORKER_BEST = best_racy
    _SHARED_CACHE = (
        sharedcache.SharedTraceCache(
            cache_path, cache_lock, local=_TRACE_CACHE,
            max_entries=_TRACE_CACHE_MAX,
        )
        if cache_path is not None else None
    )
    # The parent orchestrates interrupts (drain + checkpoint); a
    # terminal Ctrl+C or a process-group SIGTERM reaches the workers
    # too, and workers dying mid-job would turn a graceful stop into
    # lost outcomes.  Ignoring SIGTERM also sheds any handler the
    # embedding process (e.g. the CLI) installed before the fork —
    # an inherited handler that swallows SIGTERM would otherwise
    # deadlock pool shutdown.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    signal.signal(signal.SIGTERM, signal.SIG_IGN)


def _note_racy_worker(index: int) -> None:
    """Broadcast a racy index from the worker that found it: lowers the
    early-stop bound (when ``stop_at_first`` armed it) without waiting
    for the batch to reach the parent."""
    stop = _WORKER_STOP
    if stop is not None:
        with stop.get_lock():
            if stop.value < 0 or index < stop.value:
                stop.value = index


def _keep_recording(index: int) -> bool:
    """Update the shared best-racy index with this racy try and decide
    whether its recording can still win the lowest-racy-index merge.

    Update-then-check under one lock: after the update the shared value
    is ``min(previous, index)``, so ``index`` keeps its recording
    exactly when it *is* the minimum.  The bound only ever decreases,
    and every value it takes belongs to a racy outcome that will reach
    the merge (or, after a crash, be reproduced by the deterministic
    re-run), so the winning outcome always carries its recording.
    """
    best = _WORKER_BEST
    if best is None:
        return True
    with best.get_lock():
        if best.value < 0 or index < best.value:
            best.value = index
        return index <= best.value


def _run_batch_job(job: HuntJob) -> JobOutcome:
    """One job inside a batch: the in-batch cancellation / early-stop
    check (so a batch never holds back a drain or an armed stop), then
    the normal isolated execution."""
    if _WORKER_CANCEL is not None and _WORKER_CANCEL.value:
        return JobOutcome(job=job, status="skipped")
    if _WORKER_STOP is not None:
        stop = _WORKER_STOP.value
        # Only jobs *beyond* the racy index are skippable: everything
        # before it is part of the deterministic stop_at_first prefix.
        if 0 <= stop < job.index:
            return JobOutcome(job=job, status="skipped")
    assert _WORKER_STATE is not None
    outcome = _execute_job(_WORKER_STATE, job, keep_execution=False)
    if outcome.status == "racy":
        _note_racy_worker(job.index)
        if not _keep_recording(job.index):
            outcome.recording = None  # can no longer win the merge
    return outcome


def _worker_run_batch(batch: Sequence[HuntJob]) -> BatchOutcome:
    """Run a whole batch and return one compact :class:`BatchOutcome`:
    the per-try fields as parallel arrays, plus the batch-level profile
    and metric folds."""
    state = _WORKER_STATE
    assert state is not None
    outcomes = [_run_batch_job(job) for job in batch]
    packed = BatchOutcome.pack(outcomes)
    if state.profile:
        profiles = [o.profile for o in outcomes if o.profile]
        if profiles:
            packed.profile_aggs = {
                path: agg.to_dict()
                for path, agg in obs.aggregate_records(profiles).items()
            }
    if state.collect_metrics:
        from ..obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        duration = registry.histogram(
            "hunt_job_duration_seconds", "per-job wall time",
        )
        for outcome in outcomes:
            duration.observe(outcome.duration)
        hits = sum(1 for o in outcomes if o.cache_hit)
        if hits:
            registry.counter(
                "hunt_trace_cache_hits_total",
                "analyses served from the trace cache",
            ).inc(hits)
        packed.metric_records = registry.to_records()
    return packed


# ----------------------------------------------------------------------
# execution strategies
# ----------------------------------------------------------------------

class _SerialExecutor:
    """In-process execution; the ``jobs=1`` path."""

    def __init__(self, state: _HuntState) -> None:
        self.state = state
        self.stop_index: Optional[int] = None
        self.cancelled = False

    def run(self, jobs: Sequence[HuntJob]) -> Iterator[JobOutcome]:
        for job in jobs:
            if self.cancelled:
                return
            if self.stop_index is not None and job.index > self.stop_index:
                # serial early stop: never start past the racy prefix
                return
            yield _execute_job(self.state, job, keep_execution=True)

    def note_racy(self, index: int) -> None:
        if self.stop_index is None or index < self.stop_index:
            self.stop_index = index

    def cancel(self) -> None:
        self.cancelled = True

    def close(self) -> None:
        pass


class _PoolExecutor:
    """Fork-pool execution; one pool serves every retry round.

    Jobs are dispatched as batches (:func:`plan_batches`) and each
    worker reply is one :class:`BatchOutcome`; ``run`` unfolds them so
    callers still consume a per-try outcome stream.  Batch-level
    profile aggregates accumulate on ``profile_aggs``; worker metric
    records are folded into *registry* as batches arrive.
    """

    def __init__(self, state: _HuntState, workers: int,
                 stop_at_first: bool, *, registry=None,
                 batch_size: Optional[int] = None,
                 racy_floor: Optional[int] = None) -> None:
        ctx = multiprocessing.get_context("fork")
        self.workers = workers
        self.batch_size = batch_size
        self.registry = registry
        self.profile_aggs: Dict[str, AggregateRecord] = {}
        seed = -1 if racy_floor is None else racy_floor
        self.stop_at = ctx.Value("i", seed) if stop_at_first else None
        # The recording-compaction bound: lowest racy index produced by
        # any worker (or restored from a checkpoint).  Separate from
        # stop_at because it is always armed — dropping a recording
        # that cannot win the merge is sound whether or not the hunt
        # stops at the first race.
        self.best_racy = ctx.Value("i", seed)
        self.cancel_flag = ctx.Value("i", 0)
        self.cache_path = None
        cache_lock = None
        if state.trace_cache and state.detector != "streaming":
            self.cache_path = sharedcache.create_cache_file()
            cache_lock = ctx.Lock()
        self.pool = ctx.Pool(
            processes=workers,
            initializer=_init_worker,
            initargs=(state, self.stop_at, self.cancel_flag,
                      self.best_racy, self.cache_path, cache_lock),
        )

    def run(self, jobs: Sequence[HuntJob]) -> Iterator[JobOutcome]:
        jobs = list(jobs)
        jobs_by_index = {job.index: job for job in jobs}
        batches = plan_batches(jobs, self.workers, self.batch_size)
        # chunksize stays 1: the dispatch unit is already a batch, and
        # in-batch checks keep early stop and cancel drains responsive.
        for batch in self.pool.imap_unordered(
            _worker_run_batch, batches, chunksize=1
        ):
            if batch.metric_records and self.registry is not None:
                with self.registry.hold():
                    self.registry.merge_records(batch.metric_records)
            if batch.profile_aggs:
                merge_aggregate_maps(self.profile_aggs, {
                    path: AggregateRecord.from_dict(payload)
                    for path, payload in batch.profile_aggs.items()
                })
            yield from batch.unfold(jobs_by_index)

    def note_racy(self, index: int) -> None:
        # Workers broadcast their own racy finds; the parent repeats
        # the update for restored/reclassified outcomes it alone sees.
        with self.best_racy.get_lock():
            if self.best_racy.value < 0 or index < self.best_racy.value:
                self.best_racy.value = index
        if self.stop_at is None:
            return
        with self.stop_at.get_lock():
            if self.stop_at.value < 0 or index < self.stop_at.value:
                self.stop_at.value = index

    def cancel(self) -> None:
        with self.cancel_flag.get_lock():
            self.cancel_flag.value = 1

    def close(self) -> None:
        # Cooperative shutdown.  Workers ignore SIGINT/SIGTERM (the
        # parent orchestrates draining), so pool.terminate()'s SIGTERM
        # would be ignored and its join would hang; close() hands the
        # workers exit sentinels instead, which they always honor once
        # the (already drained) task queue is empty.  A worker wedged
        # inside a job — an injected hang with no job_timeout — gets
        # SIGKILL after a grace period rather than hanging the hunt.
        #
        # The grace-period walk reads Pool's private worker list; that
        # is deliberate (there is no public "join with timeout"), but
        # it must degrade, not raise, if a future stdlib reshapes the
        # attribute — terminate() is then safe because the task queue
        # is already drained.
        try:
            try:
                self.pool.close()
                procs = getattr(self.pool, "_pool", None)
                if not isinstance(procs, (list, tuple)):
                    raise AttributeError("Pool._pool is not a process list")
                deadline = time.monotonic() + 5.0
                for proc in procs:
                    proc.join(max(0.0, deadline - time.monotonic()))
                for proc in procs:
                    if proc.is_alive():
                        proc.kill()
            except Exception:
                self.pool.terminate()
            try:
                self.pool.join()
            except Exception:
                pass  # Pool.join walks the same private list; degrade
        finally:
            if self.cache_path is not None:
                sharedcache.remove_cache_file(self.cache_path)
                self.cache_path = None


# ----------------------------------------------------------------------
# retry classification
# ----------------------------------------------------------------------

def _retry_job(job: HuntJob, retry_backoff: float) -> HuntJob:
    """The next attempt of a transiently failed job: exponential
    backoff with deterministic seeded jitter (the jitter stream is a
    pure function of the job identity and attempt, so a resumed or
    re-run hunt backs off identically)."""
    attempt = job.attempt + 1
    jitter = _random.Random(
        (job.index << 16) ^ (job.policy_index << 8) ^ attempt
    ).random()
    delay = retry_backoff * (2 ** (attempt - 1)) * (0.5 + jitter)
    return HuntJob(
        index=job.index,
        seed=job.seed,
        policy_index=job.policy_index,
        policy_name=job.policy_name,
        attempt=attempt,
        delay=delay,
    )


# ----------------------------------------------------------------------
# deterministic merge
# ----------------------------------------------------------------------

def _attach_first(
    result: HuntResult, first: JobOutcome, state: _HuntState
) -> None:
    """Fill in the first racy execution + verify its recording."""
    result.seed = first.job.seed
    result.policy = first.job.policy_name
    result.recording = first.recording
    if first.recording is None:  # pragma: no cover - the winner records
        return
    if first.execution is not None:
        # In-process job: we hold the original execution; check the
        # recording reproduces it exactly before advertising replay.
        result.first_racy = first.execution
        # A cache hit skipped the job-level report; build it now (once,
        # for the one execution handed to the user).
        result.first_report = (
            first.report if first.report is not None
            else _analyze(first.execution, state.detector)
        )
        result.recording_verified = verify_recording(
            state.program,
            state.model_factory(),
            first.recording,
            first.execution,
            max_steps=state.max_steps,
        )
        return
    # Cross-process (or checkpoint-restored) job: reconstruct the
    # execution by replaying the recording; matching the original
    # report digest verifies it.
    try:
        execution = replay_execution(
            state.program,
            state.model_factory(),
            first.recording,
            max_steps=state.max_steps,
        )
    except ReplayError:
        result.recording_verified = False
        return
    report = _analyze(execution, state.detector)
    result.first_racy = execution
    result.first_report = report
    result.recording_verified = (
        not report.race_free and report.format() == first.report_digest
    )


def merge_outcomes(
    state: _HuntState,
    outcomes: Sequence[JobOutcome],
    stop_at_first: bool,
) -> HuntResult:
    """Fold outcomes into a :class:`HuntResult` in canonical job order.

    Sorting by job index before folding makes the result a pure
    function of the outcome *set* — worker count, completion order,
    and checkpoint/resume boundaries cannot change it.  With
    ``stop_at_first``, outcomes beyond the first racy index are
    discarded (the serial path never ran them).  Only settled outcomes
    belong here: retried attempts are observer-visible telemetry, not
    merge input.
    """
    result = HuntResult(
        program=state.program,
        model_name=state.model_factory().name,
        tries=0,
        racy_runs=0,
        clean_runs=0,
        detector=state.detector,
        verify_robustness=state.verify_robustness,
    )
    first: Optional[JobOutcome] = None
    for outcome in sorted(outcomes, key=lambda o: o.job.index):
        if outcome.status == "skipped":
            continue
        if (
            stop_at_first
            and first is not None
            and outcome.job.index > first.job.index
        ):
            continue
        job = outcome.job
        result.tries += 1
        result.retried_runs += outcome.retries
        if outcome.status == "error":
            result.failures.append(
                JobFailure(seed=job.seed, policy=job.policy_name,
                           error=outcome.error,
                           traceback=outcome.traceback,
                           kind=outcome.failure_kind or "unretried",
                           retries=outcome.retries)
            )
            continue
        if not outcome.completed:
            result.step_bound_runs += 1
        if outcome.cache_hit:
            result.trace_cache_hits += 1
        racy = outcome.status == "racy"
        if racy:
            result.certified_races += outcome.certified_races
        if outcome.robust is not None:
            result.verified_tries += 1
            if outcome.robust:
                result.robust_tries += 1
            else:
                result.non_robust_tries += 1
                # Index-ordered fold: the first non-robust verdict kept
                # here is the lowest-index one, deterministically.
                if result.first_non_robust is None:
                    result.first_non_robust = outcome.robustness
        p_racy, p_total = result.per_policy.get(job.policy_name, (0, 0))
        result.per_policy[job.policy_name] = (p_racy + racy, p_total + 1)
        s_racy, s_total = result.per_seed.get(job.seed, (0, 0))
        result.per_seed[job.seed] = (s_racy + racy, s_total + 1)
        if racy:
            result.racy_runs += 1
            if first is None:
                first = outcome
        else:
            result.clean_runs += 1
    if first is not None:
        _attach_first(result, first, state)
    return result


# ----------------------------------------------------------------------
# telemetry folding (parent-side; batch workers pre-fold the
# status-independent instruments, the parent folds the rest per job)
# ----------------------------------------------------------------------

def _fold_outcome_metrics(
    registry, outcome: JobOutcome, done: int, total: int, racy: int,
    elapsed: float, detector: str = "postmortem",
    worker_folded: bool = False, model: str = "",
) -> None:
    """Update the hunt metric family (see the table in
    :mod:`repro.obs.metrics`) for one completed job.  Runs in the
    parent only, so gauge last-wins semantics are safe.  Retried
    attempts land in ``hunt_tries_total{status="retried"}`` without
    advancing the job gauges.

    With *worker_folded* (the batched pool path), the duration
    histogram and cache-hit counter already arrived pre-aggregated on
    the batch wire and were merged once per batch — only the
    status-labelled counter (whose ``retried`` reclassification the
    worker cannot see) and the parent-owned gauges fold here."""
    registry.counter(
        "hunt_tries_total", "hunt jobs by policy, outcome, and detector",
        labels=("policy", "status", "detector"),
    ).inc(
        policy=outcome.job.policy_name, status=outcome.status,
        detector=detector,
    )
    if not worker_folded:
        if outcome.cache_hit:
            registry.counter(
                "hunt_trace_cache_hits_total",
                "analyses served from the trace cache",
            ).inc()
        registry.histogram(
            "hunt_job_duration_seconds", "per-job wall time",
        ).observe(outcome.duration)
    if outcome.status == "error":
        registry.counter(
            "hunt_failures_total",
            "settled job failures by retry classification",
            labels=("kind",),
        ).inc(kind=outcome.failure_kind or "unretried")
    if outcome.robust is not None:
        registry.counter(
            "hunt_robust_tries_total",
            "robustness verdicts on verified hunt tries",
            labels=("model", "verdict"),
        ).inc(
            model=model,
            verdict="robust" if outcome.robust else "non-robust",
        )
    registry.gauge("hunt_done", "completed jobs").set(done)
    registry.gauge("hunt_total", "planned jobs").set(total)
    registry.gauge("hunt_racy", "racy runs so far").set(racy)
    registry.gauge(
        "hunt_elapsed_seconds", "wall time since the hunt began",
    ).set(elapsed)
    if elapsed > 0:
        registry.timeseries(
            "hunt_throughput", "(elapsed, jobs/sec) samples",
        ).record(elapsed, done / elapsed)


class _CoverageTracker:
    """Parent-side distinct-set coverage fold (the live novelty signal).

    Tracks the distinct trace fingerprints and first-race provenance
    partition signatures seen across settled outcomes — including
    checkpoint-restored ones, so a resumed hunt's coverage gauges pick
    up where the original left off.  Set membership lives here (plain
    parent-side sets); the registry only ever sees the cardinalities,
    so scrapers get gauges and a growth curve without the engine
    shipping sets anywhere.
    """

    def __init__(self) -> None:
        self.fingerprints: set = set()
        self.partitions: set = set()

    def fold(self, registry, outcome: JobOutcome, elapsed: float) -> None:
        grew_fp = False
        if outcome.fingerprint and outcome.fingerprint not in \
                self.fingerprints:
            self.fingerprints.add(outcome.fingerprint)
            grew_fp = True
        grew_part = False
        for key in outcome.partition_keys:
            if key not in self.partitions:
                self.partitions.add(key)
                grew_part = True
        if grew_fp:
            registry.gauge(
                "hunt_coverage_fingerprints",
                "distinct trace fingerprints seen this hunt",
            ).set(len(self.fingerprints))
        if grew_part:
            registry.gauge(
                "hunt_coverage_provenance_partitions",
                "distinct first-race provenance partition signatures",
            ).set(len(self.partitions))
        if (grew_fp or grew_part) and elapsed > 0:
            series = registry.timeseries(
                "hunt_coverage", "(elapsed, distinct count) growth curve",
                labels=("kind",),
            )
            if grew_fp:
                series.record(elapsed, len(self.fingerprints),
                              kind="fingerprints")
            if grew_part:
                series.record(elapsed, len(self.partitions),
                              kind="partitions")


def _prime_hunt_metrics(registry, hunt_id: str, detector: str,
                        model_name: str, total: int) -> None:
    """Register the hunt metric family up front, so a scrape racing the
    first settled outcome still sees every family (with zero samples)
    and ``hunt_info`` joins the scrape to the hunt's other surfaces."""
    registry.counter(
        "hunt_tries_total", "hunt jobs by policy, outcome, and detector",
        labels=("policy", "status", "detector"),
    )
    registry.counter(
        "hunt_trace_cache_hits_total",
        "analyses served from the trace cache",
    )
    registry.counter(
        "hunt_failures_total",
        "settled job failures by retry classification",
        labels=("kind",),
    )
    registry.counter(
        "hunt_robust_tries_total",
        "robustness verdicts on verified hunt tries",
        labels=("model", "verdict"),
    )
    registry.histogram("hunt_job_duration_seconds", "per-job wall time")
    registry.gauge("hunt_done", "completed jobs").set(0)
    registry.gauge("hunt_total", "planned jobs").set(total)
    registry.gauge("hunt_racy", "racy runs so far").set(0)
    registry.gauge(
        "hunt_elapsed_seconds", "wall time since the hunt began",
    ).set(0)
    registry.timeseries("hunt_throughput", "(elapsed, jobs/sec) samples")
    registry.gauge(
        "hunt_coverage_fingerprints",
        "distinct trace fingerprints seen this hunt",
    ).set(0)
    registry.gauge(
        "hunt_coverage_provenance_partitions",
        "distinct first-race provenance partition signatures",
    ).set(0)
    registry.timeseries(
        "hunt_coverage", "(elapsed, distinct count) growth curve",
        labels=("kind",),
    )
    registry.gauge(
        "hunt_info",
        "constant 1; labels join scrapes to events/checkpoints/results",
        labels=("hunt_id", "detector", "model"),
    ).set(1, hunt_id=hunt_id, detector=detector, model=model_name)


# ----------------------------------------------------------------------
# engine entry point
# ----------------------------------------------------------------------

def run_hunt(
    program: Program,
    model_factory: Callable[[], MemoryModel],
    *,
    tries: int,
    policies: Sequence[Tuple[str, PolicyFactory]],
    stop_at_first: bool = False,
    max_steps: int = 200_000,
    jobs: int = 1,
    job_timeout: Optional[float] = None,
    progress: Optional[ProgressCallback] = None,
    trace_cache: bool = True,
    on_outcome: Optional[Callable[[JobOutcome], None]] = None,
    metrics=None,
    max_retries: int = 2,
    retry_backoff: float = 0.05,
    checkpoint=None,
    resume: bool = False,
    checkpoint_interval: int = 100,
    cancel: Optional[threading.Event] = None,
    detector: str = "postmortem",
    batch_size: Optional[int] = None,
    hunt_id: Optional[str] = None,
    verify_robustness: bool = False,
) -> HuntResult:
    """Execute the seed x policy sweep on *jobs* workers and merge.

    The public entry point is
    :func:`repro.analysis.hunting.hunt_races`; this is the engine
    underneath it.  *progress*, if given, is called after every
    completed job as ``progress(done, total, racy_so_far)``.
    *on_outcome*, if given, receives each :class:`JobOutcome` as it
    completes, in completion order (the event log's feed) — including
    ``status="retried"`` attempts that a later retry superseded.

    When a :mod:`repro.obs` profiler is active, every job (in-process
    or forked) records per-stage spans into a job-local profiler; fork
    workers fold a whole batch's spans into per-span-path aggregates
    before shipping, and the parent merges one aggregate map per batch
    (plus the serial path's per-job records) onto the active profiler
    and ``HuntResult.stage_profile``.  Likewise, when a
    :mod:`repro.obs.metrics` registry is collecting (or one is passed
    as *metrics*), workers pre-fold the status-independent instruments
    per batch and the parent folds the status counter and gauges per
    job — one module-attribute check per hunt, so the disabled path
    stays free.

    Recovery knobs: *max_retries*/*retry_backoff* govern transient
    failure retries; *checkpoint*/*resume*/*checkpoint_interval* the
    durable progress file; *cancel* a cooperative stop that drains
    in-flight jobs and leaves ``result.interrupted`` set.  See the
    module docstring.

    *batch_size* overrides the dispatch batch sizing of the pool path
    (:func:`plan_batches`); the default targets a couple of batches
    per worker.  ``jobs=1`` ignores it — the serial loop has no wire
    to amortize.

    *detector* picks the analysis backend for every job (one of
    :data:`HUNT_DETECTORS`; ``"onthefly"`` is excluded because hunts
    analyze traces, not operation streams).  ``"streaming"`` consumes
    each execution's operation stream online with O(P·V) state and
    never materializes a trace (the trace cache is bypassed).  The
    detector is part of the checkpoint's hunt identity — resuming with
    a different one is a
    :class:`~repro.analysis.checkpoint.CheckpointMismatch`.

    *hunt_id* is the run's telemetry correlation id
    (:func:`~repro.analysis.checkpoint.make_hunt_id`); one is minted
    when the caller passes none.  On a resume the checkpoint's stored
    id always wins, so a resumed hunt's metrics, events, and results
    join with the interrupted run's.  The id lands on
    ``HuntResult.hunt_id``, in every checkpoint write, and — when a
    registry collects — on the ``hunt_info`` gauge.

    *verify_robustness* attaches a robustness verdict
    (:func:`repro.core.robustness.check_robustness`) to every try:
    verdicts ride each outcome (surviving batching, checkpoints, and
    resume), fold into ``hunt_robust_tries_total{model,verdict}``, and
    aggregate on the result — any non-robust try downgrades the
    result's soundness claim (see :attr:`HuntResult.soundness`).  Part
    of the checkpoint spec, like the detector.
    """
    if tries < 1:
        raise ValueError("tries must be positive")
    if jobs < 1:
        raise ValueError("jobs must be positive")
    if job_timeout is not None and job_timeout <= 0:
        raise ValueError("job_timeout must be positive (or None)")
    if max_retries < 0:
        raise ValueError("max_retries must be >= 0")
    if checkpoint_interval < 1:
        raise ValueError("checkpoint_interval must be positive")
    if resume and checkpoint is None:
        raise ValueError("resume requires a checkpoint path")
    if batch_size is not None and batch_size < 1:
        raise ValueError("batch_size must be positive (or None for auto)")
    if detector not in HUNT_DETECTORS:
        raise ValueError(
            f"unknown hunt detector {detector!r}; "
            f"known: {', '.join(HUNT_DETECTORS)}"
        )
    policy_list = list(policies)
    if not policy_list:
        raise ValueError("policies must not be empty")
    policy_names = [name for name, _ in policy_list]
    job_plan = plan_jobs(tries, policy_names)

    # Process-wide injected faults (e.g. no_numpy) apply before any
    # analysis runs; fork workers inherit the patched state.
    _faults.apply_process_faults()
    fault_plan = _faults.active_plan()

    spec = hunt_spec(
        program, model_factory().name, tries, policy_names,
        max_steps, stop_at_first, detector=detector,
        verify_robustness=verify_robustness,
    )
    restored: List[JobOutcome] = []
    racy_floor: Optional[int] = None
    if resume:
        loaded = load_checkpoint(checkpoint, expected_spec=spec)
        restored = loaded.outcomes
        settled_indices = loaded.settled_indices
        job_plan = [j for j in job_plan if j.index not in settled_indices]
        # The restored racy minimum seeds both shared bounds: with
        # stop_at_first nothing beyond it is planned at all, and either
        # way workers can skip shipping recordings that cannot beat it.
        racy_floor = loaded.first_racy_index
        if stop_at_first and racy_floor is not None:
            job_plan = [j for j in job_plan if j.index <= racy_floor]
        # The checkpoint's id wins: a resumed hunt is the same run for
        # telemetry purposes (legacy checkpoints have none to keep).
        if loaded.hunt_id:
            hunt_id = loaded.hunt_id
    if hunt_id is None:
        hunt_id = make_hunt_id(spec)
    writer = (
        CheckpointWriter(checkpoint, spec, checkpoint_interval,
                         hunt_id=hunt_id)
        if checkpoint is not None else None
    )

    profiling = obs.enabled()
    registry = metrics if metrics is not None else obs.metrics.active()
    state = _HuntState(program, model_factory, policy_list,
                       max_steps, job_timeout, profile=profiling,
                       trace_cache=trace_cache, detector=detector,
                       collect_metrics=registry is not None,
                       verify_robustness=verify_robustness)
    # Start every hunt cold so hit counts describe this hunt alone and
    # memory is bounded; workers inherit the empty L1 through fork and
    # share fresh analyses through the hunt's shared cache file.
    _TRACE_CACHE.clear()
    workers = min(jobs, max(len(job_plan), 1))
    if workers > 1 and "fork" not in multiprocessing.get_all_start_methods():
        workers = 1  # factories may be closures; spawn cannot ship them
    start = time.perf_counter()
    observe: Optional[OutcomeObserver] = None
    coverage: Optional[_CoverageTracker] = None
    if registry is not None:
        coverage = _CoverageTracker()
        # The hold() lock only matters when a telemetry server shares
        # the registry; without one it is uncontended and effectively
        # free (one RLock acquire per settled outcome, parent-side).
        with registry.hold():
            _prime_hunt_metrics(
                registry, hunt_id, state.detector,
                state.model_factory().name, tries,
            )
            for outcome in restored:
                coverage.fold(registry, outcome, 0.0)
            if restored:
                registry.gauge("hunt_done", "completed jobs") \
                    .set(len(restored))
                registry.gauge("hunt_racy", "racy runs so far").set(
                    sum(1 for o in restored if o.status == "racy")
                )
    if registry is not None or on_outcome is not None:
        worker_folded = workers > 1 and state.collect_metrics
        fold_model = state.model_factory().name

        def observe(outcome, done, total, racy):
            if registry is not None:
                with registry.hold():
                    _fold_outcome_metrics(
                        registry, outcome, done, total, racy,
                        time.perf_counter() - start,
                        detector=state.detector,
                        worker_folded=worker_folded,
                        model=fold_model,
                    )
                    if outcome.status in ("racy", "clean"):
                        coverage.fold(registry, outcome,
                                      time.perf_counter() - start)
            if on_outcome is not None:
                on_outcome(outcome)

    executor = (
        _SerialExecutor(state) if workers == 1
        else _PoolExecutor(state, workers, stop_at_first,
                           registry=registry, batch_size=batch_size,
                           racy_floor=racy_floor)
    )

    # Drive state shared by the settle path below.
    settled: List[JobOutcome] = list(restored)
    observed_profiles: List[JobOutcome] = []
    done = len(restored)
    racy_seen = sum(1 for o in restored if o.status == "racy")
    new_settled = 0
    interrupted = False

    def settle(outcome: JobOutcome) -> None:
        """One outcome is final: record, observe, checkpoint, and give
        the fault plan its shot at killing the parent (in that order,
        so an injected parent death leaves a usable checkpoint)."""
        nonlocal done, racy_seen, new_settled
        settled.append(outcome)
        done += 1
        racy_seen += outcome.status == "racy"
        new_settled += 1
        if observe is not None:
            observe(outcome, done, tries, racy_seen)
        if progress is not None:
            progress(done, tries, racy_seen)
        if writer is not None:
            writer.tick(settled)
        if fault_plan is not None:
            fault_plan.on_job_settled(new_settled)

    last_error: Dict[int, str] = {}
    pending = job_plan
    try:
        with obs.span("hunt") as sp:
            while pending:
                retry_next: List[HuntJob] = []
                for outcome in executor.run(pending):
                    if (
                        cancel is not None and cancel.is_set()
                        and not interrupted
                    ):
                        interrupted = True
                        executor.cancel()
                    if profiling and outcome.profile:
                        observed_profiles.append(outcome)
                    if outcome.status == "skipped":
                        # overrun past the early stop: report progress,
                        # never merged
                        done += 1
                        if observe is not None:
                            observe(outcome, done, tries, racy_seen)
                        if progress is not None:
                            progress(done, tries, racy_seen)
                        continue
                    if outcome.status == "error" and not interrupted:
                        index = outcome.job.index
                        prior = last_error.get(index)
                        if prior is not None and prior == outcome.error:
                            # failed identically twice: deterministic,
                            # surface instead of burning more retries
                            outcome.retries = outcome.job.attempt
                            outcome.failure_kind = "deterministic"
                        elif outcome.job.attempt < max_retries:
                            last_error[index] = outcome.error
                            outcome.status = "retried"
                            if observe is not None:
                                observe(outcome, done, tries, racy_seen)
                            retry_next.append(
                                _retry_job(outcome.job, retry_backoff)
                            )
                            continue
                        else:
                            outcome.retries = outcome.job.attempt
                            outcome.failure_kind = (
                                "exhausted" if outcome.job.attempt
                                else "unretried"
                            )
                    elif outcome.job.attempt:
                        outcome.retries = outcome.job.attempt
                    settle(outcome)
                    if stop_at_first and outcome.status == "racy":
                        executor.note_racy(outcome.job.index)
                        if workers == 1:
                            break
                if interrupted:
                    break
                if stop_at_first:
                    bound = _first_racy_index(settled)
                    if bound is not None:
                        retry_next = [
                            j for j in retry_next if j.index <= bound
                        ]
                pending = retry_next
            result = merge_outcomes(state, settled, stop_at_first)
            result.interrupted = interrupted
            result.resumed_jobs = len(restored)
            if sp.enabled:
                sp.add("tries", result.tries)
                sp.add("racy_runs", result.racy_runs)
                sp.add("clean_runs", result.clean_runs)
                sp.add("workers", workers)
    finally:
        executor.close()
    if writer is not None:
        writer.flush(settled, complete=not interrupted)
    if profiling:
        aggregates = obs.aggregate_records(
            o.profile for o in observed_profiles if o.profile
        )
        batch_aggs = getattr(executor, "profile_aggs", None)
        if batch_aggs:
            merge_aggregate_maps(aggregates, batch_aggs)
        profiler = obs.active()
        if profiler is not None:
            profiler.add_aggregates(aggregates)
        result.stage_profile = {
            path: agg.to_dict() for path, agg in sorted(aggregates.items())
        }
    result.jobs = workers
    result.elapsed = time.perf_counter() - start
    result.hunt_id = hunt_id
    return result


def _first_racy_index(outcomes: Sequence[JobOutcome]) -> Optional[int]:
    racy = [o.job.index for o in outcomes if o.status == "racy"]
    return min(racy) if racy else None
