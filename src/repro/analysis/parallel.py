"""The parallel race-hunting engine.

One dynamic run proves nothing (paper §1), so the hunt's currency is
*executions per second*.  This module turns the seed x policy sweep of
:mod:`repro.analysis.hunting` into an explicit job list and executes it
either in-process (``jobs=1`` — today's serial path) or across a
``fork``-based :mod:`multiprocessing` pool, with three properties the
serial loop gets for free and a pool must work for:

* **Determinism** — jobs carry a canonical index (seed-major over the
  policy list) and outcomes are merged in index order, so the merged
  :class:`~repro.analysis.hunting.HuntResult` statistics are identical
  for any worker count and any completion order.
* **Early stop** — with ``stop_at_first`` the parent broadcasts the
  lowest racy job index through a shared value; workers skip jobs
  *beyond* it (jobs before it still run, preserving the serial
  semantics of "everything up to and including the first racy run").
* **Isolation** — a job that raises, or exceeds ``job_timeout``
  wall-clock seconds, becomes a recorded
  :class:`~repro.analysis.hunting.JobFailure` instead of killing the
  hunt; an execution that hits the step bound is counted but flagged.

Workers never ship :class:`~repro.machine.simulator.ExecutionResult`
objects back — they return the racy run's
:class:`~repro.machine.replay.ExecutionRecording` (plain lists of
ints, cheap to pickle) plus a report digest, and the parent *replays*
the recording to reconstruct the execution.  That replay doubles as
verification that the advertised recording actually reproduces the
race (``HuntResult.recording_verified``).

Parallel execution requires the ``fork`` start method (policy and
model factories may be closures, which ``spawn`` cannot pickle); on
platforms without it the engine silently degrades to the serial path.
"""

from __future__ import annotations

import multiprocessing
import signal
import threading
import time
import traceback as _tb
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from .. import obs
from ..machine.models.base import MemoryModel
from ..machine.program import Program
from ..machine.replay import (
    ExecutionRecording,
    ReplayError,
    record_execution,
    replay_execution,
    verify_recording,
)
from ..trace.build import build_trace
from ..trace.fingerprint import trace_fingerprint
from .hunting import HuntResult, JobFailure, PolicyFactory

ProgressCallback = Callable[[int, int, int], None]
#: Observer hook: called with each JobOutcome as it completes, plus the
#: running (done, total, racy) tallies the progress callback sees.
OutcomeObserver = Callable[["JobOutcome", int, int, int], None]


def _analyze(source):
    """Route report construction through the unified entry point
    (imported lazily: repro.api itself imports this package)."""
    from ..api import detect

    return detect(source)


# Per-process analysis cache: trace fingerprint -> (racy, report
# digest, race count).  The detector is a pure function of the trace
# (see repro.trace.fingerprint), so seeds that collapse to an identical
# trace need analyzing once.  Workers fork after run_hunt clears it,
# so each worker accumulates its own cache over the jobs it drains;
# merged *statistics* stay worker-count-independent because a cache
# hit returns the exact result the analysis would have produced.
_TRACE_CACHE: Dict[str, Tuple[bool, str, int]] = {}
_TRACE_CACHE_MAX = 4096


@dataclass(frozen=True)
class HuntJob:
    """One unit of hunt work: run one seed under one policy.

    ``index`` is the job's position in the canonical seed-major
    enumeration; merging folds outcomes in ``index`` order, which is
    what makes the hunt's result independent of worker count.
    """

    index: int
    seed: int
    policy_index: int
    policy_name: str


@dataclass
class JobOutcome:
    """What one job produced, in picklable form.

    ``execution``/``report`` are populated only when the job ran
    in-process (the serial path keeps the live objects); workers leave
    them ``None`` and the parent reconstructs the racy execution by
    replaying ``recording``.
    """

    job: HuntJob
    status: str  # "racy" | "clean" | "error" | "skipped"
    completed: bool = True
    operations: int = 0
    error: str = ""
    recording: Optional[ExecutionRecording] = None
    report_digest: str = ""
    execution: Optional[object] = None
    report: Optional[object] = None
    profile: Optional[List[dict]] = None  # flat span records, if profiled
    cache_hit: bool = False  # analysis served from the trace cache
    duration: float = 0.0  # wall-clock seconds spent on this job
    fingerprint: str = ""  # canonical trace fingerprint ("" = cache off)
    race_count: int = 0  # races the analysis reported
    traceback: str = ""  # full traceback when status == "error"


def plan_jobs(tries: int, policy_names: Sequence[str]) -> List[HuntJob]:
    """The canonical seed-major job list: attempt ``i`` is seed
    ``i // P`` under policy ``i % P``, so every policy sweeps the same
    seed range (seed ``s`` runs under all ``P`` policies before seed
    ``s + 1`` starts)."""
    if not policy_names:
        raise ValueError("policies must not be empty")
    count = len(policy_names)
    return [
        HuntJob(
            index=i,
            seed=i // count,
            policy_index=i % count,
            policy_name=policy_names[i % count],
        )
        for i in range(tries)
    ]


class JobTimeout(Exception):
    """A job exceeded its wall-clock budget."""


@contextmanager
def _time_limit(seconds: Optional[float]) -> Iterator[None]:
    """Raise :class:`JobTimeout` if the body runs longer than
    *seconds* (SIGALRM-based; silently a no-op off the main thread or
    on platforms without SIGALRM)."""
    usable = (
        seconds is not None
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        yield
        return

    def _alarm(signum, frame):
        raise JobTimeout(f"execution exceeded {seconds}s")

    previous = signal.signal(signal.SIGALRM, _alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


class _HuntState:
    """Everything a job needs to run; shared with workers via fork."""

    def __init__(
        self,
        program: Program,
        model_factory: Callable[[], MemoryModel],
        policies: Sequence[Tuple[str, PolicyFactory]],
        max_steps: int,
        job_timeout: Optional[float],
        profile: bool = False,
        trace_cache: bool = True,
    ) -> None:
        self.program = program
        self.model_factory = model_factory
        self.policies = list(policies)
        self.max_steps = max_steps
        self.job_timeout = job_timeout
        self.profile = profile
        self.trace_cache = trace_cache


def _execute_job(
    state: _HuntState, job: HuntJob, keep_execution: bool
) -> JobOutcome:
    """Run one job; with profiling on, record it into a job-local
    profiler whose flat span records ride back on the outcome (cheap
    to pickle, aggregated by the parent across workers)."""
    begin = time.perf_counter()
    if not state.profile:
        outcome = _execute_job_inner(state, job, keep_execution)
        outcome.duration = time.perf_counter() - begin
        return outcome
    profiler = obs.Profiler()
    with profiler.activate():
        with obs.span("hunt.job") as sp:
            outcome = _execute_job_inner(state, job, keep_execution)
            sp.add("executions", 1)
            if outcome.status == "racy":
                sp.add("racy", 1)
            if outcome.cache_hit:
                sp.add("trace_cache_hits", 1)
    outcome.profile = profiler.to_records()
    outcome.duration = time.perf_counter() - begin
    return outcome


def _execute_job_inner(
    state: _HuntState, job: HuntJob, keep_execution: bool
) -> JobOutcome:
    """Run one job with failure/timeout isolation."""
    _, factory = state.policies[job.policy_index]
    try:
        with _time_limit(state.job_timeout):
            execution, recording = record_execution(
                state.program,
                state.model_factory(),
                seed=job.seed,
                propagation=factory(),
                max_steps=state.max_steps,
            )
            report = None
            cache_hit = False
            fingerprint = ""
            if state.trace_cache:
                trace = build_trace(execution)
                fingerprint = trace_fingerprint(trace)
                cached = _TRACE_CACHE.get(fingerprint)
                if cached is None:
                    report = _analyze(trace)
                    racy = not report.race_free
                    digest = report.format() if racy else ""
                    race_count = len(report.races)
                    if len(_TRACE_CACHE) >= _TRACE_CACHE_MAX:
                        _TRACE_CACHE.clear()
                    _TRACE_CACHE[fingerprint] = (racy, digest, race_count)
                else:
                    cache_hit = True
                    racy, digest, race_count = cached
            else:
                report = _analyze(execution)
                racy = not report.race_free
                digest = report.format() if racy else ""
                race_count = len(report.races)
    except Exception as exc:  # isolated, recorded by the merge
        return JobOutcome(
            job=job, status="error",
            error=f"{type(exc).__name__}: {exc}",
            traceback=_tb.format_exc(),
        )
    outcome = JobOutcome(
        job=job,
        status="racy" if racy else "clean",
        completed=execution.completed,
        operations=len(execution.operations),
        recording=recording if racy else None,
        report_digest=digest if racy else "",
        cache_hit=cache_hit,
        fingerprint=fingerprint,
        race_count=race_count,
    )
    if keep_execution:
        outcome.execution = execution
        outcome.report = report  # None on a cache hit; merge re-analyzes
    return outcome


# ----------------------------------------------------------------------
# worker-side plumbing (module-level so the pool task is picklable; the
# heavyweight state rides the fork, not the task pipe)
# ----------------------------------------------------------------------

_WORKER_STATE: Optional[_HuntState] = None
_WORKER_STOP = None  # multiprocessing.Value: lowest racy index, -1 = none


def _init_worker(state: _HuntState, stop_at) -> None:
    global _WORKER_STATE, _WORKER_STOP
    _WORKER_STATE = state
    _WORKER_STOP = stop_at


def _worker_run(job: HuntJob) -> JobOutcome:
    if _WORKER_STOP is not None:
        stop = _WORKER_STOP.value
        # Only jobs *beyond* the racy index are skippable: everything
        # before it is part of the deterministic stop_at_first prefix.
        if 0 <= stop < job.index:
            return JobOutcome(job=job, status="skipped")
    assert _WORKER_STATE is not None
    return _execute_job(_WORKER_STATE, job, keep_execution=False)


# ----------------------------------------------------------------------
# execution strategies
# ----------------------------------------------------------------------

def _run_serial(
    state: _HuntState,
    jobs: List[HuntJob],
    stop_at_first: bool,
    progress: Optional[ProgressCallback] = None,
    observe: Optional[OutcomeObserver] = None,
) -> List[JobOutcome]:
    outcomes: List[JobOutcome] = []
    racy = 0
    for job in jobs:
        outcome = _execute_job(state, job, keep_execution=True)
        outcomes.append(outcome)
        racy += outcome.status == "racy"
        if observe is not None:
            observe(outcome, len(outcomes), len(jobs), racy)
        if progress is not None:
            progress(len(outcomes), len(jobs), racy)
        if stop_at_first and outcome.status == "racy":
            break
    return outcomes


def _run_parallel(
    state: _HuntState,
    jobs: List[HuntJob],
    stop_at_first: bool,
    workers: int,
    progress: Optional[ProgressCallback] = None,
    observe: Optional[OutcomeObserver] = None,
) -> List[JobOutcome]:
    ctx = multiprocessing.get_context("fork")
    stop_at = ctx.Value("i", -1) if stop_at_first else None
    # Small chunks keep the early-stop responsive; otherwise amortize
    # the per-task IPC over larger batches.
    chunksize = 1 if stop_at_first else max(1, len(jobs) // (workers * 8))
    outcomes: List[JobOutcome] = []
    racy = 0
    with ctx.Pool(
        processes=workers,
        initializer=_init_worker,
        initargs=(state, stop_at),
    ) as pool:
        for outcome in pool.imap_unordered(
            _worker_run, jobs, chunksize=chunksize
        ):
            outcomes.append(outcome)
            racy += outcome.status == "racy"
            if observe is not None:
                observe(outcome, len(outcomes), len(jobs), racy)
            if progress is not None:
                progress(len(outcomes), len(jobs), racy)
            if stop_at is not None and outcome.status == "racy":
                with stop_at.get_lock():
                    if stop_at.value < 0 or outcome.job.index < stop_at.value:
                        stop_at.value = outcome.job.index
    return outcomes


# ----------------------------------------------------------------------
# deterministic merge
# ----------------------------------------------------------------------

def _attach_first(
    result: HuntResult, first: JobOutcome, state: _HuntState
) -> None:
    """Fill in the first racy execution + verify its recording."""
    result.seed = first.job.seed
    result.policy = first.job.policy_name
    result.recording = first.recording
    if first.recording is None:  # pragma: no cover - racy jobs record
        return
    if first.execution is not None:
        # In-process job: we hold the original execution; check the
        # recording reproduces it exactly before advertising replay.
        result.first_racy = first.execution
        # A cache hit skipped the job-level report; build it now (once,
        # for the one execution handed to the user).
        result.first_report = (
            first.report if first.report is not None
            else _analyze(first.execution)
        )
        result.recording_verified = verify_recording(
            state.program,
            state.model_factory(),
            first.recording,
            first.execution,
            max_steps=state.max_steps,
        )
        return
    # Cross-process job: reconstruct the execution by replaying the
    # recording; matching the worker's report digest verifies it.
    try:
        execution = replay_execution(
            state.program,
            state.model_factory(),
            first.recording,
            max_steps=state.max_steps,
        )
    except ReplayError:
        result.recording_verified = False
        return
    report = _analyze(execution)
    result.first_racy = execution
    result.first_report = report
    result.recording_verified = (
        not report.race_free and report.format() == first.report_digest
    )


def merge_outcomes(
    state: _HuntState,
    outcomes: Sequence[JobOutcome],
    stop_at_first: bool,
) -> HuntResult:
    """Fold outcomes into a :class:`HuntResult` in canonical job order.

    Sorting by job index before folding makes the result a pure
    function of the outcome *set* — worker count and completion order
    cannot change it.  With ``stop_at_first``, outcomes beyond the
    first racy index are discarded (the serial path never ran them).
    """
    result = HuntResult(
        program=state.program,
        model_name=state.model_factory().name,
        tries=0,
        racy_runs=0,
        clean_runs=0,
    )
    first: Optional[JobOutcome] = None
    for outcome in sorted(outcomes, key=lambda o: o.job.index):
        if outcome.status == "skipped":
            continue
        if (
            stop_at_first
            and first is not None
            and outcome.job.index > first.job.index
        ):
            continue
        job = outcome.job
        result.tries += 1
        if outcome.status == "error":
            result.failures.append(
                JobFailure(seed=job.seed, policy=job.policy_name,
                           error=outcome.error,
                           traceback=outcome.traceback)
            )
            continue
        if not outcome.completed:
            result.step_bound_runs += 1
        if outcome.cache_hit:
            result.trace_cache_hits += 1
        racy = outcome.status == "racy"
        p_racy, p_total = result.per_policy.get(job.policy_name, (0, 0))
        result.per_policy[job.policy_name] = (p_racy + racy, p_total + 1)
        s_racy, s_total = result.per_seed.get(job.seed, (0, 0))
        result.per_seed[job.seed] = (s_racy + racy, s_total + 1)
        if racy:
            result.racy_runs += 1
            if first is None:
                first = outcome
        else:
            result.clean_runs += 1
    if first is not None:
        _attach_first(result, first, state)
    return result


# ----------------------------------------------------------------------
# telemetry folding (parent-side, one call per completed job)
# ----------------------------------------------------------------------

def _fold_outcome_metrics(
    registry, outcome: JobOutcome, done: int, total: int, racy: int,
    elapsed: float,
) -> None:
    """Update the hunt metric family (see the table in
    :mod:`repro.obs.metrics`) for one completed job.  Runs in the
    parent only, so gauge last-wins semantics are safe."""
    registry.counter(
        "hunt_tries_total", "hunt jobs by policy and outcome",
        labels=("policy", "status"),
    ).inc(policy=outcome.job.policy_name, status=outcome.status)
    if outcome.cache_hit:
        registry.counter(
            "hunt_trace_cache_hits_total",
            "analyses served from the trace cache",
        ).inc()
    registry.histogram(
        "hunt_job_duration_seconds", "per-job wall time",
    ).observe(outcome.duration)
    registry.gauge("hunt_done", "completed jobs").set(done)
    registry.gauge("hunt_total", "planned jobs").set(total)
    registry.gauge("hunt_racy", "racy runs so far").set(racy)
    registry.gauge(
        "hunt_elapsed_seconds", "wall time since the hunt began",
    ).set(elapsed)
    if elapsed > 0:
        registry.timeseries(
            "hunt_throughput", "(elapsed, jobs/sec) samples",
        ).record(elapsed, done / elapsed)


# ----------------------------------------------------------------------
# engine entry point
# ----------------------------------------------------------------------

def run_hunt(
    program: Program,
    model_factory: Callable[[], MemoryModel],
    *,
    tries: int,
    policies: Sequence[Tuple[str, PolicyFactory]],
    stop_at_first: bool = False,
    max_steps: int = 200_000,
    jobs: int = 1,
    job_timeout: Optional[float] = None,
    progress: Optional[ProgressCallback] = None,
    trace_cache: bool = True,
    on_outcome: Optional[Callable[[JobOutcome], None]] = None,
    metrics=None,
) -> HuntResult:
    """Execute the seed x policy sweep on *jobs* workers and merge.

    The public entry point is
    :func:`repro.analysis.hunting.hunt_races`; this is the engine
    underneath it.  *progress*, if given, is called after every
    completed job as ``progress(done, total, racy_so_far)``.
    *on_outcome*, if given, receives each :class:`JobOutcome` as it
    completes, in completion order (the event log's feed).

    When a :mod:`repro.obs` profiler is active, every job (in-process
    or forked) records per-stage spans into a job-local profiler; the
    parent folds them into per-span-path aggregates on the active
    profiler and on ``HuntResult.stage_profile``.  Likewise, when a
    :mod:`repro.obs.metrics` registry is collecting (or one is passed
    as *metrics*), the parent folds per-job telemetry into it — one
    module-attribute check per hunt, so the disabled path stays free.
    """
    if tries < 1:
        raise ValueError("tries must be positive")
    if jobs < 1:
        raise ValueError("jobs must be positive")
    policy_list = list(policies)
    if not policy_list:
        raise ValueError("policies must not be empty")
    job_plan = plan_jobs(tries, [name for name, _ in policy_list])
    profiling = obs.enabled()
    state = _HuntState(program, model_factory, policy_list,
                       max_steps, job_timeout, profile=profiling,
                       trace_cache=trace_cache)
    # Start every hunt cold so hit counts describe this hunt alone and
    # memory is bounded; workers inherit the empty cache through fork
    # and each fills its own over the jobs it drains.
    _TRACE_CACHE.clear()
    workers = min(jobs, len(job_plan))
    if workers > 1 and "fork" not in multiprocessing.get_all_start_methods():
        workers = 1  # factories may be closures; spawn cannot ship them
    registry = metrics if metrics is not None else obs.metrics.active()
    start = time.perf_counter()
    observe: Optional[OutcomeObserver] = None
    if registry is not None or on_outcome is not None:
        def observe(outcome, done, total, racy):
            if registry is not None:
                _fold_outcome_metrics(
                    registry, outcome, done, total, racy,
                    time.perf_counter() - start,
                )
            if on_outcome is not None:
                on_outcome(outcome)
    with obs.span("hunt") as sp:
        if workers == 1:
            outcomes = _run_serial(
                state, job_plan, stop_at_first, progress, observe
            )
        else:
            outcomes = _run_parallel(
                state, job_plan, stop_at_first, workers, progress, observe
            )
        result = merge_outcomes(state, outcomes, stop_at_first)
        if sp.enabled:
            sp.add("tries", result.tries)
            sp.add("racy_runs", result.racy_runs)
            sp.add("clean_runs", result.clean_runs)
            sp.add("workers", workers)
    if profiling:
        aggregates = obs.aggregate_records(
            o.profile for o in outcomes if o.profile
        )
        profiler = obs.active()
        if profiler is not None:
            profiler.add_aggregates(aggregates)
        result.stage_profile = {
            path: agg.to_dict() for path, agg in sorted(aggregates.items())
        }
    result.jobs = workers
    result.elapsed = time.perf_counter() - start
    return result
