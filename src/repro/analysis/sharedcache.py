"""A cross-worker trace-analysis cache for the fork-pool hunt engine.

The per-worker dict cache (:data:`repro.analysis.parallel._TRACE_CACHE`)
fragments under ``--jobs``: every worker must pay one analysis per
distinct trace fingerprint, so a workload whose serial hit rate is 0.90
drops toward ``1 - workers * distinct / tries`` in a pool.  This module
restores the serial hit rate by sharing *analysis digests* — never live
reports — across workers through a structure every fork-safe process
can use:

* an **append-only JSONL file** of ``[fingerprint, racy, digest,
  race_count, certified_races]`` entries, created by the hunt parent
  and inherited by workers through fork;
* a **lock-guarded write path** (one :class:`multiprocessing.Lock`
  serializes appends, each a single flushed ``write()``), so records
  never interleave;
* a **lock-free read path**: a worker that misses its local dict reads
  the file tail past its own offset and folds only *complete* lines
  (everything up to the final newline), so a read racing an append sees
  the previous consistent prefix, never a torn record.

Two workers may race to analyze the same fingerprint and both append
it; that is harmless — the detector is a pure function of the trace
(:mod:`repro.trace.fingerprint`), so duplicate entries carry identical
values and the last one folded wins.

The cache stores exactly what the hunt's merge needs (the racy flag,
the report digest, and the race counts) and is deleted with the hunt
that created it; nothing here outlives a single ``run_hunt`` call.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Optional, Tuple

#: What one cached analysis is: (racy, report digest, race count,
#: certified race count) — the tuple the per-worker cache already kept.
CacheValue = Tuple[bool, str, int, int]


class SharedTraceCache:
    """Fingerprint-keyed analysis digests shared across fork workers.

    *local* is the L1 dict (hits never touch the file); *path* is the
    shared JSONL file; *lock* guards appends.  ``max_entries`` bounds
    the L1 exactly like the per-worker cache it replaces: on overflow
    the local dict is cleared (the file keeps serving refreshed
    entries, so correctness never depends on the bound).
    """

    def __init__(
        self,
        path: str,
        lock,
        local: Optional[Dict[str, CacheValue]] = None,
        max_entries: int = 4096,
    ) -> None:
        self.path = path
        self.lock = lock
        self.local: Dict[str, CacheValue] = local if local is not None else {}
        self.max_entries = max_entries
        self._offset = 0  # bytes of the shared file already folded

    # -- read path -----------------------------------------------------
    def get(self, fingerprint: str) -> Optional[CacheValue]:
        """The cached analysis for *fingerprint*, consulting the local
        dict first and refreshing from the shared file on a miss."""
        value = self.local.get(fingerprint)
        if value is not None:
            return value
        self._refresh()
        return self.local.get(fingerprint)

    def _refresh(self) -> None:
        """Fold every complete record appended since the last refresh
        into the local dict.  Lock-free: appends are serialized writes,
        so the only hazard is a trailing partial line — stop at the
        last newline and re-read it next time."""
        try:
            with open(self.path, "rb") as fh:
                fh.seek(self._offset)
                data = fh.read()
        except OSError:
            return  # file gone (hunt teardown raced a late worker)
        end = data.rfind(b"\n")
        if end < 0:
            return
        for line in data[: end + 1].splitlines():
            if not line:
                continue
            try:
                fingerprint, racy, digest, races, certified = json.loads(
                    line.decode("utf-8")
                )
            except (ValueError, UnicodeDecodeError):
                continue  # unreadable record: skip, never poison the hunt
            self._store_local(
                fingerprint, (bool(racy), digest, int(races), int(certified))
            )
        self._offset += end + 1

    # -- write path ----------------------------------------------------
    def put(self, fingerprint: str, value: CacheValue) -> None:
        """Record one fresh analysis locally and append it to the
        shared file under the lock."""
        self._store_local(fingerprint, value)
        racy, digest, races, certified = value
        line = json.dumps(
            [fingerprint, bool(racy), digest, int(races), int(certified)],
            separators=(",", ":"),
        ).encode("utf-8") + b"\n"
        try:
            with self.lock:
                with open(self.path, "ab") as fh:
                    fh.write(line)
                    fh.flush()
        except OSError:
            pass  # shared file unavailable: the local dict still serves

    def _store_local(self, fingerprint: str, value: CacheValue) -> None:
        if len(self.local) >= self.max_entries:
            self.local.clear()
        self.local[fingerprint] = value


def create_cache_file(prefix: str = "repro-trace-cache-") -> str:
    """Create the empty shared-cache file and return its path (the
    parent calls this before forking the pool)."""
    import tempfile

    fd, path = tempfile.mkstemp(prefix=prefix, suffix=".jsonl")
    os.close(fd)
    return path


def remove_cache_file(path: str) -> None:
    """Best-effort removal at hunt teardown."""
    try:
        os.unlink(path)
    except OSError:
        pass
