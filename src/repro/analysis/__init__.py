"""Baselines and verification analyses: the naive report-everything
detector, SC witness search, and detection-quality metrics."""

from .artifacts import ArtifactReport, analyze_artifacts
from .exhaustive import (
    ExhaustiveExplorer,
    ExplorationLimit,
    ExplorationResult,
    explore_program,
    is_program_data_race_free,
)
from .hunting import (
    HuntResult,
    JobFailure,
    default_policies,
    hunt_races,
    policies_by_name,
    policy_registry,
)
from .parallel import HuntJob, JobOutcome, plan_jobs, run_hunt
from .outcomes import OutcomeLimit, OutcomeSet, enumerate_outcomes
from .metrics import (
    DetectionSummary,
    RaceAccuracy,
    TraceOverhead,
    event_race_accuracy,
    op_races_in_scp,
    trace_overhead,
)
from .naive import NaiveDetector, NaiveReport
from .sc_checker import (
    ExecutionTooLarge,
    SCWitness,
    find_sc_witness,
    is_sequentially_consistent,
    verify_witness,
)

__all__ = [
    "ArtifactReport",
    "analyze_artifacts",
    "ExhaustiveExplorer",
    "ExplorationLimit",
    "ExplorationResult",
    "explore_program",
    "is_program_data_race_free",
    "OutcomeLimit",
    "OutcomeSet",
    "enumerate_outcomes",
    "HuntResult",
    "HuntJob",
    "JobFailure",
    "JobOutcome",
    "default_policies",
    "hunt_races",
    "plan_jobs",
    "policies_by_name",
    "policy_registry",
    "run_hunt",
    "DetectionSummary",
    "RaceAccuracy",
    "TraceOverhead",
    "event_race_accuracy",
    "op_races_in_scp",
    "trace_overhead",
    "NaiveDetector",
    "NaiveReport",
    "ExecutionTooLarge",
    "SCWitness",
    "find_sc_witness",
    "is_sequentially_consistent",
    "verify_witness",
]
