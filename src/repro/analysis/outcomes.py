"""Exhaustive outcome enumeration for litmus-sized programs.

Where :mod:`.exhaustive` explores every *sequentially consistent*
schedule, this module explores every behaviour a **weak** model admits:
the search branches both on which processor steps next and on which
buffered write is voluntarily delivered to which reader.  The result is
the complete set of final memory states — the litmus-test outcome table
(what tools like herd produce for real architectures, produced here for
the simulated models).

This makes the model-separation claims checkable rather than anecdotal:
the store-buffering "both read 0" outcome is *absent* from SC's outcome
set and *present* in WO's; a data-race-free program's outcome set is
identical on every model (the semantic content of the weak models'
SC-for-DRF guarantee).

State explosion is real: one extra choice point per (pending write x
reader) pair per step.  The enumerator is for litmus-sized programs;
it raises :class:`OutcomeLimit` beyond its budget rather than returning
a partial answer silently.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..machine.memory import MemorySystem
from ..machine.models.base import MemoryModel
from ..machine.processor import Processor
from ..machine.program import Program
from .exhaustive import (
    _MiniRecorder,
    _clone_processor,
    _is_blocked,
)


class OutcomeLimit(RuntimeError):
    """The exploration exceeded its state budget."""


@dataclass
class OutcomeSet:
    """All final memory states a program admits under one model."""

    program: Program
    model_name: str
    outcomes: Set[Tuple[Tuple[int, int], ...]]
    states_visited: int
    deadlocked_paths: int = 0

    def values_of(self, *names: str) -> Set[Tuple[int, ...]]:
        """Project the outcome set onto named locations."""
        addrs = [self.program.symbols.addr_of(name) for name in names]
        out: Set[Tuple[int, ...]] = set()
        for outcome in self.outcomes:
            memory = dict(outcome)
            out.add(tuple(memory.get(addr, 0) for addr in addrs))
        return out

    def __len__(self) -> int:
        return len(self.outcomes)


def _clone_weak_memory(m: MemorySystem) -> MemorySystem:
    from ..machine.memory import CellView, PendingWrite
    out = MemorySystem.__new__(MemorySystem)
    out.size = m.size
    out.processor_count = m.processor_count
    out.model = m.model
    out._committed = [CellView(c.value, c.seq, c.taint) for c in m._committed]
    out._views = [
        [CellView(c.value, c.seq, c.taint) for c in row] for row in m._views
    ]
    out._pending = [
        PendingWrite(pw.writer, pw.addr, pw.value, pw.seq, pw.taint,
                     set(pw.remaining))
        for pw in m._pending
    ]
    out._store_order = m._store_order
    out.flush_count = m.flush_count
    out.propagated_writes = m.propagated_writes
    out._delivery_log = None  # enumeration never records deliveries
    out.deliveries_logged = 0
    return out


def _state_key(processors: List[Processor], memory: MemorySystem) -> Tuple:
    procs = tuple(
        (p.pc, p.halted, tuple(sorted(p.regs.items()))) for p in processors
    )
    cells = tuple(c.value for c in memory._committed)
    views = tuple(
        tuple(c.value for c in row) for row in memory._views
    )
    pending = tuple(sorted(
        (pw.writer, pw.addr, pw.value, tuple(sorted(pw.remaining)))
        for pw in memory._pending
    ))
    return (procs, cells, views, pending)


def enumerate_outcomes(
    program: Program,
    model: MemoryModel,
    max_states: int = 300_000,
    interesting: Optional[List[str]] = None,
) -> OutcomeSet:
    """Every final memory state *program* admits under *model*.

    Transitions from each state: one instruction step of any runnable
    processor, or one voluntary delivery of a pending write to one
    reader.  Every path must eventually drain its buffer (final states
    are only recorded when all processors halted AND the buffer is
    empty — quiescence, matching the simulator's completed executions).

    Args:
        interesting: optional location names; when given, outcomes are
            deduplicated by those locations only, which can shrink the
            recorded set (the search itself is unaffected).
    """
    memory = MemorySystem(
        size=max(program.memory_size, 1),
        processor_count=program.processor_count,
        model=model,
        initial=program.initial_memory,
    )
    processors = [
        Processor(pid, thread) for pid, thread in enumerate(program.threads)
    ]
    keep_addrs = None
    if interesting is not None:
        keep_addrs = [program.symbols.addr_of(name) for name in interesting]

    outcomes: Set[Tuple[Tuple[int, int], ...]] = set()
    seen: Set[Tuple] = set()
    stats = {"states": 0, "deadlocks": 0}

    def record_outcome(memory: MemorySystem) -> None:
        snapshot = memory.committed_memory()
        if keep_addrs is not None:
            outcome = tuple((a, snapshot.get(a, 0)) for a in keep_addrs)
        else:
            outcome = tuple(sorted(snapshot.items()))
        outcomes.add(outcome)

    # Explicit worklist (depth-first) — litmus paths are short but
    # Python's recursion limit shouldn't be the enumerator's limit.
    work: List[Tuple[List[Processor], MemorySystem, int]] = [
        (processors, memory, 0)
    ]
    while work:
        procs, mem, next_seq = work.pop()
        key = _state_key(procs, mem)
        if key in seen:
            continue
        seen.add(key)
        stats["states"] += 1
        if stats["states"] > max_states:
            raise OutcomeLimit(f"exceeded max_states={max_states}")

        runnable = [
            p.pid for p in procs
            if not p.halted and not _is_blocked(p, mem)
        ]
        deliveries = [
            (pw.seq, reader)
            for pw in mem.pending_writes()
            for reader in sorted(pw.remaining)
        ]
        all_halted = all(p.halted for p in procs)
        if not runnable and (not deliveries or all_halted):
            # Quiescent, or halted with only buffer drains left (the
            # committed state is already final either way).
            if all_halted:
                record_outcome(mem)
            else:
                stats["deadlocks"] += 1
            continue

        for pid in runnable:
            new_procs = [_clone_processor(p) for p in procs]
            new_mem = _clone_weak_memory(mem)
            # Seq numbers stay globally monotone along each path so the
            # memory system's newer-write-wins guard behaves correctly.
            recorder = _MiniRecorder(start_seq=next_seq)
            new_procs[pid].step(new_mem, recorder)
            work.append((new_procs, new_mem, recorder._seq))

        for seq, reader in deliveries:
            new_mem = _clone_weak_memory(mem)
            for pw in new_mem.pending_writes():
                if pw.seq == seq:
                    new_mem.propagate(pw, reader)
                    break
            work.append((
                [_clone_processor(p) for p in procs], new_mem, next_seq
            ))
    return OutcomeSet(
        program=program,
        model_name=model.name,
        outcomes=outcomes,
        states_visited=stats["states"],
        deadlocked_paths=stats["deadlocks"],
    )
