"""Detection-quality and overhead metrics.

Quantifies the paper's qualitative comparisons: how many of the races a
weak execution exhibits are sequentially consistent (belong to the
ground-truth SCP), what fraction of each detector's report is SC-valid
(precision), and how much trace the instrumentation writes at event
versus operation granularity (the section 4.1 overhead argument).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from ..core.ophb import OpHappensBefore, OpRace, find_op_races
from ..core.report import RaceReport
from ..core.scp import SCPrefix, extract_scp
from ..machine.simulator import ExecutionResult
from ..trace.build import Trace, event_of_op
from ..trace.events import ComputationEvent, SyncEvent


@dataclass
class RaceAccuracy:
    """How a detector's reported race set compares to ground truth."""

    reported: int
    reported_sc_valid: int
    ground_truth_sc_races: int
    total_races: int

    @property
    def precision(self) -> float:
        """Fraction of reported races that are SC-valid."""
        if self.reported == 0:
            return 1.0
        return self.reported_sc_valid / self.reported

    @property
    def recall(self) -> float:
        """Fraction of SC-valid races that were reported."""
        if self.ground_truth_sc_races == 0:
            return 1.0
        return self.reported_sc_valid / self.ground_truth_sc_races


def op_races_in_scp(result: ExecutionResult) -> Tuple[List[OpRace], SCPrefix]:
    """Ground truth: the operation-level data races whose operations
    both lie in the execution's SCP (the SC-valid races)."""
    hb = OpHappensBefore(result.operations)
    races = [r for r in find_op_races(result.operations, hb) if r.is_data_race]
    scp = extract_scp(result, hb)
    return [r for r in races if scp.contains_race(r)], scp


def _event_race_keys(trace: Trace, races) -> Set[frozenset]:
    return {frozenset((race.a, race.b)) for race in races}


def event_race_accuracy(
    result: ExecutionResult,
    trace: Trace,
    reported_races,
) -> RaceAccuracy:
    """Score an event-level race report against the op-level ground
    truth: an event race is SC-valid if at least one op-level SCP data
    race maps into its event pair (section 4.1's lifting rule)."""
    sc_races, _scp = op_races_in_scp(result)
    sc_event_pairs: Set[frozenset] = set()
    for race in sc_races:
        ea = event_of_op(trace, race.a)
        eb = event_of_op(trace, race.b)
        if ea is not None and eb is not None:
            sc_event_pairs.add(frozenset((ea, eb)))

    hb = OpHappensBefore(result.operations)
    all_data = [
        r for r in find_op_races(result.operations, hb) if r.is_data_race
    ]
    reported_keys = _event_race_keys(trace, reported_races)
    valid = sum(1 for key in reported_keys if key in sc_event_pairs)
    return RaceAccuracy(
        reported=len(reported_keys),
        reported_sc_valid=valid,
        ground_truth_sc_races=len(sc_event_pairs),
        total_races=len(all_data),
    )


@dataclass
class TraceOverhead:
    """Size comparison of event-granularity vs per-operation tracing."""

    operations: int
    events: int
    sync_events: int
    computation_events: int
    bitvector_bits: int

    @property
    def record_ratio(self) -> float:
        """Event records per operation record — below 1.0 whenever
        computation events batch more than one operation."""
        if self.operations == 0:
            return 1.0
        return self.events / self.operations


def trace_overhead(result: ExecutionResult, trace: Trace) -> TraceOverhead:
    events = trace.all_events()
    sync = sum(1 for e in events if isinstance(e, SyncEvent))
    comp = len(events) - sync
    bits = sum(
        len(e.reads) + len(e.writes)
        for e in events
        if isinstance(e, ComputationEvent)
    )
    return TraceOverhead(
        operations=len(result.operations),
        events=len(events),
        sync_events=sync,
        computation_events=comp,
        bitvector_bits=bits,
    )


@dataclass
class DetectionSummary:
    """One row of the accuracy benches: a detector's view of one run."""

    detector: str
    model: str
    seed: Optional[int]
    reported_races: int
    first_partitions: int
    suppressed_races: int
    precision: float

    @staticmethod
    def from_report(
        result: ExecutionResult, report: RaceReport, detector: str = "first-partition"
    ) -> "DetectionSummary":
        accuracy = event_race_accuracy(result, report.trace, report.reported_races)
        return DetectionSummary(
            detector=detector,
            model=result.model_name,
            seed=result.seed,
            reported_races=len(report.reported_races),
            first_partitions=len(report.first_partitions),
            suppressed_races=len(report.suppressed_races),
            precision=accuracy.precision,
        )
