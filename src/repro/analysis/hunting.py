"""Race hunting: searching executions for a racy one.

A single clean dynamic run proves nothing about a program (section 1 of
the paper: dynamic techniques "provide little information about other
executions").  Between one run and the exhaustive explorer sits the
practical middle ground every dynamic tool ships: run many schedules
and propagation behaviours, keep the first racy execution found, and
hand back its *recording* so the race replays deterministically in a
debugger.

The hunt sweeps seeds across a set of propagation-policy factories
(stubborn and NUMA-ring shapes surface weak-memory reorderings that
eager propagation hides) and reports per-policy and per-seed
statistics.  Every policy is swept over the *same* seed range
(seed-major enumeration: attempt ``i`` runs seed ``i // P`` under
policy ``i % P``), so per-policy racy rates are directly comparable
and adding or removing a policy never changes which seeds another
policy observes.

Execution is delegated to :mod:`repro.analysis.parallel`, which shards
the (seed, policy) jobs across worker processes when ``jobs > 1`` and
merges outcomes deterministically — the merged :class:`HuntResult`
statistics are identical for any worker count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.report import RaceReport
from ..machine.models.base import MemoryModel
from ..machine.program import Program
from ..machine.propagation import (
    EagerPropagation,
    HomeDirectoryPropagation,
    PropagationPolicy,
    RandomPropagation,
    StubbornPropagation,
)
from ..machine.replay import ExecutionRecording
from ..machine.simulator import ExecutionResult

PolicyFactory = Callable[[], PropagationPolicy]


def default_policies(processor_count: int) -> List[Tuple[str, PolicyFactory]]:
    """The hunt's standard propagation shapes."""
    return [
        ("stubborn", StubbornPropagation),
        ("random-0.2", lambda: RandomPropagation(0.2)),
        ("ring", lambda: HomeDirectoryPropagation.ring(
            max(processor_count, 2)
        )),
    ]


def policy_registry(processor_count: int) -> Dict[str, PolicyFactory]:
    """Every named propagation shape the CLI can sweep."""
    registry: Dict[str, PolicyFactory] = dict(
        default_policies(processor_count)
    )
    registry["eager"] = EagerPropagation
    registry["random-0.5"] = lambda: RandomPropagation(0.5)
    return registry


POLICY_NAMES = ("stubborn", "random-0.2", "ring", "eager", "random-0.5")


def policies_by_name(
    names: Sequence[str], processor_count: int
) -> List[Tuple[str, PolicyFactory]]:
    """Resolve policy names (CLI ``--policies``) to ``(name, factory)``
    pairs, preserving order.  Unknown names raise :class:`ValueError`."""
    registry = policy_registry(processor_count)
    unknown = [name for name in names if name not in registry]
    if unknown:
        raise ValueError(
            f"unknown propagation polic{'ies' if len(unknown) > 1 else 'y'} "
            f"{', '.join(sorted(unknown))}; "
            f"known: {', '.join(sorted(registry))}"
        )
    return [(name, registry[name]) for name in names]


@dataclass(frozen=True)
class JobFailure:
    """One hunt job that crashed or timed out instead of completing.

    ``traceback`` carries the worker's full traceback text.  It stays
    out of :meth:`HuntResult.stats` (whose output is a deterministic
    function of the job set — tracebacks embed file paths and line
    numbers) but rides on :meth:`HuntResult.to_json` so ``weakraces
    hunt --json`` surfaces what actually went wrong.

    ``kind`` records how the retry layer classified the failure:

    * ``"deterministic"`` — failed identically on consecutive
      attempts; retrying would burn time reproducing the same bug.
    * ``"exhausted"`` — kept failing (differently) through
      ``max_retries`` retries.
    * ``"unretried"`` — settled on the first attempt (retries
      disabled, or the hunt was interrupted).

    ``retries`` is the number of retry attempts that preceded this
    final failure (0 = it failed once and settled).
    """

    seed: int
    policy: str
    error: str
    traceback: str = ""
    kind: str = "unretried"
    retries: int = 0


@dataclass
class HuntResult:
    """Outcome of a race hunt."""

    program: Program
    model_name: str
    tries: int
    racy_runs: int
    clean_runs: int
    first_racy: Optional[ExecutionResult] = None
    first_report: Optional[RaceReport] = None
    recording: Optional[ExecutionRecording] = None
    seed: Optional[int] = None
    policy: Optional[str] = None
    per_policy: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    per_seed: Dict[int, Tuple[int, int]] = field(default_factory=dict)
    recording_verified: Optional[bool] = None
    failures: List[JobFailure] = field(default_factory=list)
    step_bound_runs: int = 0
    jobs: int = 1
    elapsed: float = 0.0
    stage_profile: Optional[Dict[str, dict]] = None
    # Analyses served from the per-worker trace cache.  Like jobs and
    # elapsed, this depends on how jobs landed on workers (each worker
    # caches independently), so it belongs to the run metadata in
    # to_json(), never to the deterministic stats()/summary() contract.
    trace_cache_hits: int = 0
    # Recovery metadata.  retried_runs counts retry attempts that
    # preceded the settled outcomes; under real timeouts it is timing-
    # dependent, so like trace_cache_hits it lives in to_json() only.
    retried_runs: int = 0
    # True when a cancel event (SIGINT/SIGTERM) stopped the hunt early;
    # the statistics then cover the settled prefix only.
    interrupted: bool = False
    # Jobs restored from a resume checkpoint rather than executed.
    resumed_jobs: int = 0
    # Which detection backend analyzed every execution (see
    # repro.analysis.parallel.HUNT_DETECTORS).  Part of the checkpoint
    # hunt identity; surfaced in to_json() only so stats()/summary()
    # stay byte-identical to hunts recorded before the field existed.
    detector: str = "postmortem"
    # Sum of report.certified_race_count over racy runs — the races-
    # found-per-try numerator benchmarks compare detectors by.  Lives
    # in to_json() with the detector, for the same reason.
    certified_races: int = 0
    # Telemetry correlation id (repro.analysis.checkpoint.make_hunt_id).
    # The same id appears in the metrics registry's hunt_info gauge,
    # the event log's meta record, the checkpoint, and profile exports;
    # run metadata only, so stats()/summary() stay byte-identical.
    hunt_id: Optional[str] = None
    # Robustness verification (repro.core.robustness): when enabled,
    # every try carries a verdict — did the execution have an SC
    # justification?  Verdicts are deterministic per job, but the whole
    # family is gated on verify_robustness so hunts that never asked
    # keep stats()/summary() byte-identical to the historical output.
    verify_robustness: bool = False
    verified_tries: int = 0
    robust_tries: int = 0
    non_robust_tries: int = 0
    # The lowest-index non-robust try's RobustnessReport.to_json()
    # payload: the violating cycle and SC-prefix boundary, exactly as
    # the worker computed them (rebuild with repro.report_from_json).
    first_non_robust: Optional[dict] = None

    @property
    def found(self) -> bool:
        return self.racy_runs > 0

    @property
    def soundness(self) -> Optional[str]:
        """The detector-soundness claim this hunt's verdicts support.

        ``None`` when robustness was not verified (no claim either
        way).  ``"sc-justified"`` when every verified try was robust:
        each analyzed execution has an SC justification, so SC-based
        detection theory applies to all of them directly.
        ``"degraded"`` when any try was non-robust: those executions
        genuinely left sequential consistency, and the detector's
        guarantees hold only up to each one's SC-prefix boundary
        (Condition 3.4's clause 2 territory — see
        ``docs/detection_pipeline.md``).
        """
        if not self.verify_robustness:
            return None
        return "degraded" if self.non_robust_tries else "sc-justified"

    @property
    def executions_per_second(self) -> float:
        if self.elapsed <= 0.0:
            return 0.0
        return self.tries / self.elapsed

    def stats(self) -> dict:
        """The merge-determined statistics: identical for any worker
        count over the same job set (no timing, no worker count)."""
        return {
            "model": self.model_name,
            "tries": self.tries,
            "racy_runs": self.racy_runs,
            "clean_runs": self.clean_runs,
            "step_bound_runs": self.step_bound_runs,
            "found": self.found,
            "seed": self.seed,
            "policy": self.policy,
            "recording_verified": self.recording_verified,
            "per_policy": {
                name: {"racy": racy, "runs": total}
                for name, (racy, total) in sorted(self.per_policy.items())
            },
            "per_seed": {
                str(seed): {"racy": racy, "runs": total}
                for seed, (racy, total) in sorted(self.per_seed.items())
            },
            "failures": [
                {"seed": f.seed, "policy": f.policy, "error": f.error,
                 "kind": f.kind, "retries": f.retries}
                for f in self.failures
            ],
        }

    def to_json(self) -> dict:
        """``stats()`` plus the run's timing/worker metadata."""
        payload = self.stats()
        payload["jobs"] = self.jobs
        payload["elapsed_sec"] = round(self.elapsed, 6)
        payload["executions_per_sec"] = round(self.executions_per_second, 1)
        payload["trace_cache_hits"] = self.trace_cache_hits
        payload["retried_runs"] = self.retried_runs
        payload["interrupted"] = self.interrupted
        payload["resumed_jobs"] = self.resumed_jobs
        payload["detector"] = self.detector
        payload["certified_races"] = self.certified_races
        payload["hunt_id"] = self.hunt_id
        if self.verify_robustness:
            payload["robustness"] = {
                "verified_tries": self.verified_tries,
                "robust": self.robust_tries,
                "non_robust": self.non_robust_tries,
                "soundness": self.soundness,
                "first_non_robust": self.first_non_robust,
            }
        # stats() keeps failures deterministic; the JSON view adds the
        # worker tracebacks so crashes are debuggable from the output.
        payload["failures"] = [
            {"seed": f.seed, "policy": f.policy, "error": f.error,
             "kind": f.kind, "retries": f.retries,
             "traceback": f.traceback}
            for f in self.failures
        ]
        if self.stage_profile is not None:
            payload["stage_profile"] = self.stage_profile
        return payload

    def summary(self) -> str:
        lines = [
            f"hunted {self.tries} executions on {self.model_name}: "
            f"{self.racy_runs} racy, {self.clean_runs} clean"
        ]
        for policy, (racy, total) in sorted(self.per_policy.items()):
            lines.append(f"  {policy}: {racy}/{total} racy")
        if self.step_bound_runs:
            lines.append(
                f"  {self.step_bound_runs} run(s) hit the step bound "
                f"before completing"
            )
        for failure in self.failures:
            # Retry provenance is deterministic (classification is a
            # function of the error texts), so it may appear here;
            # unretried failures keep the historical line byte-for-byte.
            suffix = (
                f" [{failure.kind} after {failure.retries + 1} attempts]"
                if failure.retries else ""
            )
            lines.append(
                f"  FAILED seed={failure.seed} policy={failure.policy}: "
                f"{failure.error}{suffix}"
            )
        if self.found and self.seed is not None:
            first = (
                f"first racy execution: seed={self.seed}, "
                f"policy={self.policy}"
            )
            if self.recording_verified is False:
                lines.append(first)
                lines.append(
                    "  WARNING: recording failed replay verification; "
                    "the captured recording does not reproduce this race"
                )
            else:
                lines.append(first + "; recording captured for replay")
        elif not self.found:
            lines.append(
                "no racy execution found (not a proof of data-race-"
                "freedom; see analysis.exhaustive for that)"
            )
        if self.verify_robustness:
            lines.append(
                f"  robustness: {self.robust_tries}/{self.verified_tries} "
                f"verified tries robust"
            )
            if self.non_robust_tries:
                lines.append(
                    f"  SOUNDNESS DEGRADED: {self.non_robust_tries} "
                    f"execution(s) have no SC justification; detector "
                    f"guarantees hold only up to each one's SC-prefix "
                    f"boundary"
                )
        if self.interrupted:
            lines.append(
                "hunt interrupted: statistics cover the settled jobs "
                "only (resume with --checkpoint FILE --resume)"
            )
        return "\n".join(lines)


def hunt_races(
    program: Program,
    model_factory: Callable[[], MemoryModel],
    tries: int = 24,
    policies: Optional[Sequence[Tuple[str, PolicyFactory]]] = None,
    stop_at_first: bool = False,
    max_steps: int = 200_000,
    jobs: int = 1,
    job_timeout: Optional[float] = None,
    progress: Optional[Callable[[int, int, int], None]] = None,
    trace_cache: bool = True,
    on_outcome: Optional[Callable[[object], None]] = None,
    metrics=None,
    max_retries: int = 2,
    retry_backoff: float = 0.05,
    checkpoint=None,
    resume: bool = False,
    checkpoint_interval: int = 100,
    cancel=None,
    detector: str = "postmortem",
    batch_size: Optional[int] = None,
    hunt_id: Optional[str] = None,
    verify_robustness: bool = False,
) -> HuntResult:
    """Sweep seeds x propagation policies looking for racy executions.

    Args:
        program: the program under test.
        model_factory: builds a fresh memory model per run (models are
            stateless today, but a factory keeps that a non-assumption).
        tries: total executions.  Enumeration is seed-major — attempt
            ``i`` runs seed ``i // P`` under policy ``i % P`` — so all
            ``P`` policies sweep the same seed range (when ``tries`` is
            a multiple of ``P``, identical seed sets; otherwise the
            final seed covers only a prefix of the policy list).
        policies: ``(name, factory)`` pairs; defaults to
            :func:`default_policies`.  An explicit empty sequence is an
            error — a hunt with no policies can run nothing.
        stop_at_first: return as soon as one racy execution is found.
        max_steps: per-execution simulator step bound (runs that hit it
            are still analyzed, and counted in ``step_bound_runs``).
        jobs: worker processes.  ``1`` runs in-process; ``N > 1`` shards
            jobs across a fork-based pool (see
            :mod:`repro.analysis.parallel`) with statistics identical
            to the serial run.
        job_timeout: optional per-execution wall-clock limit in
            seconds; a timed-out job is recorded as a failure, not
            fatal.  Wall-clock limits are inherently nondeterministic —
            leave unset when exact reproducibility matters.
        progress: optional callback invoked after every completed job
            as ``progress(done, total, racy_so_far)`` (the CLI uses it
            for a live status line).
        trace_cache: serve repeated analyses from a per-worker cache
            keyed by the canonical trace fingerprint (the detector is a
            pure function of the trace, so hits are exact).  Hit counts
            surface in ``HuntResult.trace_cache_hits`` and the
            ``trace_cache_hits`` obs counter.  Disable to force every
            execution through the full pipeline (e.g. when profiling
            detector stages).
        on_outcome: optional observer invoked with each
            :class:`repro.analysis.parallel.JobOutcome` as it
            completes, in completion order (e.g.
            ``repro.obs.events.HuntEventLog(...).on_outcome``).
        metrics: optional :class:`repro.obs.metrics.MetricsRegistry` to
            fold per-job telemetry into; defaults to whatever registry
            ``repro.obs.metrics.collect`` has made active, if any.
        max_retries: retry a transiently failing job up to this many
            times with exponential backoff before recording it as a
            :class:`JobFailure`; a job that fails identically twice in
            a row is classified deterministic and not retried further.
            ``0`` disables retries.
        retry_backoff: base backoff delay in seconds (attempt ``n``
            sleeps ``retry_backoff * 2**(n-1)`` scaled by
            deterministic seeded jitter).
        checkpoint: optional path; settled outcomes are periodically
            persisted there (atomic write), making the hunt resumable
            after a crash.
        resume: load *checkpoint* first, validate it against this
            hunt's spec (program/model/tries/policies/max_steps —
            mismatch is a :class:`repro.analysis.checkpoint.
            CheckpointMismatch` hard error), skip settled jobs, and
            merge restored + fresh outcomes; ``stats()``/``summary()``
            come out byte-identical to an uninterrupted run.
        checkpoint_interval: settled outcomes between periodic
            checkpoint writes (a final write always happens at hunt
            end).
        cancel: optional :class:`threading.Event`; once set, dispatch
            stops, in-flight jobs drain, a final checkpoint is written
            and the partial result has ``interrupted=True``.
        detector: analysis backend for every execution — one of
            :data:`repro.analysis.parallel.HUNT_DETECTORS`
            (``"postmortem"``, ``"naive"``, ``"shb"``, ``"wcp"``,
            ``"streaming"``; ``"onthefly"`` needs the operation stream
            and is not huntable).  ``"streaming"`` analyzes each
            execution online without materializing a trace, so the
            trace cache is bypassed.  Part of the checkpoint spec:
            resuming a checkpoint written by a different detector is a
            :class:`~repro.analysis.checkpoint.CheckpointMismatch`.
        batch_size: jobs per pool dispatch batch (``jobs > 1`` only;
            the serial path has no wire to amortize).  Defaults to an
            auto size targeting a couple of batches per worker —
            override only to study the batching/latency trade-off
            (``1`` reproduces the old job-per-pickle protocol).
        hunt_id: telemetry correlation id; minted automatically when
            omitted, overridden by the checkpoint's stored id on a
            resume.  See :func:`repro.analysis.checkpoint.make_hunt_id`.
        verify_robustness: attach a robustness verdict
            (:func:`repro.core.robustness.check_robustness`) to every
            try.  Verdicts survive batching, checkpoints, and resume;
            aggregate counts land on the result and any non-robust try
            downgrades :attr:`HuntResult.soundness` to ``"degraded"``.
            Part of the checkpoint spec, like the detector.
    """
    if tries < 1:
        raise ValueError("tries must be positive")
    if jobs < 1:
        raise ValueError("jobs must be positive")
    if policies is None:
        policy_list = default_policies(program.processor_count)
    else:
        policy_list = list(policies)
        if not policy_list:
            raise ValueError(
                "policies must not be empty (pass None for the defaults)"
            )
    from .parallel import run_hunt
    return run_hunt(
        program,
        model_factory,
        tries=tries,
        policies=policy_list,
        stop_at_first=stop_at_first,
        max_steps=max_steps,
        jobs=jobs,
        job_timeout=job_timeout,
        progress=progress,
        trace_cache=trace_cache,
        on_outcome=on_outcome,
        metrics=metrics,
        max_retries=max_retries,
        retry_backoff=retry_backoff,
        checkpoint=checkpoint,
        resume=resume,
        checkpoint_interval=checkpoint_interval,
        cancel=cancel,
        detector=detector,
        batch_size=batch_size,
        hunt_id=hunt_id,
        verify_robustness=verify_robustness,
    )
