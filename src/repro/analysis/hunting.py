"""Race hunting: searching executions for a racy one.

A single clean dynamic run proves nothing about a program (section 1 of
the paper: dynamic techniques "provide little information about other
executions").  Between one run and the exhaustive explorer sits the
practical middle ground every dynamic tool ships: run many schedules
and propagation behaviours, keep the first racy execution found, and
hand back its *recording* so the race replays deterministically in a
debugger.

The hunt sweeps seeds across a set of propagation-policy factories
(stubborn and NUMA-ring shapes surface weak-memory reorderings that
eager propagation hides) and reports per-policy statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.detector import PostMortemDetector
from ..core.report import RaceReport
from ..machine.models.base import MemoryModel
from ..machine.program import Program
from ..machine.propagation import (
    HomeDirectoryPropagation,
    PropagationPolicy,
    RandomPropagation,
    StubbornPropagation,
)
from ..machine.replay import ExecutionRecording, record_execution
from ..machine.simulator import ExecutionResult

PolicyFactory = Callable[[], PropagationPolicy]


def default_policies(processor_count: int) -> List[Tuple[str, PolicyFactory]]:
    """The hunt's standard propagation shapes."""
    return [
        ("stubborn", StubbornPropagation),
        ("random-0.2", lambda: RandomPropagation(0.2)),
        ("ring", lambda: HomeDirectoryPropagation.ring(
            max(processor_count, 2)
        )),
    ]


@dataclass
class HuntResult:
    """Outcome of a race hunt."""

    program: Program
    model_name: str
    tries: int
    racy_runs: int
    clean_runs: int
    first_racy: Optional[ExecutionResult] = None
    first_report: Optional[RaceReport] = None
    recording: Optional[ExecutionRecording] = None
    seed: Optional[int] = None
    policy: Optional[str] = None
    per_policy: Dict[str, Tuple[int, int]] = field(default_factory=dict)

    @property
    def found(self) -> bool:
        return self.first_racy is not None

    def summary(self) -> str:
        lines = [
            f"hunted {self.tries} executions on {self.model_name}: "
            f"{self.racy_runs} racy, {self.clean_runs} clean"
        ]
        for policy, (racy, total) in sorted(self.per_policy.items()):
            lines.append(f"  {policy}: {racy}/{total} racy")
        if self.found:
            lines.append(
                f"first racy execution: seed={self.seed}, "
                f"policy={self.policy}; recording captured for replay"
            )
        else:
            lines.append(
                "no racy execution found (not a proof of data-race-"
                "freedom; see analysis.exhaustive for that)"
            )
        return "\n".join(lines)


def hunt_races(
    program: Program,
    model_factory: Callable[[], MemoryModel],
    tries: int = 24,
    policies: Optional[Sequence[Tuple[str, PolicyFactory]]] = None,
    stop_at_first: bool = False,
    max_steps: int = 200_000,
) -> HuntResult:
    """Sweep seeds x propagation policies looking for racy executions.

    Args:
        program: the program under test.
        model_factory: builds a fresh memory model per run (models are
            stateless today, but a factory keeps that a non-assumption).
        tries: total executions, divided round-robin over policies.
        policies: ``(name, factory)`` pairs; defaults to
            :func:`default_policies`.
        stop_at_first: return as soon as one racy execution is found.
    """
    if tries < 1:
        raise ValueError("tries must be positive")
    detector = PostMortemDetector()
    policy_list = list(
        policies if policies is not None
        else default_policies(program.processor_count)
    )
    model_name = model_factory().name
    result = HuntResult(
        program=program, model_name=model_name, tries=0,
        racy_runs=0, clean_runs=0,
    )
    for attempt in range(tries):
        name, factory = policy_list[attempt % len(policy_list)]
        seed = attempt
        execution, recording = record_execution(
            program, model_factory(), seed=seed,
            propagation=factory(), max_steps=max_steps,
        )
        report = detector.analyze_execution(execution)
        result.tries += 1
        racy, total = result.per_policy.get(name, (0, 0))
        if report.race_free:
            result.clean_runs += 1
            result.per_policy[name] = (racy, total + 1)
            continue
        result.racy_runs += 1
        result.per_policy[name] = (racy + 1, total + 1)
        if result.first_racy is None:
            result.first_racy = execution
            result.first_report = report
            result.recording = recording
            result.seed = seed
            result.policy = name
            if stop_at_first:
                break
    return result
