"""Rendering benchmark results into the experiment report.

Every benchmark attaches the paper artifact it regenerates and the
regenerated rows as ``extra_info`` (see ``benchmarks/conftest.py``).
This module turns a pytest-benchmark JSON export into a single markdown
document — the mechanically regenerated companion to EXPERIMENTS.md —
so reproducing every number in the repo is one command::

    python scripts/run_experiments.py
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Union


def _format_seconds(stats: Dict) -> str:
    mean = stats.get("mean")
    if mean is None:
        return "n/a"
    if mean < 1e-3:
        return f"{mean * 1e6:.0f} us"
    if mean < 1.0:
        return f"{mean * 1e3:.1f} ms"
    return f"{mean:.2f} s"


def render_benchmark_results(data: Dict) -> str:
    """Render a pytest-benchmark JSON payload as markdown.

    Benchmarks without an ``artifact`` in extra_info are listed in a
    trailing "unannotated" section so nothing silently disappears.
    """
    machine = data.get("machine_info", {})
    lines = [
        "# Regenerated experiment results",
        "",
        f"pytest-benchmark export; python "
        f"{machine.get('python_version', '?')} on "
        f"{machine.get('machine', '?')}.",
        "",
    ]

    annotated: Dict[str, List[Dict]] = {}
    unannotated: List[Dict] = []
    for bench in data.get("benchmarks", []):
        artifact = bench.get("extra_info", {}).get("artifact")
        if artifact:
            annotated.setdefault(artifact, []).append(bench)
        else:
            unannotated.append(bench)

    for artifact in sorted(annotated):
        lines.append(f"## {artifact}")
        lines.append("")
        for bench in annotated[artifact]:
            lines.append(
                f"*{bench['name']}* — mean "
                f"{_format_seconds(bench.get('stats', {}))} per round"
            )
            lines.append("")
            rows = bench.get("extra_info", {}).get("rows", [])
            lines.append("```")
            for row in rows:
                lines.append(str(row))
            lines.append("```")
            lines.append("")

    if unannotated:
        lines.append("## Unannotated benchmarks")
        lines.append("")
        for bench in unannotated:
            lines.append(
                f"* {bench['name']} — mean "
                f"{_format_seconds(bench.get('stats', {}))}"
            )
        lines.append("")

    return "\n".join(lines)


def render_benchmark_file(
    json_path: Union[str, Path], output_path: Union[str, Path]
) -> str:
    """Load a benchmark JSON export and write the markdown report."""
    data = json.loads(Path(json_path).read_text(encoding="utf-8"))
    text = render_benchmark_results(data)
    Path(output_path).write_text(text, encoding="utf-8")
    return text
