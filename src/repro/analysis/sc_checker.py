"""Sequential-consistency witness search.

Decides whether an execution's reads can be explained by *some* total
order of its operations that respects each processor's program order,
with every read returning the value of the most recent prior write to
its location (initial memory otherwise).  This is the textbook VSC
problem — NP-complete in general [Gibbons & Korach] — so the search is
exponential in the worst case and intended for the small executions
used in tests, where it independently validates the simulator's
stale-read ledger ("no stale reads" should imply a witness exists).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..machine.operations import MemoryOperation
from ..machine.simulator import ExecutionResult


@dataclass
class SCWitness:
    """A verifying total order, as a list of operation seqs."""

    order: List[int]


class ExecutionTooLarge(ValueError):
    """Raised when the witness search would be intractable."""


def find_sc_witness(
    operations: List[MemoryOperation],
    initial_memory: Optional[Dict[int, int]] = None,
    max_operations: int = 40,
    max_states: int = 2_000_000,
) -> Optional[SCWitness]:
    """Search for an SC witness order; None if provably none exists.

    The search interleaves per-processor streams in program order,
    scheduling a read only when current memory holds its value.  States
    (per-processor positions + last-writer fingerprint) are memoized.
    """
    if len(operations) > max_operations:
        raise ExecutionTooLarge(
            f"{len(operations)} operations exceed the witness search "
            f"bound of {max_operations}"
        )
    initial_memory = initial_memory or {}

    streams: Dict[int, List[MemoryOperation]] = {}
    for op in operations:
        streams.setdefault(op.proc, []).append(op)
    procs = sorted(streams)
    for proc in procs:
        streams[proc].sort(key=lambda op: op.local_index)

    touched = sorted({op.addr for op in operations})
    memory: Dict[int, int] = {
        addr: initial_memory.get(addr, 0) for addr in touched
    }

    seen: set = set()
    order: List[int] = []
    states_visited = 0

    def fingerprint(positions: Tuple[int, ...]) -> Tuple:
        return (positions, tuple(memory[a] for a in touched))

    def search(positions: Dict[int, int]) -> bool:
        nonlocal states_visited
        if all(positions[p] == len(streams[p]) for p in procs):
            return True
        key = fingerprint(tuple(positions[p] for p in procs))
        if key in seen:
            return False
        seen.add(key)
        states_visited += 1
        if states_visited > max_states:
            raise ExecutionTooLarge(
                f"witness search exceeded {max_states} states"
            )
        for proc in procs:
            pos = positions[proc]
            if pos == len(streams[proc]):
                continue
            op = streams[proc][pos]
            if op.is_read:
                if memory[op.addr] != op.value:
                    continue
                positions[proc] += 1
                order.append(op.seq)
                if search(positions):
                    return True
                order.pop()
                positions[proc] -= 1
            else:
                saved = memory[op.addr]
                memory[op.addr] = op.value
                positions[proc] += 1
                order.append(op.seq)
                if search(positions):
                    return True
                order.pop()
                positions[proc] -= 1
                memory[op.addr] = saved
        return False

    if search({p: 0 for p in procs}):
        return SCWitness(order=list(order))
    return None


def is_sequentially_consistent(
    result: ExecutionResult,
    initial_memory: Optional[Dict[int, int]] = None,
    max_operations: int = 40,
) -> bool:
    """True iff the execution's reads admit an SC witness order.

    Pass the program's ``initial_memory`` when it has non-zero initial
    values (e.g. a lock that starts held).
    """
    witness = find_sc_witness(
        result.operations,
        initial_memory=initial_memory,
        max_operations=max_operations,
    )
    return witness is not None


def verify_witness(
    operations: List[MemoryOperation],
    witness: SCWitness,
    initial_memory: Optional[Dict[int, int]] = None,
) -> bool:
    """Independently check a claimed witness: program order respected,
    every read sees the most recent prior write."""
    initial_memory = initial_memory or {}
    by_seq = {op.seq: op for op in operations}
    if sorted(witness.order) != sorted(by_seq):
        return False
    last_local: Dict[int, int] = {}
    memory: Dict[int, int] = {}
    for seq in witness.order:
        op = by_seq[seq]
        expected = last_local.get(op.proc, -1)
        if op.local_index != expected + 1:
            return False
        last_local[op.proc] = op.local_index
        if op.is_read:
            current = memory.get(op.addr, initial_memory.get(op.addr, 0))
            if current != op.value:
                return False
        else:
            memory[op.addr] = op.value
    return True
