"""Exhaustive exploration of sequentially consistent executions.

Definition 2.4 of the paper defines *data-race-free* as a property of a
program over **all** its sequentially consistent executions; a dynamic
detector only ever certifies one.  For small programs this module
closes the gap: a depth-first search over every scheduler choice under
SC, with an exact incremental (vector-clock) race check along each
path, decides whether the program is data-race-free — the property the
weak models condition sequential consistency on.

Spin idioms.  Unbounded exploration of spin loops never terminates, so
processors whose next step is a *futile* spin iteration are treated as
blocked rather than schedulable:

* ``Test&Set L`` followed by a conditional branch back to it, while L
  is nonzero (the builder's ``lock()``), and
* ``AcqRead f`` followed by a compare-and-branch back to it while the
  predicate fails (``spin_until_eq`` / ``spin_until_ge``).

Skipping futile iterations is sound for race detection under the
builder's idioms: a futile Test&Set read observes a SYNC_ONLY write
(never pairs), and a futile flag read either fails to pair or pairs
with a release that the eventually-successful read's release follows in
program order (monotone flags), so no hb1 ordering is lost or gained.
States (machine + clock summaries) are memoized to prune confluent
interleavings; search size is bounded and exceeding the bound raises
:class:`ExplorationLimit` rather than returning a wrong answer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..machine.isa import Opcode, Reg
from ..machine.memory import MemorySystem
from ..machine.models.sc import SequentialConsistency
from ..machine.operations import MemoryOperation, SyncRole
from ..machine.processor import Processor
from ..machine.program import Program, ThreadProgram


class ExplorationLimit(RuntimeError):
    """The state/execution budget was exhausted before a verdict."""


@dataclass
class ExplorationResult:
    """Outcome of exploring every SC execution of a program."""

    program_is_data_race_free: bool
    executions_explored: int
    states_visited: int
    racing_schedule: Optional[List[int]] = None  # a witness pid sequence
    deadlocked_paths: int = 0


# ----------------------------------------------------------------------
# exact incremental race state (full vector clocks per location)
# ----------------------------------------------------------------------

class _RaceState:
    """Per-location read/write clock vectors; exact race detection."""

    def __init__(self, nproc: int) -> None:
        self.nproc = nproc
        self.clocks: List[List[int]] = [
            [1 if i == p else 0 for i in range(nproc)] for p in range(nproc)
        ]
        self.read_clock: Dict[int, List[int]] = {}
        self.write_clock: Dict[int, List[int]] = {}
        # sync accesses tracked separately: they race only with *data*
        # accesses (Definition 2.4 excludes sync-sync pairs).
        self.sync_read_clock: Dict[int, List[int]] = {}
        self.sync_write_clock: Dict[int, List[int]] = {}
        self.released: Dict[int, Tuple[int, Tuple[int, ...]]] = {}

    def clone(self) -> "_RaceState":
        out = _RaceState.__new__(_RaceState)
        out.nproc = self.nproc
        out.clocks = [list(c) for c in self.clocks]
        out.read_clock = {a: list(c) for a, c in self.read_clock.items()}
        out.write_clock = {a: list(c) for a, c in self.write_clock.items()}
        out.sync_read_clock = {
            a: list(c) for a, c in self.sync_read_clock.items()
        }
        out.sync_write_clock = {
            a: list(c) for a, c in self.sync_write_clock.items()
        }
        out.released = dict(self.released)
        return out

    def key(self) -> Tuple:
        return (
            tuple(tuple(c) for c in self.clocks),
            tuple(sorted((a, tuple(c)) for a, c in self.read_clock.items())),
            tuple(sorted((a, tuple(c)) for a, c in self.write_clock.items())),
            tuple(sorted(
                (a, tuple(c)) for a, c in self.sync_read_clock.items()
            )),
            tuple(sorted(
                (a, tuple(c)) for a, c in self.sync_write_clock.items()
            )),
            tuple(sorted(self.released.items())),
        )

    # -- helpers ---------------------------------------------------------
    def _dominates(self, proc: int, stored: List[int]) -> bool:
        mine = self.clocks[proc]
        return all(mine[i] >= stored[i] for i in range(self.nproc))

    def _stamp(self, table: Dict[int, List[int]], addr: int, proc: int) -> None:
        clock = table.setdefault(addr, [0] * self.nproc)
        clock[proc] = self.clocks[proc][proc]

    # -- operation hooks ---------------------------------------------------
    def on_op(self, op: MemoryOperation) -> bool:
        """Process one operation; returns True iff it forms a data race
        (at least one side a data operation) with some earlier op."""
        proc = op.proc
        if op.is_sync:
            clock = self.clocks[proc]
            if op.role is SyncRole.ACQUIRE:
                rel = self.released.get(op.addr)
                if rel is not None and rel[0] == op.value:
                    for i, tick in enumerate(rel[1]):
                        if tick > clock[i]:
                            clock[i] = tick
            # A sync access races with concurrent *data* accesses to the
            # same location (sync-sync pairs are not data races).
            raced = self._check_and_stamp(
                op,
                check_reads=(self.read_clock,) if op.is_write else (),
                check_writes=(self.write_clock,),
                stamp=(
                    self.sync_write_clock if op.is_write
                    else self.sync_read_clock
                ),
            )
            if op.role is SyncRole.RELEASE:
                clock[proc] += 1
                self.released[op.addr] = (op.value, tuple(clock))
            elif op.role is SyncRole.SYNC_ONLY and op.is_write:
                rel = self.released.get(op.addr)
                if rel is not None and rel[0] != op.value:
                    self.released[op.addr] = (op.value, rel[1])
            clock[proc] += 1
            return raced

        return self._check_and_stamp(
            op,
            check_reads=(
                (self.read_clock, self.sync_read_clock) if op.is_write else ()
            ),
            check_writes=(self.write_clock, self.sync_write_clock),
            stamp=self.write_clock if op.is_write else self.read_clock,
        )

    def _check_and_stamp(self, op, check_reads, check_writes, stamp) -> bool:
        raced = False
        for table in check_writes:
            clock = table.get(op.addr)
            if clock is not None and not self._dominates(op.proc, clock):
                raced = True
        if op.is_write:
            for table in check_reads:
                clock = table.get(op.addr)
                if clock is not None and not self._dominates(op.proc, clock):
                    raced = True
        self._stamp(stamp, op.addr, op.proc)
        return raced


# ----------------------------------------------------------------------
# machine-state snapshot/restore
# ----------------------------------------------------------------------

class _MiniRecorder:
    def __init__(self, start_seq: int = 0) -> None:
        self.ops: List[MemoryOperation] = []
        self._seq = start_seq

    def next_seq(self) -> int:
        seq = self._seq
        self._seq += 1
        return seq

    def append(self, op: MemoryOperation) -> None:
        self.ops.append(op)


def _clone_processor(p: Processor) -> Processor:
    out = Processor(p.pid, p.thread)
    out.regs = dict(p.regs)
    out.reg_taint = dict(p.reg_taint)
    out.pc = p.pc
    out.halted = p.halted
    out.control_taint = p.control_taint
    out.local_index = p.local_index
    out.raw_scp_cut = p.raw_scp_cut
    return out


def _clone_memory(m: MemorySystem) -> MemorySystem:
    out = MemorySystem.__new__(MemorySystem)
    out.size = m.size
    out.processor_count = m.processor_count
    out.model = m.model
    from ..machine.memory import CellView
    out._committed = [CellView(c.value, c.seq, c.taint) for c in m._committed]
    out._views = [
        [CellView(c.value, c.seq, c.taint) for c in row] for row in m._views
    ]
    out._pending = []  # SC never buffers
    out.flush_count = m.flush_count
    out.propagated_writes = m.propagated_writes
    out._delivery_log = None  # exploration never records deliveries
    out.deliveries_logged = 0
    return out


def _machine_key(processors: List[Processor], memory: MemorySystem) -> Tuple:
    procs = tuple(
        (p.pc, p.halted, tuple(sorted(p.regs.items()))) for p in processors
    )
    cells = tuple(c.value for c in memory._committed)
    return (procs, cells)


# ----------------------------------------------------------------------
# spin-blocking predicates
# ----------------------------------------------------------------------

def _branch_target(thread: ThreadProgram, index: int) -> Optional[int]:
    instr = thread.instructions[index]
    if instr.opcode in (Opcode.BZ, Opcode.BNZ, Opcode.JMP):
        return thread.target_of(instr.label)
    return None


def _is_blocked(p: Processor, memory: MemorySystem) -> bool:
    """True iff p's next step is a futile spin iteration."""
    if p.halted or not 0 <= p.pc < len(p.thread):
        return False
    instr = p.thread.instructions[p.pc]
    thread = p.thread

    if instr.opcode is Opcode.TEST_AND_SET and p.pc + 1 < len(thread):
        follow = thread.instructions[p.pc + 1]
        if (
            follow.opcode is Opcode.BNZ
            and isinstance(follow.src[0], Reg)
            and follow.src[0] == instr.dst
            and _branch_target(thread, p.pc + 1) == p.pc
        ):
            if instr.addr.index is None:
                return memory._committed[instr.addr.base].value != 0
    if instr.opcode is Opcode.CAS and p.pc + 1 < len(thread):
        # `cas r, L, exp, new ; bz r, back` spins while the committed
        # value differs from the expected operand.
        follow = thread.instructions[p.pc + 1]
        if (
            follow.opcode is Opcode.BZ
            and isinstance(follow.src[0], Reg)
            and follow.src[0] == instr.dst
            and _branch_target(thread, p.pc + 1) == p.pc
            and instr.addr.index is None
        ):
            from ..machine.isa import Imm
            expected = instr.src[0]
            if isinstance(expected, Imm):
                return memory._committed[instr.addr.base].value != expected.value
    if instr.opcode is Opcode.ACQ_READ and p.pc + 2 < len(thread):
        cmp_i = thread.instructions[p.pc + 1]
        br_i = thread.instructions[p.pc + 2]
        if (
            cmp_i.opcode in (Opcode.CMP_EQ, Opcode.CMP_LT)
            and cmp_i.src[0] == instr.dst
            and br_i.opcode in (Opcode.BZ, Opcode.BNZ)
            and _branch_target(thread, p.pc + 2) == p.pc
            and instr.addr.index is None
        ):
            from ..machine.isa import Imm
            if not isinstance(cmp_i.src[1], Imm):
                return False
            value = memory._committed[instr.addr.base].value
            bound = cmp_i.src[1].value
            if cmp_i.opcode is Opcode.CMP_EQ and br_i.opcode is Opcode.BZ:
                return value != bound      # spin_until_eq: blocked while !=
            if cmp_i.opcode is Opcode.CMP_LT and br_i.opcode is Opcode.BNZ:
                return value < bound       # spin_until_ge: blocked while <
    return False


# ----------------------------------------------------------------------
# the explorer
# ----------------------------------------------------------------------

@dataclass
class ExhaustiveExplorer:
    """DFS over every SC interleaving of a (small) program."""

    program: Program
    max_states: int = 200_000
    max_executions: int = 100_000
    max_depth: int = 2_000

    _memo: Set[Tuple] = field(default_factory=set, repr=False)

    def explore(self) -> ExplorationResult:
        memory = MemorySystem(
            size=max(self.program.memory_size, 1),
            processor_count=self.program.processor_count,
            model=SequentialConsistency(),
            initial=self.program.initial_memory,
        )
        processors = [
            Processor(pid, thread)
            for pid, thread in enumerate(self.program.threads)
        ]
        race_state = _RaceState(self.program.processor_count)
        self._memo.clear()
        stats = {"executions": 0, "states": 0, "deadlocks": 0}
        witness = self._dfs(processors, memory, race_state, [], 0, stats)
        return ExplorationResult(
            program_is_data_race_free=witness is None,
            executions_explored=stats["executions"],
            states_visited=stats["states"],
            racing_schedule=witness,
            deadlocked_paths=stats["deadlocks"],
        )

    def _dfs(
        self,
        processors: List[Processor],
        memory: MemorySystem,
        race_state: _RaceState,
        path: List[int],
        depth: int,
        stats: Dict[str, int],
    ) -> Optional[List[int]]:
        if depth > self.max_depth:
            raise ExplorationLimit(
                f"path exceeded max_depth={self.max_depth} "
                f"(unbounded loop not covered by spin-blocking?)"
            )
        key = (_machine_key(processors, memory), race_state.key())
        if key in self._memo:
            return None
        self._memo.add(key)
        stats["states"] += 1
        if stats["states"] > self.max_states:
            raise ExplorationLimit(f"exceeded max_states={self.max_states}")

        runnable = [
            p.pid for p in processors
            if not p.halted and not _is_blocked(p, memory)
        ]
        if not runnable:
            if all(p.halted for p in processors):
                stats["executions"] += 1
                if stats["executions"] > self.max_executions:
                    raise ExplorationLimit(
                        f"exceeded max_executions={self.max_executions}"
                    )
            else:
                stats["deadlocks"] += 1  # blocked forever: no execution
            return None

        for pid in runnable:
            new_procs = [_clone_processor(p) for p in processors]
            new_mem = _clone_memory(memory)
            new_race = race_state.clone()
            recorder = _MiniRecorder()
            new_procs[pid].step(new_mem, recorder)
            raced = any(new_race.on_op(op) for op in recorder.ops)
            path.append(pid)
            if raced:
                return list(path)
            witness = self._dfs(
                new_procs, new_mem, new_race, path, depth + 1, stats
            )
            if witness is not None:
                return witness
            path.pop()
        return None


def is_program_data_race_free(program: Program, **limits) -> bool:
    """Definition 2.4, decided exactly (for small programs): True iff
    *no* sequentially consistent execution of *program* has a data race."""
    return ExhaustiveExplorer(program, **limits).explore().program_is_data_race_free


def explore_program(program: Program, **limits) -> ExplorationResult:
    """Run the exhaustive exploration and return full statistics."""
    return ExhaustiveExplorer(program, **limits).explore()
