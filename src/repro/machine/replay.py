"""Deterministic execution record and replay.

The paper argues (sections 1 and 5) that once races are detected, the
sequentially consistent prefix lets ordinary debugging tools be applied
to the part of the execution containing the first bugs.  The tool every
race debugger leans on is *replay*: re-running the exact execution that
exhibited the race.  This module captures the two sources of
nondeterminism in the simulator — scheduler picks and voluntary write
propagation — and replays them, reproducing the operation stream
bit-for-bit (same schedule + same deliveries + deterministic processors
=> same execution).

Recordings serialize to JSON so an execution captured in production can
be replayed in a later debugging session, alongside its trace file.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

from ..ioutil import atomic_write_text
from .memory import MemorySystem
from .models.base import MemoryModel
from .program import Program
from .propagation import PropagationPolicy, RandomPropagation
from .scheduler import RandomScheduler, Scheduler
from .simulator import ExecutionResult, Simulator


class ReplayError(RuntimeError):
    """The recording does not match the program/model being replayed."""


@dataclass
class ExecutionRecording:
    """Everything needed to reproduce one simulated execution."""

    model_name: str
    schedule: List[int] = field(default_factory=list)
    deliveries: List[List[Tuple[int, int]]] = field(default_factory=list)

    # ------------------------------------------------------------------
    def to_payload(self) -> dict:
        """The recording as plain JSON-able data (the on-disk schema,
        also embedded verbatim in hunt checkpoints)."""
        return {
            "format": 1,
            "model": self.model_name,
            "schedule": self.schedule,
            "deliveries": [
                [[seq, reader] for seq, reader in step]
                for step in self.deliveries
            ],
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "ExecutionRecording":
        if payload.get("format") != 1:
            raise ReplayError(f"unsupported recording format {payload.get('format')!r}")
        return cls(
            model_name=payload["model"],
            schedule=list(payload["schedule"]),
            deliveries=[
                [(seq, reader) for seq, reader in step]
                for step in payload["deliveries"]
            ],
        )

    def save(self, path: Union[str, Path]) -> None:
        # Atomic so a crash mid-save never tears a replay artifact.
        atomic_write_text(path, json.dumps(self.to_payload()))

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ExecutionRecording":
        return cls.from_payload(
            json.loads(Path(path).read_text(encoding="utf-8"))
        )


class _RecordingScheduler(Scheduler):
    def __init__(self, inner: Scheduler, recording: ExecutionRecording) -> None:
        self.inner = inner
        self.recording = recording

    def pick(self, runnable: Sequence[int], rng: random.Random) -> int:
        pid = self.inner.pick(runnable, rng)
        self.recording.schedule.append(pid)
        return pid


class _RecordingPropagation(PropagationPolicy):
    """Wraps a policy; captures this step's deliveries by draining the
    memory system's voluntary-delivery log after the inner step —
    O(deliveries) per step, where the old snapshot-diff was
    O(pending x readers).  Flushes happen inside processor steps, never
    here, so the drained log is exactly the voluntary deliveries.

    The drained entries are sorted by ``(seq, reader)``, which is the
    order the diff-based recorder emitted (increasing pending seq, then
    sorted readers), keeping recording files byte-identical across the
    two implementations."""

    def __init__(
        self, inner: PropagationPolicy, recording: ExecutionRecording
    ) -> None:
        self.inner = inner
        self.recording = recording
        self._armed = False

    def step(self, memory: MemorySystem, rng: random.Random) -> None:
        if not self._armed:
            memory.enable_delivery_log()
            self._armed = True
        self.inner.step(memory, rng)
        delivered = memory.drain_deliveries()
        delivered.sort()
        self.recording.deliveries.append(delivered)


class _ReplayScheduler(Scheduler):
    def __init__(self, schedule: List[int]) -> None:
        self.schedule = schedule
        self._pos = 0

    def pick(self, runnable: Sequence[int], rng: random.Random) -> int:
        if self._pos >= len(self.schedule):
            raise ReplayError(
                f"recording exhausted after {self._pos} steps but the "
                f"execution is still running (program/model mismatch?)"
            )
        pid = self.schedule[self._pos]
        self._pos += 1
        if pid not in runnable:
            raise ReplayError(
                f"step {self._pos - 1}: recorded pick P{pid} is not "
                f"runnable (program/model mismatch?)"
            )
        return pid


class _ReplayPropagation(PropagationPolicy):
    def __init__(self, deliveries: List[List[Tuple[int, int]]]) -> None:
        self.deliveries = deliveries
        self._pos = 0

    def step(self, memory: MemorySystem, rng: random.Random) -> None:
        if self._pos >= len(self.deliveries):
            raise ReplayError("recording exhausted mid-replay")
        step = self.deliveries[self._pos]
        self._pos += 1
        if not step:
            return
        by_seq = {pw.seq: pw for pw in memory.pending_writes()}
        for seq, reader in step:
            pw = by_seq.get(seq)
            if pw is None or reader not in pw.remaining:
                raise ReplayError(
                    f"recorded delivery (write seq {seq} -> P{reader}) "
                    f"is not pending (program/model mismatch?)"
                )
            memory.propagate(pw, reader)


# ----------------------------------------------------------------------
# public API
# ----------------------------------------------------------------------

def record_execution(
    program: Program,
    model: MemoryModel,
    scheduler: Optional[Scheduler] = None,
    propagation: Optional[PropagationPolicy] = None,
    seed: Optional[int] = 0,
    max_steps: int = 200_000,
) -> Tuple[ExecutionResult, ExecutionRecording]:
    """Run *program* while capturing every nondeterministic choice."""
    recording = ExecutionRecording(model_name=model.name)
    sim = Simulator(
        program,
        model,
        scheduler=_RecordingScheduler(scheduler or RandomScheduler(), recording),
        propagation=_RecordingPropagation(
            propagation or RandomPropagation(), recording
        ),
        seed=seed,
    )
    result = sim.run(max_steps=max_steps)
    return result, recording


def replay_execution(
    program: Program,
    model: MemoryModel,
    recording: ExecutionRecording,
    max_steps: int = 200_000,
) -> ExecutionResult:
    """Reproduce a recorded execution exactly.

    Raises :class:`ReplayError` when the recording does not fit the
    supplied program/model (e.g. the source was edited).
    """
    if model.name != recording.model_name:
        raise ReplayError(
            f"recording was made on {recording.model_name!r}, "
            f"replaying on {model.name!r}"
        )
    sim = Simulator(
        program,
        model,
        scheduler=_ReplayScheduler(recording.schedule),
        propagation=_ReplayPropagation(recording.deliveries),
        seed=0,
    )
    return sim.run(max_steps=min(max_steps, len(recording.schedule)))


def verify_recording(
    program: Program,
    model: MemoryModel,
    recording: ExecutionRecording,
    expected: ExecutionResult,
    max_steps: int = 200_000,
) -> bool:
    """True iff *recording* replays to exactly *expected*.

    A recording is only useful as a debugging artifact if replaying it
    reproduces the execution it was captured from; callers that hand a
    recording to a user (e.g. the race hunt) should verify it first
    rather than advertise a replay that will diverge or fail.
    """
    try:
        replayed = replay_execution(program, model, recording, max_steps=max_steps)
    except ReplayError:
        return False
    return executions_equal(expected, replayed)


def executions_equal(a: ExecutionResult, b: ExecutionResult) -> bool:
    """Structural equality of two executions' operation streams."""
    if len(a.operations) != len(b.operations):
        return False
    for x, y in zip(a.operations, b.operations):
        if (x.seq, x.proc, x.kind, x.role, x.addr, x.value,
                x.observed_write, x.stale) != \
           (y.seq, y.proc, y.kind, y.role, y.addr, y.value,
                y.observed_write, y.stale):
            return False
    return a.final_memory == b.final_memory
