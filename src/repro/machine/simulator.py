"""The multiprocessor simulator: ties processors, memory model,
propagation policy and scheduler together and produces an
:class:`ExecutionResult` — the complete, ordered operation stream of one
execution plus the ground truth (stale reads, raw SCP cuts, performance
counters) against which the paper's claims are tested.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .. import obs
from .memory import MemorySystem
from .models.base import MemoryModel
from .operations import MemoryOperation
from .processor import Processor
from .program import Program, SymbolTable
from .propagation import PropagationPolicy, RandomPropagation
from .scheduler import RandomScheduler, Scheduler


class _Recorder:
    """Issues global sequence numbers and accumulates operations.

    ``on_operation`` is the live-emission hook: each operation is handed
    to it the moment it is issued, in global order — what an online
    (streaming) detector consumes without waiting for the execution to
    finish.  The recorder still accumulates the full stream; emission is
    in addition to, not instead of, recording.
    """

    def __init__(self, on_operation=None) -> None:
        self.ops: List[MemoryOperation] = []
        self._seq = 0
        self._emit = on_operation

    def next_seq(self) -> int:
        seq = self._seq
        self._seq += 1
        return seq

    def append(self, op: MemoryOperation) -> None:
        self.ops.append(op)
        if self._emit is not None:
            self._emit(op)


@dataclass
class ProcessorStats:
    """Per-processor performance counters."""

    cycles: int
    stall_cycles: int
    instructions: int
    operations: int


@dataclass
class ExecutionResult:
    """Everything one simulated execution produced.

    ``operations`` is the global issue order; ``raw_scp_cuts[p]`` is the
    local operation index at which processor *p*'s operations stop being
    operations of any sequentially consistent execution (None = never),
    before happens-before closure — see :mod:`repro.core.scp`.
    """

    model_name: str
    seed: Optional[int]
    operations: List[MemoryOperation]
    completed: bool
    steps: int
    final_memory: Dict[int, int]
    stats: List[ProcessorStats]
    raw_scp_cuts: List[Optional[int]]
    registers: List[Dict[str, int]]
    flush_count: int
    propagated_writes: int
    symbols: Optional[SymbolTable] = None
    per_proc: List[List[MemoryOperation]] = field(default_factory=list)
    deliveries_logged: int = 0

    def __post_init__(self) -> None:
        if not self.per_proc:
            per: Dict[int, List[MemoryOperation]] = {
                p: [] for p in range(len(self.stats))
            }
            for op in self.operations:
                per[op.proc].append(op)
            self.per_proc = [per[p] for p in sorted(per)]

    # ------------------------------------------------------------------
    @property
    def processor_count(self) -> int:
        return len(self.stats)

    @property
    def stale_reads(self) -> List[MemoryOperation]:
        return [op for op in self.operations if op.stale]

    @property
    def total_cycles(self) -> int:
        return sum(s.cycles for s in self.stats)

    @property
    def total_stall_cycles(self) -> int:
        return sum(s.stall_cycles for s in self.stats)

    def data_operations(self) -> List[MemoryOperation]:
        return [op for op in self.operations if op.is_data]

    def sync_operations(self) -> List[MemoryOperation]:
        return [op for op in self.operations if op.is_sync]

    def op_by_seq(self, seq: int) -> MemoryOperation:
        op = self.operations[seq] if seq < len(self.operations) else None
        if op is not None and op.seq == seq:
            return op
        for candidate in self.operations:  # pragma: no cover - fallback
            if candidate.seq == seq:
                return candidate
        raise KeyError(f"no operation with seq {seq}")

    def addr_name(self, addr: int) -> str:
        if self.symbols is not None:
            return self.symbols.name_of(addr)
        return f"@{addr}"

    def describe_op(self, op: MemoryOperation) -> str:
        return op.describe(self.addr_name(op.addr))

    def value_of(self, name: str) -> int:
        """Final committed value of a named location."""
        if self.symbols is None:
            raise ValueError("execution has no symbol table")
        return self.final_memory[self.symbols.addr_of(name)]


class Simulator:
    """Runs a :class:`Program` under a memory model to completion."""

    def __init__(
        self,
        program: Program,
        model: MemoryModel,
        scheduler: Optional[Scheduler] = None,
        propagation: Optional[PropagationPolicy] = None,
        seed: Optional[int] = 0,
        on_operation=None,
    ) -> None:
        self.program = program
        self.model = model
        self.scheduler = scheduler or RandomScheduler()
        self.propagation = propagation or RandomPropagation()
        self.seed = seed
        self.rng = random.Random(seed)
        self.on_operation = on_operation

    def run(self, max_steps: int = 200_000) -> ExecutionResult:
        """Simulate until all processors halt or *max_steps* elapse."""
        with obs.span("simulate") as sp:
            result = self._run(max_steps)
            if sp.enabled:
                sp.add("steps", result.steps)
                sp.add("operations", len(result.operations))
                sp.add("flushes", result.flush_count)
                sp.add("propagated_writes", result.propagated_writes)
                if result.deliveries_logged:
                    sp.add("deliveries_logged", result.deliveries_logged)
        return result

    def _run(self, max_steps: int) -> ExecutionResult:
        memory = MemorySystem(
            size=max(self.program.memory_size, 1),
            processor_count=self.program.processor_count,
            model=self.model,
            initial=self.program.initial_memory,
        )
        processors = [
            Processor(pid, thread)
            for pid, thread in enumerate(self.program.threads)
        ]
        recorder = _Recorder(on_operation=self.on_operation)
        steps = 0
        # The runnable set is maintained incrementally: only the stepped
        # processor can halt, so a per-iteration rebuild is pure waste on
        # the hot loop.  list.remove keeps pid order, which the RNG-
        # driven schedulers depend on for reproducibility.
        runnable = [p.pid for p in processors if not p.halted]
        rng = self.rng
        propagation_step = self.propagation.step
        scheduler_pick = self.scheduler.pick
        while steps < max_steps and runnable:
            propagation_step(memory, rng)
            pid = scheduler_pick(runnable, rng)
            proc = processors[pid]
            proc.step(memory, recorder)
            if proc.halted:
                runnable.remove(pid)
            steps += 1

        completed = not runnable
        stats = [
            ProcessorStats(
                cycles=p.cycles,
                stall_cycles=p.stall_cycles,
                instructions=p.instructions_executed,
                operations=p.local_index,
            )
            for p in processors
        ]
        return ExecutionResult(
            model_name=self.model.name,
            seed=self.seed,
            operations=recorder.ops,
            completed=completed,
            steps=steps,
            final_memory=memory.committed_memory(),
            stats=stats,
            raw_scp_cuts=[p.raw_scp_cut for p in processors],
            registers=[dict(p.regs) for p in processors],
            flush_count=memory.flush_count,
            propagated_writes=memory.propagated_writes,
            symbols=self.program.symbols,
            deliveries_logged=memory.deliveries_logged,
        )


def run_program(
    program: Program,
    model: MemoryModel,
    scheduler: Optional[Scheduler] = None,
    propagation: Optional[PropagationPolicy] = None,
    seed: Optional[int] = 0,
    max_steps: int = 200_000,
) -> ExecutionResult:
    """Convenience wrapper: build a :class:`Simulator` and run it."""
    sim = Simulator(program, model, scheduler, propagation, seed)
    return sim.run(max_steps=max_steps)
