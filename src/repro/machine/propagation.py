"""Voluntary propagation policies for buffered writes.

Between synchronization flushes, a weak machine may propagate buffered
data writes to other processors at any time and in any per-reader order.
The policy controls that freedom:

* :class:`EagerPropagation` — deliver everything every step; a weak
  model then *behaves* sequentially consistently (useful control).
* :class:`StubbornPropagation` — never volunteer anything; visibility
  comes only from flushes, maximizing observable weakness.
* :class:`RandomPropagation` — each (pending write, reader) pair is
  delivered with probability *p* per step, from a seeded RNG; the
  general-purpose way to explore weak behaviours.
* :class:`HoldbackPropagation` — deliver everything except writes to a
  chosen set of addresses; reproduces a targeted reordering, e.g. the
  paper's Figure 2b where the new value of ``QEmpty`` reaches P2 before
  the new value of ``Q``.
* :class:`StoreBufferPropagation` — drain each processor's buffer
  head-first with a per-step probability; the natural companion to the
  TSO/PSO store-buffer models (whose FIFO guard any policy here
  already respects, since illegal deliveries are skipped inside
  :meth:`~repro.machine.memory.MemorySystem.propagate`).
"""

from __future__ import annotations

import abc
import random
from typing import Iterable, Set

from .memory import MemorySystem


class PropagationPolicy(abc.ABC):
    """Decides which buffered writes to volunteer each simulator step."""

    @abc.abstractmethod
    def step(self, memory: MemorySystem, rng: random.Random) -> None:
        """Deliver zero or more pending (write, reader) pairs."""


class EagerPropagation(PropagationPolicy):
    """Deliver every pending write to every reader, every step."""

    def step(self, memory: MemorySystem, rng: random.Random) -> None:
        for pw in list(memory.pending_writes()):
            for reader in list(pw.remaining):
                memory.propagate(pw, reader)


class StubbornPropagation(PropagationPolicy):
    """Never volunteer; only flushes make buffered writes visible."""

    def step(self, memory: MemorySystem, rng: random.Random) -> None:
        return None


class RandomPropagation(PropagationPolicy):
    """Deliver each (write, reader) pair with probability *p* per step."""

    def __init__(self, probability: float = 0.3) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {probability}")
        self.probability = probability

    def step(self, memory: MemorySystem, rng: random.Random) -> None:
        for pw in list(memory.pending_writes()):
            for reader in list(pw.remaining):
                if rng.random() < self.probability:
                    memory.propagate(pw, reader)


class HoldbackPropagation(PropagationPolicy):
    """Deliver eagerly, except writes to *held* addresses are withheld
    (until a flush forces them out)."""

    def __init__(self, held: Iterable[int]) -> None:
        self.held: Set[int] = set(held)

    def step(self, memory: MemorySystem, rng: random.Random) -> None:
        for pw in list(memory.pending_writes()):
            if pw.addr in self.held:
                continue
            for reader in list(pw.remaining):
                memory.propagate(pw, reader)


class StoreBufferPropagation(PropagationPolicy):
    """Drain store buffers head-first, one entry per processor per step.

    Each step, every processor's *oldest* pending write (its buffer
    head) is delivered to all readers still owed it with probability
    *p*; younger entries wait their turn.  Under TSO this is exactly a
    hardware store buffer draining; under PSO the per-address FIFO
    guard still lets younger writes to other locations overtake at
    flush boundaries.  On unordered models it simply drains
    oldest-first.
    """

    def __init__(self, probability: float = 0.5) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {probability}")
        self.probability = probability

    def step(self, memory: MemorySystem, rng: random.Random) -> None:
        heads: dict = {}
        for pw in memory.pending_writes():
            # _pending is append-ordered by seq: first hit is the head.
            heads.setdefault(pw.writer, pw)
        for writer in sorted(heads):
            if rng.random() < self.probability:
                pw = heads[writer]
                for reader in sorted(pw.remaining):
                    memory.propagate(pw, reader)


class HomeDirectoryPropagation(PropagationPolicy):
    """Deterministic NUMA-style propagation through per-location homes.

    Models a directory protocol: a write to location *a* travels from
    the writer to *a*'s home node and from there to each reader, taking
    ``dist[writer][home] + dist[home][reader]`` policy steps.  Because
    the delay depends on the *location's* home, two writes by the same
    processor to differently-homed locations can arrive out of issue
    order at a reader — the physical mechanism behind the paper's
    Figure 2b reordering (the new ``QEmpty`` overtakes the new ``Q``
    when ``QEmpty``'s home is near and ``Q``'s is far), with no
    randomness involved.

    Flushes still deliver instantly (Condition 3.4's requirement);
    this policy only schedules the *voluntary* deliveries.
    """

    def __init__(self, home_of, dist) -> None:
        """``home_of(addr) -> node``; ``dist[u][v]`` in policy steps."""
        self.home_of = home_of
        self.dist = dist
        self._now = 0
        self._arrivals: dict = {}  # pw.seq -> {reader: due_step}

    @classmethod
    def ring(cls, nodes: int, hop_cost: int = 2) -> "HomeDirectoryPropagation":
        """A generic instance: *nodes* processors on a ring, locations
        homed round-robin (``home(addr) = addr % nodes``), distance =
        ring hops x *hop_cost*.  Handy for property tests that want a
        deterministic, topology-flavoured weak machine without
        hand-crafting matrices."""
        if nodes < 1:
            raise ValueError("need at least one node")
        dist = [
            [min(abs(u - v), nodes - abs(u - v)) * hop_cost
             for v in range(nodes)]
            for u in range(nodes)
        ]
        return cls(lambda addr: addr % nodes, dist)

    def _delay(self, writer: int, addr: int, reader: int) -> int:
        # Processors and homes map onto topology nodes modulo the node
        # count, so a 3-node topology serves a 5-processor machine
        # (several CPUs share a node — physically ordinary).
        nodes = len(self.dist)
        home = self.home_of(addr) % nodes
        return (
            self.dist[writer % nodes][home]
            + self.dist[home][reader % nodes]
        )

    def step(self, memory: MemorySystem, rng: random.Random) -> None:
        self._now += 1
        live = set()
        for pw in list(memory.pending_writes()):
            live.add(pw.seq)
            schedule = self._arrivals.get(pw.seq)
            if schedule is None:
                schedule = {
                    reader: self._now + self._delay(pw.writer, pw.addr, reader)
                    for reader in pw.remaining
                }
                self._arrivals[pw.seq] = schedule
            for reader in list(pw.remaining):
                if schedule.get(reader, 0) <= self._now:
                    memory.propagate(pw, reader)
        # drop schedules of writes that were flushed or fully delivered
        for seq in list(self._arrivals):
            if seq not in live:
                del self._arrivals[seq]
