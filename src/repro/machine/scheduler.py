"""Interleaving schedulers.

One processor executes one instruction per simulator step; the scheduler
picks which.  All nondeterminism flows through the simulator's seeded
RNG, so an execution is reproducible from ``(program, model, scheduler,
propagation, seed)``.
"""

from __future__ import annotations

import abc
import random
from typing import List, Optional, Sequence


class Scheduler(abc.ABC):
    """Chooses the next processor to step among those still runnable."""

    @abc.abstractmethod
    def pick(self, runnable: Sequence[int], rng: random.Random) -> int:
        """Return one element of *runnable* (never empty)."""


class RoundRobin(Scheduler):
    """Cycle through processors in id order, skipping halted ones."""

    def __init__(self) -> None:
        self._last = -1

    def pick(self, runnable: Sequence[int], rng: random.Random) -> int:
        candidates = sorted(runnable)
        for pid in candidates:
            if pid > self._last:
                self._last = pid
                return pid
        self._last = candidates[0]
        return candidates[0]


class RandomScheduler(Scheduler):
    """Uniformly random choice each step (fair with probability 1)."""

    def pick(self, runnable: Sequence[int], rng: random.Random) -> int:
        # rng.choice indexes the sequence directly; copying it per pick
        # (the old list(runnable)) only added hot-loop allocation and
        # consumes the identical RNG draw either way.
        return rng.choice(runnable)


class BurstScheduler(Scheduler):
    """Run the chosen processor for a random burst of steps before
    switching; models coarse-grained interleaving, which both widens
    computation events and makes the Figure 2b reordering easier to hit."""

    def __init__(self, min_burst: int = 2, max_burst: int = 8) -> None:
        if not 1 <= min_burst <= max_burst:
            raise ValueError("need 1 <= min_burst <= max_burst")
        self.min_burst = min_burst
        self.max_burst = max_burst
        self._current: Optional[int] = None
        self._left = 0

    def pick(self, runnable: Sequence[int], rng: random.Random) -> int:
        if self._current in runnable and self._left > 0:
            self._left -= 1
            return self._current
        self._current = rng.choice(runnable)
        self._left = rng.randint(self.min_burst, self.max_burst) - 1
        return self._current


class ScriptedScheduler(Scheduler):
    """Replay an explicit pid sequence, then fall back to round-robin.

    Used to craft the exact interleavings of the paper's figures.  A
    scripted pid that is no longer runnable is skipped.
    """

    def __init__(self, script: Sequence[int]) -> None:
        self._script: List[int] = list(script)
        self._pos = 0
        self._fallback = RoundRobin()

    def pick(self, runnable: Sequence[int], rng: random.Random) -> int:
        while self._pos < len(self._script):
            pid = self._script[self._pos]
            self._pos += 1
            if pid in runnable:
                return pid
        return self._fallback.pick(runnable, rng)
