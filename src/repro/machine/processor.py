"""The simulated processor: executes one instruction per scheduler step.

Besides ordinary interpretation, the processor maintains the simulator's
ground-truth *taint* state used to extract the sequentially consistent
prefix (section 3.2 of the paper):

* a register becomes tainted when it receives a value from a stale read
  (or from a memory cell whose value was produced from tainted inputs);
* control flow becomes tainted when a branch tests a tainted register;
* the identity of a memory operation (location + program point, the
  paper's definition in section 2.1) is tainted when the processor's
  control flow is tainted or its effective address uses a tainted
  register.

The first identity-tainted operation of a processor marks the raw cut
point after which the processor's operations can no longer be operations
of any sequentially consistent execution: its existence or address
depends on a value no SC execution could have produced.
"""

from __future__ import annotations

from typing import Dict, Optional, Protocol

from .isa import Addr, Instruction, Opcode, Operand, Reg
from .memory import MemorySystem
from .operations import MemoryOperation, OperationKind, SyncRole
from .program import ThreadProgram


class Recorder(Protocol):
    """Supplies global sequence numbers and collects operation records."""

    def next_seq(self) -> int: ...

    def append(self, op: MemoryOperation) -> None: ...


class Processor:
    """One CPU: registers, program counter, taint state, stall counter."""

    def __init__(self, pid: int, thread: ThreadProgram) -> None:
        self.pid = pid
        self.thread = thread
        self.regs: Dict[str, int] = {}
        self.reg_taint: Dict[str, bool] = {}
        self.pc = 0
        self.halted = len(thread) == 0
        self.control_taint = False
        self.local_index = 0  # memory operations issued so far
        self.raw_scp_cut: Optional[int] = None
        self.stall_cycles = 0
        self.cycles = 0
        self.instructions_executed = 0
        # Handlers resolved once per instruction at construction; the
        # hot step loop then runs dict-lookup-free.
        self._code = thread.instructions
        self._handlers = [_DISPATCH[i.opcode] for i in thread.instructions]

    # ------------------------------------------------------------------
    def step(self, memory: MemorySystem, recorder: Recorder) -> None:
        """Execute the instruction at ``pc`` (a no-op when halted)."""
        if self.halted:
            return
        pc = self.pc
        if not 0 <= pc < len(self._code):
            self.halted = True
            return
        self.instructions_executed += 1
        self.cycles += 1  # base issue cycle; stalls are added separately
        self._handlers[pc](self, self._code[pc], memory, recorder)

    # ------------------------------------------------------------------
    # operand helpers
    # ------------------------------------------------------------------
    def _value(self, operand: Operand) -> int:
        if isinstance(operand, Reg):
            return self.regs.get(operand.name, 0)
        return operand.value

    def _taint_of(self, operand: Operand) -> bool:
        if isinstance(operand, Reg):
            return self.reg_taint.get(operand.name, False)
        return False

    def _set_reg(self, reg: Reg, value: int, taint: bool) -> None:
        self.regs[reg.name] = value
        self.reg_taint[reg.name] = taint or self.control_taint

    def _effective_addr(self, addr: Addr) -> int:
        if addr.index is None:
            return addr.base
        return addr.base + self.regs.get(addr.index.name, 0)

    def _addr_taint(self, addr: Addr) -> bool:
        if addr.index is None:
            return False
        return self.reg_taint.get(addr.index.name, False)

    def _note_identity(self, addr: Addr) -> None:
        """Record the SCP cut at the first identity-tainted operation."""
        if self.raw_scp_cut is None and (
            self.control_taint or self._addr_taint(addr)
        ):
            self.raw_scp_cut = self.local_index

    def _record(
        self,
        recorder: Recorder,
        seq: int,
        kind: OperationKind,
        role: SyncRole,
        ea: int,
        value: int,
        observed: Optional[int],
        stale: bool,
    ) -> None:
        recorder.append(
            MemoryOperation(
                seq=seq,
                proc=self.pid,
                local_index=self.local_index,
                kind=kind,
                role=role,
                addr=ea,
                value=value,
                observed_write=observed,
                stale=stale,
                instr_index=self.pc,
            )
        )
        self.local_index += 1

    def _stall(self, cycles: int) -> None:
        self.stall_cycles += cycles
        self.cycles += cycles


# ----------------------------------------------------------------------
# instruction handlers
# ----------------------------------------------------------------------

def _do_read(p: Processor, i: Instruction, m: MemorySystem, r: Recorder) -> None:
    ea = p._effective_addr(i.addr)
    p._note_identity(i.addr)
    res = m.read_data(p.pid, ea)
    seq = r.next_seq()
    p._record(r, seq, OperationKind.READ, SyncRole.NONE, ea, res.value,
              res.observed_write, res.stale)
    p._set_reg(i.dst, res.value, res.taint)
    p._stall(m.model.data_read_stall())
    p.pc += 1


def _do_write(p: Processor, i: Instruction, m: MemorySystem, r: Recorder) -> None:
    ea = p._effective_addr(i.addr)
    p._note_identity(i.addr)
    value = p._value(i.src[0])
    taint = p._taint_of(i.src[0]) or p.control_taint
    seq = r.next_seq()
    m.write_data(p.pid, ea, value, seq, taint)
    p._record(r, seq, OperationKind.WRITE, SyncRole.NONE, ea, value, None, False)
    p._stall(m.model.data_write_stall())
    p.pc += 1


def _do_test_and_set(p: Processor, i: Instruction, m: MemorySystem, r: Recorder) -> None:
    ea = p._effective_addr(i.addr)
    p._note_identity(i.addr)
    flushed = m.pre_sync_read_flush(p.pid, SyncRole.ACQUIRE)
    res = m.read_sync(p.pid, ea)
    seq = r.next_seq()
    p._record(r, seq, OperationKind.READ, SyncRole.ACQUIRE, ea, res.value,
              res.observed_write, res.stale)
    # The write half of a Test&Set is synchronization but NOT a release
    # (section 2.1 of the paper): it communicates nothing about prior
    # operations of this processor.  Store-buffer models (TSO/PSO) still
    # drain the buffer here — write_sync flushes when the model flushes
    # at SYNC_ONLY — matching RMW drain semantics on real hardware.
    wseq = r.next_seq()
    extra = m.write_sync(p.pid, ea, 1, wseq, p.control_taint, SyncRole.SYNC_ONLY)
    p._record(r, wseq, OperationKind.WRITE, SyncRole.SYNC_ONLY, ea, 1, None, False)
    p._set_reg(i.dst, res.value, res.taint)
    p._stall(m.model.sync_read_stall(SyncRole.ACQUIRE, flushed)
             + m.model.sync_write_stall(SyncRole.SYNC_ONLY, extra))
    p.pc += 1


def _do_cas(p: Processor, i: Instruction, m: MemorySystem, r: Recorder) -> None:
    """Compare-and-swap: atomically read; if the value equals the
    expected operand, write the new value and set dst to 1, else leave
    memory untouched and set dst to 0.  Like Test&Set, the read half is
    an acquire and the (conditional) write half communicates nothing
    about prior operations — it is synchronization, not a release."""
    ea = p._effective_addr(i.addr)
    p._note_identity(i.addr)
    expected = p._value(i.src[0])
    new = p._value(i.src[1])
    flushed = m.pre_sync_read_flush(p.pid, SyncRole.ACQUIRE)
    res = m.read_sync(p.pid, ea)
    seq = r.next_seq()
    p._record(r, seq, OperationKind.READ, SyncRole.ACQUIRE, ea, res.value,
              res.observed_write, res.stale)
    stall = m.model.sync_read_stall(SyncRole.ACQUIRE, flushed)
    success = res.value == expected
    if success:
        taint = p._taint_of(i.src[1]) or p.control_taint
        wseq = r.next_seq()
        extra = m.write_sync(p.pid, ea, new, wseq, taint, SyncRole.SYNC_ONLY)
        p._record(r, wseq, OperationKind.WRITE, SyncRole.SYNC_ONLY, ea, new,
                  None, False)
        stall += m.model.sync_write_stall(SyncRole.SYNC_ONLY, extra)
    taint = res.taint or p._taint_of(i.src[0])
    p._set_reg(i.dst, 1 if success else 0, taint)
    p._stall(stall)
    p.pc += 1


def _do_unset(p: Processor, i: Instruction, m: MemorySystem, r: Recorder) -> None:
    ea = p._effective_addr(i.addr)
    p._note_identity(i.addr)
    seq = r.next_seq()
    flushed = m.write_sync(p.pid, ea, 0, seq, p.control_taint, SyncRole.RELEASE)
    p._record(r, seq, OperationKind.WRITE, SyncRole.RELEASE, ea, 0, None, False)
    p._stall(m.model.sync_write_stall(SyncRole.RELEASE, flushed))
    p.pc += 1


def _do_acq_read(p: Processor, i: Instruction, m: MemorySystem, r: Recorder) -> None:
    ea = p._effective_addr(i.addr)
    p._note_identity(i.addr)
    flushed = m.pre_sync_read_flush(p.pid, SyncRole.ACQUIRE)
    res = m.read_sync(p.pid, ea)
    seq = r.next_seq()
    p._record(r, seq, OperationKind.READ, SyncRole.ACQUIRE, ea, res.value,
              res.observed_write, res.stale)
    p._set_reg(i.dst, res.value, res.taint)
    p._stall(m.model.sync_read_stall(SyncRole.ACQUIRE, flushed))
    p.pc += 1


def _do_rel_write(p: Processor, i: Instruction, m: MemorySystem, r: Recorder) -> None:
    ea = p._effective_addr(i.addr)
    p._note_identity(i.addr)
    value = p._value(i.src[0])
    taint = p._taint_of(i.src[0]) or p.control_taint
    seq = r.next_seq()
    flushed = m.write_sync(p.pid, ea, value, seq, taint, SyncRole.RELEASE)
    p._record(r, seq, OperationKind.WRITE, SyncRole.RELEASE, ea, value, None, False)
    p._stall(m.model.sync_write_stall(SyncRole.RELEASE, flushed))
    p.pc += 1


def _do_fence(p: Processor, i: Instruction, m: MemorySystem, r: Recorder) -> None:
    flushed = m.flush(p.pid)
    p._stall(m.model.costs.drain_per_write * flushed)
    p.pc += 1


def _do_mov(p: Processor, i: Instruction, m: MemorySystem, r: Recorder) -> None:
    p._set_reg(i.dst, p._value(i.src[0]), p._taint_of(i.src[0]))
    p.pc += 1


def _binop(fn):
    def handler(p: Processor, i: Instruction, m: MemorySystem, r: Recorder) -> None:
        a, b = p._value(i.src[0]), p._value(i.src[1])
        taint = p._taint_of(i.src[0]) or p._taint_of(i.src[1])
        p._set_reg(i.dst, fn(a, b), taint)
        p.pc += 1
    return handler


def _do_jmp(p: Processor, i: Instruction, m: MemorySystem, r: Recorder) -> None:
    p.pc = p.thread.target_of(i.label)


def _do_bz(p: Processor, i: Instruction, m: MemorySystem, r: Recorder) -> None:
    if p._taint_of(i.src[0]):
        p.control_taint = True
    if p._value(i.src[0]) == 0:
        p.pc = p.thread.target_of(i.label)
    else:
        p.pc += 1


def _do_bnz(p: Processor, i: Instruction, m: MemorySystem, r: Recorder) -> None:
    if p._taint_of(i.src[0]):
        p.control_taint = True
    if p._value(i.src[0]) != 0:
        p.pc = p.thread.target_of(i.label)
    else:
        p.pc += 1


def _do_halt(p: Processor, i: Instruction, m: MemorySystem, r: Recorder) -> None:
    p.halted = True


def _do_nop(p: Processor, i: Instruction, m: MemorySystem, r: Recorder) -> None:
    p.pc += 1


_DISPATCH = {
    Opcode.READ: _do_read,
    Opcode.WRITE: _do_write,
    Opcode.TEST_AND_SET: _do_test_and_set,
    Opcode.CAS: _do_cas,
    Opcode.UNSET: _do_unset,
    Opcode.ACQ_READ: _do_acq_read,
    Opcode.REL_WRITE: _do_rel_write,
    Opcode.FENCE: _do_fence,
    Opcode.MOV: _do_mov,
    Opcode.ADD: _binop(lambda a, b: a + b),
    Opcode.SUB: _binop(lambda a, b: a - b),
    Opcode.MUL: _binop(lambda a, b: a * b),
    Opcode.CMP_EQ: _binop(lambda a, b: 1 if a == b else 0),
    Opcode.CMP_LT: _binop(lambda a, b: 1 if a < b else 0),
    Opcode.JMP: _do_jmp,
    Opcode.BZ: _do_bz,
    Opcode.BNZ: _do_bnz,
    Opcode.HALT: _do_halt,
    Opcode.NOP: _do_nop,
}
