"""The simulated weak-memory multiprocessor substrate.

The paper assumes real WO/RCsc/DRF0/DRF1 hardware; this package is the
reproduction's substitute (see DESIGN.md): a deterministic register-
machine multiprocessor whose memory system models weakness as delayed
per-reader write visibility, flushed at synchronization per each
model's rules.
"""

from .assembler import AssemblyError, format_program, parse_program
from .isa import Addr, IllegalInstruction, Imm, Instruction, Opcode, Reg
from .memory import MemorySystem, PendingWrite, ReadResult
from .models import (
    ALL_MODEL_NAMES,
    WEAK_MODEL_NAMES,
    CostModel,
    DataRaceFree0,
    DataRaceFree1,
    MemoryModel,
    PartialStoreOrder,
    ReleaseConsistencySC,
    SequentialConsistency,
    TotalStoreOrder,
    WeakOrdering,
    make_model,
)
from .operations import MemoryOperation, OperationKind, SyncRole
from .processor import Processor
from .program import (
    ArrayRef,
    Program,
    ProgramBuilder,
    SymbolError,
    SymbolTable,
    ThreadBuilder,
    ThreadProgram,
)
from .replay import (
    ExecutionRecording,
    ReplayError,
    executions_equal,
    record_execution,
    replay_execution,
)
from .propagation import (
    EagerPropagation,
    HoldbackPropagation,
    HomeDirectoryPropagation,
    PropagationPolicy,
    RandomPropagation,
    StoreBufferPropagation,
    StubbornPropagation,
)
from .scheduler import (
    BurstScheduler,
    RandomScheduler,
    RoundRobin,
    Scheduler,
    ScriptedScheduler,
)
from .simulator import ExecutionResult, ProcessorStats, Simulator, run_program

__all__ = [
    "AssemblyError", "format_program", "parse_program",
    "Addr", "IllegalInstruction", "Imm", "Instruction", "Opcode", "Reg",
    "MemorySystem", "PendingWrite", "ReadResult",
    "ALL_MODEL_NAMES", "WEAK_MODEL_NAMES", "CostModel",
    "DataRaceFree0", "DataRaceFree1", "MemoryModel",
    "PartialStoreOrder", "ReleaseConsistencySC", "SequentialConsistency",
    "TotalStoreOrder", "WeakOrdering",
    "make_model",
    "MemoryOperation", "OperationKind", "SyncRole",
    "Processor",
    "ArrayRef", "Program", "ProgramBuilder", "SymbolError", "SymbolTable",
    "ThreadBuilder", "ThreadProgram",
    "ExecutionRecording", "ReplayError", "executions_equal",
    "record_execution", "replay_execution",
    "EagerPropagation", "HoldbackPropagation", "HomeDirectoryPropagation",
    "PropagationPolicy",
    "RandomPropagation", "StoreBufferPropagation", "StubbornPropagation",
    "BurstScheduler", "RandomScheduler", "RoundRobin", "Scheduler",
    "ScriptedScheduler",
    "ExecutionResult", "ProcessorStats", "Simulator", "run_program",
]
