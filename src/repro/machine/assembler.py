"""A textual assembly format for the simulated machine.

Lets workloads live in plain files instead of Python builders — the
"program text" of the paper in the most literal sense.  Grammar::

    ; comments run to end of line
    .var NAME [= INT]            ; scalar shared location
    .array NAME[SIZE] [= INT...] ; contiguous shared array
    .thread                      ; begins the next processor's code

    LABEL:                       ; jump target
        read   %r, LOC           ; data read
        write  LOC, SRC          ; data write
        testset %r, LOC          ; atomic Test&Set (acquire read + write 1)
        cas    %r, LOC, EXP, NEW ; atomic compare-and-swap (%r = 1 on success)
        unset  LOC               ; release write of 0
        acqread %r, LOC          ; bare acquire read
        relwrite LOC, SRC        ; bare release write
        fence
        mov    %r, SRC
        add    %r, SRC, SRC      ; likewise sub, mul, cmpeq, cmplt
        jmp    LABEL
        bz     %r, LABEL         ; branch if zero
        bnz    %r, LABEL
        halt
        nop

Operands: ``%name`` registers, ``#N`` immediates.  ``LOC`` is a scalar
name, ``name[INT]`` / ``name[%reg]`` array elements, or ``@N`` raw
addresses.  :func:`parse_program` returns a normal
:class:`~repro.machine.program.Program`; :func:`format_program` renders
one back to text (modulo comments).
"""

from __future__ import annotations

import re
from typing import Dict, List, Tuple

from .isa import Addr, Imm, Instruction, Opcode, Operand, Reg
from .program import Program, SymbolTable, ThreadProgram


class AssemblyError(ValueError):
    """Raised with a line number on any syntax or semantic error."""

    def __init__(self, line_no: int, message: str) -> None:
        super().__init__(f"line {line_no}: {message}")
        self.line_no = line_no


_VAR_RE = re.compile(r"^\.var\s+(\w+)(?:\s*=\s*(-?\d+))?$")
_ARRAY_RE = re.compile(
    r"^\.array\s+(\w+)\[(\d+)\](?:\s*=\s*((?:-?\d+\s*)+))?$"
)
_LABEL_RE = re.compile(r"^(\w+):$")
_LOC_ARRAY_RE = re.compile(r"^(\w+)\[(%\w+|\d+)\]$")

#: mnemonic -> (opcode, operand shape)
#: shapes: "dst_loc" = %r, LOC ; "loc_src" = LOC, SRC ; "loc" = LOC ;
#: "dst_src" = %r, SRC ; "dst_src_src" ; "label" ; "reg_label" ; "none"
_MNEMONICS: Dict[str, Tuple[Opcode, str]] = {
    "read": (Opcode.READ, "dst_loc"),
    "write": (Opcode.WRITE, "loc_src"),
    "testset": (Opcode.TEST_AND_SET, "dst_loc"),
    "cas": (Opcode.CAS, "dst_loc_src_src"),
    "unset": (Opcode.UNSET, "loc"),
    "acqread": (Opcode.ACQ_READ, "dst_loc"),
    "relwrite": (Opcode.REL_WRITE, "loc_src"),
    "fence": (Opcode.FENCE, "none"),
    "mov": (Opcode.MOV, "dst_src"),
    "add": (Opcode.ADD, "dst_src_src"),
    "sub": (Opcode.SUB, "dst_src_src"),
    "mul": (Opcode.MUL, "dst_src_src"),
    "cmpeq": (Opcode.CMP_EQ, "dst_src_src"),
    "cmplt": (Opcode.CMP_LT, "dst_src_src"),
    "jmp": (Opcode.JMP, "label"),
    "bz": (Opcode.BZ, "reg_label"),
    "bnz": (Opcode.BNZ, "reg_label"),
    "halt": (Opcode.HALT, "none"),
    "nop": (Opcode.NOP, "none"),
}


class _Parser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.symbols = SymbolTable()
        self.initial: Dict[int, int] = {}
        self.threads: List[ThreadProgram] = []
        self._instrs: List[Instruction] = []
        self._labels: Dict[str, int] = {}
        self._in_thread = False
        self._line_no = 0

    # -- operand parsing -------------------------------------------------
    def _reg(self, token: str) -> Reg:
        if not token.startswith("%") or len(token) < 2:
            raise AssemblyError(self._line_no, f"expected register, got {token!r}")
        return Reg(token[1:])

    def _src(self, token: str) -> Operand:
        if token.startswith("%"):
            return self._reg(token)
        if token.startswith("#"):
            try:
                return Imm(int(token[1:]))
            except ValueError:
                raise AssemblyError(
                    self._line_no, f"bad immediate {token!r}"
                ) from None
        raise AssemblyError(
            self._line_no, f"expected %reg or #imm, got {token!r}"
        )

    def _loc(self, token: str) -> Addr:
        if token.startswith("@"):
            try:
                return Addr(int(token[1:]))
            except ValueError:
                raise AssemblyError(
                    self._line_no, f"bad raw address {token!r}"
                ) from None
        match = _LOC_ARRAY_RE.match(token)
        if match:
            name, index = match.group(1), match.group(2)
            try:
                base = self.symbols.addr_of(name)
            except KeyError:
                raise AssemblyError(
                    self._line_no, f"unknown array {name!r}"
                ) from None
            if index.startswith("%"):
                return Addr(base, index=self._reg(index))
            return Addr(base + int(index))
        try:
            return Addr(self.symbols.addr_of(token))
        except KeyError:
            raise AssemblyError(
                self._line_no, f"unknown location {token!r}"
            ) from None

    # -- line handling -----------------------------------------------------
    def parse(self) -> Program:
        for line_no, raw in enumerate(self.text.splitlines(), start=1):
            self._line_no = line_no
            line = raw.split(";", 1)[0].strip()
            if not line:
                continue
            if line.startswith("."):
                self._directive(line)
            elif _LABEL_RE.match(line):
                self._label(_LABEL_RE.match(line).group(1))
            else:
                self._instruction(line)
        self._finish_thread()
        if not self.threads:
            raise AssemblyError(self._line_no, "program has no .thread")
        return Program(
            threads=tuple(self.threads),
            symbols=self.symbols,
            initial_memory=self.initial,
        )

    def _directive(self, line: str) -> None:
        if line == ".thread":
            self._finish_thread()
            self._in_thread = True
            return
        match = _VAR_RE.match(line)
        if match:
            if self._in_thread or self.threads:
                raise AssemblyError(
                    self._line_no, "declarations must precede .thread"
                )
            name, init = match.group(1), match.group(2)
            try:
                addr = self.symbols.scalar(name)
            except KeyError as exc:
                raise AssemblyError(self._line_no, str(exc)) from None
            if init is not None and int(init) != 0:
                self.initial[addr] = int(init)
            return
        match = _ARRAY_RE.match(line)
        if match:
            if self._in_thread or self.threads:
                raise AssemblyError(
                    self._line_no, "declarations must precede .thread"
                )
            name, size = match.group(1), int(match.group(2))
            try:
                base = self.symbols.array(name, size)
            except (KeyError, ValueError) as exc:
                raise AssemblyError(self._line_no, str(exc)) from None
            if match.group(3):
                values = [int(v) for v in match.group(3).split()]
                if len(values) > size:
                    raise AssemblyError(
                        self._line_no, "initializer longer than array"
                    )
                for offset, value in enumerate(values):
                    if value != 0:
                        self.initial[base + offset] = value
            return
        raise AssemblyError(self._line_no, f"unknown directive {line!r}")

    def _label(self, name: str) -> None:
        if not self._in_thread:
            raise AssemblyError(self._line_no, "label outside .thread")
        if name in self._labels:
            raise AssemblyError(self._line_no, f"duplicate label {name!r}")
        self._labels[name] = len(self._instrs)

    def _instruction(self, line: str) -> None:
        if not self._in_thread:
            raise AssemblyError(self._line_no, "instruction outside .thread")
        parts = line.replace(",", " ").split()
        mnemonic, args = parts[0].lower(), parts[1:]
        if mnemonic not in _MNEMONICS:
            raise AssemblyError(self._line_no, f"unknown mnemonic {mnemonic!r}")
        opcode, shape = _MNEMONICS[mnemonic]

        def need(n: int) -> None:
            if len(args) != n:
                raise AssemblyError(
                    self._line_no,
                    f"{mnemonic} takes {n} operand(s), got {len(args)}",
                )

        try:
            if shape == "dst_loc":
                need(2)
                instr = Instruction(opcode, dst=self._reg(args[0]),
                                    addr=self._loc(args[1]))
            elif shape == "loc_src":
                need(2)
                instr = Instruction(opcode, src=(self._src(args[1]),),
                                    addr=self._loc(args[0]))
            elif shape == "loc":
                need(1)
                instr = Instruction(opcode, addr=self._loc(args[0]))
            elif shape == "dst_src":
                need(2)
                instr = Instruction(opcode, dst=self._reg(args[0]),
                                    src=(self._src(args[1]),))
            elif shape == "dst_src_src":
                need(3)
                instr = Instruction(
                    opcode, dst=self._reg(args[0]),
                    src=(self._src(args[1]), self._src(args[2])),
                )
            elif shape == "dst_loc_src_src":
                need(4)
                instr = Instruction(
                    opcode, dst=self._reg(args[0]),
                    src=(self._src(args[2]), self._src(args[3])),
                    addr=self._loc(args[1]),
                )
            elif shape == "label":
                need(1)
                instr = Instruction(opcode, label=args[0])
            elif shape == "reg_label":
                need(2)
                instr = Instruction(opcode, src=(self._reg(args[0]),),
                                    label=args[1])
            else:  # "none"
                need(0)
                instr = Instruction(opcode)
        except AssemblyError:
            raise
        except ValueError as exc:
            raise AssemblyError(self._line_no, str(exc)) from None
        self._instrs.append(instr)

    def _finish_thread(self) -> None:
        if not self._in_thread:
            return
        instrs = list(self._instrs)
        if not instrs or instrs[-1].opcode is not Opcode.HALT:
            instrs.append(Instruction(Opcode.HALT))
        thread = ThreadProgram(tuple(instrs), dict(self._labels))
        for instr in instrs:
            if instr.label is not None and instr.label not in self._labels:
                raise AssemblyError(
                    self._line_no, f"undefined label {instr.label!r}"
                )
        self.threads.append(thread)
        self._instrs = []
        self._labels = {}
        self._in_thread = False


def parse_program(text: str) -> Program:
    """Assemble *text* into a :class:`Program`."""
    return _Parser(text).parse()


# ----------------------------------------------------------------------
# disassembly
# ----------------------------------------------------------------------

_OPCODE_TO_MNEMONIC = {op: name for name, (op, _) in _MNEMONICS.items()}


def _format_loc(symbols: SymbolTable, addr: Addr) -> str:
    if addr.index is not None:
        # find the array containing base
        for name, (lo, size) in symbols._arrays.items():
            if lo == addr.base:
                return f"{name}[%{addr.index.name}]"
        return f"@{addr.base}[%{addr.index.name}]"  # pragma: no cover
    name = symbols.name_of(addr.base)
    if name.startswith("@"):
        return name
    return name


def _format_src(operand: Operand) -> str:
    if isinstance(operand, Reg):
        return f"%{operand.name}"
    return f"#{operand.value}"


def format_program(program: Program) -> str:
    """Render *program* back to assembly text."""
    lines: List[str] = []
    symbols = program.symbols
    for name in symbols.names():
        if name in symbols._arrays:
            base, size = symbols._arrays[name]
            values = [program.initial_value(base + i) for i in range(size)]
            if any(values):
                init = " = " + " ".join(str(v) for v in values)
            else:
                init = ""
            lines.append(f".array {name}[{size}]{init}")
        else:
            addr = symbols.addr_of(name)
            init = program.initial_value(addr)
            suffix = f" = {init}" if init else ""
            lines.append(f".var {name}{suffix}")

    for thread in program.threads:
        lines.append("")
        lines.append(".thread")
        label_at: Dict[int, List[str]] = {}
        for label, target in thread.labels.items():
            label_at.setdefault(target, []).append(label)
        for i, instr in enumerate(thread.instructions):
            for label in sorted(label_at.get(i, [])):
                lines.append(f"{label}:")
            lines.append("    " + _format_instruction(symbols, instr))
        for label in sorted(label_at.get(len(thread.instructions), [])):
            lines.append(f"{label}:")  # pragma: no cover - trailing label
    return "\n".join(lines) + "\n"


def _format_instruction(symbols: SymbolTable, instr: Instruction) -> str:
    mnemonic = _OPCODE_TO_MNEMONIC[instr.opcode]
    parts: List[str] = []
    if instr.opcode in (Opcode.READ, Opcode.TEST_AND_SET, Opcode.ACQ_READ):
        parts = [f"%{instr.dst.name}", _format_loc(symbols, instr.addr)]
    elif instr.opcode is Opcode.CAS:
        parts = [f"%{instr.dst.name}", _format_loc(symbols, instr.addr),
                 _format_src(instr.src[0]), _format_src(instr.src[1])]
    elif instr.opcode in (Opcode.WRITE, Opcode.REL_WRITE):
        parts = [_format_loc(symbols, instr.addr), _format_src(instr.src[0])]
    elif instr.opcode is Opcode.UNSET:
        parts = [_format_loc(symbols, instr.addr)]
    elif instr.opcode is Opcode.MOV:
        parts = [f"%{instr.dst.name}", _format_src(instr.src[0])]
    elif instr.opcode in (Opcode.ADD, Opcode.SUB, Opcode.MUL,
                          Opcode.CMP_EQ, Opcode.CMP_LT):
        parts = [f"%{instr.dst.name}",
                 _format_src(instr.src[0]), _format_src(instr.src[1])]
    elif instr.opcode is Opcode.JMP:
        parts = [instr.label]
    elif instr.opcode in (Opcode.BZ, Opcode.BNZ):
        parts = [_format_src(instr.src[0]), instr.label]
    return mnemonic + (" " + ", ".join(parts) if parts else "")
