"""Weak ordering [DSB86].

Data writes are buffered; before *any* synchronization operation issues,
all of the processor's previous data writes must complete (flush), and
no later operation issues until the sync completes.  WO does not
distinguish acquires from releases — every sync is a full two-way
barrier for the issuing processor.
"""

from __future__ import annotations

from ..operations import SyncRole
from .base import MemoryModel


class WeakOrdering(MemoryModel):
    """WO: buffer data writes, flush at every synchronization op."""

    name = "WO"

    def buffers_data_writes(self) -> bool:
        return True

    def flushes_at(self, role: SyncRole) -> bool:
        return role.is_sync
