"""Memory-model implementations: SC plus the four weak models the paper
covers (WO, RCsc, DRF0, DRF1)."""

from typing import Dict, Type

from .base import CostModel, MemoryModel
from .drf0 import DataRaceFree0
from .drf1 import DataRaceFree1
from .rcsc import ReleaseConsistencySC
from .sc import SequentialConsistency
from .wo import WeakOrdering

MODEL_REGISTRY: Dict[str, Type[MemoryModel]] = {
    cls.name: cls
    for cls in (
        SequentialConsistency,
        WeakOrdering,
        ReleaseConsistencySC,
        DataRaceFree0,
        DataRaceFree1,
    )
}

WEAK_MODEL_NAMES = ("WO", "RCsc", "DRF0", "DRF1")
ALL_MODEL_NAMES = ("SC",) + WEAK_MODEL_NAMES


def make_model(name: str, costs: CostModel = CostModel()) -> MemoryModel:
    """Instantiate a model by its paper name (``SC``, ``WO``, ``RCsc``,
    ``DRF0``, ``DRF1``)."""
    try:
        cls = MODEL_REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown memory model {name!r}; choose from {sorted(MODEL_REGISTRY)}"
        ) from None
    return cls(costs)


__all__ = [
    "CostModel",
    "MemoryModel",
    "SequentialConsistency",
    "WeakOrdering",
    "ReleaseConsistencySC",
    "DataRaceFree0",
    "DataRaceFree1",
    "MODEL_REGISTRY",
    "WEAK_MODEL_NAMES",
    "ALL_MODEL_NAMES",
    "make_model",
]
