"""Memory-model implementations: SC, the four weak models the paper
covers (WO, RCsc, DRF0, DRF1), and the store-buffer machines (TSO,
PSO) that exercise the robustness checker."""

from typing import Dict, Type

from .base import CostModel, MemoryModel
from .drf0 import DataRaceFree0
from .drf1 import DataRaceFree1
from .pso import PartialStoreOrder
from .rcsc import ReleaseConsistencySC
from .sc import SequentialConsistency
from .tso import TotalStoreOrder
from .wo import WeakOrdering

MODEL_REGISTRY: Dict[str, Type[MemoryModel]] = {
    cls.name: cls
    for cls in (
        SequentialConsistency,
        WeakOrdering,
        ReleaseConsistencySC,
        DataRaceFree0,
        DataRaceFree1,
        TotalStoreOrder,
        PartialStoreOrder,
    )
}

# Derived from the registry so registering a model can never leave the
# tuples stale; registry insertion order is the presentation order.
ALL_MODEL_NAMES = tuple(MODEL_REGISTRY)
WEAK_MODEL_NAMES = tuple(
    name for name, cls in MODEL_REGISTRY.items()
    if cls is not SequentialConsistency
)


def make_model(name: str, costs: CostModel = CostModel()) -> MemoryModel:
    """Instantiate a model by its paper name (see ``ALL_MODEL_NAMES``)."""
    try:
        cls = MODEL_REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown memory model {name!r}; "
            f"choose from {', '.join(ALL_MODEL_NAMES)}"
        ) from None
    return cls(costs)


__all__ = [
    "CostModel",
    "MemoryModel",
    "SequentialConsistency",
    "WeakOrdering",
    "ReleaseConsistencySC",
    "DataRaceFree0",
    "DataRaceFree1",
    "TotalStoreOrder",
    "PartialStoreOrder",
    "MODEL_REGISTRY",
    "WEAK_MODEL_NAMES",
    "ALL_MODEL_NAMES",
    "make_model",
]
