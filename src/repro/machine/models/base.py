"""Memory-model interface.

A memory model decides (a) whether data writes become globally visible
at issue or may be buffered, (b) at which synchronization operations a
processor's buffered writes must be flushed, and (c) how many stall
cycles each operation costs — the source of the performance advantage
that motivates weak models (section 2.2 of the paper).

All models here keep synchronization accesses themselves sequentially
consistent and flush at (at least) release boundaries; that is exactly
the construction by which "all weak implementations" obey Condition 3.4
(Theorem 3.5): sequential consistency is preserved until a data race
actually occurs, and violations only infect operations affected by the
race.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional

from ..operations import SyncRole


@dataclass(frozen=True)
class CostModel:
    """Latency parameters shared by all models.

    Attributes:
        write_latency: cycles for a write to complete globally.
        read_latency: cycles for a read (assumed near-cache).
        drain_per_write: extra cycles per buffered write drained at a
            flush (drains overlap, hence cheaper than a full latency).
    """

    write_latency: int = 10
    read_latency: int = 1
    drain_per_write: int = 2


class MemoryModel(abc.ABC):
    """Abstract memory model; see concrete subclasses."""

    name: str = "abstract"

    def __init__(self, costs: CostModel = CostModel()) -> None:
        self.costs = costs

    @abc.abstractmethod
    def buffers_data_writes(self) -> bool:
        """True if data writes may be delayed past issue."""

    @abc.abstractmethod
    def flushes_at(self, role: SyncRole) -> bool:
        """True if issuing a sync op with *role* flushes buffered writes."""

    def store_order_granularity(self) -> Optional[str]:
        """FIFO discipline imposed on *voluntary* buffered-write
        deliveries (flushes always drain in issue order).

        * ``None`` — no discipline: a pending write may reach a reader
          in any per-reader order (WO/RCsc/DRF0/DRF1).
        * ``"proc"`` — one FIFO per processor (TSO): a write reaches a
          reader only after every older buffered write of the same
          processor has reached that reader.
        * ``"addr"`` — one FIFO per (processor, address) (PSO): writes
          to the same location stay ordered, writes to different
          locations may drain out of issue order.
        """
        return None

    # ------------------------------------------------------------------
    # stall accounting
    # ------------------------------------------------------------------
    def data_write_stall(self) -> int:
        """Stall cycles charged for one data write."""
        if self.buffers_data_writes():
            return 0
        return self.costs.write_latency

    def data_read_stall(self) -> int:
        return self.costs.read_latency

    def _flush_penalty(self, flushed_writes: int) -> int:
        # Waiting for outstanding writes to complete costs at least one
        # full write round-trip, plus an overlapped drain per write.
        # This is where the acquire/release distinction pays off: RCsc
        # and DRF1 never flush at acquires, so a WO/DRF0 machine stalls
        # here on acquire operations that RCsc/DRF1 sail through.
        if flushed_writes == 0:
            return 0
        return (
            self.costs.write_latency
            + self.costs.drain_per_write * flushed_writes
        )

    def sync_write_stall(self, role: SyncRole, flushed_writes: int) -> int:
        """Stall cycles for a sync write that flushed *flushed_writes*."""
        return self.costs.write_latency + self._flush_penalty(flushed_writes)

    def sync_read_stall(self, role: SyncRole, flushed_writes: int) -> int:
        """Stall cycles for a sync read that flushed *flushed_writes*."""
        return self.costs.read_latency + self._flush_penalty(flushed_writes)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"
