"""Total store order (the SPARC/x86 store-buffer model).

Each processor owns a single FIFO store buffer: data writes enter at
the tail and drain to the rest of the machine strictly in issue order
(the ``"proc"`` store-order granularity enforced by
:meth:`repro.machine.memory.MemorySystem.propagate`).  A processor
reads its own buffered stores early (own-write early visibility), so
the only reordering TSO admits is a later *read* completing before an
older buffered *write* — the store-buffering litmus outcome — while
write→write order is preserved, which is exactly why the Figure 2b
``QEmpty``-overtakes-``Q`` reordering cannot happen here.

Releases and RMW write halves (``SYNC_ONLY``) drain the buffer; plain
acquires do not wait for the issuer's buffered writes (loads never
drain a TSO store buffer).  Because releases flush, TSO still obeys
Condition 3.4 by the Theorem 3.5 construction.
"""

from __future__ import annotations

from typing import Optional

from ..operations import SyncRole
from .base import MemoryModel


class TotalStoreOrder(MemoryModel):
    """TSO: per-processor FIFO store buffer, drained in issue order."""

    name = "TSO"

    def buffers_data_writes(self) -> bool:
        return True

    def flushes_at(self, role: SyncRole) -> bool:
        # RMW write halves (SYNC_ONLY) drain like the x86 LOCK prefix;
        # acquires are ordinary loads and never wait for the buffer.
        return role in (SyncRole.RELEASE, SyncRole.SYNC_ONLY)

    def store_order_granularity(self) -> Optional[str]:
        return "proc"
