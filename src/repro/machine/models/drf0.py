"""Data-race-free-0 [AdH90].

DRF0 is defined as the class of all hardware that guarantees sequential
consistency to data-race-free programs, *without* distinguishing acquire
from release synchronization.  This module implements the canonical
proposed implementation: the same flush-at-every-sync discipline as
weak ordering.  (DRF0 the *definition* admits other implementations;
the paper's Theorem 3.5 is about "all proposed implementations", which
behave like this one.)
"""

from __future__ import annotations

from ..operations import SyncRole
from .base import MemoryModel


class DataRaceFree0(MemoryModel):
    """DRF0 reference implementation: flush at every synchronization op."""

    name = "DRF0"

    def buffers_data_writes(self) -> bool:
        return True

    def flushes_at(self, role: SyncRole) -> bool:
        return role.is_sync
