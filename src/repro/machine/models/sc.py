"""Sequential consistency [Lam79].

The baseline model: every memory operation appears in a single global
order consistent with each processor's program order.  The simulator
achieves this by propagating every write to every processor at issue;
the cost is a full write latency stall on every write — the conventional
stall-until-complete implementation the paper describes in section 2.2.
"""

from __future__ import annotations

from ..operations import SyncRole
from .base import MemoryModel


class SequentialConsistency(MemoryModel):
    """Strict SC: no buffering, every write stalls to completion."""

    name = "SC"

    def buffers_data_writes(self) -> bool:
        return False

    def flushes_at(self, role: SyncRole) -> bool:
        # Nothing to flush — writes never buffer — but declaring True
        # keeps the invariant "a release makes prior writes visible"
        # vacuously uniform across models.
        return True
