"""A deliberately non-compliant weak model, for ablation.

Section 3.1's "first problem": "on arbitrary weak hardware, it is
theoretically possible for an execution to not exhibit data races and
yet not be sequentially consistent."  Every real implementation the
paper surveys avoids this by completing buffered writes at
synchronization; this model does **not** — synchronization operations
neither flush the issuing processor's buffered data writes nor wait for
them, so a correctly locked program can still read stale data.

It exists to demonstrate that Condition 3.4 is a real constraint, not a
tautology: the ablation benchmark runs data-race-free programs on this
model and shows clause (1) of Condition 3.4 failing — the detector's
"no races, therefore sequentially consistent" conclusion would be wrong
on such hardware, which is exactly why the paper states the condition
explicitly for designers to check.
"""

from __future__ import annotations

from ..operations import SyncRole
from .base import MemoryModel


class BrokenWeakOrdering(MemoryModel):
    """Buffers data writes but never flushes them at synchronization.

    Violates Condition 3.4(1): data-race-free executions are not
    guaranteed sequential consistency.  Not registered in
    ``MODEL_REGISTRY`` — it is an ablation device, not a usable model.
    """

    name = "BrokenWO"

    def buffers_data_writes(self) -> bool:
        return True

    def flushes_at(self, role: SyncRole) -> bool:
        return False
