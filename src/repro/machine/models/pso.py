"""Partial store order (the SPARC PSO store-buffer model).

Like :mod:`TSO <repro.machine.models.tso>`, but the store buffer is
split per address: writes to the *same* location still drain in issue
order, while writes to *different* locations may drain in any order
(the ``"addr"`` store-order granularity).  That is precisely the
write→write reordering behind the paper's Figure 2b — the new
``QEmpty`` value overtaking the new ``Q`` — so PSO is the weakest
store-buffer machine this simulator models.

Releases and RMW write halves still drain the whole buffer (the
program-visible analogue of the ``STBAR`` a correct PSO unlock emits),
so data-race-free programs remain sequentially consistent and
Condition 3.4 holds by the Theorem 3.5 construction; racy programs get
the full per-address reordering freedom.
"""

from __future__ import annotations

from typing import Optional

from ..operations import SyncRole
from .base import MemoryModel


class PartialStoreOrder(MemoryModel):
    """PSO: per-(processor, address) FIFOs that may drain out of order."""

    name = "PSO"

    def buffers_data_writes(self) -> bool:
        return True

    def flushes_at(self, role: SyncRole) -> bool:
        return role in (SyncRole.RELEASE, SyncRole.SYNC_ONLY)

    def store_order_granularity(self) -> Optional[str]:
        return "addr"
