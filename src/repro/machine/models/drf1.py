"""Data-race-free-1 [AdH91].

DRF1 refines DRF0 with the release/acquire distinction (pairable
synchronization, Definition 2.1 of the paper).  The canonical proposed
implementation buffers data writes and drains them only at releases —
operationally the discipline of RCsc — while keeping synchronization
operations sequentially consistent.
"""

from __future__ import annotations

from ..operations import SyncRole
from .base import MemoryModel


class DataRaceFree1(MemoryModel):
    """DRF1 reference implementation: flush at release operations."""

    name = "DRF1"

    def buffers_data_writes(self) -> bool:
        return True

    def flushes_at(self, role: SyncRole) -> bool:
        return role is SyncRole.RELEASE
