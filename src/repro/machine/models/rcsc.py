"""Release consistency with SC synchronization operations [GLL90].

RCsc exploits the acquire/release distinction that WO ignores: buffered
data writes need only complete before a *release* issues; acquires do
not wait for the issuer's buffered writes.  Synchronization operations
themselves remain sequentially consistent (the "sc" in RCsc).
"""

from __future__ import annotations

from ..operations import SyncRole
from .base import MemoryModel


class ReleaseConsistencySC(MemoryModel):
    """RCsc: buffer data writes, flush only at release operations."""

    name = "RCsc"

    def buffers_data_writes(self) -> bool:
        return True

    def flushes_at(self, role: SyncRole) -> bool:
        return role is SyncRole.RELEASE
