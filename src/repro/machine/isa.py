"""The simulated machine's instruction set.

A small register machine, rich enough to express the paper's example
programs (the Figure 2 work queue, Test&Set/Unset critical sections,
spin loops) and arbitrary generated workloads:

* data memory:      ``READ``, ``WRITE``
* synchronization:  ``TEST_AND_SET``, ``UNSET``, ``ACQ_READ``, ``REL_WRITE``,
                    ``FENCE``
* ALU:              ``MOV``, ``ADD``, ``SUB``, ``MUL``, ``CMP_EQ``, ``CMP_LT``
* control:          ``JMP``, ``BZ``, ``BNZ``, ``HALT``, ``NOP``

Operands are either registers (by name) or immediates; address operands
may additionally be register+offset for array indexing.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple, Union


class Opcode(enum.Enum):
    READ = "read"
    WRITE = "write"
    TEST_AND_SET = "test_and_set"
    CAS = "cas"
    UNSET = "unset"
    ACQ_READ = "acq_read"
    REL_WRITE = "rel_write"
    FENCE = "fence"
    MOV = "mov"
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    CMP_EQ = "cmp_eq"
    CMP_LT = "cmp_lt"
    JMP = "jmp"
    BZ = "bz"
    BNZ = "bnz"
    HALT = "halt"
    NOP = "nop"


@dataclass(frozen=True)
class Reg:
    """A register operand, identified by name."""

    name: str

    def __repr__(self) -> str:
        return f"%{self.name}"


@dataclass(frozen=True)
class Imm:
    """An immediate integer operand."""

    value: int

    def __repr__(self) -> str:
        return f"#{self.value}"


Operand = Union[Reg, Imm]


@dataclass(frozen=True)
class Addr:
    """An address operand: ``base`` plus optional register index.

    The effective address is ``base + registers[index]`` when *index*
    is set, else just ``base`` — enough for scalar and array accesses.
    """

    base: int
    index: Optional[Reg] = None

    def __repr__(self) -> str:
        if self.index is not None:
            return f"[{self.base}+{self.index!r}]"
        return f"[{self.base}]"


@dataclass(frozen=True)
class Instruction:
    """One static instruction.

    The operand tuple's meaning depends on the opcode; see
    :class:`repro.machine.processor.Processor` for the dispatch table.
    ``label`` is a symbolic jump target resolved by the thread program.
    """

    opcode: Opcode
    dst: Optional[Reg] = None
    src: Tuple[Operand, ...] = field(default_factory=tuple)
    addr: Optional[Addr] = None
    label: Optional[str] = None

    def __post_init__(self) -> None:
        _validate(self)

    def __repr__(self) -> str:
        parts = [self.opcode.value]
        if self.dst is not None:
            parts.append(repr(self.dst))
        parts.extend(repr(s) for s in self.src)
        if self.addr is not None:
            parts.append(repr(self.addr))
        if self.label is not None:
            parts.append(f"@{self.label}")
        return " ".join(parts)


_NEEDS_ADDR = {
    Opcode.READ,
    Opcode.WRITE,
    Opcode.TEST_AND_SET,
    Opcode.CAS,
    Opcode.UNSET,
    Opcode.ACQ_READ,
    Opcode.REL_WRITE,
}
_NEEDS_DST = {
    Opcode.READ,
    Opcode.TEST_AND_SET,
    Opcode.CAS,
    Opcode.ACQ_READ,
    Opcode.MOV,
    Opcode.ADD,
    Opcode.SUB,
    Opcode.MUL,
    Opcode.CMP_EQ,
    Opcode.CMP_LT,
}
_NEEDS_LABEL = {Opcode.JMP, Opcode.BZ, Opcode.BNZ}
_SRC_ARITY = {
    Opcode.CAS: 2,
    Opcode.WRITE: 1,
    Opcode.REL_WRITE: 1,
    Opcode.MOV: 1,
    Opcode.ADD: 2,
    Opcode.SUB: 2,
    Opcode.MUL: 2,
    Opcode.CMP_EQ: 2,
    Opcode.CMP_LT: 2,
    Opcode.BZ: 1,
    Opcode.BNZ: 1,
}


class IllegalInstruction(ValueError):
    """Raised when an instruction's operands don't fit its opcode."""


def _validate(instr: Instruction) -> None:
    op = instr.opcode
    if op in _NEEDS_ADDR and instr.addr is None:
        raise IllegalInstruction(f"{op.value} requires an address operand")
    if op not in _NEEDS_ADDR and instr.addr is not None:
        raise IllegalInstruction(f"{op.value} takes no address operand")
    if op in _NEEDS_DST and instr.dst is None:
        raise IllegalInstruction(f"{op.value} requires a destination register")
    if op not in _NEEDS_DST and instr.dst is not None:
        raise IllegalInstruction(f"{op.value} takes no destination register")
    if op in _NEEDS_LABEL and instr.label is None:
        raise IllegalInstruction(f"{op.value} requires a label")
    if op not in _NEEDS_LABEL and instr.label is not None:
        raise IllegalInstruction(f"{op.value} takes no label")
    expected = _SRC_ARITY.get(op, 0)
    if len(instr.src) != expected:
        raise IllegalInstruction(
            f"{op.value} takes {expected} source operand(s), got {len(instr.src)}"
        )
