"""The simulated shared-memory system.

Weakness is modelled by *per-reader visibility*: a buffered data write
updates the writer's own view immediately but reaches every other
processor's view only later — either voluntarily (the propagation
policy) or forcibly when the writer's memory model flushes at a
synchronization operation.  Synchronization accesses are themselves kept
sequentially consistent (they read/write the committed state and
propagate at issue), matching every implementation the paper considers.

Ground truth kept for verification (never exposed to the detector):

* a *stale* flag on each data read that returned a value older than the
  globally latest committed write to its location, and
* a taint bit on every memory cell, seeded by stale reads and spread by
  the processor through registers — the raw material for extracting the
  sequentially consistent prefix of section 3.2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from .models.base import MemoryModel
from .operations import SyncRole


@dataclass
class CellView:
    """One processor's view of one location."""

    value: int
    seq: int  # seq of the write that produced this value; -1 for initial
    taint: bool = False


@dataclass
class PendingWrite:
    """A buffered data write not yet visible to ``remaining`` readers."""

    writer: int
    addr: int
    value: int
    seq: int
    taint: bool
    remaining: Set[int] = field(default_factory=set)


@dataclass(frozen=True)
class ReadResult:
    """Outcome of a read: value plus ground-truth annotations."""

    value: int
    observed_write: Optional[int]  # seq of the write observed; None = initial
    stale: bool
    taint: bool


class MemorySystem:
    """Per-reader-visibility shared memory with flush-at-sync rules."""

    def __init__(
        self,
        size: int,
        processor_count: int,
        model: MemoryModel,
        initial: Optional[Dict[int, int]] = None,
    ) -> None:
        if size <= 0:
            size = 1
        self.size = size
        self.processor_count = processor_count
        self.model = model
        initial = initial or {}

        def fresh_views() -> List[CellView]:
            return [CellView(initial.get(a, 0), -1) for a in range(size)]

        # committed = the globally latest write per location (by seq).
        self._committed: List[CellView] = fresh_views()
        self._views: List[List[CellView]] = [
            fresh_views() for _ in range(processor_count)
        ]
        self._pending: List[PendingWrite] = []
        # FIFO discipline on voluntary deliveries (TSO/PSO); the model
        # is fixed for the system's lifetime, so resolve it once.
        self._store_order = model.store_order_granularity()
        # voluntary-delivery log: (seq, reader) per propagate() call,
        # drained by the recorder between steps.  None = logging off.
        self._delivery_log: Optional[List[Tuple[int, int]]] = None
        # counters
        self.flush_count = 0
        self.propagated_writes = 0
        self.deliveries_logged = 0

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def read_data(self, proc: int, addr: int) -> ReadResult:
        """A data read: returns the reader's current view.

        The read is *stale* when the committed state holds a newer write
        (necessarily by another processor, since a processor's own
        writes update its own view at issue).
        """
        self._check(proc, addr)
        view = self._views[proc][addr]
        committed = self._committed[addr]
        stale = committed.seq != view.seq
        return ReadResult(
            value=view.value,
            observed_write=view.seq if view.seq >= 0 else None,
            stale=stale,
            taint=view.taint or stale,
        )

    def read_sync(self, proc: int, addr: int) -> ReadResult:
        """A synchronization read: sequentially consistent, reads the
        committed state and refreshes the reader's view of the cell."""
        self._check(proc, addr)
        committed = self._committed[addr]
        self._views[proc][addr] = CellView(
            committed.value, committed.seq, committed.taint
        )
        return ReadResult(
            value=committed.value,
            observed_write=committed.seq if committed.seq >= 0 else None,
            stale=False,
            taint=committed.taint,
        )

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def write_data(
        self, proc: int, addr: int, value: int, seq: int, taint: bool
    ) -> None:
        """A data write: own view and committed state update at issue;
        other views update when the write propagates (or never, until a
        flush, under the stubborn policy)."""
        self._check(proc, addr)
        self._committed[addr] = CellView(value, seq, taint)
        self._views[proc][addr] = CellView(value, seq, taint)
        if not self.model.buffers_data_writes():
            self._apply_everywhere(proc, addr, value, seq, taint)
            return
        remaining = {q for q in range(self.processor_count) if q != proc}
        # A newer write to the same address by the same processor
        # supersedes any still-pending older one for readers that see
        # them out of order; the seq guard in _apply handles that, so
        # both may stay pending.
        self._pending.append(
            PendingWrite(proc, addr, value, seq, taint, remaining)
        )

    def write_sync(
        self, proc: int, addr: int, value: int, seq: int, taint: bool, role: SyncRole
    ) -> int:
        """A synchronization write: flush first if the model requires it
        for *role*, then commit and propagate at issue.

        Returns the number of buffered writes drained by the flush (for
        stall accounting).
        """
        self._check(proc, addr)
        flushed = 0
        if self.model.flushes_at(role):
            flushed = self.flush(proc)
        self._committed[addr] = CellView(value, seq, taint)
        self._views[proc][addr] = CellView(value, seq, taint)
        self._apply_everywhere(proc, addr, value, seq, taint)
        return flushed

    def pre_sync_read_flush(self, proc: int, role: SyncRole) -> int:
        """Flush before a synchronization *read* when the model demands
        it (WO/DRF0 flush at every sync operation, reads included)."""
        if self.model.flushes_at(role):
            return self.flush(proc)
        return 0

    # ------------------------------------------------------------------
    # propagation and flushing
    # ------------------------------------------------------------------
    def flush(self, proc: int) -> int:
        """Force all of *proc*'s buffered writes visible everywhere."""
        drained = 0
        still_pending: List[PendingWrite] = []
        for pw in self._pending:
            if pw.writer != proc:
                still_pending.append(pw)
                continue
            for reader in pw.remaining:
                self._apply(reader, pw.addr, pw.value, pw.seq, pw.taint)
            drained += 1
        self._pending = still_pending
        if drained:
            self.flush_count += 1
        return drained

    def delivery_allowed(self, pw: PendingWrite, reader: int) -> bool:
        """Store-order guard: under a FIFO buffer discipline a write may
        reach a reader only after every older write ahead of it in the
        writer's queue (TSO: the whole buffer; PSO: the same-address
        queue) has reached that reader.  ``_pending`` is append-ordered
        by seq, so the scan stops at *pw* itself."""
        if self._store_order is None:
            return True
        for other in self._pending:
            if other.seq >= pw.seq:
                break
            if other.writer != pw.writer:
                continue
            if self._store_order == "addr" and other.addr != pw.addr:
                continue
            if reader in other.remaining:
                return False
        return True

    def propagate(self, pw: PendingWrite, reader: int) -> bool:
        """Deliver one pending write to one reader (policy hook).

        Returns True when the delivery happened; a delivery the model's
        store-order discipline forbids is skipped (and not logged), so
        every propagation policy stays sound under TSO/PSO without
        knowing about buffers.
        """
        if reader not in pw.remaining:
            return False
        if not self.delivery_allowed(pw, reader):
            return False
        pw.remaining.discard(reader)
        self._apply(reader, pw.addr, pw.value, pw.seq, pw.taint)
        if not pw.remaining:
            self._pending.remove(pw)
        self.propagated_writes += 1
        if self._delivery_log is not None:
            self._delivery_log.append((pw.seq, reader))
            self.deliveries_logged += 1
        return True

    def enable_delivery_log(self) -> None:
        """Start logging voluntary deliveries (recorder hook).

        Every delivery is a :meth:`propagate` call — flushes bypass it —
        so the log is exactly the voluntary deliveries since the last
        :meth:`drain_deliveries`, in delivery order.
        """
        if self._delivery_log is None:
            self._delivery_log = []

    def drain_deliveries(self) -> List[Tuple[int, int]]:
        """Return and reset the voluntary-delivery log (enables it if
        needed, so the first drain arms the log for subsequent steps)."""
        log = self._delivery_log
        self._delivery_log = []
        return log if log is not None else []

    def pending_writes(self) -> List[PendingWrite]:
        """The current buffer contents (policy hook; do not mutate)."""
        return self._pending

    def pending_count(self, proc: Optional[int] = None) -> int:
        if proc is None:
            return len(self._pending)
        return sum(1 for pw in self._pending if pw.writer == proc)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def committed_value(self, addr: int) -> int:
        self._check(0, addr)
        return self._committed[addr].value

    def committed_memory(self) -> Dict[int, int]:
        return {addr: cell.value for addr, cell in enumerate(self._committed)}

    def view_value(self, proc: int, addr: int) -> int:
        self._check(proc, addr)
        return self._views[proc][addr].value

    def views_converged(self) -> bool:
        """True when every processor's view equals the committed state
        (i.e. no write is still in flight)."""
        return not self._pending

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _apply_everywhere(
        self, writer: int, addr: int, value: int, seq: int, taint: bool
    ) -> None:
        for reader in range(self.processor_count):
            if reader != writer:
                self._apply(reader, addr, value, seq, taint)

    def _apply(self, reader: int, addr: int, value: int, seq: int, taint: bool) -> None:
        # Views only move forward in write-issue order; a late-arriving
        # older write never overwrites a newer value.
        if self._views[reader][addr].seq < seq:
            self._views[reader][addr] = CellView(value, seq, taint)

    def _check(self, proc: int, addr: int) -> None:
        if not 0 <= addr < self.size:
            raise IndexError(f"address {addr} out of range [0, {self.size})")
        if not 0 <= proc < self.processor_count:
            raise IndexError(f"processor {proc} out of range")
