"""Programs for the simulated multiprocessor, and a builder DSL.

A :class:`Program` is the paper's notion of "program text plus input
data": a fixed set of per-processor instruction lists, a symbol table
naming memory locations, and initial memory contents.  The
:class:`ProgramBuilder` / :class:`ThreadBuilder` pair gives a readable
way to write the paper's example programs::

    b = ProgramBuilder()
    x = b.var("x")
    s = b.var("S")
    with b.thread() as t:
        t.write(x, 1)
        t.unset(s)
    with b.thread() as t:
        r = t.test_and_set(s)
        t.read(x)
    program = b.build()
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple, Union

from .isa import Addr, Imm, Instruction, Opcode, Operand, Reg


class SymbolError(KeyError):
    """Raised for unknown or duplicate memory symbols."""


@dataclass
class SymbolTable:
    """Maps human-readable location names to integer addresses.

    Arrays occupy a contiguous address range; ``name_of`` renders an
    address back to ``base`` or ``base[i]`` form for reports and the
    regenerated figures.
    """

    _addr_of: Dict[str, int] = field(default_factory=dict)
    _arrays: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    _next_addr: int = 0

    def scalar(self, name: str) -> int:
        if name in self._addr_of or name in self._arrays:
            raise SymbolError(f"symbol {name!r} already defined")
        addr = self._next_addr
        self._addr_of[name] = addr
        self._next_addr += 1
        return addr

    def array(self, name: str, size: int) -> int:
        if size <= 0:
            raise ValueError(f"array size must be positive, got {size}")
        if name in self._addr_of or name in self._arrays:
            raise SymbolError(f"symbol {name!r} already defined")
        base = self._next_addr
        self._arrays[name] = (base, size)
        self._next_addr += size
        return base

    def addr_of(self, name: str) -> int:
        """Resolve ``x``, ``arr`` (its base) or ``arr[3]`` to an address."""
        if name in self._addr_of:
            return self._addr_of[name]
        if name in self._arrays:
            return self._arrays[name][0]
        if name.endswith("]") and "[" in name:
            base_name, index_text = name[:-1].split("[", 1)
            if base_name in self._arrays and index_text.isdigit():
                base, size = self._arrays[base_name]
                index = int(index_text)
                if index < size:
                    return base + index
                raise SymbolError(
                    f"index {index} out of range for array "
                    f"{base_name!r} of size {size}"
                )
        raise SymbolError(f"unknown symbol {name!r}")

    def name_of(self, addr: int) -> str:
        for name, a in self._addr_of.items():
            if a == addr:
                return name
        for name, (base, size) in self._arrays.items():
            if base <= addr < base + size:
                return f"{name}[{addr - base}]"
        return f"@{addr}"

    @property
    def size(self) -> int:
        """Number of addresses allocated."""
        return self._next_addr

    def names(self) -> Iterator[str]:
        yield from self._addr_of
        yield from self._arrays


@dataclass(frozen=True)
class ThreadProgram:
    """One processor's instruction list with resolved jump targets."""

    instructions: Tuple[Instruction, ...]
    labels: Dict[str, int]

    def target_of(self, label: str) -> int:
        try:
            return self.labels[label]
        except KeyError:
            raise SymbolError(f"undefined label {label!r}") from None

    def __len__(self) -> int:
        return len(self.instructions)


@dataclass(frozen=True)
class Program:
    """A complete multiprocessor program: threads, symbols, initial data."""

    threads: Tuple[ThreadProgram, ...]
    symbols: SymbolTable
    initial_memory: Dict[int, int] = field(default_factory=dict)

    @property
    def processor_count(self) -> int:
        return len(self.threads)

    @property
    def memory_size(self) -> int:
        return self.symbols.size

    def initial_value(self, addr: int) -> int:
        return self.initial_memory.get(addr, 0)


# ----------------------------------------------------------------------
# Builder DSL
# ----------------------------------------------------------------------

Location = Union[int, str, "ArrayRef"]
Value = Union[int, Reg]


@dataclass(frozen=True)
class ArrayRef:
    """An array element reference: constant or register index."""

    base: int
    index: Union[int, Reg]


class ThreadBuilder:
    """Accumulates one thread's instructions.

    Memory-access helpers return the destination register (auto-allocated
    when not supplied) so values can be threaded through ALU helpers.
    """

    def __init__(self, builder: "ProgramBuilder") -> None:
        self._builder = builder
        self._instructions: List[Instruction] = []
        self._labels: Dict[str, int] = {}
        self._reg_counter = itertools.count()

    # -- registers and labels ------------------------------------------
    def reg(self, name: Optional[str] = None) -> Reg:
        """A fresh (or named) register."""
        if name is None:
            name = f"t{next(self._reg_counter)}"
        return Reg(name)

    def label(self, name: str) -> str:
        """Define *name* at the current instruction position."""
        if name in self._labels:
            raise SymbolError(f"label {name!r} already defined")
        self._labels[name] = len(self._instructions)
        return name

    # -- memory operations ---------------------------------------------
    def read(self, loc: Location, dst: Optional[Reg] = None) -> Reg:
        """Emit a data read of *loc*; returns the destination register."""
        dst = dst or self.reg()
        self._emit(Instruction(Opcode.READ, dst=dst, addr=self._addr(loc)))
        return dst

    def write(self, loc: Location, value: Value) -> None:
        """Emit a data write of *value* to *loc*."""
        self._emit(
            Instruction(Opcode.WRITE, src=(self._operand(value),), addr=self._addr(loc))
        )

    def test_and_set(self, loc: Location, dst: Optional[Reg] = None) -> Reg:
        """Atomic Test&Set: acquire-read the old value, write 1."""
        dst = dst or self.reg()
        self._emit(Instruction(Opcode.TEST_AND_SET, dst=dst, addr=self._addr(loc)))
        return dst

    def cas(
        self,
        loc: Location,
        expected: Value,
        new: Value,
        dst: Optional[Reg] = None,
    ) -> Reg:
        """Atomic compare-and-swap; dst receives 1 on success, 0 on
        failure.  The read half is an acquire; the write half (like a
        Test&Set's) is synchronization but not a release."""
        dst = dst or self.reg()
        self._emit(Instruction(
            Opcode.CAS,
            dst=dst,
            src=(self._operand(expected), self._operand(new)),
            addr=self._addr(loc),
        ))
        return dst

    def unset(self, loc: Location) -> None:
        """Release-write 0 to *loc* (the paper's Unset instruction)."""
        self._emit(Instruction(Opcode.UNSET, addr=self._addr(loc)))

    def acquire_read(self, loc: Location, dst: Optional[Reg] = None) -> Reg:
        """A bare acquire read (flag synchronization)."""
        dst = dst or self.reg()
        self._emit(Instruction(Opcode.ACQ_READ, dst=dst, addr=self._addr(loc)))
        return dst

    def release_write(self, loc: Location, value: Value) -> None:
        """A bare release write (flag synchronization)."""
        self._emit(
            Instruction(
                Opcode.REL_WRITE, src=(self._operand(value),), addr=self._addr(loc)
            )
        )

    def fence(self) -> None:
        self._emit(Instruction(Opcode.FENCE))

    # -- ALU -------------------------------------------------------------
    def mov(self, value: Value, dst: Optional[Reg] = None) -> Reg:
        dst = dst or self.reg()
        self._emit(Instruction(Opcode.MOV, dst=dst, src=(self._operand(value),)))
        return dst

    def add(self, a: Value, b: Value, dst: Optional[Reg] = None) -> Reg:
        return self._alu(Opcode.ADD, a, b, dst)

    def sub(self, a: Value, b: Value, dst: Optional[Reg] = None) -> Reg:
        return self._alu(Opcode.SUB, a, b, dst)

    def mul(self, a: Value, b: Value, dst: Optional[Reg] = None) -> Reg:
        return self._alu(Opcode.MUL, a, b, dst)

    def cmp_eq(self, a: Value, b: Value, dst: Optional[Reg] = None) -> Reg:
        """dst = 1 if a == b else 0."""
        return self._alu(Opcode.CMP_EQ, a, b, dst)

    def cmp_lt(self, a: Value, b: Value, dst: Optional[Reg] = None) -> Reg:
        """dst = 1 if a < b else 0."""
        return self._alu(Opcode.CMP_LT, a, b, dst)

    # -- control flow ----------------------------------------------------
    def jump(self, label: str) -> None:
        self._emit(Instruction(Opcode.JMP, label=label))

    def jump_if_zero(self, reg: Reg, label: str) -> None:
        self._emit(Instruction(Opcode.BZ, src=(reg,), label=label))

    def jump_if_nonzero(self, reg: Reg, label: str) -> None:
        self._emit(Instruction(Opcode.BNZ, src=(reg,), label=label))

    def halt(self) -> None:
        self._emit(Instruction(Opcode.HALT))

    def nop(self) -> None:
        self._emit(Instruction(Opcode.NOP))

    # -- synchronization idioms -------------------------------------------
    def lock(self, loc: Location) -> None:
        """Spin with Test&Set until the lock at *loc* is acquired."""
        name = f"__lock_{len(self._instructions)}"
        self.label(name)
        got = self.test_and_set(loc)
        self.jump_if_nonzero(got, name)

    def unlock(self, loc: Location) -> None:
        """Release the lock at *loc* (alias for unset)."""
        self.unset(loc)

    def spin_until_eq(self, loc: Location, value: int) -> Reg:
        """Acquire-read *loc* until it equals *value*; returns the reg."""
        name = f"__spin_{len(self._instructions)}"
        self.label(name)
        seen = self.acquire_read(loc)
        same = self.cmp_eq(seen, value)
        self.jump_if_zero(same, name)
        return seen

    def spin_until_ge(self, loc: Location, value: int) -> Reg:
        """Acquire-read *loc* until it is at least *value* — the right
        idiom for monotonically advancing flags, where spinning on an
        exact value could miss it."""
        name = f"__spinge_{len(self._instructions)}"
        self.label(name)
        seen = self.acquire_read(loc)
        below = self.cmp_lt(seen, value)
        self.jump_if_nonzero(below, name)
        return seen

    # -- internals ---------------------------------------------------------
    def _alu(self, op: Opcode, a: Value, b: Value, dst: Optional[Reg]) -> Reg:
        dst = dst or self.reg()
        self._emit(Instruction(op, dst=dst, src=(self._operand(a), self._operand(b))))
        return dst

    def _emit(self, instr: Instruction) -> None:
        self._instructions.append(instr)

    def _operand(self, value: Value) -> Operand:
        if isinstance(value, Reg):
            return value
        return Imm(int(value))

    def _addr(self, loc: Location) -> Addr:
        if isinstance(loc, ArrayRef):
            if isinstance(loc.index, Reg):
                return Addr(loc.base, index=loc.index)
            return Addr(loc.base + int(loc.index))
        if isinstance(loc, str):
            return Addr(self._builder.symbols.addr_of(loc))
        return Addr(int(loc))

    def finish(self) -> ThreadProgram:
        instructions = list(self._instructions)
        if not instructions or instructions[-1].opcode is not Opcode.HALT:
            instructions.append(Instruction(Opcode.HALT))
        thread = ThreadProgram(tuple(instructions), dict(self._labels))
        for instr in instructions:
            if instr.label is not None:
                thread.target_of(instr.label)  # raises on dangling labels
        return thread


class _ThreadContext:
    def __init__(self, builder: "ProgramBuilder") -> None:
        self._builder = builder
        self._thread = ThreadBuilder(builder)

    def __enter__(self) -> ThreadBuilder:
        return self._thread

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self._builder._threads.append(self._thread.finish())


class ProgramBuilder:
    """Builds a :class:`Program`: declare symbols, then add threads."""

    def __init__(self) -> None:
        self.symbols = SymbolTable()
        self._threads: List[ThreadProgram] = []
        self._initial: Dict[int, int] = {}

    def var(self, name: str, initial: int = 0) -> int:
        """Declare a scalar shared location; returns its address."""
        addr = self.symbols.scalar(name)
        if initial:
            self._initial[addr] = initial
        return addr

    def array(self, name: str, size: int, initial: Optional[List[int]] = None) -> int:
        """Declare an array of *size* locations; returns the base address."""
        base = self.symbols.array(name, size)
        if initial is not None:
            if len(initial) > size:
                raise ValueError("initializer longer than array")
            for offset, value in enumerate(initial):
                if value:
                    self._initial[base + offset] = value
        return base

    def at(self, base: int, index: Union[int, Reg]) -> ArrayRef:
        """An array element reference usable as a read/write location."""
        return ArrayRef(base, index)

    def thread(self) -> _ThreadContext:
        """Context manager yielding a :class:`ThreadBuilder`."""
        return _ThreadContext(self)

    def build(self) -> Program:
        if not self._threads:
            raise ValueError("program has no threads")
        return Program(
            threads=tuple(self._threads),
            symbols=self.symbols,
            initial_memory=dict(self._initial),
        )
