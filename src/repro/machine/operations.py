"""Memory-operation records.

The paper (section 2.1) identifies an operation by the location it
accesses and the part of the program that issued it — never by the value
it read or wrote.  The simulator nevertheless records values, observed
writers and staleness because those give the ground truth against which
Condition 3.4 and the SCP machinery are tested.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class OperationKind(enum.Enum):
    """Whether the operation reads or modifies its location."""

    READ = "read"
    WRITE = "write"


class SyncRole(enum.Enum):
    """Synchronization classification (Definition 2.1 and [GLL90]).

    * ``NONE`` — a data operation.
    * ``ACQUIRE`` — a sync read usable to conclude completion of another
      processor's prior operations (e.g. the read of a Test&Set).
    * ``RELEASE`` — a sync write usable to communicate completion of the
      issuer's prior operations (e.g. the write of an Unset).
    * ``SYNC_ONLY`` — recognized by the hardware as synchronization but
      carrying neither semantics; the write half of a Test&Set is the
      canonical example (the paper: "the write due to a Test&Set is not
      a release").
    """

    NONE = "none"
    ACQUIRE = "acquire"
    RELEASE = "release"
    SYNC_ONLY = "sync_only"

    @property
    def is_sync(self) -> bool:
        return self is not SyncRole.NONE


@dataclass(frozen=True)
class MemoryOperation:
    """One dynamic memory operation of an execution.

    Attributes:
        seq: global issue index; unique, increasing with simulated time.
        proc: issuing processor id.
        local_index: index within the issuing processor's operation
            stream (program order position).
        kind: read or write.
        role: synchronization role (``NONE`` for data operations).
        addr: accessed location (integer address).
        value: value read or written.
        observed_write: for reads, the ``seq`` of the write whose value
            was returned (None if the initial memory value was read).
        stale: for reads, True when some other processor had issued a
            newer write to ``addr`` that had not yet propagated to the
            reader — the simulator's marker for a potential sequential
            consistency violation.
        instr_index: static instruction index within the thread program
            (identifies "the part of the program" the op comes from).
    """

    seq: int
    proc: int
    local_index: int
    kind: OperationKind
    role: SyncRole
    addr: int
    value: int
    observed_write: Optional[int] = None
    stale: bool = False
    instr_index: int = -1

    @property
    def is_read(self) -> bool:
        return self.kind is OperationKind.READ

    @property
    def is_write(self) -> bool:
        return self.kind is OperationKind.WRITE

    @property
    def is_sync(self) -> bool:
        return self.role.is_sync

    @property
    def is_data(self) -> bool:
        return not self.role.is_sync

    @property
    def is_release(self) -> bool:
        return self.role is SyncRole.RELEASE

    @property
    def is_acquire(self) -> bool:
        return self.role is SyncRole.ACQUIRE

    def conflicts_with(self, other: "MemoryOperation") -> bool:
        """Definition (section 2.1): same location, at least one write."""
        return self.addr == other.addr and (self.is_write or other.is_write)

    def describe(self, addr_name: Optional[str] = None) -> str:
        """Human-readable rendering, e.g. ``P1 write(x,100)``."""
        name = addr_name if addr_name is not None else str(self.addr)
        tag = {
            SyncRole.NONE: self.kind.value,
            SyncRole.ACQUIRE: f"acq-{self.kind.value}",
            SyncRole.RELEASE: f"rel-{self.kind.value}",
            SyncRole.SYNC_ONLY: f"sync-{self.kind.value}",
        }[self.role]
        return f"P{self.proc} {tag}({name},{self.value})"
