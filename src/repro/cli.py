"""Command-line interface.

``weakraces run`` simulates a named workload on a chosen memory model
and prints the post-mortem race report; ``weakraces trace`` writes the
trace file instead; ``weakraces analyze`` runs the detector on a
previously written trace file; ``weakraces check`` verifies Condition
3.4 on an execution; ``weakraces hunt`` sweeps seeds x propagation
policies (optionally across worker processes) for a racy execution,
with ``--live`` telemetry, a ``--events`` JSONL wide-event log, and a
``--serve HOST:PORT`` HTTP telemetry endpoint (Prometheus ``/metrics``,
JSON ``/status``, ``/healthz``);
``weakraces events`` validates/summarizes/tails such a log;
``weakraces top`` renders a live dashboard from a served hunt
(``--attach``) or an event log (``--events``);
``weakraces explain`` prints witness-checked provenance for every
reported race; ``weakraces profile`` runs the pipeline under the
:mod:`repro.obs` profiler and prints per-stage timings; ``weakraces
models`` lists the memory models.

Report-printing subcommands take ``--json`` for machine-readable
output, and ``run``/``analyze``/``hunt`` take ``--profile FILE`` to
write a JSONL pipeline profile alongside their normal output.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable, Dict, Optional, Sequence

from . import obs
from .analysis.naive import NaiveDetector
from .api import (
    DETECTOR_NAMES,
    TRACE_FORMATS,
    detect,
    load_trace,
    save_trace,
    sniff_trace_format,
)
from .core.scp import check_condition_34
from .machine.models import ALL_MODEL_NAMES, make_model
from .machine.program import Program
from .machine.simulator import run_program
from .programs import (
    bounded_queue_program,
    buggy_workqueue_program,
    cas_counter_program,
    fanin_barrier_program,
    figure1a_program,
    figure1b_program,
    fixed_workqueue_program,
    independent_work_program,
    lock_shadow_program,
    locked_counter_program,
    producer_consumer_program,
    racy_counter_program,
    iriw_program,
    run_figure2,
    single_race_program,
    store_buffering_program,
)
from .trace.build import build_trace

WORKLOADS: Dict[str, Callable[[], Program]] = {
    "figure1a": figure1a_program,
    "figure1b": figure1b_program,
    "workqueue-buggy": buggy_workqueue_program,
    "workqueue-fixed": fixed_workqueue_program,
    "locked-counter": locked_counter_program,
    "lock-shadow": lock_shadow_program,
    "racy-counter": racy_counter_program,
    "producer-consumer": producer_consumer_program,
    "independent": independent_work_program,
    "single-race": single_race_program,
    "barrier": fanin_barrier_program,
    "store-buffering": store_buffering_program,
    "iriw": iriw_program,
    "cas-counter": cas_counter_program,
    "queue": bounded_queue_program,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="weakraces",
        description=(
            "Dynamic data race detection on simulated weak memory systems "
            "(reproduction of Adve/Hill/Miller/Netzer, ISCA 1991)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="simulate a workload and report races")
    run_p.add_argument("workload", choices=sorted(WORKLOADS) + ["figure2"])
    run_p.add_argument("--model", default="WO", choices=ALL_MODEL_NAMES)
    run_p.add_argument("--seed", type=int, default=0)
    run_p.add_argument(
        "--detector", default="postmortem", choices=DETECTOR_NAMES,
        help="detection backend (default %(default)s; shb adds per-race "
             "soundness certificates, wcp adds predicted races from "
             "critical-section reordering)",
    )
    run_p.add_argument(
        "--naive", action="store_true",
        help="also print the naive (report-everything) baseline",
    )
    run_p.add_argument(
        "--dot", metavar="FILE",
        help="write the augmented happens-before-1 graph as DOT",
    )
    run_p.add_argument(
        "--explain", action="store_true",
        help="print the affects chain for every race (why suppressed "
             "races were suppressed)",
    )
    run_p.add_argument(
        "--json", action="store_true", dest="as_json",
        help="print the race report as JSON",
    )
    run_p.add_argument(
        "--profile", metavar="FILE", dest="profile_path",
        help="write a JSONL pipeline profile (see repro.obs)",
    )

    trace_p = sub.add_parser("trace", help="simulate and write a trace file")
    trace_p.add_argument("workload", choices=sorted(WORKLOADS) + ["figure2"])
    trace_p.add_argument("output", help="trace file path")
    trace_p.add_argument("--model", default="WO", choices=ALL_MODEL_NAMES)
    trace_p.add_argument("--seed", type=int, default=0)
    trace_p.add_argument(
        "--format", choices=TRACE_FORMATS, default=None,
        help="trace file format (default: inferred from the output "
             "suffix, jsonl otherwise)",
    )

    conv_p = sub.add_parser(
        "convert",
        help="convert a trace file between jsonl, binary, and columnar",
    )
    conv_p.add_argument("source", help="trace file (format sniffed)")
    conv_p.add_argument("output", help="converted trace file path")
    conv_p.add_argument(
        "--to", choices=TRACE_FORMATS, default=None, dest="to_format",
        help="target format (default: inferred from the output suffix)",
    )

    an_p = sub.add_parser("analyze", help="analyze a trace file post-mortem")
    an_p.add_argument("tracefile")
    an_p.add_argument(
        "--detector", default="postmortem",
        choices=[n for n in DETECTOR_NAMES if n != "onthefly"],
        help="detection backend (default %(default)s; onthefly needs "
             "the operation stream, which trace files do not record)",
    )
    an_p.add_argument("--dot", metavar="FILE")
    an_p.add_argument(
        "--json", action="store_true", dest="as_json",
        help="print the race report as JSON",
    )
    an_p.add_argument(
        "--profile", metavar="FILE", dest="profile_path",
        help="write a JSONL pipeline profile (see repro.obs)",
    )

    chk_p = sub.add_parser(
        "check", help="verify Condition 3.4 on a simulated execution"
    )
    chk_p.add_argument("workload", choices=sorted(WORKLOADS) + ["figure2"])
    chk_p.add_argument("--model", default="WO", choices=ALL_MODEL_NAMES)
    chk_p.add_argument("--seed", type=int, default=0)
    chk_p.add_argument(
        "--robustness", action="store_true",
        help="also verify robustness: search the execution for an SC "
             "justification (total order consistent with program order "
             "+ reads-from) and print the witness or the minimal "
             "violating cycle with its SC-prefix boundary",
    )
    chk_p.add_argument(
        "--json", action="store_true", dest="as_json",
        help="print the verdict as JSON",
    )

    st_p = sub.add_parser(
        "static", help="compile-time (lockset) race analysis of a workload"
    )
    st_p.add_argument("workload", choices=sorted(WORKLOADS))

    drf_p = sub.add_parser(
        "drf-check",
        help="decide Definition 2.4 exactly by exploring every SC execution",
    )
    drf_p.add_argument("workload", choices=sorted(WORKLOADS))
    drf_p.add_argument("--max-states", type=int, default=200_000)

    rf_p = sub.add_parser(
        "run-file", help="assemble a .rasm file, simulate, and report races"
    )
    rf_p.add_argument("source", help="assembly source file")
    rf_p.add_argument("--model", default="WO", choices=ALL_MODEL_NAMES)
    rf_p.add_argument("--seed", type=int, default=0)
    rf_p.add_argument(
        "--json", action="store_true", dest="as_json",
        help="print the race report as JSON",
    )

    dis_p = sub.add_parser(
        "disasm", help="print a built-in workload as assembly text"
    )
    dis_p.add_argument("workload", choices=sorted(WORKLOADS))

    rec_p = sub.add_parser(
        "record",
        help="simulate a workload while recording every nondeterministic "
             "choice, for later bit-exact replay",
    )
    rec_p.add_argument("workload", choices=sorted(WORKLOADS))
    rec_p.add_argument("output", help="recording file path")
    rec_p.add_argument("--model", default="WO", choices=ALL_MODEL_NAMES)
    rec_p.add_argument("--seed", type=int, default=0)
    rec_p.add_argument(
        "--json", action="store_true", dest="as_json",
        help="print the race report as JSON",
    )

    rep_p = sub.add_parser(
        "replay", help="replay a recorded execution and re-run the detector"
    )
    rep_p.add_argument("workload", choices=sorted(WORKLOADS))
    rep_p.add_argument("recording", help="recording file path")
    rep_p.add_argument(
        "--json", action="store_true", dest="as_json",
        help="print the race report as JSON",
    )

    out_p = sub.add_parser(
        "outcomes",
        help="enumerate every final memory state a model admits for a "
             "(litmus-sized) workload",
    )
    out_p.add_argument("workload", choices=sorted(WORKLOADS))
    out_p.add_argument("--model", default="WO", choices=ALL_MODEL_NAMES)
    out_p.add_argument("--max-states", type=int, default=300_000)
    out_p.add_argument(
        "--vars", nargs="*", metavar="NAME",
        help="project outcomes onto these locations",
    )

    tl_p = sub.add_parser(
        "timeline",
        help="draw an execution as per-processor columns (paper-figure "
             "style), with stale reads and the SCP boundary marked",
    )
    tl_p.add_argument("workload", choices=sorted(WORKLOADS) + ["figure2"])
    tl_p.add_argument("--model", default="WO", choices=ALL_MODEL_NAMES)
    tl_p.add_argument("--seed", type=int, default=0)
    tl_p.add_argument("--rows", type=int, default=40)
    tl_p.add_argument("--width", type=int, default=26)

    hunt_p = sub.add_parser(
        "hunt",
        help="sweep seeds x propagation policies for a racy execution, "
             "optionally sharded across worker processes",
        description=(
            "Run a workload many times under different seeds and "
            "propagation policies, looking for a racy execution with a "
            "replay-verified recording.  Every policy sweeps the same "
            "seed range, so per-policy racy rates are comparable.  "
            "Transient job failures are retried with backoff "
            "(--max-retries); with --checkpoint the hunt periodically "
            "persists settled outcomes and --resume continues an "
            "interrupted run with statistics identical to an "
            "uninterrupted one.  The first SIGINT/SIGTERM drains "
            "in-flight jobs and writes a final checkpoint; a second "
            "kills the hunt immediately.  Exit status: 1 when a race "
            "was found, 0 when none was, 2 on usage errors (including "
            "checkpoint mismatches), 3 when any worker crashed or "
            "timed out, 130 when interrupted."
        ),
    )
    hunt_p.add_argument("workload", choices=sorted(WORKLOADS))
    hunt_p.add_argument("--model", default="WO", choices=ALL_MODEL_NAMES)
    hunt_p.add_argument(
        "--detector", default="postmortem",
        choices=[n for n in DETECTOR_NAMES if n != "onthefly"],
        help="analysis backend for every execution (default "
             "%(default)s); part of the checkpoint identity — resuming "
             "with a different detector is a hard error",
    )
    hunt_p.add_argument(
        "--tries", type=int, default=24,
        help="total executions to sweep (default %(default)s)",
    )
    hunt_p.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes; 1 runs in-process, N>1 shards the "
             "sweep with identical merged statistics",
    )
    hunt_p.add_argument(
        "--batch-size", type=int, default=None, metavar="N",
        help="jobs per pool dispatch batch (requires --jobs > 1; "
             "default: auto-sized to a couple of batches per worker; "
             "1 reproduces the unbatched wire protocol)",
    )
    hunt_p.add_argument(
        "--policies", nargs="+", metavar="NAME",
        help="propagation policies to sweep, in order "
             "(default: stubborn random-0.2 ring)",
    )
    hunt_p.add_argument(
        "--stop-at-first", action="store_true",
        help="stop as soon as one racy execution is found",
    )
    hunt_p.add_argument("--max-steps", type=int, default=200_000)
    hunt_p.add_argument(
        "--timeout", type=float, default=None, metavar="SEC",
        help="per-execution wall-clock limit; timed-out runs are "
             "recorded as failures (nondeterministic — avoid when "
             "exact reproducibility matters)",
    )
    hunt_p.add_argument(
        "--json", action="store_true", dest="as_json",
        help="print the merged result as JSON instead of the summary",
    )
    hunt_p.add_argument(
        "--save-recording", metavar="FILE",
        help="write the first racy run's verified recording here",
    )
    hunt_p.add_argument(
        "--profile", metavar="FILE", dest="profile_path",
        help="write a JSONL pipeline profile with per-stage timings "
             "aggregated across all hunt jobs (see repro.obs)",
    )
    hunt_p.add_argument(
        "--no-cache", action="store_true",
        help="disable the per-worker trace-fingerprint analysis cache "
             "(every execution runs the full detection pipeline)",
    )
    hunt_p.add_argument(
        "--live", action="store_true",
        help="render a rolling status line (throughput, cache hit "
             "rate, racy fraction, ETA) fed by the metrics registry",
    )
    hunt_p.add_argument(
        "--events", metavar="FILE", dest="events_path",
        help="write a JSONL wide-event log (one record per try; see "
             "'weakraces events' to validate/summarize/tail it)",
    )
    hunt_p.add_argument(
        "--checkpoint", metavar="FILE", dest="checkpoint_path",
        help="periodically persist settled outcomes to FILE "
             "(atomic write), making the hunt resumable after a crash",
    )
    hunt_p.add_argument(
        "--resume", action="store_true",
        help="resume from --checkpoint FILE: validate it against this "
             "hunt's spec, skip settled jobs, and merge to statistics "
             "identical to an uninterrupted run",
    )
    hunt_p.add_argument(
        "--checkpoint-interval", type=int, default=100, metavar="N",
        help="settled jobs between periodic checkpoint writes "
             "(default %(default)s; a final write always happens)",
    )
    hunt_p.add_argument(
        "--max-retries", type=int, default=2, metavar="N",
        help="retry a transiently failing job up to N times with "
             "exponential backoff (default %(default)s; jobs that "
             "fail identically twice are classified deterministic "
             "and not retried; 0 disables retries)",
    )
    hunt_p.add_argument(
        "--retry-backoff", type=float, default=0.05, metavar="SEC",
        help="base retry backoff delay (default %(default)ss; doubles "
             "per attempt, with deterministic seeded jitter)",
    )
    hunt_p.add_argument(
        "--verify-robustness", action="store_true",
        help="attach a robustness verdict to every try (does the "
             "execution have an SC justification?); any non-robust try "
             "downgrades the result's detector-soundness claim.  Part "
             "of the checkpoint identity, like --detector",
    )
    hunt_p.add_argument(
        "--serve", metavar="HOST:PORT", dest="serve_address",
        help="serve live telemetry over HTTP while the hunt runs: "
             "Prometheus /metrics (text exposition 0.0.4), JSON "
             "/status, and /healthz; port 0 binds an ephemeral port "
             "and the chosen URL is printed to stderr",
    )

    ev_p = sub.add_parser(
        "events",
        help="validate, summarize, or tail a hunt event log",
        description=(
            "Check a JSONL event log written by 'weakraces hunt "
            "--events' against its schema, then summarize it (racy "
            "rates per policy, cache hit rate, duration percentiles) "
            "or tail the newest try records.  Exit status: 0 ok, 2 "
            "when the file fails validation.  A truncated final line "
            "(the writer was killed mid-append) is tolerated with a "
            "warning; garbage anywhere else still fails."
        ),
    )
    ev_p.add_argument("file", help="event log path (JSONL)")
    ev_p.add_argument(
        "--tail", type=int, metavar="N",
        help="print the last N try records, one line each",
    )
    ev_p.add_argument(
        "--json", action="store_true", dest="as_json",
        help="print the loaded log as JSON",
    )

    top_p = sub.add_parser(
        "top",
        help="live dashboard for a hunt (attach to --serve, or render "
             "an --events log)",
        description=(
            "Render a one-screen dashboard — progress, throughput, "
            "per-policy and per-detector racy rates, a job-duration "
            "sparkline, coverage counters, failure classes — either "
            "by polling a hunt's --serve telemetry endpoint "
            "(--attach HOST:PORT) or from a 'hunt --events' JSONL "
            "log (--events FILE, works while the hunt still runs).  "
            "Exit status: 0 on a clean end (--once, Ctrl-C, or the "
            "hunt finishing), 2 when the source cannot be fetched or "
            "parsed."
        ),
    )
    top_group = top_p.add_mutually_exclusive_group(required=True)
    top_group.add_argument(
        "--attach", metavar="HOST:PORT",
        help="poll a live hunt's telemetry server (--serve address)",
    )
    top_group.add_argument(
        "--events", metavar="FILE", dest="events_path",
        help="render from a hunt event log instead of a live server",
    )
    top_p.add_argument(
        "--interval", type=float, default=1.0, metavar="SEC",
        help="repaint interval (default %(default)ss)",
    )
    top_p.add_argument(
        "--once", action="store_true",
        help="print one frame and exit (for scripts)",
    )

    ex_p = sub.add_parser(
        "explain",
        help="witness-checked provenance for each race of a run",
        description=(
            "Simulate a workload, detect races, and print per-race "
            "provenance: the hb1 non-ordering witness (BFS "
            "cross-checked against the closure backend), the race's "
            "SCC/partition in the augmented graph G', and the "
            "Definition 4.1 reachability evidence that makes its "
            "partition first (reported) or not (suppressed)."
        ),
    )
    ex_p.add_argument("workload", choices=sorted(WORKLOADS) + ["figure2"])
    ex_p.add_argument("--model", default="WO", choices=ALL_MODEL_NAMES)
    ex_p.add_argument("--seed", type=int, default=0)
    ex_p.add_argument(
        "--race", metavar="SIG",
        help="explain only the race with this signature "
             "(e.g. P0.E0~P1.E0)",
    )
    ex_p.add_argument(
        "--include-sync", action="store_true",
        help="also explain sync races (excluded from data races by "
             "Definition 2.4)",
    )
    ex_p.add_argument(
        "--dot", metavar="FILE",
        help="write G' as DOT with the first partitions highlighted",
    )
    ex_p.add_argument(
        "--json", action="store_true", dest="as_json",
        help="print the provenance report as JSON",
    )

    prof_p = sub.add_parser(
        "profile",
        help="run the detection pipeline under the repro.obs profiler "
             "and print per-stage timings",
        description=(
            "Simulate a workload, run a detector on it, and report "
            "where the time went: a span tree (simulate, trace.build, "
            "hb1.build, races.find, ...) with wall time, per-stage "
            "counters, and peak RSS."
        ),
    )
    prof_p.add_argument("workload", choices=sorted(WORKLOADS) + ["figure2"])
    prof_p.add_argument("--model", default="WO", choices=ALL_MODEL_NAMES)
    prof_p.add_argument("--seed", type=int, default=0)
    prof_p.add_argument(
        "--detector", default="postmortem", choices=DETECTOR_NAMES,
        help="detector variant to profile (default %(default)s)",
    )
    prof_p.add_argument(
        "-o", "--output", metavar="FILE",
        help="also write the profile as JSONL",
    )
    prof_p.add_argument(
        "--json", action="store_true", dest="as_json",
        help="print the profile as JSON instead of the summary tree",
    )

    sub.add_parser("models", help="list memory models")
    return parser


def _run_workload(name: str, model_name: str, seed: int):
    model = make_model(model_name)
    if name == "figure2":
        return run_figure2(model)
    program = WORKLOADS[name]()
    return run_program(program, model, seed=seed)


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    profile_path = getattr(args, "profile_path", None)
    if not profile_path:
        return _dispatch(args)
    profiler = obs.Profiler()
    with profiler.activate():
        status = _dispatch(args)
    meta = {"command": args.command}
    hunt_id = getattr(args, "_hunt_id", None)
    if hunt_id:
        meta["hunt_id"] = hunt_id
    obs.write_profile(profiler, profile_path, meta=meta)
    print(f"profile written to {profile_path}", file=sys.stderr)
    return status


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "models":
        for name in ALL_MODEL_NAMES:
            print(name)
        return 0

    if args.command == "profile":
        profiler = obs.Profiler()
        with profiler.activate():
            result = _run_workload(args.workload, args.model, args.seed)
            report = detect(result, detector=args.detector)
        if args.output:
            obs.write_profile(profiler, args.output, meta={
                "command": "profile",
                "workload": args.workload,
                "model": args.model,
                "seed": args.seed,
                "detector": args.detector,
            })
            print(f"profile written to {args.output}", file=sys.stderr)
        if args.as_json:
            print(json.dumps(profiler.to_json(), indent=2, sort_keys=True))
        else:
            print(profiler.summary())
        return 0 if report.race_free else 1

    if args.command == "convert":
        from .trace import BinaryTraceError, ColumnarTraceError
        from .trace.tracefile import TraceFormatError
        try:
            src_format = sniff_trace_format(args.source)
            trace = load_trace(args.source)
            dst_format = save_trace(trace, args.output, format=args.to_format)
        except (OSError, BinaryTraceError, ColumnarTraceError,
                TraceFormatError) as exc:
            print(f"convert: {exc}", file=sys.stderr)
            return 2
        print(
            f"converted {args.source} [{src_format}] -> "
            f"{args.output} [{dst_format}] ({trace.event_count} events)"
        )
        return 0

    if args.command == "analyze":
        from .trace import BinaryTraceError, ColumnarTraceError
        from .trace.columnar import ColumnarTrace
        from .trace.tracefile import TraceFormatError
        from .trace.validate import InvalidTraceError, require_valid_trace
        try:
            trace = load_trace(args.tracefile)
        except (OSError, BinaryTraceError, ColumnarTraceError,
                TraceFormatError) as exc:
            print(f"{args.tracefile}: {exc}", file=sys.stderr)
            return 2
        if not isinstance(trace, ColumnarTrace):
            # columnar opens lazily: the parser already bounds-checked
            # the structure, and full validation would materialize
            # every event, defeating the zero-copy path
            try:
                require_valid_trace(trace)
            except InvalidTraceError as exc:
                print(f"{args.tracefile}: {exc}", file=sys.stderr)
                return 2
        report = detect(trace, detector=args.detector)
        if args.dot and not hasattr(report, "to_dot"):
            print(
                f"analyze: --dot is not supported by the "
                f"{args.detector} detector (no G' to draw)",
                file=sys.stderr,
            )
            return 2
        if args.as_json:
            print(json.dumps(report.to_json(), indent=2, sort_keys=True))
        else:
            print(report.format())
        if args.dot:
            with open(args.dot, "w", encoding="utf-8") as fh:
                fh.write(report.to_dot())
            if not args.as_json:
                print(f"\nDOT graph written to {args.dot}")
        return 0 if report.race_free else 1

    if args.command == "disasm":
        from .machine.assembler import format_program
        print(format_program(WORKLOADS[args.workload]()), end="")
        return 0

    if args.command == "run-file":
        from .machine.assembler import AssemblyError, parse_program
        try:
            with open(args.source, "r", encoding="utf-8") as fh:
                program = parse_program(fh.read())
        except AssemblyError as exc:
            print(f"{args.source}: {exc}", file=sys.stderr)
            return 2
        result = run_program(program, make_model(args.model), seed=args.seed)
        if not result.completed:
            print("warning: execution hit the step bound", file=sys.stderr)
        report = detect(result)
        if args.as_json:
            print(json.dumps(report.to_json(), indent=2, sort_keys=True))
        else:
            print(report.format())
        return 0 if report.race_free else 1

    if args.command == "record":
        from .machine.replay import record_execution
        result, recording = record_execution(
            WORKLOADS[args.workload](), make_model(args.model), seed=args.seed
        )
        recording.save(args.output)
        report = detect(result)
        if args.as_json:
            print(json.dumps(report.to_json(), indent=2, sort_keys=True))
        else:
            print(f"recorded {len(result.operations)} operations "
                  f"({args.model}, seed {args.seed}) to {args.output}")
            print(report.format())
        return 0 if report.race_free else 1

    if args.command == "replay":
        from .machine.replay import (
            ExecutionRecording, ReplayError, replay_execution,
        )
        recording = ExecutionRecording.load(args.recording)
        try:
            result = replay_execution(
                WORKLOADS[args.workload](),
                make_model(recording.model_name),
                recording,
            )
        except ReplayError as exc:
            print(f"replay failed: {exc}", file=sys.stderr)
            return 2
        report = detect(result)
        if args.as_json:
            print(json.dumps(report.to_json(), indent=2, sort_keys=True))
        else:
            print(f"replayed {len(result.operations)} operations "
                  f"({recording.model_name})")
            print(report.format())
        return 0 if report.race_free else 1

    if args.command == "events":
        from .obs import events as obs_events
        problems, warnings = obs_events.check_events(args.file)
        for warning in warnings:
            print(f"{args.file}: warning: {warning}", file=sys.stderr)
        if problems:
            for problem in problems:
                print(f"{args.file}: {problem}", file=sys.stderr)
            return 2
        loaded = obs_events.read_events(args.file)
        if args.as_json:
            payload = dict(loaded)
            payload["breakdown"] = obs_events.summary_data(loaded)
            print(json.dumps(payload, indent=2, sort_keys=True))
        elif args.tail is not None:
            for record in loaded["tries"][-max(args.tail, 0):]:
                print(obs_events.format_try(record))
        else:
            print(obs_events.summarize_events(loaded))
        return 0

    if args.command == "explain":
        from .core.provenance import ProvenanceError, explain_races
        result = _run_workload(args.workload, args.model, args.seed)
        report = detect(result)
        try:
            prov = explain_races(report, include_sync=args.include_sync)
        except ProvenanceError as exc:
            print(f"explain: {exc}", file=sys.stderr)
            return 2
        if args.race:
            one = prov.find(args.race)
            if one is None:
                known = ", ".join(p.signature for p in prov.provenances)
                print(
                    f"explain: no race {args.race!r} in this execution"
                    + (f"; known: {known}" if known else " (race-free)"),
                    file=sys.stderr,
                )
                return 2
            if args.as_json:
                print(json.dumps(one.to_json(), indent=2, sort_keys=True))
            else:
                print(one.describe(report.trace))
        elif args.as_json:
            print(json.dumps(prov.to_json(), indent=2, sort_keys=True))
        else:
            print(prov.format())
        if args.dot:
            with open(args.dot, "w", encoding="utf-8") as fh:
                fh.write(prov.to_dot())
            if not args.as_json:
                print(f"\nDOT graph written to {args.dot}")
        return 0 if report.race_free else 1

    if args.command == "top":
        from .obs.top import run_top
        return run_top(
            attach=args.attach,
            events_path=args.events_path,
            interval=args.interval,
            once=args.once,
        )

    if args.command == "hunt":
        import os
        import signal
        import threading
        from .analysis.checkpoint import (
            CheckpointError, make_hunt_id, peek_hunt_id,
        )
        from .analysis.hunting import hunt_races, policies_by_name
        from .obs import events as obs_events
        from .obs import metrics as obs_metrics
        from .obs.live import HuntStatusLine
        program = WORKLOADS[args.workload]()
        if args.resume and not args.checkpoint_path:
            print("hunt: --resume requires --checkpoint FILE",
                  file=sys.stderr)
            return 2
        # Resolve the hunt id up front so every surface that mentions
        # it — events meta, /status, profile meta, checkpoint, the
        # final JSON — agrees.  On resume the checkpoint's stored id
        # wins (run_hunt enforces the same precedence).
        hunt_id = None
        if args.resume and args.checkpoint_path:
            hunt_id = peek_hunt_id(args.checkpoint_path)
        if hunt_id is None:
            hunt_id = make_hunt_id({
                "workload": args.workload,
                "model": args.model,
                "detector": args.detector,
                "tries": args.tries,
                "policies": args.policies or "default",
            })
        args._hunt_id = hunt_id
        serve_address = None
        if args.serve_address:
            from .obs.server import parse_serve_address
            try:
                serve_address = parse_serve_address(args.serve_address)
            except ValueError as exc:
                print(f"hunt: {exc}", file=sys.stderr)
                return 2
        registry = None
        status_line = None
        progress = None
        if args.live:
            registry = obs_metrics.MetricsRegistry()
            status_line = HuntStatusLine(registry=registry)
            progress = status_line.progress
        elif sys.stderr.isatty() and not args.as_json:
            def progress(done: int, total: int, racy: int) -> None:
                print(f"\rhunt: {done}/{total} executions, {racy} racy",
                      end="", file=sys.stderr, flush=True)
        server = None
        if serve_address is not None:
            from .obs.server import TelemetryServer
            if registry is None:
                registry = obs_metrics.MetricsRegistry()
            server = TelemetryServer(registry, info={
                "hunt_id": hunt_id,
                "workload": args.workload,
                "model": args.model,
                "detector": args.detector,
                "tries": args.tries,
                "jobs": args.jobs,
                "policies": args.policies or "default",
                "verify_robustness": args.verify_robustness,
            }, host=serve_address[0], port=serve_address[1])
            url = server.start()
            print(f"hunt: telemetry serving on {url} "
                  f"(/metrics /status /healthz)",
                  file=sys.stderr, flush=True)
        event_log = None
        if args.events_path:
            event_log = obs_events.HuntEventLog(args.events_path, meta={
                "workload": args.workload,
                "model": args.model,
                "tries": args.tries,
                "jobs": args.jobs,
                "policies": args.policies or "default",
                "hunt_id": hunt_id,
                "detector": args.detector,
            }, detector=args.detector)
        # Graceful interruption: the first SIGINT/SIGTERM stops
        # dispatch and drains in-flight jobs (a final checkpoint and a
        # partial result still come out); a second signal means "now",
        # and exits hard with the interrupt status.
        cancel = threading.Event()

        def _interrupt(signum, frame):
            if cancel.is_set():
                os._exit(130)
            cancel.set()
            print(
                "\nhunt: interrupt received — draining in-flight jobs "
                "(interrupt again to kill immediately)",
                file=sys.stderr,
            )

        previous_handlers = {}
        for signum in (signal.SIGINT, signal.SIGTERM):
            previous_handlers[signum] = signal.signal(signum, _interrupt)
        try:
            policies = (
                policies_by_name(args.policies, program.processor_count)
                if args.policies else None
            )
            result = hunt_races(
                program,
                lambda: make_model(args.model),
                tries=args.tries,
                policies=policies,
                stop_at_first=args.stop_at_first,
                max_steps=args.max_steps,
                jobs=args.jobs,
                job_timeout=args.timeout,
                progress=progress,
                trace_cache=not args.no_cache,
                on_outcome=event_log.on_outcome if event_log else None,
                metrics=registry,
                max_retries=args.max_retries,
                retry_backoff=args.retry_backoff,
                checkpoint=args.checkpoint_path,
                resume=args.resume,
                checkpoint_interval=args.checkpoint_interval,
                cancel=cancel,
                detector=args.detector,
                batch_size=args.batch_size,
                hunt_id=hunt_id,
                verify_robustness=args.verify_robustness,
            )
        except (CheckpointError, ValueError) as exc:
            if event_log is not None:
                event_log.close()
            print(f"hunt: {exc}", file=sys.stderr)
            return 2
        finally:
            for signum, handler in previous_handlers.items():
                signal.signal(signum, handler)
            if server is not None:
                server.stop()
            if status_line is not None:
                status_line.finish(
                    note="interrupted" if cancel.is_set() else None)
            elif progress is not None:
                print(file=sys.stderr)  # end the live status line
        if event_log is not None:
            event_log.write_stages(result.stage_profile)
            event_log.write_summary({
                "tries": result.tries,
                "racy_runs": result.racy_runs,
                "clean_runs": result.clean_runs,
                "failures": len(result.failures),
                "elapsed_sec": round(result.elapsed, 6),
                "executions_per_sec": round(
                    result.executions_per_second, 1
                ),
                "trace_cache_hits": result.trace_cache_hits,
                "retried_runs": result.retried_runs,
                "interrupted": result.interrupted,
                "resumed_jobs": result.resumed_jobs,
                "detector": result.detector,
                "certified_races": result.certified_races,
                "hunt_id": result.hunt_id,
                **(
                    {
                        "verified_tries": result.verified_tries,
                        "robust_tries": result.robust_tries,
                        "non_robust_tries": result.non_robust_tries,
                        "soundness": result.soundness,
                    }
                    if result.verify_robustness else {}
                ),
            })
            event_log.close()
            print(f"hunt events written to {args.events_path}",
                  file=sys.stderr)
        if args.save_recording and result.recording is not None:
            result.recording.save(args.save_recording)
        if args.as_json:
            print(json.dumps(result.to_json(), indent=2, sort_keys=True))
        else:
            print(result.summary())
            cache_note = (
                f", {result.trace_cache_hits} trace-cache hit(s)"
                if result.trace_cache_hits else ""
            )
            detector_note = (
                f", detector={result.detector} "
                f"({result.certified_races} certified race(s))"
                if result.detector != "postmortem" else ""
            )
            print(
                f"({result.jobs} worker(s), {result.elapsed:.2f}s, "
                f"{result.executions_per_second:.0f} executions/sec"
                f"{cache_note}{detector_note})"
            )
            if args.save_recording and result.recording is not None:
                print(f"recording written to {args.save_recording}")
        if args.checkpoint_path:
            print(f"hunt checkpoint written to {args.checkpoint_path}",
                  file=sys.stderr)
        if result.interrupted:
            return 130
        if result.failures:
            print(
                f"hunt: {len(result.failures)} job(s) crashed or timed "
                f"out (see failures in the output)",
                file=sys.stderr,
            )
            return 3
        return 1 if result.found else 0

    if args.command == "outcomes":
        from .analysis.outcomes import OutcomeLimit, enumerate_outcomes
        try:
            out = enumerate_outcomes(
                WORKLOADS[args.workload](), make_model(args.model),
                max_states=args.max_states, interesting=args.vars or None,
            )
        except OutcomeLimit as exc:
            print(f"enumeration incomplete: {exc}", file=sys.stderr)
            return 2
        print(f"{args.workload} on {args.model}: {len(out)} outcome(s), "
              f"{out.states_visited} states explored")
        if args.vars:
            for values in sorted(out.values_of(*args.vars)):
                rendered = ", ".join(
                    f"{n}={v}" for n, v in zip(args.vars, values)
                )
                print(f"  {rendered}")
        else:
            symbols = WORKLOADS[args.workload]().symbols
            for outcome in sorted(out.outcomes):
                nonzero = [
                    f"{symbols.name_of(a)}={v}" for a, v in outcome if v
                ]
                print("  " + (", ".join(nonzero) if nonzero else "(all zero)"))
        return 0

    if args.command == "static":
        from .staticanalysis import find_static_races
        report = find_static_races(WORKLOADS[args.workload]())
        print(report.format())
        return 1 if report.potentially_racy else 0

    if args.command == "drf-check":
        from .analysis.exhaustive import ExplorationLimit, explore_program
        try:
            result = explore_program(
                WORKLOADS[args.workload](), max_states=args.max_states
            )
        except ExplorationLimit as exc:
            print(f"exploration incomplete: {exc}", file=sys.stderr)
            return 2
        verdict = "data-race-free" if result.program_is_data_race_free \
            else "NOT data-race-free"
        print(f"{args.workload}: {verdict} "
              f"({result.executions_explored} executions, "
              f"{result.states_visited} states explored)")
        if result.racing_schedule is not None:
            print(f"  racing schedule witness: {result.racing_schedule}")
        return 0 if result.program_is_data_race_free else 1

    result = _run_workload(args.workload, args.model, args.seed)

    if args.command == "timeline":
        from .core.timeline import render_timeline
        print(render_timeline(result, width=args.width, max_rows=args.rows))
        return 0

    if not result.completed:
        print("warning: execution hit the step bound before completion",
              file=sys.stderr)

    if args.command == "trace":
        trace = build_trace(result)
        fmt = save_trace(trace, args.output, format=args.format)
        print(
            f"wrote {trace.event_count} events "
            f"({len(result.operations)} operations) to {args.output} "
            f"[{fmt}]"
        )
        return 0

    if args.command == "check":
        report = check_condition_34(result)
        robustness = None
        if args.robustness:
            from .api import check_robustness
            robustness = check_robustness(result)
        if args.as_json:
            payload = report.to_json()
            payload["stale_reads"] = len(result.stale_reads)
            if robustness is not None:
                payload["robustness"] = robustness.to_json()
            print(json.dumps(payload, indent=2, sort_keys=True))
        else:
            print(report.summary())
            print(f"  SCP cuts (per processor): {report.scp.cuts}")
            print(f"  stale reads: {len(result.stale_reads)}")
            if robustness is not None:
                print(robustness.format())
        return 0 if report.ok else 1

    # command == "run"
    report = detect(result, detector=args.detector)
    # --dot and --explain draw/walk the augmented graph G'; --naive
    # re-analyzes report.trace.  All three need a graph-carrying
    # post-mortem style report (postmortem/shb/wcp), not the streaming
    # or strawman ones.
    graphless = [
        flag for flag, wanted in (
            ("--dot", args.dot), ("--explain", args.explain),
            ("--naive", args.naive),
        )
        if wanted and not hasattr(report, "to_dot")
    ]
    if graphless:
        print(
            f"run: {', '.join(graphless)} not supported by the "
            f"{args.detector} detector (no trace/G' on its report)",
            file=sys.stderr,
        )
        return 2
    if args.as_json:
        payload = report.to_json()
        if args.naive:
            payload = {
                payload["kind"]: payload,
                "naive": NaiveDetector().analyze(report.trace).to_json(),
            }
        print(json.dumps(payload, indent=2, sort_keys=True))
        if args.dot:
            with open(args.dot, "w", encoding="utf-8") as fh:
                fh.write(report.to_dot())
        return 0 if report.race_free else 1
    print(report.format())
    if args.naive:
        print()
        print(NaiveDetector().analyze(report.trace).format())
    if args.explain and not report.race_free:
        from .core.explain import explain_report
        print()
        print(explain_report(report))
    if args.dot:
        with open(args.dot, "w", encoding="utf-8") as fh:
            fh.write(report.to_dot())
        print(f"\nDOT graph written to {args.dot}")
    return 0 if report.race_free else 1


if __name__ == "__main__":
    sys.exit(main())
