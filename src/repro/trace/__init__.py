"""Tracing / instrumentation substrate (section 4.1 of the paper):
events, READ/WRITE bit-vectors, trace construction from a simulated
execution, and trace-file serialization for post-mortem analysis."""

from .binfile import (
    BinaryTraceError,
    read_binary_trace,
    write_binary_trace,
)
from .bitvector import BitVector
from .build import Trace, TraceBuilder, build_trace, event_of_op
from .columnar import (
    ColumnarTrace,
    ColumnarTraceError,
    EventView,
    TraceColumns,
    from_columnar,
    open_columnar,
    to_columnar,
)
from .events import (
    ComputationEvent,
    Event,
    EventId,
    EventKind,
    SyncEvent,
    conflicting_locations,
    involves_data,
)
from .fingerprint import trace_fingerprint
from .tracefile import TraceFormatError, read_trace, write_trace
from .validate import InvalidTraceError, require_valid_trace, validate_trace

__all__ = [
    "BinaryTraceError",
    "read_binary_trace",
    "write_binary_trace",
    "ColumnarTrace",
    "ColumnarTraceError",
    "EventView",
    "TraceColumns",
    "from_columnar",
    "open_columnar",
    "to_columnar",
    "BitVector",
    "Trace",
    "TraceBuilder",
    "build_trace",
    "event_of_op",
    "ComputationEvent",
    "Event",
    "EventId",
    "EventKind",
    "SyncEvent",
    "conflicting_locations",
    "involves_data",
    "TraceFormatError",
    "InvalidTraceError",
    "require_valid_trace",
    "validate_trace",
    "read_trace",
    "write_trace",
    "trace_fingerprint",
]
