"""Structural validation of post-mortem traces.

A trace file arrives from an instrumented production run — possibly
truncated, corrupted, or produced by a buggy tracer (the paper's §5
even discusses pathological programs overwriting their own traces).
Before analysis, :func:`validate_trace` checks every structural
invariant the detector relies on and returns a list of human-readable
problems (empty = valid):

* event ids are dense and correctly positioned per processor;
* every sync event appears exactly once in its location's sync order,
  at the position it claims (``order_pos``);
* sync orders reference only existing sync events of the right address;
* READ/WRITE bit-vectors and sync addresses stay within the declared
  memory size;
* computation events are non-empty (an empty computation event cannot
  be produced by the builder and usually indicates truncation).
"""

from __future__ import annotations

from typing import List

from .build import Trace
from .events import ComputationEvent, SyncEvent


class InvalidTraceError(ValueError):
    """Raised by :func:`require_valid_trace` with all problems listed."""


def validate_trace(trace: Trace) -> List[str]:
    """Return every structural problem found in *trace*."""
    problems: List[str] = []

    if len(trace.events) != trace.processor_count:
        problems.append(
            f"processor_count={trace.processor_count} but "
            f"{len(trace.events)} event streams"
        )

    sync_events = {}
    for proc, proc_events in enumerate(trace.events):
        for pos, event in enumerate(proc_events):
            eid = event.eid
            if eid.proc != proc or eid.pos != pos:
                problems.append(
                    f"event at stream position P{proc}.{pos} carries id {eid}"
                )
            if isinstance(event, SyncEvent):
                sync_events[eid] = event
                if not 0 <= event.addr < trace.memory_size:
                    problems.append(
                        f"{eid}: sync address {event.addr} outside memory "
                        f"size {trace.memory_size}"
                    )
            elif isinstance(event, ComputationEvent):
                for addr in list(event.reads) + list(event.writes):
                    if not 0 <= addr < trace.memory_size:
                        problems.append(
                            f"{eid}: accessed address {addr} outside "
                            f"memory size {trace.memory_size}"
                        )
                        break
                if not event.reads and not event.writes:
                    problems.append(f"{eid}: empty computation event")
            else:  # pragma: no cover - defensive
                problems.append(f"{eid}: unknown event type {type(event)}")

    listed = set()
    for addr, order in trace.sync_order.items():
        for pos, eid in enumerate(order):
            event = sync_events.get(eid)
            if event is None:
                problems.append(
                    f"sync order of {addr}: {eid} is not a sync event"
                )
                continue
            if event.addr != addr:
                problems.append(
                    f"sync order of {addr}: {eid} accesses {event.addr}"
                )
            if event.order_pos != pos:
                problems.append(
                    f"{eid}: order_pos={event.order_pos} but listed at "
                    f"position {pos} of location {addr}'s sync order"
                )
            if eid in listed:
                problems.append(f"{eid}: listed in multiple sync orders")
            listed.add(eid)
    for eid in sync_events:
        if eid not in listed:
            problems.append(f"{eid}: sync event missing from sync order")

    return problems


def require_valid_trace(trace: Trace) -> Trace:
    """Validate and return *trace*; raise with all problems otherwise."""
    problems = validate_trace(trace)
    if problems:
        summary = "\n  ".join(problems[:20])
        more = f"\n  (+{len(problems) - 20} more)" if len(problems) > 20 else ""
        raise InvalidTraceError(f"invalid trace:\n  {summary}{more}")
    return trace
