"""Zero-copy columnar binary trace files.

The v1 binary format (:mod:`.binfile`) is row-oriented: events are
interleaved, so reading *any* of them means decoding *all* of them into
Python objects.  This module stores the same :class:`Trace` as
schema-versioned, struct-packed fixed-width **columns** — one contiguous
array per field (tag/proc/pos/kind/role/addr/value/...), plus a
length-prefixed bit-vector pool for computation READ/WRITE sets — so a
reader can ``mmap`` the file and expose each column as a numpy view
without copying or materializing a single event object.  The vectorized
clock sweep (:mod:`..core.hb1_vc`) and the batched race sweep
(:mod:`..core.races`) operate on these columns directly; everything else
sees a lazy :class:`EventView` that materializes (and caches) ordinary
:class:`SyncEvent`/:class:`ComputationEvent` objects on demand.

Layout (all integers little-endian)::

    magic "WRCT" | u32 format | u32 nproc | u32 memsize
    u32 name_len | model name utf-8
    u32 N | nproc x u32 per-processor event counts
    columns, each N wide, rows processor-major:
      tag u8 (0=sync 1=comp) | proc u32 | pos u32 | kind u8 (1=write)
      role u8 | addr u32 | value i64 | order_pos u32 (0xFFFFFFFF = none)
      op_count u32 | reads_off u32 | reads_len u32
      writes_off u32 | writes_len u32
    u32 pool_len | bit-vector pool (big-endian byte strings)
    u32 nlocations | per location: u32 addr, u32 count,
      count x (u32 proc, u32 pos)

Ground-truth op seqs are *not* stored (like :mod:`.binfile`): the format
carries exactly what the paper's section 4.1 instrumentation records.
"""

from __future__ import annotations

import mmap
import struct
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Union

from .. import obs
from ..machine.operations import OperationKind, SyncRole
from .bitvector import BitVector
from .build import Trace
from .events import ComputationEvent, Event, EventId, SyncEvent

try:  # pragma: no cover - exercised via the fallback tests
    import numpy as _np
except Exception:  # pragma: no cover
    _np = None

COLUMNAR_MAGIC = b"WRCT"
COLUMNAR_FORMAT = 1

_TAG_SYNC = 0
_TAG_COMP = 1
_NO_ORDER_POS = 0xFFFFFFFF

_ROLE_CODE = {
    SyncRole.NONE: 0,
    SyncRole.ACQUIRE: 1,
    SyncRole.RELEASE: 2,
    SyncRole.SYNC_ONLY: 3,
}
_CODE_ROLE = {v: k for k, v in _ROLE_CODE.items()}

# (attribute name, struct format char, byte width) for every column, in
# on-disk order.  The format is *defined* by this table.
_COLUMNS = (
    ("tag", "B", 1),
    ("proc", "I", 4),
    ("pos", "I", 4),
    ("kind", "B", 1),
    ("role", "B", 1),
    ("addr", "I", 4),
    ("value", "q", 8),
    ("order_pos", "I", 4),
    ("op_count", "I", 4),
    ("reads_off", "I", 4),
    ("reads_len", "I", 4),
    ("writes_off", "I", 4),
    ("writes_len", "I", 4),
)

_NP_DTYPE = {"B": "<u1", "I": "<u4", "q": "<i8"}


class ColumnarTraceError(ValueError):
    """Malformed or wrong-version columnar trace."""


def _iter_bits(value: int) -> Iterator[int]:
    """Set-bit indices of a big-int bitset, ascending."""
    while value:
        low = value & -value
        yield low.bit_length() - 1
        value &= value - 1


def _bitvector_bytes(bv: BitVector) -> bytes:
    hex_text = bv.to_hex()
    if hex_text == "0":
        return b""
    if len(hex_text) % 2:
        hex_text = "0" + hex_text
    return bytes.fromhex(hex_text)


# ----------------------------------------------------------------------
# writing
# ----------------------------------------------------------------------

def to_columnar(trace: Trace, path: Union[str, Path]) -> None:
    """Serialize *trace* to the columnar format."""
    with obs.span("columnar.write") as sp:
        cols: Dict[str, List[int]] = {name: [] for name, _, _ in _COLUMNS}
        pool = bytearray()
        total = 0
        proc_counts = []
        for proc, proc_events in enumerate(trace.events):
            proc_counts.append(len(proc_events))
            for pos, event in enumerate(proc_events):
                total += 1
                cols["proc"].append(proc)
                cols["pos"].append(pos)
                if isinstance(event, SyncEvent):
                    cols["tag"].append(_TAG_SYNC)
                    cols["kind"].append(
                        1 if event.op_kind is OperationKind.WRITE else 0
                    )
                    cols["role"].append(_ROLE_CODE[event.role])
                    cols["addr"].append(event.addr)
                    cols["value"].append(event.value)
                    cols["order_pos"].append(
                        _NO_ORDER_POS if event.order_pos < 0
                        else event.order_pos
                    )
                    cols["op_count"].append(0)
                    for field in ("reads", "writes"):
                        cols[field + "_off"].append(0)
                        cols[field + "_len"].append(0)
                else:
                    assert isinstance(event, ComputationEvent)
                    cols["tag"].append(_TAG_COMP)
                    cols["kind"].append(0)
                    cols["role"].append(0)
                    cols["addr"].append(0)
                    cols["value"].append(0)
                    cols["order_pos"].append(_NO_ORDER_POS)
                    cols["op_count"].append(event.op_count)
                    for field, bv in (
                        ("reads", event.reads), ("writes", event.writes)
                    ):
                        payload = _bitvector_bytes(bv)
                        cols[field + "_off"].append(len(pool))
                        cols[field + "_len"].append(len(payload))
                        pool.extend(payload)

        with Path(path).open("wb") as fh:
            fh.write(COLUMNAR_MAGIC)
            fh.write(struct.pack(
                "<III", COLUMNAR_FORMAT,
                trace.processor_count, trace.memory_size,
            ))
            name = trace.model_name.encode("utf-8")
            fh.write(struct.pack("<I", len(name)))
            fh.write(name)
            fh.write(struct.pack("<I", total))
            fh.write(struct.pack(f"<{len(proc_counts)}I", *proc_counts))
            for name_, fmt, _ in _COLUMNS:
                fh.write(struct.pack(f"<{total}{fmt}", *cols[name_]))
            fh.write(struct.pack("<I", len(pool)))
            fh.write(bytes(pool))
            fh.write(struct.pack("<I", len(trace.sync_order)))
            for addr in sorted(trace.sync_order):
                order = trace.sync_order[addr]
                fh.write(struct.pack("<II", addr, len(order)))
                for eid in order:
                    fh.write(struct.pack("<II", eid.proc, eid.pos))
        if sp.enabled:
            sp.add("events", total)
            sp.add("pool_bytes", len(pool))


# ----------------------------------------------------------------------
# columns: the zero-copy view the sweeps operate on
# ----------------------------------------------------------------------

class TraceColumns:
    """The decoded column arrays of one columnar trace.

    With numpy present every per-event column is an ``np.frombuffer``
    view straight over the mmap — no copy.  Without numpy the columns
    are plain tuples decoded once (memory O(N), still object-free).
    The bit-vector ``pool`` stays a memoryview either way.
    """

    __slots__ = tuple(name for name, _, _ in _COLUMNS) + (
        "event_total", "proc_counts", "proc_offsets", "pool",
    )

    def __init__(self, buf, offset: int, event_total: int,
                 proc_counts: Sequence[int]) -> None:
        self.event_total = event_total
        self.proc_counts = tuple(proc_counts)
        offsets = []
        base = 0
        for count in self.proc_counts:
            offsets.append(base)
            base += count
        self.proc_offsets = tuple(offsets)
        for name, fmt, width in _COLUMNS:
            if _np is not None:
                column = _np.frombuffer(
                    buf, dtype=_NP_DTYPE[fmt], count=event_total,
                    offset=offset,
                )
            else:
                column = struct.unpack_from(
                    f"<{event_total}{fmt}", buf, offset
                )
            setattr(self, name, column)
            offset += event_total * width
        (pool_len,) = struct.unpack_from("<I", buf, offset)
        offset += 4
        self.pool = memoryview(buf)[offset:offset + pool_len]

    def row_of(self, proc: int, pos: int) -> int:
        return self.proc_offsets[proc] + pos

    def is_comp(self, row: int) -> bool:
        return bool(self.tag[row] == _TAG_COMP)

    def _pool_int(self, off: int, length: int) -> int:
        if not length:
            return 0
        return int.from_bytes(self.pool[off:off + length], "big")

    def reads_int(self, row: int) -> int:
        """Computation READ set as a raw big-int bitset (no objects)."""
        return self._pool_int(
            int(self.reads_off[row]), int(self.reads_len[row])
        )

    def writes_int(self, row: int) -> int:
        return self._pool_int(
            int(self.writes_off[row]), int(self.writes_len[row])
        )

    def event_reads(self, row: int) -> Iterator[int]:
        return _iter_bits(self.reads_int(row))

    def event_writes(self, row: int) -> Iterator[int]:
        return _iter_bits(self.writes_int(row))

    # ------------------------------------------------------------------
    def materialize(self, proc: int, pos: int) -> Event:
        """Build the ordinary event object for one row."""
        row = self.row_of(proc, pos)
        eid = EventId(proc, pos)
        if self.tag[row] == _TAG_SYNC:
            order_pos = int(self.order_pos[row])
            return SyncEvent(
                eid=eid,
                addr=int(self.addr[row]),
                op_kind=(
                    OperationKind.WRITE if self.kind[row]
                    else OperationKind.READ
                ),
                role=_CODE_ROLE[int(self.role[row])],
                value=int(self.value[row]),
                order_pos=-1 if order_pos == _NO_ORDER_POS else order_pos,
            )
        reads = BitVector.from_hex(format(self.reads_int(row), "x"))
        writes = BitVector.from_hex(format(self.writes_int(row), "x"))
        event = ComputationEvent(eid=eid, reads=reads, writes=writes)
        event.op_count = int(self.op_count[row])
        return event


class _ProcView(Sequence):
    """One processor's event sequence, materialized lazily per index."""

    __slots__ = ("_columns", "_proc", "_count", "_cache")

    def __init__(self, columns: TraceColumns, proc: int) -> None:
        self._columns = columns
        self._proc = proc
        self._count = columns.proc_counts[proc]
        self._cache: Dict[int, Event] = {}

    def __len__(self) -> int:
        return self._count

    def __getitem__(self, pos):
        if isinstance(pos, slice):
            return [self[i] for i in range(*pos.indices(self._count))]
        if pos < 0:
            pos += self._count
        if not 0 <= pos < self._count:
            raise IndexError(pos)
        event = self._cache.get(pos)
        if event is None:
            event = self._columns.materialize(self._proc, pos)
            self._cache[pos] = event
        return event

    def __iter__(self) -> Iterator[Event]:
        for pos in range(self._count):
            yield self[pos]


class EventView(Sequence):
    """Lazy stand-in for ``Trace.events``: a list of per-proc views."""

    __slots__ = ("_procs",)

    def __init__(self, columns: TraceColumns) -> None:
        self._procs = [
            _ProcView(columns, proc)
            for proc in range(len(columns.proc_counts))
        ]

    def __len__(self) -> int:
        return len(self._procs)

    def __getitem__(self, proc):
        return self._procs[proc]

    def __iter__(self) -> Iterator[_ProcView]:
        return iter(self._procs)


class ColumnarTrace(Trace):
    """A :class:`Trace` whose events live in mmap-backed columns.

    ``isinstance(t, Trace)`` holds, and every object-path consumer
    (closure backend, validators, DOT export) works through the lazy
    :class:`EventView`; the vectorized sweeps detect ``.columns`` and
    skip object materialization entirely.
    """

    def __init__(self, *, processor_count: int, memory_size: int,
                 columns: TraceColumns,
                 sync_order: Dict[int, List[EventId]],
                 model_name: str = "unknown",
                 mm: Optional[mmap.mmap] = None) -> None:
        super().__init__(
            processor_count=processor_count,
            memory_size=memory_size,
            events=EventView(columns),
            sync_order=sync_order,
            symbols=None,
            model_name=model_name,
        )
        self.columns = columns
        self._mm = mm

    @property
    def event_count(self) -> int:
        return self.columns.event_total

    def close(self) -> None:
        """Release the mmap (views created from it become invalid)."""
        if self._mm is not None:
            try:
                self._mm.close()
            except BufferError:  # live numpy views still reference it
                pass
            self._mm = None

    def __enter__(self) -> "ColumnarTrace":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ----------------------------------------------------------------------
# reading
# ----------------------------------------------------------------------

def _parse_header(buf) -> tuple:
    size = len(buf)
    if size < 4 or bytes(buf[:4]) != COLUMNAR_MAGIC:
        raise ColumnarTraceError("not a columnar trace file (bad magic)")

    def need(offset: int, n: int, what: str) -> None:
        if offset + n > size:
            raise ColumnarTraceError(
                f"truncated columnar trace: {what} at byte {offset}"
            )

    offset = 4
    need(offset, 12, "header")
    version, nproc, memory_size = struct.unpack_from("<III", buf, offset)
    offset += 12
    if version != COLUMNAR_FORMAT:
        raise ColumnarTraceError(f"unsupported columnar format {version}")
    need(offset, 4, "model name length")
    (name_len,) = struct.unpack_from("<I", buf, offset)
    offset += 4
    need(offset, name_len, "model name")
    try:
        model_name = bytes(buf[offset:offset + name_len]).decode("utf-8")
    except UnicodeDecodeError as exc:
        raise ColumnarTraceError(
            f"corrupt model name at byte {offset}: {exc}"
        ) from None
    offset += name_len
    need(offset, 4 + 4 * nproc, "event counts")
    (total,) = struct.unpack_from("<I", buf, offset)
    offset += 4
    proc_counts = struct.unpack_from(f"<{nproc}I", buf, offset)
    offset += 4 * nproc
    if sum(proc_counts) != total:
        raise ColumnarTraceError(
            f"event count mismatch: header says {total}, "
            f"per-processor counts sum to {sum(proc_counts)}"
        )
    row_bytes = sum(width for _, _, width in _COLUMNS)
    need(offset, row_bytes * total, "event columns")
    return version, nproc, memory_size, model_name, total, proc_counts, offset


def _parse_tail(buf, columns: TraceColumns, column_offset: int,
                total: int) -> Dict[int, List[EventId]]:
    """Sync-order section after the columns + pool; detects garbage."""
    size = len(buf)
    row_bytes = sum(width for _, _, width in _COLUMNS)
    offset = column_offset + row_bytes * total + 4 + len(columns.pool)

    def need(n: int, what: str) -> None:
        if offset + n > size:
            raise ColumnarTraceError(
                f"truncated columnar trace: {what} at byte {offset}"
            )

    need(4, "sync-order count")
    (nlocations,) = struct.unpack_from("<I", buf, offset)
    offset += 4
    sync_order: Dict[int, List[EventId]] = {}
    for _ in range(nlocations):
        need(8, "sync-order location header")
        addr, count = struct.unpack_from("<II", buf, offset)
        offset += 8
        need(8 * count, f"sync order for location {addr}")
        pairs = struct.unpack_from(f"<{2 * count}I", buf, offset)
        offset += 8 * count
        sync_order[addr] = [
            EventId(pairs[i], pairs[i + 1]) for i in range(0, len(pairs), 2)
        ]
    if offset != size:
        raise ColumnarTraceError(
            f"trailing garbage after byte {offset} "
            f"({size - offset} unexpected bytes)"
        )
    return sync_order


def _columnar_from_buffer(buf, mm: Optional[mmap.mmap] = None) -> ColumnarTrace:
    """Build a lazy :class:`ColumnarTrace` over any bytes-like buffer
    (an mmap, or in-memory bytes read from a file object)."""
    (_, nproc, memory_size, model_name, total,
     proc_counts, column_offset) = _parse_header(buf)
    pool_start = column_offset + sum(
        width for _, _, width in _COLUMNS
    ) * total
    if pool_start + 4 > len(buf):
        raise ColumnarTraceError(
            f"truncated columnar trace: pool length at byte {pool_start}"
        )
    (pool_len,) = struct.unpack_from("<I", buf, pool_start)
    if pool_start + 4 + pool_len > len(buf):
        raise ColumnarTraceError(
            f"truncated columnar trace: pool at byte {pool_start + 4}"
        )
    columns = TraceColumns(buf, column_offset, total, proc_counts)
    sync_order = _parse_tail(buf, columns, column_offset, total)
    return ColumnarTrace(
        processor_count=nproc,
        memory_size=memory_size,
        columns=columns,
        sync_order=sync_order,
        model_name=model_name,
        mm=mm,
    )


def open_columnar(path: Union[str, Path]) -> ColumnarTrace:
    """Open a columnar trace lazily: columns are views over an mmap."""
    with obs.span("columnar.open") as sp:
        with Path(path).open("rb") as fh:
            try:
                mm = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
            except ValueError:  # empty file cannot be mapped
                raise ColumnarTraceError(
                    "not a columnar trace file (bad magic)"
                ) from None
        trace = _columnar_from_buffer(mm, mm=mm)
        if sp.enabled:
            sp.add("events", trace.columns.event_total)
            sp.add("file_bytes", len(mm))
        return trace


def from_columnar(path: Union[str, Path]) -> Trace:
    """Load a columnar trace fully materialized into ordinary events."""
    lazy = open_columnar(path)
    events: List[List[Event]] = [
        [proc_view[pos] for pos in range(len(proc_view))]
        for proc_view in lazy.events
    ]
    trace = Trace(
        processor_count=lazy.processor_count,
        memory_size=lazy.memory_size,
        events=events,
        sync_order=lazy.sync_order,
        symbols=None,
        model_name=lazy.model_name,
    )
    lazy.close()
    return trace
