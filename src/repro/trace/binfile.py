"""Compact binary trace files.

The whole point of event-granularity tracing (section 4.1) is that the
trace "avoids writing a trace record for every memory operation"; when
traces are written on the production machine, bytes matter.  This is a
struct-packed binary encoding of the same :class:`Trace` the JSON-lines
format (:mod:`.tracefile`) carries, typically several times smaller:

* header: magic, version, processor count, memory size, model name;
* per event: a one-byte tag, then either the sync tuple or the two
  bit-vectors as length-prefixed big-endian byte strings (ground-truth
  op seqs are *not* stored — the binary format carries exactly what the
  paper's instrumentation records, nothing more);
* per location: the sync order as (proc, pos) pairs.

All integers are little-endian; variable ints use a u32.  The format is
deliberately simple rather than clever — the benchmark compares it
against JSON and against a hypothetical per-operation log.

Every malformed-input path — short reads, unknown role/tag codes,
undecodable model names, trailing garbage — surfaces as
:class:`BinaryTraceError` carrying the byte offset of the fault, never
a raw ``struct.error`` / ``KeyError`` / ``UnicodeDecodeError``.
"""

from __future__ import annotations

import struct
import warnings
from pathlib import Path
from typing import BinaryIO, Dict, List, Union

from ..machine.operations import OperationKind, SyncRole
from .bitvector import BitVector
from .build import Trace
from .events import ComputationEvent, Event, EventId, SyncEvent

MAGIC = b"WRTR"
VERSION = 1

_TAG_SYNC = 0
_TAG_COMP = 1

_ROLE_CODE = {
    SyncRole.NONE: 0,
    SyncRole.ACQUIRE: 1,
    SyncRole.RELEASE: 2,
    SyncRole.SYNC_ONLY: 3,
}
_CODE_ROLE = {v: k for k, v in _ROLE_CODE.items()}


class BinaryTraceError(ValueError):
    """Malformed or wrong-version binary trace."""


def _write_u32(fh: BinaryIO, value: int) -> None:
    fh.write(struct.pack("<I", value))


def _write_i64(fh: BinaryIO, value: int) -> None:
    fh.write(struct.pack("<q", value))


def _write_bytes(fh: BinaryIO, payload: bytes) -> None:
    _write_u32(fh, len(payload))
    fh.write(payload)


def _read_exact(fh: BinaryIO, n: int) -> bytes:
    offset = fh.tell()
    data = fh.read(n)
    if len(data) != n:
        raise BinaryTraceError(
            f"truncated trace file: wanted {n} bytes at byte {offset}, "
            f"got {len(data)}"
        )
    return data


def _read_u32(fh: BinaryIO) -> int:
    return struct.unpack("<I", _read_exact(fh, 4))[0]


def _read_i64(fh: BinaryIO) -> int:
    return struct.unpack("<q", _read_exact(fh, 8))[0]


def _read_bytes(fh: BinaryIO) -> bytes:
    return _read_exact(fh, _read_u32(fh))


def _bitvector_bytes(bv: BitVector) -> bytes:
    hex_text = bv.to_hex()
    if hex_text == "0":
        return b""
    if len(hex_text) % 2:
        hex_text = "0" + hex_text
    return bytes.fromhex(hex_text)


def _bitvector_from_bytes(payload: bytes) -> BitVector:
    if not payload:
        return BitVector()
    return BitVector.from_hex(payload.hex())


def write_binary_trace(trace: Trace, path: Union[str, Path]) -> None:
    """Serialize *trace* to the compact binary format."""
    with Path(path).open("wb") as fh:
        fh.write(MAGIC)
        _write_u32(fh, VERSION)
        _write_u32(fh, trace.processor_count)
        _write_u32(fh, trace.memory_size)
        _write_bytes(fh, trace.model_name.encode("utf-8"))

        for proc_events in trace.events:
            _write_u32(fh, len(proc_events))
            for event in proc_events:
                if isinstance(event, SyncEvent):
                    fh.write(struct.pack("<B", _TAG_SYNC))
                    fh.write(struct.pack(
                        "<BBI", _ROLE_CODE[event.role],
                        1 if event.op_kind is OperationKind.WRITE else 0,
                        event.addr,
                    ))
                    _write_i64(fh, event.value)
                    _write_u32(fh, event.order_pos)
                else:
                    assert isinstance(event, ComputationEvent)
                    fh.write(struct.pack("<B", _TAG_COMP))
                    _write_bytes(fh, _bitvector_bytes(event.reads))
                    _write_bytes(fh, _bitvector_bytes(event.writes))
                    _write_u32(fh, event.op_count)

        _write_u32(fh, len(trace.sync_order))
        for addr in sorted(trace.sync_order):
            order = trace.sync_order[addr]
            _write_u32(fh, addr)
            _write_u32(fh, len(order))
            for eid in order:
                fh.write(struct.pack("<II", eid.proc, eid.pos))


def _read_binary_trace_stream(fh: BinaryIO) -> Trace:
    """Parse the binary format from an open, seekable binary stream
    positioned at the magic.  The stream must contain exactly one
    trace: trailing bytes after the sync-order section are an error."""
    try:
        return _parse_stream(fh)
    except struct.error as exc:  # defensive: no unpack path should leak
        raise BinaryTraceError(
            f"malformed trace file at byte {fh.tell()}: {exc}"
        ) from exc


def _parse_stream(fh: BinaryIO) -> Trace:
    if _read_exact(fh, 4) != MAGIC:
        raise BinaryTraceError("not a binary trace file (bad magic)")
    version = _read_u32(fh)
    if version != VERSION:
        raise BinaryTraceError(f"unsupported version {version}")
    processor_count = _read_u32(fh)
    memory_size = _read_u32(fh)
    offset = fh.tell()
    try:
        model_name = _read_bytes(fh).decode("utf-8")
    except UnicodeDecodeError as exc:
        raise BinaryTraceError(
            f"undecodable model name at byte {offset}: {exc}"
        ) from exc

    events: List[List[Event]] = []
    for proc in range(processor_count):
        count = _read_u32(fh)
        proc_events: List[Event] = []
        for pos in range(count):
            offset = fh.tell()
            tag = _read_exact(fh, 1)[0]
            eid = EventId(proc, pos)
            if tag == _TAG_SYNC:
                role_code, is_write, addr = struct.unpack(
                    "<BBI", _read_exact(fh, 6)
                )
                role = _CODE_ROLE.get(role_code)
                if role is None:
                    raise BinaryTraceError(
                        f"unknown sync role code {role_code} "
                        f"at byte {offset + 1}"
                    )
                value = _read_i64(fh)
                order_pos = _read_u32(fh)
                proc_events.append(SyncEvent(
                    eid=eid,
                    addr=addr,
                    op_kind=(
                        OperationKind.WRITE if is_write
                        else OperationKind.READ
                    ),
                    role=role,
                    value=value,
                    order_pos=order_pos,
                ))
            elif tag == _TAG_COMP:
                reads = _bitvector_from_bytes(_read_bytes(fh))
                writes = _bitvector_from_bytes(_read_bytes(fh))
                op_count = _read_u32(fh)
                event = ComputationEvent(eid=eid, reads=reads, writes=writes)
                event.op_count = op_count
                proc_events.append(event)
            else:
                raise BinaryTraceError(
                    f"unknown event tag {tag} at byte {offset}"
                )
        events.append(proc_events)

    sync_order: Dict[int, List[EventId]] = {}
    for _ in range(_read_u32(fh)):
        addr = _read_u32(fh)
        count = _read_u32(fh)
        order = []
        for _ in range(count):
            proc, pos = struct.unpack("<II", _read_exact(fh, 8))
            order.append(EventId(proc, pos))
        sync_order[addr] = order

    offset = fh.tell()
    if fh.read(1):
        raise BinaryTraceError(f"trailing garbage after byte {offset}")

    return Trace(
        processor_count=processor_count,
        memory_size=memory_size,
        events=events,
        sync_order=sync_order,
        symbols=None,
        model_name=model_name,
    )


def _read_binary_trace(path: Union[str, Path]) -> Trace:
    """Internal, warning-free loader used by :func:`repro.load_trace`."""
    with Path(path).open("rb") as fh:
        return _read_binary_trace_stream(fh)


def read_binary_trace(path: Union[str, Path]) -> Trace:
    """Load a trace written by :func:`write_binary_trace`.

    .. deprecated::
        Call :func:`repro.load_trace` instead — it sniffs the format
        (columnar, binary, JSON-lines) from the magic bytes.
    """
    warnings.warn(
        "read_binary_trace is deprecated; use repro.load_trace, which "
        "auto-detects the trace format",
        DeprecationWarning,
        stacklevel=2,
    )
    return _read_binary_trace(path)
