"""Canonical trace fingerprints for analysis caching.

The post-mortem detector is a pure function of the trace: the report it
produces (races, partitions, even the formatted text) depends only on
what section 4.1's instrumentation records — per-processor event
streams and per-location synchronization order.  Many hunt attempts
whose seeds differ only in scheduler noise collapse to the *same*
trace, so a stable fingerprint over exactly the detector-visible
content lets repeated analyses be served from a cache (see
:mod:`repro.analysis.parallel`).

Ground-truth fields the detector never consumes (operation sequence
numbers, staleness annotations) are deliberately excluded: two
executions that interleaved differently but produced identical event
structure fingerprint identically, which is precisely when their
reports coincide.  Model name, processor count and memory size are
included — they are part of the trace and appear in reports.
"""

from __future__ import annotations

import hashlib

from .build import Trace
from .events import SyncEvent


def trace_fingerprint(trace: Trace) -> str:
    """A stable hex digest of the detector-visible trace content.

    Equal fingerprints imply equal analysis results; the converse is
    not promised (hash collisions aside, label differences that do not
    change the report still change the fingerprint — e.g. symbols are
    excluded, model name is not).
    """
    h = hashlib.blake2b(digest_size=20)
    update = h.update
    update(
        f"{trace.processor_count}|{trace.memory_size}|"
        f"{trace.model_name}".encode()
    )
    for proc_events in trace.events:
        update(b"\np")
        for event in proc_events:
            if isinstance(event, SyncEvent):
                update(
                    f"S{event.addr},{event.op_kind.value},"
                    f"{event.role.value},{event.value},"
                    f"{event.order_pos};".encode()
                )
            else:
                update(
                    f"C{event.reads.to_hex()},"
                    f"{event.writes.to_hex()};".encode()
                )
    for addr in sorted(trace.sync_order):
        update(f"\no{addr}:".encode())
        for eid in trace.sync_order[addr]:
            update(f"{eid.proc}.{eid.pos};".encode())
    return h.hexdigest()
