"""Bit-vectors over the shared address space.

Section 4.1 of the paper: "bit-vectors representing those (shared)
variables that might be accessed between two synchronization events can
be constructed, and when a variable is accessed, the corresponding bit
is set" — recording READ/WRITE sets this way avoids writing a trace
record per memory operation.  A Python arbitrary-precision integer is
the natural bitset here: set/test are O(1), intersection is a single
``&``, and serialization is a hex string.
"""

from __future__ import annotations

from typing import Iterable, Iterator


class BitVector:
    """A growable set of non-negative integers stored as one big int."""

    __slots__ = ("_bits",)

    def __init__(self, bits: Iterable[int] = ()) -> None:
        self._bits = 0
        for bit in bits:
            self.set(bit)

    # ------------------------------------------------------------------
    def set(self, index: int) -> None:
        if index < 0:
            raise ValueError(f"bit index must be non-negative, got {index}")
        self._bits |= 1 << index

    def clear(self, index: int) -> None:
        self._bits &= ~(1 << index)

    def test(self, index: int) -> bool:
        return bool(self._bits >> index & 1)

    def __contains__(self, index: int) -> bool:
        return self.test(index)

    def __bool__(self) -> bool:
        return self._bits != 0

    def __len__(self) -> int:
        return bin(self._bits).count("1")

    def __iter__(self) -> Iterator[int]:
        bits = self._bits
        index = 0
        while bits:
            if bits & 1:
                yield index
            bits >>= 1
            index += 1

    def __eq__(self, other: object) -> bool:
        if isinstance(other, BitVector):
            return self._bits == other._bits
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._bits)

    # ------------------------------------------------------------------
    def union(self, other: "BitVector") -> "BitVector":
        out = BitVector()
        out._bits = self._bits | other._bits
        return out

    def intersection(self, other: "BitVector") -> "BitVector":
        out = BitVector()
        out._bits = self._bits & other._bits
        return out

    def intersects(self, other: "BitVector") -> bool:
        """True iff the two sets share any element (one & — the fast
        path race detection relies on)."""
        return bool(self._bits & other._bits)

    def copy(self) -> "BitVector":
        out = BitVector()
        out._bits = self._bits
        return out

    # ------------------------------------------------------------------
    def to_hex(self) -> str:
        return format(self._bits, "x")

    @classmethod
    def from_hex(cls, text: str) -> "BitVector":
        out = cls()
        out._bits = int(text, 16) if text else 0
        return out

    def __repr__(self) -> str:
        members = list(self)
        shown = ", ".join(map(str, members[:8]))
        if len(members) > 8:
            shown += ", ..."
        return f"BitVector({{{shown}}})"
