"""Building a post-mortem trace from a simulated execution.

This is the reproduction's stand-in for the compiler-inserted
instrumentation of section 4.1.  It records exactly the three things the
paper's trace files contain:

1. the execution order of events issued by the same processor,
2. the relative execution order of synchronization events involving the
   same location, and
3. the READ and WRITE sets of each computation event.

Crucially it does *not* record staleness, observed-writer identities, or
anything else a real tracing facility could not know — the detector sees
only what the paper's detector sees.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .. import obs
from ..machine.operations import MemoryOperation
from ..machine.program import SymbolTable
from ..machine.simulator import ExecutionResult
from .events import ComputationEvent, Event, EventId, SyncEvent


@dataclass
class Trace:
    """A complete post-mortem trace of one execution."""

    processor_count: int
    memory_size: int
    events: List[List[Event]]
    sync_order: Dict[int, List[EventId]]
    symbols: Optional[SymbolTable] = None
    model_name: str = "unknown"

    # ------------------------------------------------------------------
    def event(self, eid: EventId) -> Event:
        return self.events[eid.proc][eid.pos]

    def all_events(self) -> List[Event]:
        return [event for proc_events in self.events for event in proc_events]

    @property
    def event_count(self) -> int:
        return sum(len(proc_events) for proc_events in self.events)

    def computation_events(self) -> List[ComputationEvent]:
        return [e for e in self.all_events() if isinstance(e, ComputationEvent)]

    def sync_events(self) -> List[SyncEvent]:
        return [e for e in self.all_events() if isinstance(e, SyncEvent)]

    def addr_name(self, addr: int) -> str:
        if self.symbols is not None:
            return self.symbols.name_of(addr)
        return f"@{addr}"

    def label(self, eid: EventId) -> str:
        event = self.event(eid)
        if isinstance(event, SyncEvent):
            return f"{eid}: {event.label(self.addr_name(event.addr))}"
        assert isinstance(event, ComputationEvent)
        return f"{eid}: {event.label(self.addr_name)}"


@dataclass
class TraceBuilder:
    """Segments per-processor operation streams into events."""

    processor_count: int
    memory_size: int
    symbols: Optional[SymbolTable] = None
    model_name: str = "unknown"
    _events: List[List[Event]] = field(default_factory=list)
    _open: List[Optional[ComputationEvent]] = field(default_factory=list)
    _sync_order: Dict[int, List[EventId]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._events = [[] for _ in range(self.processor_count)]
        self._open = [None] * self.processor_count

    def add_operation(self, op: MemoryOperation) -> None:
        """Feed one operation, in global execution order."""
        if op.is_sync:
            self._close_computation(op.proc)
            eid = EventId(op.proc, len(self._events[op.proc]))
            order = self._sync_order.setdefault(op.addr, [])
            event = SyncEvent(
                eid=eid,
                addr=op.addr,
                op_kind=op.kind,
                role=op.role,
                value=op.value,
                order_pos=len(order),
                seq=op.seq,
            )
            order.append(eid)
            self._events[op.proc].append(event)
            return
        current = self._open[op.proc]
        if current is None:
            eid = EventId(op.proc, len(self._events[op.proc]))
            current = ComputationEvent(eid=eid)
            self._open[op.proc] = current
            self._events[op.proc].append(current)
        current.record(op.kind, op.addr, op.seq)

    def _close_computation(self, proc: int) -> None:
        self._open[proc] = None

    def finish(self) -> Trace:
        return Trace(
            processor_count=self.processor_count,
            memory_size=self.memory_size,
            events=self._events,
            sync_order=self._sync_order,
            symbols=self.symbols,
            model_name=self.model_name,
        )


def build_trace(result: ExecutionResult) -> Trace:
    """Instrument a simulated execution into a post-mortem trace."""
    with obs.span("trace.build") as sp:
        memory_size = 1
        if result.symbols is not None:
            memory_size = max(result.symbols.size, 1)
        elif result.operations:
            memory_size = max(op.addr for op in result.operations) + 1
        builder = TraceBuilder(
            processor_count=result.processor_count,
            memory_size=memory_size,
            symbols=result.symbols,
            model_name=result.model_name,
        )
        for op in result.operations:
            builder.add_operation(op)
        trace = builder.finish()
        if sp.enabled:
            sp.add("operations", len(result.operations))
            sp.add("events", trace.event_count)
            # every data operation merges its address into an open
            # computation event's READ or WRITE bit-vector
            sp.add(
                "bitvector_merges",
                sum(e.op_count for e in trace.computation_events()),
            )
    return trace


def event_of_op(trace: Trace, op_seq: int) -> Optional[EventId]:
    """Ground-truth mapping: which event contains operation *op_seq*."""
    for proc_events in trace.events:
        for event in proc_events:
            if isinstance(event, SyncEvent) and event.seq == op_seq:
                return event.eid
            if isinstance(event, ComputationEvent) and op_seq in event.op_seqs:
                return event.eid
    return None
