"""Trace-file serialization.

The paper's post-mortem techniques "generate trace files ... analyzed
after the execution".  This module round-trips a :class:`Trace` through
a JSON-lines file: a header line, then one line per event in global
interleaved order per processor, then the per-location sync orders.
READ/WRITE sets travel as hex-encoded bit-vectors, matching the
compactness argument of section 4.1.
"""

from __future__ import annotations

import json
import warnings
from pathlib import Path
from typing import Dict, List, Union

from ..machine.operations import OperationKind, SyncRole
from .bitvector import BitVector
from .build import Trace
from .events import ComputationEvent, Event, EventId, SyncEvent

FORMAT_VERSION = 1


class TraceFormatError(ValueError):
    """Raised when a trace file is malformed or wrong-versioned."""


def _event_record(event: Event) -> Dict:
    if isinstance(event, SyncEvent):
        return {
            "t": "sync",
            "proc": event.eid.proc,
            "pos": event.eid.pos,
            "addr": event.addr,
            "op": event.op_kind.value,
            "role": event.role.value,
            "value": event.value,
            "order_pos": event.order_pos,
            "seq": event.seq,
        }
    assert isinstance(event, ComputationEvent)
    return {
        "t": "comp",
        "proc": event.eid.proc,
        "pos": event.eid.pos,
        "reads": event.reads.to_hex(),
        "writes": event.writes.to_hex(),
        "op_seqs": event.op_seqs,
        "op_count": event.op_count,
    }


def _event_from_record(record: Dict) -> Event:
    eid = EventId(record["proc"], record["pos"])
    if record["t"] == "sync":
        return SyncEvent(
            eid=eid,
            addr=record["addr"],
            op_kind=OperationKind(record["op"]),
            role=SyncRole(record["role"]),
            value=record["value"],
            order_pos=record["order_pos"],
            seq=record.get("seq", -1),
        )
    if record["t"] == "comp":
        event = ComputationEvent(
            eid=eid,
            reads=BitVector.from_hex(record["reads"]),
            writes=BitVector.from_hex(record["writes"]),
            op_seqs=list(record.get("op_seqs", [])),
        )
        event.op_count = record.get("op_count", len(event.op_seqs))
        return event
    raise TraceFormatError(f"unknown event record type {record.get('t')!r}")


def trace_to_json(trace: Trace) -> Dict:
    """The whole trace as one JSON document (used by report
    serialization; the trace *file* format stays JSON-lines)."""
    return {
        "format": FORMAT_VERSION,
        "processor_count": trace.processor_count,
        "memory_size": trace.memory_size,
        "model": trace.model_name,
        "events": [
            _event_record(event)
            for proc_events in trace.events
            for event in proc_events
        ],
        "sync_order": {
            str(addr): [[eid.proc, eid.pos] for eid in order]
            for addr, order in trace.sync_order.items()
        },
    }


def trace_from_json(payload: Dict) -> Trace:
    """Inverse of :func:`trace_to_json` (symbols are not serialized)."""
    if payload.get("format") != FORMAT_VERSION:
        raise TraceFormatError(
            f"unsupported trace format {payload.get('format')!r}"
        )
    processor_count = payload["processor_count"]
    events: List[List[Event]] = [[] for _ in range(processor_count)]
    for record in payload["events"]:
        event = _event_from_record(record)
        proc_events = events[event.eid.proc]
        if event.eid.pos != len(proc_events):
            raise TraceFormatError(
                f"event {event.eid} out of order "
                f"(expected pos {len(proc_events)})"
            )
        proc_events.append(event)
    sync_order: Dict[int, List[EventId]] = {
        int(addr_text): [EventId(p, i) for p, i in pairs]
        for addr_text, pairs in payload.get("sync_order", {}).items()
    }
    return Trace(
        processor_count=processor_count,
        memory_size=payload["memory_size"],
        events=events,
        sync_order=sync_order,
        symbols=None,
        model_name=payload.get("model", "unknown"),
    )


def write_trace(trace: Trace, path: Union[str, Path]) -> None:
    """Serialize *trace* to a JSON-lines file at *path*."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as fh:
        header = {
            "format": FORMAT_VERSION,
            "processor_count": trace.processor_count,
            "memory_size": trace.memory_size,
            "model": trace.model_name,
        }
        fh.write(json.dumps(header) + "\n")
        for proc_events in trace.events:
            for event in proc_events:
                fh.write(json.dumps(_event_record(event)) + "\n")
        sync_order = {
            str(addr): [[eid.proc, eid.pos] for eid in order]
            for addr, order in trace.sync_order.items()
        }
        fh.write(json.dumps({"t": "sync_order", "orders": sync_order}) + "\n")


def _parse_trace_lines(lines: List[str], label: str) -> Trace:
    """Parse JSON-lines records (header, events, sync orders) into a
    :class:`Trace`; *label* names the source in error messages."""
    if not lines:
        raise TraceFormatError(f"{label}: empty trace file")
    header = json.loads(lines[0])
    if header.get("format") != FORMAT_VERSION:
        raise TraceFormatError(
            f"{label}: unsupported trace format {header.get('format')!r}"
        )
    processor_count = header["processor_count"]
    events: List[List[Event]] = [[] for _ in range(processor_count)]
    sync_order: Dict[int, List[EventId]] = {}
    for line in lines[1:]:
        record = json.loads(line)
        if record.get("t") == "sync_order":
            for addr_text, pairs in record["orders"].items():
                sync_order[int(addr_text)] = [EventId(p, i) for p, i in pairs]
            continue
        event = _event_from_record(record)
        proc_events = events[event.eid.proc]
        if event.eid.pos != len(proc_events):
            raise TraceFormatError(
                f"{label}: event {event.eid} out of order "
                f"(expected pos {len(proc_events)})"
            )
        proc_events.append(event)
    return Trace(
        processor_count=processor_count,
        memory_size=header["memory_size"],
        events=events,
        sync_order=sync_order,
        symbols=None,
        model_name=header.get("model", "unknown"),
    )


def _read_trace(path: Union[str, Path]) -> Trace:
    """Internal, warning-free loader used by :func:`repro.load_trace`."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as fh:
        lines = [line for line in fh if line.strip()]
    return _parse_trace_lines(lines, str(path))


def read_trace(path: Union[str, Path]) -> Trace:
    """Load a trace previously written by :func:`write_trace`.

    .. deprecated::
        Call :func:`repro.load_trace` instead — it sniffs the format
        (columnar, binary, JSON-lines) from the magic bytes.
    """
    warnings.warn(
        "read_trace is deprecated; use repro.load_trace, which "
        "auto-detects the trace format",
        DeprecationWarning,
        stacklevel=2,
    )
    return _read_trace(path)
