"""Events: the granularity at which races are detected (section 4.1).

The execution of each processor is viewed as a sequence of events —
either a single synchronization operation (a *synchronization event*) or
a maximal run of consecutively executed data operations (a *computation
event*).  A computation event carries only its READ and WRITE location
sets; the individual operations are deliberately not part of what the
detector consumes (that is the whole point of the event abstraction),
but their global sequence numbers are retained for ground-truth
verification against the simulator.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from ..machine.operations import OperationKind, SyncRole
from .bitvector import BitVector


class EventId:
    """Identifies an event by processor and position in that
    processor's event sequence.

    Hand-written (not a dataclass) with a cached hash: race detection
    hashes millions of these in its hot loop.
    """

    __slots__ = ("proc", "pos", "_hash")

    def __init__(self, proc: int, pos: int) -> None:
        object.__setattr__(self, "proc", proc)
        object.__setattr__(self, "pos", pos)
        object.__setattr__(self, "_hash", hash((proc, pos)))

    def __setattr__(self, name, value):  # immutable
        raise AttributeError("EventId is immutable")

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other) -> bool:
        if isinstance(other, EventId):
            return self.proc == other.proc and self.pos == other.pos
        return NotImplemented

    def __lt__(self, other: "EventId") -> bool:
        return (self.proc, self.pos) < (other.proc, other.pos)

    def __le__(self, other: "EventId") -> bool:
        return (self.proc, self.pos) <= (other.proc, other.pos)

    def __gt__(self, other: "EventId") -> bool:
        return (self.proc, self.pos) > (other.proc, other.pos)

    def __ge__(self, other: "EventId") -> bool:
        return (self.proc, self.pos) >= (other.proc, other.pos)

    def __repr__(self) -> str:
        return f"P{self.proc}.E{self.pos}"


class EventKind(enum.Enum):
    SYNC = "sync"
    COMPUTATION = "computation"


@dataclass
class Event:
    """Common base for the two event kinds."""

    eid: EventId

    @property
    def is_sync(self) -> bool:
        return isinstance(self, SyncEvent)

    @property
    def is_computation(self) -> bool:
        return isinstance(self, ComputationEvent)


@dataclass
class SyncEvent(Event):
    """A single synchronization operation.

    ``order_pos`` is this event's index in the per-location sync order
    of the trace — part (2) of the instrumentation of section 4.1, the
    information from which so1 is reconstructed post-mortem.
    """

    addr: int = 0
    op_kind: OperationKind = OperationKind.READ
    role: SyncRole = SyncRole.NONE
    value: int = 0
    order_pos: int = -1
    seq: int = -1  # simulator ground truth; not used by the detector

    @property
    def reads_addr(self) -> bool:
        return self.op_kind is OperationKind.READ

    @property
    def writes_addr(self) -> bool:
        return self.op_kind is OperationKind.WRITE

    def label(self, addr_name: Optional[str] = None) -> str:
        name = addr_name if addr_name is not None else str(self.addr)
        verb = {
            SyncRole.ACQUIRE: "Acquire",
            SyncRole.RELEASE: "Release",
            SyncRole.SYNC_ONLY: "SyncWrite",
            SyncRole.NONE: "Sync",
        }[self.role]
        return f"{verb}({name})={self.value}"


@dataclass
class ComputationEvent(Event):
    """A maximal run of consecutive data operations by one processor,
    summarized by READ and WRITE bit-vectors."""

    reads: BitVector = field(default_factory=BitVector)
    writes: BitVector = field(default_factory=BitVector)
    op_seqs: List[int] = field(default_factory=list)  # ground truth only
    op_count: int = 0

    def record(self, kind: OperationKind, addr: int, seq: int) -> None:
        if kind is OperationKind.READ:
            self.reads.set(addr)
        else:
            self.writes.set(addr)
        self.op_seqs.append(seq)
        self.op_count += 1

    @property
    def accessed(self) -> BitVector:
        return self.reads.union(self.writes)

    def label(self, name_of=None, max_names: int = 4) -> str:
        name_of = name_of or str

        def render(bv: BitVector) -> str:
            names = [name_of(a) for a in bv]
            if len(names) > max_names:
                extra = len(names) - max_names
                names = names[:max_names] + [f"+{extra} more"]
            return ",".join(names)

        return f"Comp(R={{{render(self.reads)}}} W={{{render(self.writes)}}})"


def conflicting_locations(a: Event, b: Event) -> List[int]:
    """Locations on which *a* and *b* conflict (common location, at
    least one side writes it) — the event-level lift of the conflict
    definition in section 2.1."""
    if isinstance(a, SyncEvent) and isinstance(b, SyncEvent):
        if a.addr != b.addr:
            return []
        if a.writes_addr or b.writes_addr:
            return [a.addr]
        return []
    if isinstance(a, SyncEvent):
        return _sync_vs_comp(a, b)  # type: ignore[arg-type]
    if isinstance(b, SyncEvent):
        return _sync_vs_comp(b, a)  # type: ignore[arg-type]
    assert isinstance(a, ComputationEvent) and isinstance(b, ComputationEvent)
    ww = a.writes.intersection(b.writes)
    wr = a.writes.intersection(b.reads)
    rw = a.reads.intersection(b.writes)
    return sorted(set(ww) | set(wr) | set(rw))


def _sync_vs_comp(sync: SyncEvent, comp: ComputationEvent) -> List[int]:
    if sync.writes_addr:
        if comp.reads.test(sync.addr) or comp.writes.test(sync.addr):
            return [sync.addr]
    else:
        if comp.writes.test(sync.addr):
            return [sync.addr]
    return []


def involves_data(a: Event, b: Event) -> bool:
    """True iff at least one side is a data (computation) event — the
    "at least one of x or y is a data operation" clause of Definition
    2.4."""
    return a.is_computation or b.is_computation
