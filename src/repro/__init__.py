"""repro — Detecting Data Races on Weak Memory Systems (ISCA 1991).

A from-scratch reproduction of Adve, Hill, Miller & Netzer's post-mortem
dynamic data race detection for weak memory systems, together with the
simulated multiprocessor substrate (SC, WO, RCsc, DRF0, DRF1 memory
models, plus TSO/PSO store-buffer models with per-trace robustness
verdicts), the event-trace instrumentation of section 4.1, the
first-partition reporting algorithm of section 4.2, the Condition 3.4 /
SCP verification machinery of section 3, and on-the-fly and naive
baselines.

Quickstart::

    import repro
    from repro import make_model, run_program, buggy_workqueue_program

    program = buggy_workqueue_program()
    result = run_program(program, make_model("WO"), seed=7)
    report = repro.detect(result)          # the unified entry point
    print(report.format())

``repro.detect`` accepts any trace source — a ``Trace``, an
``ExecutionResult``, a trace-file path or open file (format sniffed:
JSON-lines, v1 binary, or zero-copy columnar — see
``repro.load_trace``), or a live ``MemoryOperation`` stream — selects
the detector variant via ``detector="postmortem" | "naive" |
"onthefly" | "streaming" | "shb" | "wcp"``, and can profile the
pipeline via ``profile=`` (see :mod:`repro.obs`).
"""

from . import obs
from .api import (
    DETECTOR_NAMES,
    TRACE_FORMATS,
    check_robustness,
    detect,
    explain,
    load_trace,
    report_from_json,
    save_trace,
    sniff_trace_format,
)
from .analysis import (
    DetectionSummary,
    ExplorationResult,
    explore_program,
    is_program_data_race_free,
    NaiveDetector,
    NaiveReport,
    find_sc_witness,
    is_sequentially_consistent,
    trace_overhead,
)
from .core import (
    Condition34Report,
    RobustnessReport,
    FirstRaceOnTheFlyDetector,
    locate_first_races_on_the_fly,
    EventRace,
    HappensBefore1,
    OnTheFlyDetector,
    OnTheFlyReport,
    PartitionAnalysis,
    PostMortemDetector,
    ProvenanceReport,
    RacePartition,
    RaceProvenance,
    RaceReport,
    SCPrefix,
    check_condition_34,
    detect_on_the_fly,
    explain_race,
    explain_races,
    explain_report,
    extract_scp,
    find_op_races,
    find_races,
)
from .machine import (
    ALL_MODEL_NAMES,
    WEAK_MODEL_NAMES,
    CostModel,
    ExecutionResult,
    MemoryModel,
    MemoryOperation,
    Program,
    ProgramBuilder,
    Simulator,
    SyncRole,
    make_model,
    run_program,
)
from .programs import (
    WorkQueueParams,
    buggy_workqueue_program,
    figure1a_program,
    figure1b_program,
    fixed_workqueue_program,
    locked_counter_program,
    producer_consumer_program,
    racy_counter_program,
    run_figure2,
)
from .staticanalysis import StaticReport, find_static_races
from .trace import Trace, build_trace, read_trace, write_trace

__version__ = "1.0.0"

__all__ = [
    "obs",
    "DETECTOR_NAMES",
    "TRACE_FORMATS",
    "detect",
    "load_trace",
    "save_trace",
    "sniff_trace_format",
    "report_from_json",
    "DetectionSummary",
    "ExplorationResult",
    "explore_program",
    "is_program_data_race_free",
    "StaticReport",
    "find_static_races",
    "NaiveDetector",
    "NaiveReport",
    "find_sc_witness",
    "is_sequentially_consistent",
    "trace_overhead",
    "explain",
    "ProvenanceReport",
    "RaceProvenance",
    "explain_races",
    "Condition34Report",
    "RobustnessReport",
    "check_robustness",
    "EventRace",
    "HappensBefore1",
    "OnTheFlyDetector",
    "OnTheFlyReport",
    "FirstRaceOnTheFlyDetector",
    "locate_first_races_on_the_fly",
    "PartitionAnalysis",
    "PostMortemDetector",
    "RacePartition",
    "RaceReport",
    "SCPrefix",
    "check_condition_34",
    "detect_on_the_fly",
    "explain_race",
    "explain_report",
    "extract_scp",
    "find_op_races",
    "find_races",
    "ALL_MODEL_NAMES",
    "WEAK_MODEL_NAMES",
    "CostModel",
    "ExecutionResult",
    "MemoryModel",
    "MemoryOperation",
    "Program",
    "ProgramBuilder",
    "Simulator",
    "SyncRole",
    "make_model",
    "run_program",
    "WorkQueueParams",
    "buggy_workqueue_program",
    "figure1a_program",
    "figure1b_program",
    "fixed_workqueue_program",
    "locked_counter_program",
    "producer_consumer_program",
    "racy_counter_program",
    "run_figure2",
    "Trace",
    "build_trace",
    "read_trace",
    "write_trace",
    "__version__",
]
