"""The fault plan: what breaks, where, and how many times.

Plans are deliberately small and deterministic: every injection point
is keyed by the hunt's canonical job index (and the job's retry
attempt), never by wall clock, so a fault-injected hunt is exactly
reproducible and its expected merged statistics can be computed by
hand in a test.

Injection points (all optional):

``crash``
    ``{job_index: attempts}`` — the job raises
    :class:`InjectedCrash` while ``attempt < attempts``.  With
    ``attempts`` larger than the engine's ``max_retries`` the failure
    is *deterministic* (fails identically every time); with
    ``attempts <= max_retries`` it is *transient* (a retry succeeds).

``hang``
    ``{job_index: attempts}`` — the job sleeps ``hang_seconds``
    (C-level :func:`time.sleep`) while ``attempt < attempts``,
    driving the engine's ``job_timeout`` path.

``kill_parent_after``
    SIGKILL the hunt's own parent process after this many jobs have
    settled — the "power cord" fault the checkpoint/resume layer
    exists for.

``no_numpy``
    Simulate numpy failing to import, forcing the vector-clock layer
    onto its pure-Python epoch-sweep fallback
    (:mod:`repro.core.hb1_vc` keeps working with ``_np = None``).

Activation: set ``REPRO_FAULTS`` to inline JSON (``{"crash": ...}``)
or to the path of a JSON file — the fork-pool workers inherit the
environment, so one variable arms every process of a hunt.  Tests
running in-process can call :func:`install`/:func:`clear` instead.

:func:`tear_file` / :func:`append_garbage` are the torn-artifact
faults: they mutilate checkpoint/event/profile files the way a crash
mid-write (or a corrupted disk) would, for the validator suites.
"""

from __future__ import annotations

import json
import os
import signal
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Union

ENV_VAR = "REPRO_FAULTS"


class FaultPlanError(ValueError):
    """The plan JSON is malformed or names unknown faults."""


class InjectedCrash(RuntimeError):
    """A worker crash injected by the active fault plan."""


_KNOWN_KEYS = {
    "crash", "hang", "hang_seconds", "kill_parent_after", "no_numpy",
}


@dataclass(frozen=True)
class FaultPlan:
    """Deterministic injection points, keyed by hunt job index."""

    crash: Dict[int, int] = field(default_factory=dict)
    hang: Dict[int, int] = field(default_factory=dict)
    hang_seconds: float = 30.0
    kill_parent_after: Optional[int] = None
    no_numpy: bool = False

    # ------------------------------------------------------------------
    @classmethod
    def from_json(cls, payload: dict) -> "FaultPlan":
        if not isinstance(payload, dict):
            raise FaultPlanError(
                f"fault plan must be a JSON object, got {type(payload).__name__}"
            )
        unknown = set(payload) - _KNOWN_KEYS
        if unknown:
            raise FaultPlanError(
                f"unknown fault plan key(s): {', '.join(sorted(unknown))}; "
                f"known: {', '.join(sorted(_KNOWN_KEYS))}"
            )

        def index_map(key: str) -> Dict[int, int]:
            raw = payload.get(key) or {}
            if not isinstance(raw, dict):
                raise FaultPlanError(f"{key!r} must map job index -> attempts")
            try:
                return {int(k): int(v) for k, v in raw.items()}
            except (TypeError, ValueError) as exc:
                raise FaultPlanError(f"bad {key!r} entry: {exc}") from exc

        kill_after = payload.get("kill_parent_after")
        if kill_after is not None:
            kill_after = int(kill_after)
            if kill_after < 1:
                raise FaultPlanError("kill_parent_after must be >= 1")
        return cls(
            crash=index_map("crash"),
            hang=index_map("hang"),
            hang_seconds=float(payload.get("hang_seconds", 30.0)),
            kill_parent_after=kill_after,
            no_numpy=bool(payload.get("no_numpy", False)),
        )

    # ------------------------------------------------------------------
    # engine hooks
    # ------------------------------------------------------------------
    def on_job_start(self, index: int, attempt: int) -> None:
        """Called by the worker at the top of a job's timed body:
        injects the crash/hang faults armed for this (index, attempt).
        The message is stable across attempts on purpose — the retry
        layer classifies identical consecutive failures as
        deterministic."""
        if attempt < self.hang.get(index, 0):
            time.sleep(self.hang_seconds)
        if attempt < self.crash.get(index, 0):
            raise InjectedCrash(f"injected worker crash (job {index})")

    def on_job_settled(self, settled: int) -> None:
        """Called by the parent after the *settled*-th job outcome is
        final; delivers the SIGKILL-parent fault."""
        if (
            self.kill_parent_after is not None
            and settled >= self.kill_parent_after
        ):
            os.kill(os.getpid(), signal.SIGKILL)


# ----------------------------------------------------------------------
# activation: env hook + in-process install
# ----------------------------------------------------------------------

_INSTALLED: Optional[FaultPlan] = None
_ENV_CACHE: Optional[tuple] = None  # (raw env value, parsed plan)


def install(plan: Optional[FaultPlan]) -> None:
    """Arm *plan* for this process (tests); ``install(None)`` is
    :func:`clear`."""
    global _INSTALLED
    _INSTALLED = plan


def clear() -> None:
    """Disarm any in-process plan and drop the env cache."""
    global _INSTALLED, _ENV_CACHE
    _INSTALLED = None
    _ENV_CACHE = None


def active_plan() -> Optional[FaultPlan]:
    """The armed plan, if any: an in-process :func:`install` wins,
    then the ``REPRO_FAULTS`` environment hook (inline JSON or a file
    path, parsed once per distinct value)."""
    if _INSTALLED is not None:
        return _INSTALLED
    raw = os.environ.get(ENV_VAR)
    if not raw:
        return None
    global _ENV_CACHE
    if _ENV_CACHE is not None and _ENV_CACHE[0] == raw:
        return _ENV_CACHE[1]
    text = raw.strip()
    if not text.startswith("{"):
        try:
            text = Path(text).read_text(encoding="utf-8")
        except OSError as exc:
            raise FaultPlanError(f"{ENV_VAR}={raw!r}: unreadable: {exc}")
    try:
        plan = FaultPlan.from_json(json.loads(text))
    except json.JSONDecodeError as exc:
        raise FaultPlanError(f"{ENV_VAR}: invalid JSON: {exc}") from exc
    _ENV_CACHE = (raw, plan)
    return plan


def apply_process_faults() -> None:
    """Apply process-wide faults of the active plan (currently
    ``no_numpy``).  Called once at hunt start in the parent; fork
    workers inherit the patched state.  Idempotent; a no-op with no
    plan armed."""
    plan = active_plan()
    if plan is None or not plan.no_numpy:
        return
    from ..core import hb1_vc
    hb1_vc._np = None  # the layer's declared numpy-missing mode


# ----------------------------------------------------------------------
# torn-artifact faults (used by the validator/resume suites)
# ----------------------------------------------------------------------

def tear_file(path: Union[str, Path], drop_bytes: int = 7) -> None:
    """Truncate the last *drop_bytes* bytes of *path* — the shape a
    file takes when the writing process dies mid-append."""
    path = Path(path)
    size = path.stat().st_size
    with path.open("rb+") as fh:
        fh.truncate(max(size - drop_bytes, 0))


def append_garbage(path: Union[str, Path],
                   garbage: bytes = b"{\x00garbage\n") -> None:
    """Append undecodable bytes to *path* (mid-file corruption once
    more records follow)."""
    with Path(path).open("ab") as fh:
        fh.write(garbage)
