"""repro.faults — deterministic fault injection for the hunt engine.

Crash-recovery code that is only ever exercised by hand-written stubs
is unproven.  This package injects *real* failures — worker crashes,
hangs past the job timeout, the parent dying mid-hunt, torn artifact
files, and a numpy-less detector — at deterministic points, so the
integration suite can kill and resume actual hunts and assert result
equivalence.

A :class:`FaultPlan` names the injection points; it activates through
the ``REPRO_FAULTS`` environment variable (inline JSON or a path to a
JSON file), which fork-pool workers inherit, or in-process via
:func:`install`.  When no plan is active every hook is a cached-`None`
check — the hot loop pays one attribute read per job.
"""

from .plan import (
    ENV_VAR,
    FaultPlan,
    FaultPlanError,
    InjectedCrash,
    active_plan,
    append_garbage,
    apply_process_faults,
    clear,
    install,
    tear_file,
)

__all__ = [
    "ENV_VAR",
    "FaultPlan",
    "FaultPlanError",
    "InjectedCrash",
    "active_plan",
    "append_garbage",
    "apply_process_faults",
    "clear",
    "install",
    "tear_file",
]
