"""Compile-time race detection substrate (section 1 of the paper:
static techniques "can be applied to programs for weak systems
unchanged"): per-thread CFGs, must-hold lockset dataflow, and
conservative static data race reporting."""

from .cfg import ControlFlowGraph, basic_blocks, build_cfg
from .lockset import LockState, compute_locksets
from .races import (
    AddressRegion,
    StaticAccess,
    StaticRace,
    StaticReport,
    collect_accesses,
    find_static_races,
)

__all__ = [
    "ControlFlowGraph",
    "basic_blocks",
    "build_cfg",
    "LockState",
    "compute_locksets",
    "AddressRegion",
    "StaticAccess",
    "StaticRace",
    "StaticReport",
    "collect_accesses",
    "find_static_races",
]
