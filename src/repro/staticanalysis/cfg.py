"""Control-flow graphs over thread programs.

The static race detection of section 1 of the paper ([BaK89], [Tay83a])
analyzes program *text*; the first step is a CFG per thread.  Nodes are
instruction indices; edges follow fall-through, jumps, and both branch
outcomes.  Basic blocks are derived for the dataflow pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from ..machine.isa import Opcode
from ..machine.program import ThreadProgram

#: opcodes that never fall through
_NO_FALLTHROUGH = {Opcode.JMP, Opcode.HALT}
#: opcodes with a label target
_HAS_TARGET = {Opcode.JMP, Opcode.BZ, Opcode.BNZ}


@dataclass
class ControlFlowGraph:
    """Per-instruction CFG of one thread.

    ``successors[i]`` lists the instruction indices reachable from
    instruction ``i`` in one step; ``len(thread)`` is used as the
    virtual exit node.
    """

    thread: ThreadProgram
    successors: Dict[int, List[int]] = field(default_factory=dict)
    predecessors: Dict[int, List[int]] = field(default_factory=dict)

    @property
    def exit_node(self) -> int:
        return len(self.thread)

    @property
    def node_count(self) -> int:
        return len(self.thread) + 1  # + exit

    def reachable_instructions(self) -> Set[int]:
        """Instruction indices reachable from entry (index 0)."""
        seen: Set[int] = set()
        frontier = [0] if len(self.thread) else []
        while frontier:
            node = frontier.pop()
            if node in seen or node == self.exit_node:
                continue
            seen.add(node)
            frontier.extend(self.successors.get(node, []))
        return seen


def build_cfg(thread: ThreadProgram) -> ControlFlowGraph:
    """Construct the CFG of *thread*."""
    cfg = ControlFlowGraph(thread=thread)
    n = len(thread)
    for i in range(n + 1):
        cfg.successors[i] = []
        cfg.predecessors[i] = []

    def link(src: int, dst: int) -> None:
        cfg.successors[src].append(dst)
        cfg.predecessors[dst].append(src)

    for i, instr in enumerate(thread.instructions):
        if instr.opcode in _HAS_TARGET:
            link(i, thread.target_of(instr.label))
        if instr.opcode not in _NO_FALLTHROUGH:
            link(i, i + 1 if i + 1 < n else cfg.exit_node)
        elif instr.opcode is Opcode.HALT:
            link(i, cfg.exit_node)
    return cfg


def basic_blocks(cfg: ControlFlowGraph) -> List[Tuple[int, int]]:
    """Partition reachable instructions into basic blocks.

    Returns ``(start, end)`` half-open index ranges in ascending order.
    A leader is the entry, any branch target, or any instruction after
    a branch/jump.
    """
    reachable = cfg.reachable_instructions()
    if not reachable:
        return []
    leaders = {0}
    for i in sorted(reachable):
        succs = cfg.successors[i]
        if len(succs) > 1 or any(s != i + 1 for s in succs):
            for s in succs:
                if s != cfg.exit_node:
                    leaders.add(s)
            if i + 1 in reachable:
                leaders.add(i + 1)
    ordered = sorted(l for l in leaders if l in reachable)
    blocks: List[Tuple[int, int]] = []
    for idx, start in enumerate(ordered):
        end = ordered[idx + 1] if idx + 1 < len(ordered) else max(reachable) + 1
        blocks.append((start, end))
    return blocks
