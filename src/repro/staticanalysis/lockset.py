"""Must-hold lockset dataflow over a thread CFG.

Compile-time race detection (section 1 of the paper, in the tradition of
[BaK89]/[Tay83a]) needs, for every program point, the set of locks the
thread *definitely* holds there.  This is a forward must-dataflow:

* lattice element: a set of lock addresses (plus register->lock
  bindings for branch refinement); meet is intersection;
* ``Unset``/release-write of L kills L;
* a ``Test&Set r, L`` binds r to L without acquiring; the *branch* that
  tests r refines per edge: the r==0 edge acquires L (the Test&Set
  returned free), the r!=0 edge does not — exactly the spin-lock idiom
  the builder's ``lock()`` emits.

Being a must-analysis, imprecision only ever *shrinks* locksets, which
makes the downstream race detection conservative (it may report races
that cannot happen, never the reverse) — the defining property of
static techniques the paper cites.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Tuple

from ..machine.isa import Opcode, Reg
from ..machine.program import ThreadProgram
from .cfg import ControlFlowGraph, build_cfg


@dataclass(frozen=True)
class LockState:
    """Locks definitely held + live Test&Set result bindings."""

    held: FrozenSet[int]
    bindings: FrozenSet[Tuple[str, int]]  # (register name, lock addr)

    @staticmethod
    def entry() -> "LockState":
        return LockState(frozenset(), frozenset())

    def meet(self, other: "LockState") -> "LockState":
        return LockState(
            self.held & other.held, self.bindings & other.bindings
        )

    def bound_lock(self, reg_name: str) -> Optional[int]:
        for name, addr in self.bindings:
            if name == reg_name:
                return addr
        return None

    def clobber(self, reg_name: str) -> "LockState":
        return LockState(
            self.held,
            frozenset((n, a) for n, a in self.bindings if n != reg_name),
        )

    def acquire(self, addr: int) -> "LockState":
        return LockState(self.held | {addr}, self.bindings)

    def release(self, addr: int) -> "LockState":
        return LockState(self.held - {addr}, self.bindings)

    def bind(self, reg_name: str, addr: int) -> "LockState":
        cleared = self.clobber(reg_name)
        return LockState(cleared.held, cleared.bindings | {(reg_name, addr)})


_RELEASING = {Opcode.UNSET, Opcode.REL_WRITE}


def _edge_transfer(
    thread: ThreadProgram, index: int, state: LockState, dst: int
) -> LockState:
    """State after instruction *index* along the edge to *dst*."""
    instr = thread.instructions[index]
    op = instr.opcode

    if op in _RELEASING and instr.addr is not None and instr.addr.index is None:
        return state.release(instr.addr.base)

    if op is Opcode.TEST_AND_SET and instr.addr is not None:
        if instr.addr.index is None:
            return state.bind(instr.dst.name, instr.addr.base)
        return state.clobber(instr.dst.name)

    if op in (Opcode.BZ, Opcode.BNZ):
        reg = instr.src[0]
        assert isinstance(reg, Reg)
        lock = state.bound_lock(reg.name)
        if lock is None:
            return state
        taken = dst == thread.target_of(instr.label)
        # r == 0 means the Test&Set observed the lock free: acquired.
        zero_edge = (op is Opcode.BZ and taken) or (
            op is Opcode.BNZ and not taken
        )
        refined = state.acquire(lock) if zero_edge else state.release(lock)
        return refined.clobber(reg.name)

    # Anything that writes a register clobbers its binding.
    if instr.dst is not None:
        return state.clobber(instr.dst.name)
    return state


def compute_locksets(
    thread: ThreadProgram, cfg: Optional[ControlFlowGraph] = None
) -> Dict[int, LockState]:
    """Fixpoint lockset state *before* each reachable instruction."""
    cfg = cfg or build_cfg(thread)
    reachable = cfg.reachable_instructions()
    state_in: Dict[int, Optional[LockState]] = {i: None for i in reachable}
    if 0 in state_in:
        state_in[0] = LockState.entry()

    changed = True
    while changed:
        changed = False
        for i in sorted(reachable):
            current = state_in[i]
            if current is None:
                continue
            for dst in cfg.successors[i]:
                if dst == cfg.exit_node or dst not in reachable:
                    continue
                out = _edge_transfer(thread, i, current, dst)
                existing = state_in[dst]
                merged = out if existing is None else existing.meet(out)
                if merged != existing:
                    state_in[dst] = merged
                    changed = True

    return {
        i: (state if state is not None else LockState.entry())
        for i, state in state_in.items()
    }
