"""Compile-time (static) data race detection.

Section 1 of the paper: "Static techniques perform a compile-time
analysis of the program text to detect a superset of all possible data
races that could potentially occur in all possible sequentially
consistent executions" — and they "can be applied to programs for weak
systems unchanged".  This module implements the lockset flavour of that
analysis over the simulator's ISA:

1. per thread, compute must-hold locksets (:mod:`.lockset`);
2. collect every reachable shared-memory access with its address
   region (exact address, or the whole enclosing array for indexed
   accesses) and its lockset;
3. report every cross-thread pair that may touch a common location,
   where at least one side writes, at least one side is a data access,
   and the locksets share no lock.

The result is conservative: flag-based release/acquire ordering is
deliberately ignored (a static analyzer cannot in general prove it), so
correctly flag-synchronized programs may be flagged.  Dynamic detection
(:mod:`repro.core`) then refines individual executions — the
complementary pairing the paper advocates (citing [EmP88]).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..machine.isa import Opcode
from ..machine.program import Program
from .cfg import build_cfg
from .lockset import compute_locksets

_DATA_READS = {Opcode.READ}
_DATA_WRITES = {Opcode.WRITE}
_SYNC_READS = {Opcode.ACQ_READ}
_SYNC_WRITES = {Opcode.UNSET, Opcode.REL_WRITE}
# The two halves of TEST_AND_SET are handled explicitly.


@dataclass(frozen=True)
class AddressRegion:
    """A half-open address range ``[lo, hi)`` an access may touch."""

    lo: int
    hi: int

    def overlaps(self, other: "AddressRegion") -> bool:
        return self.lo < other.hi and other.lo < self.hi

    @staticmethod
    def exact(addr: int) -> "AddressRegion":
        return AddressRegion(addr, addr + 1)

    def describe(self, program: Optional[Program] = None) -> str:
        if program is None:
            names = f"[{self.lo},{self.hi})"
        elif self.hi == self.lo + 1:
            names = program.symbols.name_of(self.lo)
        else:
            names = (
                f"{program.symbols.name_of(self.lo)}.."
                f"{program.symbols.name_of(self.hi - 1)}"
            )
        return names


@dataclass(frozen=True)
class StaticAccess:
    """One shared-memory access site in the program text."""

    thread: int
    instr_index: int
    is_write: bool
    is_sync: bool
    region: AddressRegion
    locks: Tuple[int, ...]  # locks definitely held, sorted

    def describe(self, program: Optional[Program] = None) -> str:
        verb = ("sync-" if self.is_sync else "") + (
            "write" if self.is_write else "read"
        )
        locks = (
            "{" + ",".join(
                program.symbols.name_of(l) if program else str(l)
                for l in self.locks
            ) + "}"
        )
        return (
            f"T{self.thread}@{self.instr_index} {verb} "
            f"{self.region.describe(program)} locks={locks}"
        )


@dataclass(frozen=True)
class StaticRace:
    """A potential data race between two access sites."""

    a: StaticAccess
    b: StaticAccess

    def describe(self, program: Optional[Program] = None) -> str:
        return f"{self.a.describe(program)}  <->  {self.b.describe(program)}"


@dataclass
class StaticReport:
    """Everything the static analyzer found."""

    program: Program
    accesses: List[StaticAccess]
    races: List[StaticRace]

    @property
    def potentially_racy(self) -> bool:
        return bool(self.races)

    def format(self) -> str:
        lines = [
            f"Static analysis: {len(self.accesses)} shared access sites, "
            f"{len(self.races)} potential data race pair(s)"
        ]
        for race in self.races:
            lines.append(f"  {race.describe(self.program)}")
        if not self.races:
            lines.append(
                "  program is statically data-race-free "
                "(all executions on all models are sequentially consistent)"
            )
        return "\n".join(lines)


def _region_of(program: Program, base: int, indexed: bool) -> AddressRegion:
    if not indexed:
        return AddressRegion.exact(base)
    # Indexed access: widen to the enclosing array if one is known,
    # else to the whole address space (maximal conservatism).
    for name, (lo, size) in program.symbols._arrays.items():
        if lo <= base < lo + size:
            return AddressRegion(lo, lo + size)
    return AddressRegion(0, max(program.memory_size, base + 1))


def collect_accesses(program: Program) -> List[StaticAccess]:
    """All reachable shared-memory access sites with locksets."""
    out: List[StaticAccess] = []
    for tid, thread in enumerate(program.threads):
        cfg = build_cfg(thread)
        locksets = compute_locksets(thread, cfg)
        for i in sorted(cfg.reachable_instructions()):
            instr = thread.instructions[i]
            op = instr.opcode
            if instr.addr is None:
                continue
            region = _region_of(
                program, instr.addr.base, instr.addr.index is not None
            )
            locks = tuple(sorted(locksets[i].held))

            def note(is_write: bool, is_sync: bool) -> None:
                out.append(StaticAccess(
                    thread=tid, instr_index=i, is_write=is_write,
                    is_sync=is_sync, region=region, locks=locks,
                ))

            if op in _DATA_READS:
                note(False, False)
            elif op in _DATA_WRITES:
                note(True, False)
            elif op in _SYNC_READS:
                note(False, True)
            elif op in _SYNC_WRITES:
                note(True, True)
            elif op in (Opcode.TEST_AND_SET, Opcode.CAS):
                note(False, True)
                note(True, True)
    return out


def find_static_races(program: Program) -> StaticReport:
    """The full static analysis of *program*."""
    accesses = collect_accesses(program)
    races: List[StaticRace] = []
    for i, a in enumerate(accesses):
        for b in accesses[i + 1:]:
            if a.thread == b.thread:
                continue
            if not (a.is_write or b.is_write):
                continue
            if a.is_sync and b.is_sync:
                continue  # sync-sync pairs are not data races (Def 2.4)
            if not a.region.overlaps(b.region):
                continue
            if set(a.locks) & set(b.locks):
                continue  # a common lock orders them in every execution
            races.append(StaticRace(a, b))
    return StaticReport(program=program, accesses=accesses, races=races)
