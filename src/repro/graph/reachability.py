"""Reachability queries and transitive closure.

Two uses in the reproduction: deciding whether two events are ordered by
the happens-before-1 relation (race detection needs *unordered* pairs),
and ordering race partitions by paths in the augmented graph G'
(Definition 4.1).  For repeated queries over the same graph the bitset
transitive closure is the right tool; single queries use plain BFS.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Set

from .digraph import DiGraph


def reachable_from(graph: DiGraph, source: Hashable) -> Set[Hashable]:
    """All nodes reachable from *source* (excluding *source* itself,
    unless it lies on a cycle through itself)."""
    seen: Set[Hashable] = set()
    frontier = [source]
    while frontier:
        node = frontier.pop()
        for succ in graph.successors(node):
            if succ not in seen:
                seen.add(succ)
                frontier.append(succ)
    return seen


def is_reachable(graph: DiGraph, source: Hashable, target: Hashable) -> bool:
    """True iff a (non-empty) path leads from *source* to *target*."""
    if source not in graph or target not in graph:
        return False
    seen: Set[Hashable] = set()
    frontier = [source]
    while frontier:
        node = frontier.pop()
        for succ in graph.successors(node):
            if succ == target:
                return True
            if succ not in seen:
                seen.add(succ)
                frontier.append(succ)
    return False


class TransitiveClosure:
    """Packed-bitset transitive closure with O(1) ordered-pair queries.

    Nodes are assigned dense indices; each node's descendant set is a
    row of 64-bit words (numpy), so construction is a single
    reverse-topological sweep of vectorized ORs — Tarjan emits SCCs so
    that every edge leaving a component points at an already-finished
    one.  Cyclic graphs are handled per-SCC (weak executions can
    produce cyclic hb1 relations, see section 3.1 of the paper).
    """

    #: below this node count, whole-row Python ints beat numpy (query
    #: shifts stay cheap and construction avoids per-edge numpy calls)
    SMALL = 1024

    def __init__(self, graph: DiGraph) -> None:
        from .scc import strongly_connected_components

        self._index: Dict[Hashable, int] = {}
        self._nodes: List[Hashable] = []
        for node in graph.nodes():
            self._index[node] = len(self._nodes)
            self._nodes.append(node)

        n = len(self._nodes)
        self._small = n <= self.SMALL
        index = self._index
        components = strongly_connected_components(graph)

        if self._small:
            closure_int: List[int] = [0] * n
            for component in components:
                members = [index[m] for m in component]
                cycle = (
                    len(members) > 1
                    or graph.has_edge(component[0], component[0])
                )
                bits = 0
                for name in component:
                    for succ in graph.successors(name):
                        j = index[succ]
                        bits |= closure_int[j] | (1 << j)
                if cycle:
                    for member in members:
                        bits |= 1 << member
                for member in members:
                    closure_int[member] = bits
            self._rows_int = closure_int
            return

        import numpy as np
        words = max((n + 63) >> 6, 1)
        closure = np.zeros((max(n, 1), words), dtype=np.uint64)
        for component in components:
            members = [index[m] for m in component]
            cycle = (
                len(members) > 1
                or graph.has_edge(component[0], component[0])
            )
            bits = np.zeros(words, dtype=np.uint64)
            for name in component:
                for succ in graph.successors(name):
                    j = index[succ]
                    bits |= closure[j]
                    bits[j >> 6] |= np.uint64(1 << (j & 63))
            if cycle:
                for member in members:
                    bits[member >> 6] |= np.uint64(1 << (member & 63))
            for member in members:
                closure[member] = bits
        self._rows_np = closure

    def ordered(self, src: Hashable, dst: Hashable) -> bool:
        """True iff ``src`` can reach ``dst`` by a non-empty path."""
        return self.ordered_index(self._index[src], self._index[dst])

    def ordered_index(self, i: int, j: int) -> bool:
        """`ordered` by dense index (see :meth:`index_of`); the hot path
        for bulk queries such as race detection."""
        if self._small:
            return bool(self._rows_int[i] >> j & 1)
        return bool(int(self._rows_np[i, j >> 6]) >> (j & 63) & 1)

    def index_of(self, node: Hashable) -> int:
        """The dense index assigned to *node*."""
        return self._index[node]

    def descendants(self, node: Hashable) -> Set[Hashable]:
        """All nodes reachable from *node* by a non-empty path."""
        i = self._index[node]
        out: Set[Hashable] = set()
        if self._small:
            bits = self._rows_int[i]
            nodes = self._nodes
            while bits:
                low = bits & -bits
                out.add(nodes[low.bit_length() - 1])
                bits ^= low
            return out
        row = self._rows_np[i]
        for word_index, word in enumerate(row):
            bits = int(word)
            base = word_index << 6
            while bits:
                low = bits & -bits
                out.add(self._nodes[base + low.bit_length() - 1])
                bits ^= low
        return out

    def comparable(self, a: Hashable, b: Hashable) -> bool:
        """True iff *a* and *b* are ordered one way or the other."""
        i, j = self._index[a], self._index[b]
        return self.ordered_index(i, j) or self.ordered_index(j, i)


def transitive_closure_sets(graph: DiGraph) -> Dict[Hashable, Set[Hashable]]:
    """Descendant sets for every node, as plain Python sets."""
    tc = TransitiveClosure(graph)
    return {node: tc.descendants(node) for node in graph.nodes()}


def ancestors(graph: DiGraph, node: Hashable) -> Set[Hashable]:
    """All nodes with a non-empty path *to* node."""
    return reachable_from(graph.reversed(), node)


def shortest_path(
    graph: DiGraph, source: Hashable, target: Hashable
) -> Optional[List[Hashable]]:
    """A minimum-edge path ``[source, ..., target]``, or None.

    BFS; a non-empty path is required, so ``source == target`` returns
    a cycle through the node if one exists, else None.
    """
    if source not in graph or target not in graph:
        return None
    parents: Dict[Hashable, Hashable] = {}
    frontier = [source]
    seen: Set[Hashable] = set()
    while frontier:
        next_frontier: List[Hashable] = []
        for node in frontier:
            for succ in graph.successors(node):
                if succ == target:
                    path = [target, node]
                    while path[-1] != source:
                        path.append(parents[path[-1]])
                    path.reverse()
                    return path
                if succ not in seen:
                    seen.add(succ)
                    parents[succ] = node
                    next_frontier.append(succ)
        frontier = next_frontier
    return None


def reachable_from_any(graph: DiGraph, sources: Iterable[Hashable]) -> Set[Hashable]:
    """Union of :func:`reachable_from` over *sources*, plus the sources."""
    seen: Set[Hashable] = set()
    frontier: List[Hashable] = []
    for source in sources:
        if source not in seen:
            seen.add(source)
            frontier.append(source)
    while frontier:
        node = frontier.pop()
        for succ in graph.successors(node):
            if succ not in seen:
                seen.add(succ)
                frontier.append(succ)
    return seen
