"""A minimal directed-graph container.

The happens-before-1 relation of a *weak* execution may contain cycles
(section 3.1 of the paper: synchronization operations of a weak system are
not constrained to execute in a sequentially consistent manner), so nothing
in this package assumes acyclicity.  Nodes may be any hashable objects;
edges are stored as adjacency sets, and a reversed adjacency is maintained
so predecessor queries are O(out-degree of the predecessor set).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, Set, Tuple


class DiGraph:
    """A directed graph over hashable nodes with O(1) edge tests.

    Parallel edges are collapsed (the edge set is a relation); self-loops
    are allowed and are significant for strongly-connected-component
    queries made by the race partitioner.
    """

    def __init__(self) -> None:
        self._succ: Dict[Hashable, Set[Hashable]] = {}
        self._pred: Dict[Hashable, Set[Hashable]] = {}
        self._edge_count = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, node: Hashable) -> None:
        """Add *node* if not already present."""
        if node not in self._succ:
            self._succ[node] = set()
            self._pred[node] = set()

    def add_nodes(self, nodes: Iterable[Hashable]) -> None:
        for node in nodes:
            self.add_node(node)

    def add_edge(self, src: Hashable, dst: Hashable) -> None:
        """Add the edge ``src -> dst``, creating missing endpoints."""
        self.add_node(src)
        self.add_node(dst)
        if dst not in self._succ[src]:
            self._succ[src].add(dst)
            self._pred[dst].add(src)
            self._edge_count += 1

    def add_edges(self, edges: Iterable[Tuple[Hashable, Hashable]]) -> None:
        for src, dst in edges:
            self.add_edge(src, dst)

    def remove_edge(self, src: Hashable, dst: Hashable) -> None:
        """Remove the edge ``src -> dst``; raises KeyError if absent."""
        if not self.has_edge(src, dst):
            raise KeyError(f"edge {src!r} -> {dst!r} not in graph")
        self._succ[src].discard(dst)
        self._pred[dst].discard(src)
        self._edge_count -= 1

    def remove_node(self, node: Hashable) -> None:
        """Remove *node* and every incident edge."""
        if node not in self._succ:
            raise KeyError(f"node {node!r} not in graph")
        for dst in list(self._succ[node]):
            self.remove_edge(node, dst)
        for src in list(self._pred[node]):
            self.remove_edge(src, node)
        del self._succ[node]
        del self._pred[node]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __contains__(self, node: Hashable) -> bool:
        return node in self._succ

    def __len__(self) -> int:
        return len(self._succ)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._succ)

    @property
    def node_count(self) -> int:
        return len(self._succ)

    @property
    def edge_count(self) -> int:
        return self._edge_count

    def nodes(self) -> Iterator[Hashable]:
        return iter(self._succ)

    def edges(self) -> Iterator[Tuple[Hashable, Hashable]]:
        for src, dsts in self._succ.items():
            for dst in dsts:
                yield (src, dst)

    def has_edge(self, src: Hashable, dst: Hashable) -> bool:
        succ = self._succ.get(src)
        return succ is not None and dst in succ

    def successors(self, node: Hashable) -> Set[Hashable]:
        """The set of nodes with an edge from *node* (do not mutate)."""
        return self._succ[node]

    def predecessors(self, node: Hashable) -> Set[Hashable]:
        """The set of nodes with an edge to *node* (do not mutate)."""
        return self._pred[node]

    def out_degree(self, node: Hashable) -> int:
        return len(self._succ[node])

    def in_degree(self, node: Hashable) -> int:
        return len(self._pred[node])

    # ------------------------------------------------------------------
    # derived graphs
    # ------------------------------------------------------------------
    def copy(self) -> "DiGraph":
        g = DiGraph()
        g.add_nodes(self.nodes())
        g.add_edges(self.edges())
        return g

    def reversed(self) -> "DiGraph":
        """A new graph with every edge direction flipped."""
        g = DiGraph()
        g.add_nodes(self.nodes())
        for src, dst in self.edges():
            g.add_edge(dst, src)
        return g

    def subgraph(self, nodes: Iterable[Hashable]) -> "DiGraph":
        """The induced subgraph on *nodes* (missing nodes are ignored)."""
        keep = {n for n in nodes if n in self}
        g = DiGraph()
        g.add_nodes(keep)
        for src in keep:
            for dst in self._succ[src]:
                if dst in keep:
                    g.add_edge(src, dst)
        return g

    def __repr__(self) -> str:
        return f"DiGraph(nodes={self.node_count}, edges={self.edge_count})"
