"""Topological ordering and cycle detection.

Used to linearize the happens-before-1 graph of a sequentially consistent
execution (where hb1 is a partial order, Definition 2.3) and to verify
acyclicity of condensation DAGs in tests.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable, List, Optional

from .digraph import DiGraph


class CycleError(ValueError):
    """Raised when a topological sort is requested for a cyclic graph."""


def topological_sort(graph: DiGraph) -> List[Hashable]:
    """Kahn's algorithm; raises :class:`CycleError` on a cyclic graph.

    Ties are broken by node insertion order so the result is
    deterministic for a deterministically-built graph.
    """
    in_deg = {node: graph.in_degree(node) for node in graph.nodes()}
    queue = deque(node for node in graph.nodes() if in_deg[node] == 0)
    order: List[Hashable] = []
    while queue:
        node = queue.popleft()
        order.append(node)
        for succ in sorted(graph.successors(node), key=_stable_key(graph)):
            in_deg[succ] -= 1
            if in_deg[succ] == 0:
                queue.append(succ)
    if len(order) != graph.node_count:
        raise CycleError(
            f"graph has a cycle: sorted {len(order)} of {graph.node_count} nodes"
        )
    return order


def _stable_key(graph: DiGraph):
    positions = {node: i for i, node in enumerate(graph.nodes())}
    return positions.__getitem__


def is_acyclic(graph: DiGraph) -> bool:
    """True iff *graph* contains no directed cycle."""
    try:
        topological_sort(graph)
    except CycleError:
        return False
    return True


def find_cycle(graph: DiGraph) -> Optional[List[Hashable]]:
    """Return some directed cycle as a node list, or None if acyclic.

    The returned list ``[n0, n1, ..., nk]`` satisfies ``n0 == nk`` and
    each consecutive pair is an edge.
    """
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {node: WHITE for node in graph.nodes()}
    parent = {}

    for root in graph.nodes():
        if color[root] != WHITE:
            continue
        stack = [(root, iter(graph.successors(root)))]
        color[root] = GRAY
        while stack:
            node, successors = stack[-1]
            advanced = False
            for succ in successors:
                if color[succ] == GRAY:
                    # Found a back edge node -> succ; unwind the cycle.
                    cycle = [node]
                    cur = node
                    while cur != succ:
                        cur = parent[cur]
                        cycle.append(cur)
                    cycle.reverse()
                    cycle.append(cycle[0])
                    return cycle
                if color[succ] == WHITE:
                    color[succ] = GRAY
                    parent[succ] = node
                    stack.append((succ, iter(graph.successors(succ))))
                    advanced = True
                    break
            if not advanced:
                color[node] = BLACK
                stack.pop()
    return None
