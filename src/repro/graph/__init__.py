"""Directed-graph substrate.

Everything the race detector needs from graph theory, implemented from
scratch: a digraph container, Tarjan SCCs, condensation, reachability /
transitive closure, topological sorting, and DOT export for regenerating
the paper's figures.
"""

from .condensation import Condensation, condensation
from .digraph import DiGraph
from .dot import to_dot
from .reachability import (
    TransitiveClosure,
    ancestors,
    is_reachable,
    reachable_from,
    reachable_from_any,
    shortest_path,
    transitive_closure_sets,
)
from .scc import component_map, strongly_connected_components
from .topo import CycleError, find_cycle, is_acyclic, topological_sort

__all__ = [
    "Condensation",
    "condensation",
    "DiGraph",
    "to_dot",
    "TransitiveClosure",
    "ancestors",
    "is_reachable",
    "reachable_from",
    "reachable_from_any",
    "shortest_path",
    "transitive_closure_sets",
    "component_map",
    "strongly_connected_components",
    "CycleError",
    "find_cycle",
    "is_acyclic",
    "topological_sort",
]
