"""Condensation of a directed graph.

The race partition order ``P`` of Definition 4.1 is reachability between
strongly connected components of the augmented graph G'.  The condensation
— one node per SCC, an edge whenever any member-to-member edge crosses
components — turns that into ordinary DAG reachability.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, NamedTuple

from .digraph import DiGraph
from .scc import strongly_connected_components


class Condensation(NamedTuple):
    """The condensation DAG of a digraph.

    Attributes:
        dag: the condensation graph; nodes are component indices.
        components: component index -> list of original nodes.
        index_of: original node -> component index.
    """

    dag: DiGraph
    components: List[List[Hashable]]
    index_of: Dict[Hashable, int]

    def component_of(self, node: Hashable) -> List[Hashable]:
        """The member list of the component containing *node*."""
        return self.components[self.index_of[node]]


def condensation(graph: DiGraph) -> Condensation:
    """Collapse each SCC of *graph* into a single node.

    The resulting DAG has an edge ``i -> j`` iff some edge of *graph*
    leads from component ``i`` into a different component ``j``.
    Component indices are in reverse topological order (Tarjan emission
    order), so ``i -> j`` in the DAG implies ``i > j``.
    """
    components = strongly_connected_components(graph)
    index_of: Dict[Hashable, int] = {}
    for idx, component in enumerate(components):
        for node in component:
            index_of[node] = idx

    dag = DiGraph()
    dag.add_nodes(range(len(components)))
    for src, dst in graph.edges():
        ci, cj = index_of[src], index_of[dst]
        if ci != cj:
            dag.add_edge(ci, cj)
    return Condensation(dag=dag, components=components, index_of=index_of)
