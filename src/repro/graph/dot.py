"""Graphviz DOT rendering.

The paper's Figures 2b and 3 are happens-before-1 graphs annotated with
race edges, SCP boundaries, and partition boxes.  This module emits the
equivalent DOT text so the figures can be regenerated from any execution
(`dot -Tpng` renders them; the text itself is also asserted in tests).
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Iterable, Optional

from .digraph import DiGraph


def _quote(text: str) -> str:
    return '"' + text.replace("\\", "\\\\").replace('"', '\\"') + '"'


def to_dot(
    graph: DiGraph,
    name: str = "G",
    label_of: Optional[Callable[[Hashable], str]] = None,
    node_attrs: Optional[Callable[[Hashable], Dict[str, str]]] = None,
    edge_attrs: Optional[Callable[[Hashable, Hashable], Dict[str, str]]] = None,
    clusters: Optional[Dict[str, Iterable[Hashable]]] = None,
    cluster_attrs: Optional[Callable[[str], Dict[str, str]]] = None,
) -> str:
    """Render *graph* as DOT text.

    Args:
        graph: the graph to render.
        name: DOT graph name.
        label_of: node -> display label (defaults to ``str``).
        node_attrs: node -> extra DOT attributes.
        edge_attrs: (src, dst) -> extra DOT attributes (e.g. race edges
            get ``style=dashed dir=both`` to match the paper's figures).
        clusters: cluster label -> member nodes; members are drawn inside
            a labelled subgraph box (used for race partitions, Figure 3).
        cluster_attrs: cluster label -> extra subgraph attributes (e.g.
            first partitions drawn with a bold coloured box).
    """
    label_of = label_of or str
    ids: Dict[Hashable, str] = {
        node: f"n{i}" for i, node in enumerate(graph.nodes())
    }
    lines = [f"digraph {name} {{", "  rankdir=TB;", "  node [shape=box];"]

    clustered = set()
    if clusters:
        for ci, (cluster_label, members) in enumerate(clusters.items()):
            lines.append(f"  subgraph cluster_{ci} {{")
            lines.append(f"    label={_quote(cluster_label)};")
            if cluster_attrs:
                for key, value in cluster_attrs(cluster_label).items():
                    lines.append(f"    {key}={_quote(value)};")
            for node in members:
                if node not in ids:
                    continue
                clustered.add(node)
                lines.append(f"    {ids[node]} {_node_attr_text(node, label_of, node_attrs)};")
            lines.append("  }")

    for node in graph.nodes():
        if node in clustered:
            continue
        lines.append(f"  {ids[node]} {_node_attr_text(node, label_of, node_attrs)};")

    for src, dst in graph.edges():
        attrs = edge_attrs(src, dst) if edge_attrs else {}
        attr_text = ", ".join(f"{k}={_quote(v)}" for k, v in attrs.items())
        suffix = f" [{attr_text}]" if attr_text else ""
        lines.append(f"  {ids[src]} -> {ids[dst]}{suffix};")

    lines.append("}")
    return "\n".join(lines)


def _node_attr_text(
    node: Hashable,
    label_of: Callable[[Hashable], str],
    node_attrs: Optional[Callable[[Hashable], Dict[str, str]]],
) -> str:
    attrs: Dict[str, str] = {"label": label_of(node)}
    if node_attrs:
        attrs.update(node_attrs(node))
    body = ", ".join(f"{k}={_quote(v)}" for k, v in attrs.items())
    return f"[{body}]"
