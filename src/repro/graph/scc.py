"""Strongly connected components (iterative Tarjan).

Section 4.2 of the paper partitions the data races of an execution using
the strongly connected components of the augmented happens-before-1 graph
G'; this module supplies that primitive.  The implementation is the
classic Tarjan algorithm rewritten with an explicit stack so that large
traces (tens of thousands of events) do not overflow CPython's recursion
limit.
"""

from __future__ import annotations

from typing import Dict, Hashable, List

from .digraph import DiGraph


def strongly_connected_components(graph: DiGraph) -> List[List[Hashable]]:
    """Return the SCCs of *graph* in reverse topological order.

    Each component is a list of nodes; Tarjan emits components so that
    every edge between distinct components goes from a later-emitted
    component to an earlier-emitted one, i.e. the returned list is a
    reverse topological order of the condensation.
    """
    index_of: Dict[Hashable, int] = {}
    lowlink: Dict[Hashable, int] = {}
    on_stack: Dict[Hashable, bool] = {}
    stack: List[Hashable] = []
    components: List[List[Hashable]] = []
    counter = 0

    for root in graph.nodes():
        if root in index_of:
            continue
        # Explicit DFS stack of (node, iterator over successors).
        work = [(root, iter(graph.successors(root)))]
        index_of[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack[root] = True

        while work:
            node, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in index_of:
                    index_of[succ] = lowlink[succ] = counter
                    counter += 1
                    stack.append(succ)
                    on_stack[succ] = True
                    work.append((succ, iter(graph.successors(succ))))
                    advanced = True
                    break
                if on_stack.get(succ, False):
                    lowlink[node] = min(lowlink[node], index_of[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index_of[node]:
                component: List[Hashable] = []
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    component.append(member)
                    if member == node:
                        break
                components.append(component)

    return components


def component_map(graph: DiGraph) -> Dict[Hashable, int]:
    """Map each node to the index of its SCC.

    Indices follow the order of :func:`strongly_connected_components`
    (reverse topological order of the condensation).
    """
    mapping: Dict[Hashable, int] = {}
    for idx, component in enumerate(strongly_connected_components(graph)):
        for node in component:
            mapping[node] = idx
    return mapping
