"""The executions of Figure 1 of the paper, as programs.

Figure 1a: two processors access x and y with no synchronization — the
conflicting data operations are unordered by hb1, so every execution
has data races on x and y.

Figure 1b: P1 writes x and y and then Unsets s; P2 Test&Sets s (here:
spins until the lock is observed free) and then reads y and x.  All
conflicting data operations are ordered through the paired Unset ->
Test&Set, so the program is data-race-free.  The lock starts *set* so
that P2 can only proceed after P1's release — making every execution,
not just the figure's, race-free.
"""

from __future__ import annotations

from ..machine.program import Program, ProgramBuilder


def figure1a_program() -> Program:
    """Figure 1a: unsynchronized conflicting accesses (data races)."""
    b = ProgramBuilder()
    x = b.var("x")
    y = b.var("y")
    with b.thread() as t:  # P1
        t.write(x, 1)
        t.write(y, 1)
    with b.thread() as t:  # P2
        t.read(y)
        t.read(x)
    return b.build()


def figure1b_program() -> Program:
    """Figure 1b: the same accesses ordered by Unset/Test&Set pairing
    (data-race-free)."""
    b = ProgramBuilder()
    x = b.var("x")
    y = b.var("y")
    s = b.var("s", initial=1)  # lock starts held by P1
    with b.thread() as t:  # P1
        t.write(x, 1)
        t.write(y, 1)
        t.unset(s)
    with b.thread() as t:  # P2
        t.lock(s)  # spins Test&Set until it observes P1's Unset
        t.read(y)
        t.read(x)
    return b.build()
