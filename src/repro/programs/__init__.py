"""Workload library: the paper's example programs (Figures 1 and 2),
DRF and racy kernels, and seeded random program generators."""

from .figure1 import figure1a_program, figure1b_program
from .kernels import (
    cas_counter_program,
    cas_slot_allocator_program,
    fanin_barrier_program,
    independent_work_program,
    locked_counter_program,
    producer_consumer_program,
    racy_counter_program,
    region_then_lock_program,
    single_race_program,
)
from .litmus import (
    both_entered,
    iriw_forbidden_outcome,
    iriw_program,
    run_iriw_witness,
    count_sb_violations,
    locked_mutual_exclusion_program,
    peterson_program,
    run_peterson_witness,
    run_store_buffering_witness,
    store_buffering_program,
)
from .queue import bounded_queue_program, expected_checksum_total
from .random_programs import (
    random_drf_program,
    random_flagsync_program,
    random_program_suite,
    random_racy_program,
)
from .workqueue import (
    WorkQueueParams,
    buggy_workqueue_program,
    figure2_numa_setup,
    figure2_weak_setup,
    fixed_workqueue_program,
    run_figure2,
)

__all__ = [
    "figure1a_program",
    "figure1b_program",
    "cas_counter_program",
    "cas_slot_allocator_program",
    "fanin_barrier_program",
    "independent_work_program",
    "locked_counter_program",
    "producer_consumer_program",
    "racy_counter_program",
    "region_then_lock_program",
    "single_race_program",
    "both_entered",
    "iriw_forbidden_outcome",
    "iriw_program",
    "run_iriw_witness",
    "count_sb_violations",
    "locked_mutual_exclusion_program",
    "peterson_program",
    "run_peterson_witness",
    "run_store_buffering_witness",
    "store_buffering_program",
    "bounded_queue_program",
    "expected_checksum_total",
    "random_drf_program",
    "random_flagsync_program",
    "random_program_suite",
    "random_racy_program",
    "WorkQueueParams",
    "buggy_workqueue_program",
    "figure2_numa_setup",
    "figure2_weak_setup",
    "fixed_workqueue_program",
    "run_figure2",
]
