"""Workload kernels.

Data-race-free kernels exercise the performance motivation of section
2.2 (weak models outrun SC on programs whose data writes can buffer
between synchronizations) and the "no races => report nothing, conclude
SC" path; racy kernels exercise detection.
"""

from __future__ import annotations

from ..machine.program import Program, ProgramBuilder


def locked_counter_program(processors: int = 3, increments: int = 4) -> Program:
    """Each processor increments a shared counter under a Test&Set lock
    *increments* times.  Data-race-free."""
    if processors < 1 or increments < 1:
        raise ValueError("need at least one processor and one increment")
    b = ProgramBuilder()
    counter = b.var("counter")
    lock = b.var("lock")
    for _ in range(processors):
        with b.thread() as t:
            i = t.mov(0)
            t.label("loop")
            t.lock(lock)
            value = t.read(counter)
            t.add(value, 1, dst=value)
            t.write(counter, value)
            t.unlock(lock)
            t.add(i, 1, dst=i)
            more = t.cmp_lt(i, increments)
            t.jump_if_nonzero(more, "loop")
    return b.build()


def racy_counter_program(processors: int = 3, increments: int = 4) -> Program:
    """The same counter with the lock omitted — every pair of increment
    sequences races (lost updates on SC, stale reads on weak models)."""
    if processors < 1 or increments < 1:
        raise ValueError("need at least one processor and one increment")
    b = ProgramBuilder()
    counter = b.var("counter")
    for _ in range(processors):
        with b.thread() as t:
            i = t.mov(0)
            t.label("loop")
            value = t.read(counter)
            t.add(value, 1, dst=value)
            t.write(counter, value)
            t.add(i, 1, dst=i)
            more = t.cmp_lt(i, increments)
            t.jump_if_nonzero(more, "loop")
    return b.build()


def lock_shadow_program() -> Program:
    """A race the lock merely *shadows*: the critical sections only
    read, yet their accidental ordering hides an unguarded write-write
    race from happens-before detectors.

    P0 writes ``unguarded`` and then enters a critical section that
    only reads ``shared``; P1 runs its own read-only critical section
    and writes ``unguarded`` afterwards.  When P0's section happens to
    precede P1's, hb1 orders the two ``unguarded`` writes through the
    release->acquire edge and sees no race — but the sections touch no
    common data, so the schedule with P1's section first is equally
    valid and races.  WCP (Kini et al. 2017) drops exactly such
    non-conflicting critical-section orderings and predicts the race
    from either observed schedule; the baseline detector catches it
    only on the lucky interleavings.
    """
    b = ProgramBuilder()
    shared = b.var("shared")
    unguarded = b.var("unguarded")
    lock = b.var("lock")
    with b.thread() as t:
        t.write(unguarded, 1)
        t.lock(lock)
        t.read(shared)
        t.unlock(lock)
    with b.thread() as t:
        t.lock(lock)
        t.read(shared)
        t.unlock(lock)
        t.write(unguarded, 2)
    return b.build()


def producer_consumer_program(items: int = 8) -> Program:
    """P0 fills a buffer slot then release-writes a flag; P1
    acquire-spins on the flag then reads the slot.  Data-race-free via
    release/acquire flag pairing (the DRF1/RCsc-friendly idiom)."""
    if items < 1:
        raise ValueError("need at least one item")
    b = ProgramBuilder()
    buffer = b.array("buffer", items)
    flag = b.var("flag")  # number of items published
    consumed = b.var("consumed")  # consumer's checksum of what it read
    with b.thread() as t:  # producer
        for i in range(items):
            t.write(b.at(buffer, i), 10 + i)
            t.release_write(flag, i + 1)
    with b.thread() as t:  # consumer
        total = t.mov(0)
        for i in range(items):
            t.spin_until_ge(flag, i + 1)
            value = t.read(b.at(buffer, i))
            t.add(total, value, dst=total)
        t.write(consumed, total)
    return b.build()


def independent_work_program(processors: int = 4, cells: int = 8) -> Program:
    """Each processor reads and writes its own disjoint region; no
    conflicts at all, hence trivially data-race-free."""
    if processors < 1 or cells < 1:
        raise ValueError("need at least one processor and one cell")
    b = ProgramBuilder()
    region = b.array("region", processors * cells)
    for p in range(processors):
        with b.thread() as t:
            for i in range(cells):
                addr = b.at(region, p * cells + i)
                value = t.read(addr)
                t.add(value, p + 1, dst=value)
                t.write(addr, value)
    return b.build()


def single_race_program() -> Program:
    """The minimal data race: one write, one conflicting read, no
    synchronization anywhere."""
    b = ProgramBuilder()
    x = b.var("x")
    with b.thread() as t:
        t.write(x, 1)
    with b.thread() as t:
        t.read(x)
    return b.build()


def cas_counter_program(processors: int = 3, increments: int = 3) -> Program:
    """Lock-free shared counter: acquire-read, compute, CAS-retry.

    Every access to the counter is a synchronization operation (the
    acquire read and the CAS), so the program has no data operations on
    shared state at all — trivially data-race-free — yet needs no lock
    and never loses an update (the CAS fails and retries instead)."""
    if processors < 1 or increments < 1:
        raise ValueError("need at least one processor and one increment")
    b = ProgramBuilder()
    counter = b.var("counter")
    for _ in range(processors):
        with b.thread() as t:
            i = t.mov(0)
            t.label("next")
            t.label("retry")
            seen = t.acquire_read(counter)
            bumped = t.add(seen, 1)
            ok = t.cas(counter, seen, bumped)
            t.jump_if_zero(ok, "retry")
            t.add(i, 1, dst=i)
            more = t.cmp_lt(i, increments)
            t.jump_if_nonzero(more, "next")
    return b.build()


def cas_slot_allocator_program(processors: int = 3) -> Program:
    """Lock-free slot allocation then private data work.

    Each processor CAS-claims a unique slot index from ``next`` and
    data-writes its payload into the claimed slot.  The claims are
    synchronization; the payload writes land on disjoint slots, so the
    program is data-race-free without any lock or release/acquire
    pairing on the data."""
    if processors < 1:
        raise ValueError("need at least one processor")
    b = ProgramBuilder()
    nxt = b.var("next")
    slots = b.array("slots", processors)
    for p in range(processors):
        with b.thread() as t:
            t.label("claim")
            seen = t.acquire_read(nxt)
            bumped = t.add(seen, 1)
            ok = t.cas(nxt, seen, bumped)
            t.jump_if_zero(ok, "claim")
            t.write(b.at(slots, seen), 100 + p)  # my unique slot
    return b.build()


def region_then_lock_program(
    processors: int = 3, cells: int = 8, rounds: int = 3
) -> Program:
    """Each round, a processor writes its private region (buffered data
    writes) and then acquires a shared lock to bump a summary counter.

    This is the access pattern where RCsc/DRF1 beat WO/DRF0: at the
    lock acquire the region writes are still outstanding, and WO's
    flush-at-every-sync rule stalls the acquire on them while
    RCsc defers the drain to the release.  Data-race-free (regions are
    disjoint; the summary is locked)."""
    if processors < 1 or cells < 1 or rounds < 1:
        raise ValueError("processors, cells and rounds must be positive")
    b = ProgramBuilder()
    region = b.array("region", processors * cells)
    summary = b.var("summary")
    lock = b.var("lock")
    for p in range(processors):
        with b.thread() as t:
            for r in range(rounds):
                for i in range(cells):
                    t.write(b.at(region, p * cells + i), r * 100 + i)
                t.lock(lock)
                value = t.read(summary)
                t.add(value, 1, dst=value)
                t.write(summary, value)
                t.unlock(lock)
    return b.build()


def fanin_barrier_program(workers: int = 3, cells: int = 4) -> Program:
    """Fork-join via flags: each worker writes its slice and
    release-writes a done flag; the master acquire-spins on all flags,
    combines results, then release-writes ``go``; workers acquire-spin
    ``go`` and read the combined result.  Data-race-free."""
    if workers < 1 or cells < 1:
        raise ValueError("need at least one worker and one cell")
    b = ProgramBuilder()
    data = b.array("data", workers * cells)
    done = b.array("done", workers)
    result = b.var("result")
    go = b.var("go")

    with b.thread() as t:  # master
        total = t.mov(0)
        for w in range(workers):
            t.spin_until_eq(b.at(done, w), 1)
            for i in range(cells):
                value = t.read(b.at(data, w * cells + i))
                t.add(total, value, dst=total)
        t.write(result, total)
        t.release_write(go, 1)

    for w in range(workers):
        with b.thread() as t:
            for i in range(cells):
                t.write(b.at(data, w * cells + i), w + 1)
            t.release_write(b.at(done, w), 1)
            t.spin_until_eq(go, 1)
            t.read(result)
    return b.build()
