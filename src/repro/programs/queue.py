"""A real bounded work queue — the Figure 2 idea at production scale.

The paper's Figure 2 uses a one-slot queue; this kernel is the full
version: a lock-protected circular buffer with head/tail indices,
multiple producers enqueuing work-region descriptors and multiple
consumers dequeuing and processing them.  Used to exercise the
detection stack on a nontrivial, loopy, pointer-chasing program:

* the locked variant is data-race-free under every model and its FIFO
  accounting must balance exactly;
* the buggy variant omits the Test&Set around the queue manipulation,
  reproducing the Figure 2 failure mode at scale (lost or duplicated
  descriptors, region overlap, race cascades).
"""

from __future__ import annotations

from ..machine.program import Program, ProgramBuilder, ThreadBuilder


def _emit_enqueue(t: ThreadBuilder, b: ProgramBuilder, ctx, value, locked: bool):
    """enqueue(value): buf[tail % cap] = value; tail += 1; count += 1."""
    buf, head, tail, count, lock, cap = ctx
    if locked:
        t.lock(lock)
    tl = t.read(tail)
    # slot = tail - (tail >= cap ? cap : 0): avoid needing MOD by
    # bounding total enqueues below 2*cap in the generated programs.
    wrapped = t.cmp_lt(tl, cap)
    t.jump_if_nonzero(wrapped, f"enq_ok_{id(value) & 0xffff}_{len(t._instructions)}")
    t.sub(tl, cap, dst=tl)
    t.label(f"enq_ok_{id(value) & 0xffff}_{len(t._instructions) - 2}")
    t.write(b.at(buf, tl), value)
    tl2 = t.read(tail)
    t.add(tl2, 1, dst=tl2)
    t.write(tail, tl2)
    c = t.read(count)
    t.add(c, 1, dst=c)
    t.write(count, c)
    if locked:
        t.unlock(lock)


def bounded_queue_program(
    producers: int = 2,
    consumers: int = 2,
    items_per_producer: int = 3,
    capacity: int = 16,
    locked: bool = True,
) -> Program:
    """Build the multi-producer/multi-consumer bounded queue program.

    Each producer enqueues ``items_per_producer`` distinct descriptors;
    each consumer repeatedly dequeues until it has consumed its share
    (total items are divided evenly; ``producers * items_per_producer``
    must be divisible by ``consumers``).  Every consumer accumulates a
    checksum of the descriptors it dequeued into ``sum[c]``.
    """
    total = producers * items_per_producer
    if total % consumers:
        raise ValueError("total items must divide evenly among consumers")
    if total > capacity:
        raise ValueError("capacity must hold all items (no blocking enqueue)")
    share = total // consumers

    b = ProgramBuilder()
    buf = b.array("buf", capacity)
    head = b.var("head")
    tail = b.var("tail")
    count = b.var("count")
    lock = b.var("qlock")
    sums = b.array("sum", consumers)
    ctx = (buf, head, tail, count, lock, capacity)

    for p in range(producers):
        with b.thread() as t:
            for i in range(items_per_producer):
                descriptor = 100 * (p + 1) + i
                _emit_enqueue(t, b, ctx, descriptor, locked)

    for c in range(consumers):
        with b.thread() as t:
            taken = t.mov(0)
            checksum = t.mov(0)
            t.label("again")
            if locked:
                t.lock(lock)
            n = t.read(count)
            t.jump_if_zero(n, "empty")
            hd = t.read(head)
            wrapped = t.cmp_lt(hd, capacity)
            t.jump_if_nonzero(wrapped, "deq_ok")
            t.sub(hd, capacity, dst=hd)
            t.label("deq_ok")
            item = t.read(b.at(buf, hd))
            hd2 = t.read(head)
            t.add(hd2, 1, dst=hd2)
            t.write(head, hd2)
            t.sub(n, 1, dst=n)
            t.write(count, n)
            if locked:
                t.unlock(lock)
            t.add(checksum, item, dst=checksum)
            t.add(taken, 1, dst=taken)
            t.jump("check")
            t.label("empty")
            if locked:
                t.unlock(lock)
            t.label("check")
            done = t.cmp_lt(taken, share)
            t.jump_if_nonzero(done, "again")
            t.write(b.at(sums, c), checksum)

    return b.build()


def expected_checksum_total(producers: int, items_per_producer: int) -> int:
    """Sum of all descriptors ever enqueued."""
    return sum(
        100 * (p + 1) + i
        for p in range(producers)
        for i in range(items_per_producer)
    )
