"""The Figure 2 work-queue program, buggy and fixed.

The paper's motivating example (Figure 2a): P1 enqueues the starting
address of a region for P2 and resets the ``QEmpty`` flag; P2 dequeues
and works on its region; P3 independently works on region 0..p3_len-1.
The queue operations were *meant* to be inside Test&Set/Unset critical
sections, but "due to an oversight, the Test&Set instructions were
omitted" — the buggy variant.  On a weak system the new value of
``QEmpty`` can reach P2 before the new value of ``Q``; P2 then dequeues
the stale address 37 and its region overlaps P3's, producing the
figure's cascade of non-sequentially-consistent data races.

:func:`figure2_weak_setup` packages the exact scheduler script and
propagation holdback that deterministically reproduce Figure 2b.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..machine.models.base import MemoryModel
from ..machine.program import Program, ProgramBuilder, ThreadBuilder
from ..machine.propagation import HoldbackPropagation, HomeDirectoryPropagation
from ..machine.scheduler import ScriptedScheduler
from ..machine.simulator import ExecutionResult, Simulator


@dataclass(frozen=True)
class WorkQueueParams:
    """Geometry of the work-queue example.

    Defaults mirror the paper: the stale queue value is 37, P1 enqueues
    100, and both worker regions are 100 locations long, so the stale
    dequeue overlaps P3's region on locations 37..99.
    """

    stale_addr: int = 37
    enqueued_addr: int = 100
    p3_start: int = 0
    region_len: int = 100
    work_len: int = 100

    @property
    def region_size(self) -> int:
        return max(
            self.enqueued_addr + self.work_len,
            self.stale_addr + self.work_len,
            self.p3_start + self.region_len,
        )


def _emit_region_work(
    t: ThreadBuilder, b: ProgramBuilder, region: int, start, count: int, tag: int
) -> None:
    """read-modify-write each of *count* consecutive region cells."""
    base = t.mov(start) if isinstance(start, int) else start
    i = t.mov(0)
    loop = f"work_{tag}"
    t.label(loop)
    cur = t.add(base, i)
    old = t.read(b.at(region, cur))
    new = t.add(old, 1)
    t.write(b.at(region, cur), new)
    t.add(i, 1, dst=i)
    more = t.cmp_lt(i, count)
    t.jump_if_nonzero(more, loop)


def _build(params: WorkQueueParams, with_locks: bool) -> Program:
    b = ProgramBuilder()
    q = b.var("Q", initial=params.stale_addr)  # old queue contents: 37
    qempty = b.var("QEmpty", initial=1)
    s = b.var("S")  # the critical-section lock (free)
    region = b.array("region", params.region_size)

    with b.thread() as t:  # P1: enqueue work for P2
        if with_locks:
            t.lock(s)
        t.write(q, params.enqueued_addr)  # Enqueue(addr)
        t.write(qempty, 0)                # QEmpty := False
        t.unset(s)                        # Unset(S)

    with b.thread() as t:  # P2: dequeue and work
        if with_locks:
            t.lock(s)
        qe = t.read(qempty)               # if (QEmpty = False) then
        t.jump_if_nonzero(qe, "no_work")
        addr = t.read(q)                  # addr := Dequeue()
        t.unset(s)                        # Unset(S)
        _emit_region_work(t, b, region, addr, params.work_len, tag=2)
        t.jump("done")
        t.label("no_work")
        t.unset(s)
        t.label("done")

    with b.thread() as t:  # P3: independent region work
        _emit_region_work(
            t, b, region, params.p3_start, params.region_len, tag=3
        )

    return b.build()


def buggy_workqueue_program(params: WorkQueueParams = WorkQueueParams()) -> Program:
    """Figure 2a with the Test&Set instructions omitted (not DRF)."""
    return _build(params, with_locks=False)


def fixed_workqueue_program(params: WorkQueueParams = WorkQueueParams()) -> Program:
    """The corrected program: queue accesses inside Test&Set/Unset
    critical sections (data-race-free up to the disjoint regions)."""
    return _build(params, with_locks=True)


def figure2_weak_setup(
    model: MemoryModel, params: WorkQueueParams = WorkQueueParams()
) -> Simulator:
    """A simulator configured to reproduce Figure 2b deterministically.

    The scheduler script runs P1 through its two data writes, lets P2
    read ``QEmpty`` and dequeue before P1's Unset, and only then lets
    P1 release; the propagation policy delivers every buffered write
    eagerly *except* writes to ``Q``, which wait for the flush — so P2
    observes the new ``QEmpty`` but the stale ``Q``.
    """
    program = buggy_workqueue_program(params)
    q_addr = program.symbols.addr_of("Q")
    # P1: write Q, write QEmpty (2 instructions); P2: read QEmpty,
    # branch, read Q (3 instructions); P1: Unset (1); then round-robin.
    script = [0, 0, 1, 1, 1, 0]
    return Simulator(
        program,
        model,
        scheduler=ScriptedScheduler(script),
        propagation=HoldbackPropagation([q_addr]),
        seed=0,
    )


def run_figure2(model: MemoryModel, params: WorkQueueParams = WorkQueueParams()) -> ExecutionResult:
    """Run the deterministic Figure 2b reproduction to completion."""
    return figure2_weak_setup(model, params).run()


def figure2_numa_setup(
    model: MemoryModel, params: WorkQueueParams = WorkQueueParams()
) -> Simulator:
    """Figure 2b from physics instead of fiat.

    Where :func:`figure2_weak_setup` withholds ``Q``'s write by policy,
    this variant derives the same reordering from a NUMA topology: a
    directory protocol routes each write through its location's home
    node, and ``QEmpty`` is homed next to P2 while ``Q`` is homed on a
    distant node — so the new ``QEmpty`` overtakes the new ``Q``
    entirely deterministically.  P3 runs a few steps while the
    ``QEmpty`` update is in flight.
    """
    program = buggy_workqueue_program(params)
    q_addr = program.symbols.addr_of("Q")
    qe_addr = program.symbols.addr_of("QEmpty")

    def home_of(addr: int) -> int:
        if addr == q_addr:
            return 2   # Q's home: far from P2
        if addr == qe_addr:
            return 1   # QEmpty's home: P2's own node
        return 0

    dist = [[0, 1, 8], [1, 0, 8], [8, 8, 0]]
    script = [0, 0, 2, 2, 2, 2, 1, 1, 1, 0]
    return Simulator(
        program,
        model,
        scheduler=ScriptedScheduler(script),
        propagation=HomeDirectoryPropagation(home_of, dist),
        seed=0,
    )
