"""Seeded random program generation for property-based testing.

Two families:

* :func:`random_drf_program` — every shared location is protected by an
  assigned Test&Set lock and every access happens inside that lock's
  critical section, so the program is data-race-free by construction
  (the discipline the weak models are designed for).
* :func:`random_racy_program` — the same generator, but each access
  skips its lock with probability ``race_prob``, seeding data races at
  random places.

Programs are loop-free apart from lock spins, so they always terminate
under any fair scheduler.
"""

from __future__ import annotations

import random
from typing import List

from ..machine.program import Program, ProgramBuilder


def _generate(
    seed: int,
    processors: int,
    ops_per_thread: int,
    shared_vars: int,
    race_prob: float,
    private_prob: float = 0.3,
    cas_prob: float = 0.15,
) -> Program:
    rng = random.Random(seed)
    b = ProgramBuilder()
    shared = [b.var(f"v{i}") for i in range(shared_vars)]
    locks = [b.var(f"lock{i}") for i in range(shared_vars)]
    counters = [b.var(f"c{i}") for i in range(shared_vars)]
    privates = [b.var(f"priv{p}") for p in range(processors)]

    for p in range(processors):
        with b.thread() as t:
            for op_index in range(ops_per_thread):
                roll = rng.random()
                if roll < private_prob:
                    # Thread-private accesses never race.
                    if rng.random() < 0.5:
                        t.read(privates[p])
                    else:
                        t.write(privates[p], rng.randrange(100))
                    continue
                if roll < private_prob + cas_prob:
                    # Lock-free CAS-retry increment of a dedicated
                    # counter: every access is synchronization, so this
                    # never introduces a data race.
                    idx = rng.randrange(shared_vars)
                    label = f"cas_{p}_{op_index}"
                    t.label(label)
                    seen = t.acquire_read(counters[idx])
                    bumped = t.add(seen, 1)
                    ok = t.cas(counters[idx], seen, bumped)
                    t.jump_if_zero(ok, label)
                    continue
                idx = rng.randrange(shared_vars)
                locked = rng.random() >= race_prob
                if locked:
                    t.lock(locks[idx])
                if rng.random() < 0.5:
                    value = t.read(shared[idx])
                    t.add(value, 1, dst=value)
                    t.write(shared[idx], value)
                else:
                    t.write(shared[idx], rng.randrange(100))
                if locked:
                    t.unlock(locks[idx])
    return b.build()


def random_drf_program(
    seed: int,
    processors: int = 3,
    ops_per_thread: int = 6,
    shared_vars: int = 3,
) -> Program:
    """A random data-race-free program (all shared access locked)."""
    return _generate(
        seed,
        processors=processors,
        ops_per_thread=ops_per_thread,
        shared_vars=shared_vars,
        race_prob=0.0,
    )


def random_racy_program(
    seed: int,
    processors: int = 3,
    ops_per_thread: int = 6,
    shared_vars: int = 3,
    race_prob: float = 0.4,
) -> Program:
    """A random program in which each shared access skips its lock with
    probability *race_prob* (so races are likely but not certain)."""
    if not 0.0 < race_prob <= 1.0:
        raise ValueError("race_prob must be in (0, 1]")
    return _generate(
        seed,
        processors=processors,
        ops_per_thread=ops_per_thread,
        shared_vars=shared_vars,
        race_prob=race_prob,
    )


def random_flagsync_program(
    seed: int,
    stages: int = 3,
    writes_per_stage: int = 3,
) -> Program:
    """A random *flag-synchronized* DRF program (no locks at all).

    A pipeline of processors: stage *i* writes a random subset of its
    private output cells, then release-writes ``flag[i] = 1``; stage
    *i+1* acquire-spins on ``flag[i]`` before reading its predecessor's
    cells.  Data-race-free purely through release/acquire pairing — the
    discipline that distinguishes RCsc/DRF1 from WO/DRF0 — with no
    Test&Set anywhere.
    """
    if stages < 2 or writes_per_stage < 1:
        raise ValueError("need at least two stages and one write per stage")
    rng = random.Random(seed)
    b = ProgramBuilder()
    cells = b.array("cells", stages * writes_per_stage)
    flags = b.array("flags", stages)

    for stage in range(stages):
        with b.thread() as t:
            if stage > 0:
                t.spin_until_eq(b.at(flags, stage - 1), 1)
                total = t.mov(0)
                for i in range(writes_per_stage):
                    if rng.random() < 0.8:
                        value = t.read(
                            b.at(cells, (stage - 1) * writes_per_stage + i)
                        )
                        t.add(total, value, dst=total)
            for i in range(writes_per_stage):
                t.write(
                    b.at(cells, stage * writes_per_stage + i),
                    rng.randrange(100),
                )
            t.release_write(b.at(flags, stage), 1)
    return b.build()


def random_program_suite(
    base_seed: int, count: int, racy: bool, **kwargs
) -> List[Program]:
    """A deterministic batch of generated programs."""
    make = random_racy_program if racy else random_drf_program
    return [make(base_seed + i, **kwargs) for i in range(count)]
