"""Litmus tests: small programs that separate memory models.

The classic *store buffering* shape (the core of Dekker's mutual
exclusion attempt) is the cleanest demonstration of why data races and
weak models don't mix: each processor raises its own flag with a data
write and then reads the other's flag.  Under sequential consistency at
most one processor can observe the other's flag still down; on a weak
machine both data writes can sit in store buffers while both reads
return the stale 0, and both processors enter the "critical" region.

The flags are deliberately *data* operations — the program is not
data-race-free, so the weak models owe it nothing (section 2.2).  The
synchronized variant replaces the discipline with a Test&Set lock and
is immune on every model.
"""

from __future__ import annotations

from ..machine.models.base import MemoryModel
from ..machine.program import Program, ProgramBuilder
from ..machine.propagation import (
    HomeDirectoryPropagation,
    StubbornPropagation,
)
from ..machine.scheduler import ScriptedScheduler
from ..machine.simulator import ExecutionResult, Simulator


def store_buffering_program() -> Program:
    """Dekker's entry protocol with data-operation flags (racy).

    Each processor that observes the other's flag at 0 increments the
    shared ``critical`` counter; ``critical == 2`` afterwards means
    mutual exclusion was violated (impossible under SC).
    """
    b = ProgramBuilder()
    flag0 = b.var("flag0")
    flag1 = b.var("flag1")
    critical = b.array("critical", 2)

    def contender(t, mine, theirs, slot):
        # No flag reset afterwards: with a reset, both-enter would be
        # sequentially reachable (one contender finishes completely
        # before the other starts).  Without it, both-enter is exactly
        # the SC-forbidden "both reads returned 0" outcome.
        t.write(mine, 1)
        other = t.read(theirs)
        t.jump_if_nonzero(other, "out")
        t.write(b.at(critical, slot), 1)  # inside the critical section
        t.label("out")

    with b.thread() as t:
        contender(t, flag0, flag1, 0)
    with b.thread() as t:
        contender(t, flag1, flag0, 1)
    return b.build()


def locked_mutual_exclusion_program() -> Program:
    """The same critical sections guarded by a Test&Set lock
    (data-race-free; exclusive on every model)."""
    b = ProgramBuilder()
    lock = b.var("lock")
    inside = b.var("inside")
    overlap = b.var("overlap")
    for _ in range(2):
        with b.thread() as t:
            t.lock(lock)
            seen = t.read(inside)
            t.write(inside, 1)
            bad = t.cmp_eq(seen, 1)
            t.jump_if_zero(bad, "fine")
            t.write(overlap, 1)     # someone else was inside: violation
            t.label("fine")
            t.write(inside, 0)
            t.unlock(lock)
    return b.build()


def both_entered(result: ExecutionResult) -> bool:
    """Did both contenders enter the critical region?"""
    base = result.symbols.addr_of("critical")
    return (
        result.final_memory[base] == 1 and result.final_memory[base + 1] == 1
    )


def run_store_buffering_witness(model: MemoryModel) -> ExecutionResult:
    """Drive the store-buffering program into the both-enter outcome
    (when the model permits it): both flag writes buffer, both reads
    run before any propagation."""
    program = store_buffering_program()
    # P0 write flag0; P1 write flag1; P0 read flag1; P1 read flag0; rest.
    return Simulator(
        program,
        model,
        scheduler=ScriptedScheduler([0, 1, 0, 1]),
        propagation=StubbornPropagation(),
        seed=0,
    ).run()


def peterson_program() -> Program:
    """Peterson's mutual-exclusion algorithm with *data* operations.

    The textbook two-thread lock: raise my flag, yield the turn, spin
    while the other's flag is up and it's their turn.  Its correctness
    proof assumes sequential consistency; the flags and turn are plain
    data here (no Test&Set, no release/acquire), so the program is not
    data-race-free and the weak models owe it nothing.  ``overlap``
    becomes 1 if both threads are ever inside the critical section —
    impossible under SC (exhaustively checkable), reachable on every
    weak model.
    """
    b = ProgramBuilder()
    flags = b.array("flag", 2)
    turn = b.var("turn")
    busy = b.var("busy")       # the monitor, not part of the protocol
    overlap = b.var("overlap")

    for me in range(2):
        other = 1 - me
        with b.thread() as t:
            t.write(b.at(flags, me), 1)   # flag[me] = 1
            t.write(turn, other)          # turn = other
            t.label("spin")
            their_flag = t.read(b.at(flags, other))
            t.jump_if_zero(their_flag, "enter")
            whose_turn = t.read(turn)
            is_theirs = t.cmp_eq(whose_turn, other)
            t.jump_if_nonzero(is_theirs, "spin")
            t.label("enter")
            # Critical section, instrumented with a CAS-based occupancy
            # monitor: CAS is synchronization, hence reliable even when
            # the protocol's own data reads were stale.  (A CAS write,
            # like a Test&Set's, is not a release — the monitor adds no
            # happens-before ordering to the protocol under test.)
            got = t.cas(busy, 0, 1)
            t.jump_if_nonzero(got, "sole")
            t.write(overlap, 1)           # somebody else is inside!
            t.label("sole")
            t.cas(busy, 1, 0)             # leave
            t.write(b.at(flags, me), 0)   # flag[me] = 0
    return b.build()


def run_peterson_witness(model: MemoryModel) -> ExecutionResult:
    """Drive Peterson into a mutual-exclusion violation (when the model
    permits): both flag writes buffer, both threads read the other's
    flag as 0 and walk straight into the critical section together."""
    program = peterson_program()
    # Both threads raise flags (buffered) and pass the spin check on
    # stale reads BEFORE either reaches the (flushing) monitor CAS;
    # entry is decided at the branch, so the violation is already
    # locked in when the monitor observes it.
    script = [0, 0, 0, 0, 1, 1, 1, 1, 0, 1, 0, 1, 0, 1, 0, 1]
    return Simulator(
        program, model,
        scheduler=ScriptedScheduler(script),
        propagation=StubbornPropagation(),
        seed=0,
    ).run()


def iriw_program() -> Program:
    """Independent Reads of Independent Writes.

    W0 writes x; W1 writes y; reader R0 reads x then y, reader R1 reads
    y then x.  The forbidden-under-SC outcome is the two readers seeing
    the two writes in *opposite* orders (R0: x=1,y=0 while R1: y=1,x=0)
    — it requires the writes to be observed in different orders by
    different processors, which per-reader visibility permits but any
    single total order cannot.  Racy by construction (no sync at all).
    """
    b = ProgramBuilder()
    x = b.var("x")
    y = b.var("y")
    obs = b.array("obs", 4)  # r0x, r0y, r1y, r1x
    with b.thread() as t:  # W0
        t.write(x, 1)
    with b.thread() as t:  # W1
        t.write(y, 1)
    with b.thread() as t:  # R0: x then y
        vx = t.read(x)
        vy = t.read(y)
        t.write(b.at(obs, 0), vx)
        t.write(b.at(obs, 1), vy)
    with b.thread() as t:  # R1: y then x
        vy = t.read(y)
        vx = t.read(x)
        t.write(b.at(obs, 2), vy)
        t.write(b.at(obs, 3), vx)
    return b.build()


def iriw_forbidden_outcome(result: ExecutionResult) -> bool:
    """True iff the readers observed the writes in opposite orders."""
    base = result.symbols.addr_of("obs")
    r0x, r0y, r1y, r1x = (result.final_memory[base + i] for i in range(4))
    return r0x == 1 and r0y == 0 and r1y == 1 and r1x == 0


def run_iriw_witness(model: MemoryModel) -> ExecutionResult:
    """Drive IRIW into the forbidden outcome when the model allows it:
    each write propagates to its 'near' reader before the far one."""
    program = iriw_program()
    x = program.symbols.addr_of("x")
    y = program.symbols.addr_of("y")
    # Homes: x near R0 (node 2), y near R1 (node 3); writers far.
    homes = {x: 2, y: 3}
    dist = [
        [0, 9, 1, 9],
        [9, 0, 9, 1],
        [1, 9, 0, 9],
        [9, 1, 9, 0],
    ]
    policy = HomeDirectoryPropagation(lambda a: homes.get(a, 0), dist)
    # W0, W1 write; near deliveries land; readers read; far ones later.
    script = [0, 1, 2, 2, 3, 3, 2, 2, 2, 2, 3, 3, 3, 3]
    return Simulator(
        program, model,
        scheduler=ScriptedScheduler(script),
        propagation=policy, seed=0,
    ).run()


def count_sb_violations(model: MemoryModel, seeds: int = 50) -> int:
    """How many random schedules drive both contenders into the
    critical region under *model* (0 under SC, by the SB argument)."""
    violations = 0
    program = store_buffering_program()
    for seed in range(seeds):
        result = Simulator(
            program, model, propagation=StubbornPropagation(), seed=seed
        ).run()
        if both_entered(result):
            violations += 1
    return violations
