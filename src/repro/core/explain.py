"""Explaining why a race was suppressed (or reported).

The detector's report tells the programmer *which* races to chase; this
module answers the follow-up question — "why was this other race
hidden?" — by extracting the G' path that witnesses the affects
relation (Definition 3.3): a chain of program-order steps, paired
synchronization, and earlier races leading from a first-partition event
to the suppressed race.  Each hop is labelled with its justification,
turning the formalism into a readable causal story.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..graph import shortest_path
from ..trace.events import EventId
from .races import EventRace
from .report import RaceReport


@dataclass(frozen=True)
class ExplanationStep:
    """One hop of the affects chain."""

    src: EventId
    dst: EventId
    kind: str  # "po" | "so1" | "race"

    def describe(self, report: RaceReport) -> str:
        arrow = {
            "po": "program order",
            "so1": "paired release->acquire",
            "race": "races with",
        }[self.kind]
        return (
            f"{report.trace.label(self.src)}\n"
            f"    --[{arrow}]--> {report.trace.label(self.dst)}"
        )


@dataclass
class RaceExplanation:
    """Why *race* was classified the way it was."""

    race: EventRace
    is_first: bool
    root_race: Optional[EventRace]
    steps: List[ExplanationStep]

    def format(self, report: RaceReport) -> str:
        lines = [f"Race {self.race.describe(report.trace)}:"]
        if self.is_first:
            lines.append(
                "  FIRST: not affected by any other race; by Theorem 4.2 "
                "its partition contains a race that occurs on SC hardware."
            )
            return "\n".join(lines)
        assert self.root_race is not None
        lines.append(
            f"  SUPPRESSED: affected by first-partition race "
            f"{self.root_race.describe(report.trace)} via:"
        )
        for step in self.steps:
            lines.append("  " + step.describe(report))
        lines.append(
            "  On sequentially consistent hardware the chain's origin "
            "could not have corrupted this code, so this race may be "
            "impossible there - fix the first race and re-run."
        )
        return "\n".join(lines)


def _classify_edge(report: RaceReport, src: EventId, dst: EventId) -> str:
    if (src, dst) in report.hb.po_edges:
        return "po"
    if (src, dst) in report.hb.so1_edges:
        return "so1"
    # Transitive po (consecutive events were compressed by shortest
    # path only if the edge exists; same-proc edges are po).
    if src.proc == dst.proc:
        return "po"
    return "race"


def explain_race(report: RaceReport, race: EventRace) -> RaceExplanation:
    """Build the affects chain for *race* from the report's G'."""
    reported = {(r.a, r.b) for r in report.reported_races}
    if (race.a, race.b) in reported:
        return RaceExplanation(
            race=race, is_first=True, root_race=None, steps=[]
        )

    gprime = report.analysis.gprime
    best: Optional[Tuple[EventRace, List[EventId]]] = None
    for root in report.reported_races:
        for src in (root.a, root.b):
            for dst in (race.a, race.b):
                path = (
                    [src, dst] if src == dst
                    else shortest_path(gprime, src, dst)
                )
                if path is None:
                    continue
                if best is None or len(path) < len(best[1]):
                    best = (root, path)
    if best is None:
        # Not reachable from any reported race (e.g. an independent
        # non-first classification anomaly); report it as unexplained
        # first-like.
        return RaceExplanation(
            race=race, is_first=False, root_race=None, steps=[]
        )
    root, path = best
    steps = [
        ExplanationStep(a, b, _classify_edge(report, a, b))
        for a, b in zip(path, path[1:])
    ]
    return RaceExplanation(
        race=race, is_first=False, root_race=root, steps=steps
    )


def explain_report(report: RaceReport) -> str:
    """Explanations for every data race in the execution."""
    sections = []
    for race in report.data_races:
        sections.append(explain_race(report, race).format(report))
    if not sections:
        return "No data races: nothing to explain."
    return "\n\n".join(sections)
