"""An alternative happens-before-1 backend using vector clocks.

The default :class:`~repro.core.hb1.HappensBefore1` answers ordering
queries with a transitive closure over the event graph.  Real
post-mortem tools more often assign each event a vector clock in one
topological sweep: ``a hb1 b`` iff ``clock(a) <= clock(b)`` pointwise
with ``a != b`` (per-processor components count events issued).  That
is O(V·P) space instead of O(V²/64) and answers queries in O(P).

Vector clocks require an *acyclic* hb1 — true for every execution our
simulator produces (its sync operations are sequentially consistent)
but not guaranteed by the paper for arbitrary weak machines (§3.1).
``VectorClockHB1`` therefore refuses cyclic inputs with
:class:`CyclicHB1Error`; callers that must handle arbitrary traces use
the closure backend.  The two backends are differentially tested for
equality on every acyclic trace.
"""

from __future__ import annotations

from typing import Dict, List

from .. import obs
from ..graph import CycleError, topological_sort
from ..trace.build import Trace
from ..trace.events import EventId
from .hb1 import HappensBefore1


class CyclicHB1Error(ValueError):
    """hb1 has a cycle; vector clocks cannot represent it."""


class VectorClockHB1:
    """Event vector clocks computed in one topological sweep.

    Exposes the same ``ordered`` / ``unordered`` query interface as
    :class:`HappensBefore1` so the two are interchangeable for race
    detection on acyclic traces.
    """

    def __init__(self, trace: Trace) -> None:
        self.trace = trace
        base = HappensBefore1(trace)
        self.graph = base.graph
        self.po_edges = base.po_edges
        self.so1_edges = base.so1_edges
        try:
            order = topological_sort(self.graph)
        except CycleError as exc:
            raise CyclicHB1Error(
                "hb1 contains a cycle (weak sync ordering, section 3.1); "
                "use the transitive-closure backend"
            ) from exc

        nproc = trace.processor_count
        self._clocks: Dict[EventId, List[int]] = {}
        with obs.span("hb1.vc_sweep") as sp:
            joins = 0
            for eid in order:
                clock = [0] * nproc
                for pred in self.graph.predecessors(eid):
                    pred_clock = self._clocks[pred]
                    for i in range(nproc):
                        if pred_clock[i] > clock[i]:
                            clock[i] = pred_clock[i]
                    joins += 1
                clock[eid.proc] = eid.pos + 1  # this event's own position
                self._clocks[eid] = clock
            if sp.enabled:
                sp.add("events", len(order))
                sp.add("clock_joins", joins)

    # ------------------------------------------------------------------
    def clock_of(self, eid: EventId) -> List[int]:
        """The event's vector clock (do not mutate)."""
        return self._clocks[eid]

    def ordered(self, a: EventId, b: EventId) -> bool:
        """True iff ``a hb1 b`` — the O(1) epoch test: b has seen a's
        own component (a's clock then flows into b's pointwise, so the
        full comparison is redundant)."""
        if a == b:
            return False
        return self._clocks[b][a.proc] >= self._clocks[a][a.proc]

    def unordered(self, a: EventId, b: EventId) -> bool:
        return not self.ordered(a, b) and not self.ordered(b, a)

    def is_partial_order(self) -> bool:
        return True  # construction rejected cyclic inputs
