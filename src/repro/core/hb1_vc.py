"""An alternative happens-before-1 backend using vector clocks.

The default :class:`~repro.core.hb1.HappensBefore1` answers ordering
queries with a transitive closure over the event graph.  Real
post-mortem tools more often assign each event a vector clock in one
topological sweep: ``a hb1 b`` iff ``clock(a) <= clock(b)`` pointwise
with ``a != b`` (per-processor components count events issued).  That
is O(V·P) space instead of O(V²/64) and answers queries in O(P).

The clocks live in a V×P ``int64`` numpy matrix (one row per event in
topological order) when numpy is available: each event's row is the
``np.maximum`` join of its predecessors' rows — one vectorized call per
edge instead of a Python component loop — and the matrix doubles as the
input to the batched race sweep in :mod:`repro.core.races`, which
tests whole candidate-pair arrays against it at once.  Without numpy
the original pure-Python sweep is used and queries fall back to the
per-pair epoch test.

Vector clocks require an *acyclic* hb1 — true for every execution our
simulator produces (its sync operations are sequentially consistent)
but not guaranteed by the paper for arbitrary weak machines (§3.1).
``VectorClockHB1`` therefore refuses cyclic inputs with
:class:`CyclicHB1Error`; callers that must handle arbitrary traces use
the closure backend.  The two backends are differentially tested for
equality on every acyclic trace.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .. import obs
from ..graph import CycleError, topological_sort
from ..trace.build import Trace
from ..trace.events import ComputationEvent, EventId, SyncEvent
from .hb1 import HappensBefore1

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is a declared dependency
    _np = None


class CyclicHB1Error(ValueError):
    """hb1 has a cycle; vector clocks cannot represent it."""


class VectorClockHB1:
    """Event vector clocks computed in one topological sweep.

    Exposes the same ``ordered`` / ``unordered`` query interface as
    :class:`HappensBefore1` so the two are interchangeable for race
    detection on acyclic traces.  Pass a prebuilt ``base`` relation to
    reuse its graph instead of rebuilding po/so1 edges — including a
    *subclassed* relation (the predictive SHB/WCP backends pass their
    modified edge sets through here to reuse the same sweep).

    With ``track_variables=True`` the sweep additionally maintains
    per-variable last-write / last-read *epoch* state in topological
    order: for every location, the most recent write event and the
    reads issued since it.  The resulting :attr:`adjacent_conflicts`
    set — each event paired with the latest conflicting accesses it
    supersedes — is exactly the candidate set a streaming per-variable
    detector checks, and is what makes the SHB backend's multi-race
    reports *sound* (Mathur et al. 2018 prove predictability only for
    races detected against the last write / reads-since-last-write).
    """

    def __init__(
        self,
        trace: Trace,
        base: Optional[HappensBefore1] = None,
        track_variables: bool = False,
    ) -> None:
        self.trace = trace
        if base is None:
            base = HappensBefore1(trace)
        self.graph = base.graph
        self.po_edges = base.po_edges
        self.so1_edges = base.so1_edges
        try:
            order = topological_sort(self.graph)
        except CycleError as exc:
            raise CyclicHB1Error(
                "hb1 contains a cycle (weak sync ordering, section 3.1); "
                "use the transitive-closure backend"
            ) from exc

        nproc = trace.processor_count
        self._clocks: Dict[EventId, List[int]] = {}
        self._matrix = None
        self._row_of: Dict[EventId, int] = {}
        self._adjacent: Optional[
            Dict[Tuple[EventId, EventId], Tuple[int, ...]]
        ] = None
        with obs.span("hb1.vc_sweep") as sp:
            if _np is not None:
                joins = self._sweep_matrix(order, nproc)
            else:  # pragma: no cover - exercised via forced fallback tests
                joins = self._sweep_python(order, nproc)
            if track_variables:
                self._adjacent = self._sweep_variables(order)
            if sp.enabled:
                sp.add("events", len(order))
                sp.add("clock_joins", joins)
                if track_variables:
                    sp.add("adjacent_pairs", len(self._adjacent))

    def _sweep_matrix(self, order: List[EventId], nproc: int) -> int:
        """Clock matrix sweep: row i is event order[i]'s vector clock."""
        row_of = self._row_of
        for i, eid in enumerate(order):
            row_of[eid] = i
        matrix = _np.zeros((max(len(order), 1), nproc), dtype=_np.int64)
        if order:
            # Own components set vectorized up front: a same-processor
            # predecessor's own component is always smaller (pos' < pos),
            # so the maximum joins below can never overwrite them.
            procs = _np.fromiter(
                (e.proc for e in order), dtype=_np.intp, count=len(order)
            )
            poss = _np.fromiter(
                (e.pos for e in order), dtype=_np.int64, count=len(order)
            )
            matrix[_np.arange(len(order)), procs] = poss + 1
        predecessors = self.graph.predecessors
        maximum = _np.maximum
        joins = 0
        for i, eid in enumerate(order):
            row = matrix[i]
            for pred in predecessors(eid):
                maximum(row, matrix[row_of[pred]], out=row)
                joins += 1
        self._matrix = matrix
        return joins

    def _sweep_python(self, order: List[EventId], nproc: int) -> int:
        joins = 0
        for eid in order:
            clock = [0] * nproc
            for pred in self.graph.predecessors(eid):
                pred_clock = self._clocks[pred]
                for i in range(nproc):
                    if pred_clock[i] > clock[i]:
                        clock[i] = pred_clock[i]
                joins += 1
            clock[eid.proc] = eid.pos + 1  # this event's own position
            self._clocks[eid] = clock
        return joins

    def _sweep_variables(
        self, order: List[EventId]
    ) -> Dict[Tuple[EventId, EventId], Tuple[int, ...]]:
        """Per-variable last-write/last-read epoch tracking.

        One pass over the same topological order the clocks were swept
        in: for each location, remember the latest write and the reads
        issued since it, and record every *adjacent* cross-processor
        conflict (an access paired with the latest conflicting accesses
        it supersedes, canonical ``a < b``).  Same-processor pairs are
        po-ordered and skipped.
        """
        trace = self.trace
        columns = getattr(trace, "columns", None)
        last_write: Dict[int, EventId] = {}
        readers_since: Dict[int, List[EventId]] = {}
        pairs: Dict[Tuple[EventId, EventId], List[int]] = {}

        def note(x: EventId, y: EventId, addr: int) -> None:
            if x.proc == y.proc:
                return
            key = (x, y) if x < y else (y, x)
            pairs.setdefault(key, []).append(addr)

        for eid in order:
            if columns is not None:
                row = columns.row_of(eid.proc, eid.pos)
                if columns.is_comp(row):
                    reads = list(columns.event_reads(row))
                    writes = list(columns.event_writes(row))
                else:
                    addr = int(columns.addr[row])
                    if columns.kind[row]:
                        reads, writes = [], [addr]
                    else:
                        reads, writes = [addr], []
            elif isinstance(event := trace.event(eid), SyncEvent):
                reads = [event.addr] if event.reads_addr else []
                writes = [event.addr] if event.writes_addr else []
            else:
                assert isinstance(event, ComputationEvent)
                reads = list(event.reads)
                writes = list(event.writes)
            for addr in reads:
                w = last_write.get(addr)
                if w is not None:
                    note(w, eid, addr)
                readers_since.setdefault(addr, []).append(eid)
            for addr in writes:
                w = last_write.get(addr)
                if w is not None:
                    note(w, eid, addr)
                for r in readers_since.get(addr, ()):
                    if r != eid:
                        note(r, eid, addr)
                last_write[addr] = eid
                readers_since[addr] = []
        return {
            key: tuple(sorted(set(addrs))) for key, addrs in pairs.items()
        }

    # ------------------------------------------------------------------
    @property
    def clock_matrix(self):
        """The V×P int64 clock matrix in topological row order (None
        when numpy is unavailable; see :attr:`row_index`)."""
        return self._matrix

    @property
    def row_index(self) -> Dict[EventId, int]:
        """EventId -> row of :attr:`clock_matrix`."""
        return self._row_of

    @property
    def adjacent_conflicts(
        self,
    ) -> Optional[Dict[Tuple[EventId, EventId], Tuple[int, ...]]]:
        """Adjacent conflicting cross-processor pairs from the
        per-variable last-write/last-read sweep (canonical ``(a, b)``
        with ``a < b`` mapped to conflict locations), or ``None`` when
        the sweep ran without ``track_variables``."""
        return self._adjacent

    def clock_of(self, eid: EventId) -> List[int]:
        """The event's vector clock (do not mutate)."""
        if self._matrix is not None:
            return self._matrix[self._row_of[eid]].tolist()
        return self._clocks[eid]

    def ordered(self, a: EventId, b: EventId) -> bool:
        """True iff ``a hb1 b`` — the O(1) epoch test: b has seen a's
        own component (a's clock then flows into b's pointwise, so the
        full comparison is redundant)."""
        if a == b:
            return False
        if self._matrix is not None:
            return bool(self._matrix[self._row_of[b], a.proc] >= a.pos + 1)
        return self._clocks[b][a.proc] >= self._clocks[a][a.proc]

    def unordered(self, a: EventId, b: EventId) -> bool:
        return not self.ordered(a, b) and not self.ordered(b, a)

    def is_partial_order(self) -> bool:
        return True  # construction rejected cyclic inputs
