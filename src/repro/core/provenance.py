"""Race provenance: the evidence behind every reported race (§4.1–4.2).

A race report is only actionable when the programmer can see *why*
each race was reported — and why suppressed races were not.  For one
:class:`~repro.core.report.RaceReport` this module assembles, per data
race:

* the **non-ordering witness** (Definition 2.4): the pair conflicts,
  and hb1 orders it in *neither* direction.  Non-ordering is a
  universal claim ("no path exists"), so the witness is checked two
  independent ways — a fresh breadth-first search over the raw hb1
  edge list, and the detector's own transitive-closure backend — and
  recorded only when both agree (``verified``);

* its **SCC / partition** in the augmented graph G′ (hb1 plus doubly
  directed race edges): which component the pair fell into, how many
  events and races share it;

* the **Definition 4.1 ordering evidence**: the data-race partitions
  that G′-reach this partition (none ⇔ the partition is first,
  Theorem 4.1) and the ones it reaches.  For a reported race the
  preceding list is empty; for a suppressed race it names the earlier
  partitions whose races may have caused this one.

:func:`explain_races` is the entry point; ``weakraces explain`` and
:func:`repro.api.explain` wrap it.  (The sibling
:mod:`repro.core.explain` answers a different question — the *affects*
chain showing how suppressed races may be artifacts.)  A witness that
fails verification
raises :class:`ProvenanceError` — that would mean the detector
reported a pair its own ordering relation calls ordered.
"""

from __future__ import annotations

import hashlib
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..trace.events import EventId
from .races import EventRace
from .report import RaceReport


class ProvenanceError(RuntimeError):
    """A provenance check failed: the report's races and its hb1
    relation disagree (one of them is wrong)."""


def _bfs_reaches(edges: Dict[EventId, List[EventId]],
                 src: EventId, dst: EventId) -> bool:
    """Plain BFS over an adjacency map — deliberately independent of
    the TransitiveClosure bitsets it is used to cross-check."""
    if src == dst:
        return True
    seen = {src}
    queue = deque((src,))
    while queue:
        node = queue.popleft()
        for succ in edges.get(node, ()):
            if succ == dst:
                return True
            if succ not in seen:
                seen.add(succ)
                queue.append(succ)
    return False


@dataclass(frozen=True)
class NonOrderingWitness:
    """Evidence that hb1 orders a conflicting pair in neither direction.

    ``a_reaches_b``/``b_reaches_a`` are the BFS answers over the raw
    hb1 edges (both must be False for a race); ``verified`` records
    that the closure backend returned the same answers.
    """

    a: EventId
    b: EventId
    a_reaches_b: bool
    b_reaches_a: bool
    verified: bool

    @property
    def holds(self) -> bool:
        return not self.a_reaches_b and not self.b_reaches_a

    def describe(self) -> str:
        check = "verified against closure" if self.verified \
            else "CLOSURE DISAGREES"
        return (
            f"no hb1 path {self.a} -> {self.b}, "
            f"no hb1 path {self.b} -> {self.a} ({check})"
        )


@dataclass
class RaceProvenance:
    """Why one data race was reported (or suppressed)."""

    race: EventRace
    witness: NonOrderingWitness
    component_index: int  # the SCC of G' holding both endpoints
    component_size: int  # events in that SCC
    partition_races: int  # races sharing the partition
    is_first: bool
    reported: bool  # first partition *and* a data race
    preceding: List[int]  # data partitions that G'-reach this one
    following: List[int]  # data partitions this one G'-reaches

    @property
    def signature(self) -> str:
        return self.race.signature

    def describe(self, trace=None) -> str:
        lines = [f"race {self.race.describe(trace)}"]
        lines.append(f"  witness: {self.witness.describe()}")
        lines.append(
            f"  partition: #{self.component_index} "
            f"({self.component_size} event(s), "
            f"{self.partition_races} race(s))"
        )
        if self.is_first:
            lines.append(
                "  ordering (Def 4.1): no data-race partition reaches "
                "this one in G' => FIRST partition; some race here "
                "occurs in a sequentially consistent execution "
                "(Theorem 4.2)"
            )
        else:
            preceded = ", ".join(f"#{i}" for i in self.preceding)
            lines.append(
                f"  ordering (Def 4.1): preceded in G' by data-race "
                f"partition(s) {preceded} => suppressed (may be an "
                f"artifact of the earlier races)"
            )
        if self.following:
            reaches = ", ".join(f"#{i}" for i in self.following)
            lines.append(f"  reaches data-race partition(s) {reaches}")
        return "\n".join(lines)

    def to_json(self) -> dict:
        return {
            "race": {
                "a": [self.race.a.proc, self.race.a.pos],
                "b": [self.race.b.proc, self.race.b.pos],
                "signature": self.signature,
                "locations": list(self.race.locations),
                "is_data_race": self.race.is_data_race,
            },
            "witness": {
                "a_reaches_b": self.witness.a_reaches_b,
                "b_reaches_a": self.witness.b_reaches_a,
                "holds": self.witness.holds,
                "verified": self.witness.verified,
            },
            "partition": {
                "component_index": self.component_index,
                "component_size": self.component_size,
                "races": self.partition_races,
                "is_first": self.is_first,
            },
            "reported": self.reported,
            "preceding_data_partitions": self.preceding,
            "following_data_partitions": self.following,
        }


@dataclass
class ProvenanceReport:
    """Provenance for every data race of one analyzed execution."""

    report: RaceReport
    provenances: List[RaceProvenance]

    @property
    def all_verified(self) -> bool:
        return all(p.witness.verified for p in self.provenances)

    @property
    def reported(self) -> List[RaceProvenance]:
        return [p for p in self.provenances if p.reported]

    @property
    def suppressed(self) -> List[RaceProvenance]:
        return [p for p in self.provenances if not p.reported]

    def format(self) -> str:
        trace = self.report.trace
        lines = [
            f"Race provenance ({trace.model_name} execution, "
            f"{trace.event_count} events)",
            "=" * 70,
        ]
        if not self.provenances:
            lines.append("No data races detected — nothing to explain.")
            lines.append(
                "By Condition 3.4(1) the execution was sequentially "
                "consistent."
            )
            return "\n".join(lines)
        lines.append(
            f"{len(self.provenances)} data race(s): "
            f"{len(self.reported)} reported (first partitions), "
            f"{len(self.suppressed)} suppressed"
        )
        sync = len(self.report.sync_races)
        if sync:
            lines.append(
                f"({sync} sync race(s) participate in G' but are not "
                f"data races — not explained here)"
            )
        for title, group in (("REPORTED", self.reported),
                             ("SUPPRESSED", self.suppressed)):
            for prov in group:
                lines.append("")
                lines.append(f"[{title}] " + prov.describe(trace))
        return "\n".join(lines)

    def to_json(self) -> dict:
        return {
            "kind": "provenance",
            "model": self.report.trace.model_name,
            "events": self.report.trace.event_count,
            "race_free": self.report.race_free,
            "all_verified": self.all_verified,
            "races": [p.to_json() for p in self.provenances],
        }

    def to_dot(self) -> str:
        """G′ as DOT with the first (reported) partitions' events
        highlighted — the picture behind the ordering evidence."""
        highlight = {
            eid
            for partition in self.report.first_partitions
            for eid in partition.events
        }
        return self.report.to_dot(highlight=highlight)

    def find(self, signature: str) -> Optional[RaceProvenance]:
        """The provenance whose race signature matches (see
        :attr:`repro.core.races.EventRace.signature`)."""
        for prov in self.provenances:
            if prov.signature == signature:
                return prov
        return None


def _race_text(race: EventRace) -> str:
    locations = ",".join(str(addr) for addr in sorted(race.locations))
    return f"{race.signature}@{locations}"


def partition_coverage_keys(report) -> Tuple[str, ...]:
    """Stable signatures of a racy report's *first-race provenance
    partitions* — the hunt's coverage alphabet.

    Each key is a BLAKE2b digest over the sorted data-race signatures
    (endpoints + conflicting locations) of one first partition, so two
    seeds whose races land in structurally identical partitions count
    as the *same* coverage unit, while a seed that reaches a new
    partition shape grows the hunt's distinct-partition gauge.  Keys
    are content-derived (no component indices, which renumber across
    traces) and sorted, so they are insensitive to partition order.

    Reports without a partition analysis (naive, streaming — no G′)
    degrade to one key per data race: the per-race coverage the
    detector can actually distinguish.
    """
    partitions = getattr(report, "first_partitions", None)
    if partitions:
        texts = [
            "|".join(sorted(
                _race_text(race)
                for race in partition.races if race.is_data_race
            ))
            for partition in partitions
        ]
    else:
        races = getattr(report, "data_races", None) or ()
        texts = [_race_text(race) for race in races]
    return tuple(sorted(
        hashlib.blake2b(text.encode("utf-8"), digest_size=8).hexdigest()
        for text in texts if text
    ))


def explain_races(report: RaceReport,
                  include_sync: bool = False) -> ProvenanceReport:
    """Build witness-checked provenance for every data race of *report*.

    Args:
        report: a post-mortem :class:`RaceReport`.
        include_sync: also explain sync races (they live in partitions
            too, but Definition 2.4 excludes them from data races).

    Raises:
        ProvenanceError: a race's non-ordering witness failed — the BFS
            found an hb1 path between the endpoints, or the closure
            backend disagreed with the BFS.
    """
    hb = report.hb
    edges: Dict[EventId, List[EventId]] = {
        node: list(hb.graph.successors(node)) for node in hb.graph.nodes()
    }
    closure = hb.closure
    analysis = report.analysis
    provenances: List[RaceProvenance] = []
    races = report.races if include_sync else report.data_races
    for race in races:
        a, b = race.a, race.b
        a_reaches_b = _bfs_reaches(edges, a, b)
        b_reaches_a = _bfs_reaches(edges, b, a)
        verified = (
            a_reaches_b == closure.ordered(a, b)
            and b_reaches_a == closure.ordered(b, a)
        )
        witness = NonOrderingWitness(
            a=a, b=b,
            a_reaches_b=a_reaches_b,
            b_reaches_a=b_reaches_a,
            verified=verified,
        )
        if not verified:
            raise ProvenanceError(
                f"witness check failed for {race.describe(report.trace)}: "
                f"BFS says ({a_reaches_b}, {b_reaches_a}), closure says "
                f"({closure.ordered(a, b)}, {closure.ordered(b, a)})"
            )
        if not witness.holds:
            raise ProvenanceError(
                f"reported race {race.describe(report.trace)} is "
                f"hb1-ordered — the report is inconsistent"
            )
        partition = analysis.partition_of(race)
        provenances.append(
            RaceProvenance(
                race=race,
                witness=witness,
                component_index=partition.component_index,
                component_size=len(partition.events),
                partition_races=len(partition.races),
                is_first=partition.is_first,
                reported=partition.is_first and race.is_data_race,
                preceding=[
                    p.component_index
                    for p in analysis.preceding_data_partitions(partition)
                ],
                following=[
                    p.component_index
                    for p in analysis.following_data_partitions(partition)
                ],
            )
        )
    return ProvenanceReport(report=report, provenances=provenances)
