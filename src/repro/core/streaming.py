"""Online streaming race detection: no trace, bounded state.

The post-mortem pipeline materializes the whole trace, builds hb1, and
sweeps every conflicting pair.  This module detects the *same* races
online, in the style of set-based online predictive analysis (Roemer &
Bond 2019): events are consumed one at a time in any linearization of
program order and the per-location synchronization-order chains, and
the detector keeps only

* one O(P) vector clock per processor (the clock of that processor's
  latest event),
* per synchronization location, the most recent sync write (role,
  value, writer, clock snapshot) — exactly what Definition 2.1 pairing
  needs,
* per data location, the remembered reader/writer accesses that some
  processor has *not yet seen*, pruned exactly: an access ``(q, pos)``
  is dropped the moment every other processor's clock has component
  ``>= pos+1``, because from then on every future event is hb1-after it
  and no new race can involve it,

for O(P·V + races) state independent of trace length.  The reported
race set is byte-identical to ``find_races`` on the materialized trace
(differentially tested across the workload corpus): in a linearization
of po ∪ sync chains the later event of a pair can never be hb1-before
the earlier one, so the single epoch test ``clock_b[a.proc] < a.pos+1``
decides unorderedness exactly.

Computation events are segmented incrementally from the operation
stream (a sync operation closes the open computation, as in
:class:`~repro.trace.build.TraceBuilder`) and race-scanned at *close*
time, when their READ/WRITE sets are complete; their clock is the open
clock, which cannot change in between (only data operations intervene).

When the detector is handed a finished :class:`Trace` instead of a
live stream it linearizes po ∪ sync chains itself (deterministic Kahn
merge).  If those chains are cyclic (possible on weak executions,
section 3.1 — no topological consumption order exists) it falls back to
the closure-backend post-mortem sweep, so the race-set guarantee holds
on every input.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .. import obs
from ..machine.operations import MemoryOperation, OperationKind, SyncRole
from ..trace.build import Trace
from ..trace.columnar import _CODE_ROLE
from ..trace.events import EventId, SyncEvent
from .races import EventRace
from .report import REPORT_FORMAT, _race_from_record, _race_record


class _StreamEngine:
    """The O(P·V) online core: clocks, pairing state, remembered
    accesses, and the accumulated race set."""

    def __init__(self, processor_count: int) -> None:
        self.nproc = processor_count
        # clock[p] = vector clock of p's latest event (updated in place:
        # the po predecessor's clock is exactly the previous value)
        self.clock = [[0] * processor_count for _ in range(processor_count)]
        # addr -> (is_release, value, writer proc, clock snapshot)
        self.last_sync_write: Dict[int, Tuple[bool, int, int, Tuple[int, ...]]] = {}
        # addr -> [(proc, pos, is_comp)] not yet seen by every processor
        self.writers: Dict[int, List[Tuple[int, int, bool]]] = {}
        self.readers: Dict[int, List[Tuple[int, int, bool]]] = {}
        # min over r != q of clock[r][q]; entries below it are settled
        self.global_min: List[float] = [
            float("inf") if processor_count == 1 else 0
        ] * processor_count
        # canonical (a, b) eid tuples -> (locations, is_data_race)
        self.races: Dict[
            Tuple[Tuple[int, int], Tuple[int, int]], Tuple[Set[int], bool]
        ] = {}
        self.event_count = 0
        self.retained = 0
        self.retained_peak = 0
        self.pruned = 0

    # ------------------------------------------------------------------
    def _recompute_global_min(self) -> None:
        clock = self.clock
        for q in range(self.nproc):
            self.global_min[q] = min(
                (clock[r][q] for r in range(self.nproc) if r != q),
                default=float("inf"),
            )

    def _note_race(self, q: int, qpos: int, q_comp: bool,
                   p: int, pos: int, p_comp: bool, addr: int) -> None:
        a, b = (q, qpos), (p, pos)
        if b < a:
            a, b = b, a
        entry = self.races.get((a, b))
        if entry is None:
            self.races[(a, b)] = ({addr}, q_comp or p_comp)
        else:
            entry[0].add(addr)

    def _scan_list(self, index: Dict[int, List[Tuple[int, int, bool]]],
                   addr: int, proc: int, pos: int, is_comp: bool,
                   clock: List[int]) -> None:
        entries = index.get(addr)
        if not entries:
            return
        gm = self.global_min
        keep = []
        for entry in entries:
            q, qpos, q_comp = entry
            if gm[q] >= qpos + 1:
                # every other processor has seen (q, qpos): hb1-ordered
                # before all current and future events, drop it
                self.pruned += 1
                self.retained -= 1
                continue
            keep.append(entry)
            if q == proc:
                continue  # same-processor pairs are po-ordered
            if clock[q] < qpos + 1:
                self._note_race(q, qpos, q_comp, proc, pos, is_comp, addr)
        if len(keep) != len(entries):
            index[addr] = keep

    def _scan(self, proc: int, pos: int, is_comp: bool,
              reads: Iterable[int], writes: Iterable[int]) -> None:
        """Race-scan one event against remembered accesses, then
        remember it.  Writer×writer and writer×reader pairs only —
        the same candidate shape as the post-mortem sweep."""
        # both sets are walked twice (scan, then remember) — a one-shot
        # iterator (e.g. a columnar bitset decoder) must be materialized
        reads = tuple(reads)
        writes = tuple(writes)
        clock = self.clock[proc]
        for addr in writes:
            self._scan_list(self.writers, addr, proc, pos, is_comp, clock)
            self._scan_list(self.readers, addr, proc, pos, is_comp, clock)
        for addr in reads:
            self._scan_list(self.writers, addr, proc, pos, is_comp, clock)
        entry = (proc, pos, is_comp)
        for addr in writes:
            self.writers.setdefault(addr, []).append(entry)
            self.retained += 1
        for addr in reads:
            self.readers.setdefault(addr, []).append(entry)
            self.retained += 1
        if self.retained > self.retained_peak:
            self.retained_peak = self.retained

    # ------------------------------------------------------------------
    def process_sync(self, proc: int, pos: int, addr: int, is_write: bool,
                     role: SyncRole, value: int) -> None:
        clock = self.clock[proc]
        joined = False
        if not is_write and role is SyncRole.ACQUIRE:
            last = self.last_sync_write.get(addr)
            # Definition 2.1(3): pairs iff the most recent sync write to
            # the location is a release by another processor writing the
            # value this acquire returns
            if (
                last is not None
                and last[0]
                and last[1] == value
                and last[2] != proc
            ):
                snapshot = last[3]
                for i in range(self.nproc):
                    if snapshot[i] > clock[i]:
                        clock[i] = snapshot[i]
                        joined = True
        clock[proc] = pos + 1
        if joined and self.nproc > 1:
            self._recompute_global_min()
        if is_write:
            self._scan(proc, pos, False, (), (addr,))
            self.last_sync_write[addr] = (
                role is SyncRole.RELEASE, value, proc, tuple(clock),
            )
        else:
            self._scan(proc, pos, False, (addr,), ())
        self.event_count += 1

    def open_comp(self, proc: int, pos: int) -> None:
        """A computation event starts: claim its own clock component now
        so later releases on this processor carry it."""
        self.clock[proc][proc] = pos + 1

    def close_comp(self, proc: int, pos: int,
                   reads: Iterable[int], writes: Iterable[int]) -> None:
        """The computation's READ/WRITE sets are complete: scan it with
        its open-time clock (unchanged in between — only data operations
        intervene) and remember it."""
        self._scan(proc, pos, True, reads, writes)
        self.event_count += 1

    def process_comp(self, proc: int, pos: int,
                     reads: Iterable[int], writes: Iterable[int]) -> None:
        self.open_comp(proc, pos)
        self.close_comp(proc, pos, reads, writes)

    # ------------------------------------------------------------------
    def finish(self) -> List[EventRace]:
        races = [
            EventRace(
                a=EventId(*a),
                b=EventId(*b),
                locations=tuple(sorted(locations)),
                is_data_race=is_data,
            )
            for (a, b), (locations, is_data) in self.races.items()
        ]
        races.sort(key=lambda race: (race.a, race.b))
        return races


@dataclass
class StreamingReport:
    """What online detection can report: the race set plus stream
    statistics — no trace, no hb1 graph, no partitions (those need the
    whole trace, which streaming deliberately never holds)."""

    kind = "streaming"

    processor_count: int
    model_name: str
    races: List[EventRace]
    event_count: int
    operation_count: int = 0
    retained_peak: int = 0
    pruned_entries: int = 0
    used_fallback: bool = False

    @property
    def data_races(self) -> List[EventRace]:
        return [race for race in self.races if race.is_data_race]

    @property
    def sync_races(self) -> List[EventRace]:
        return [race for race in self.races if not race.is_data_race]

    @property
    def race_free(self) -> bool:
        return not self.data_races

    @property
    def reported_races(self) -> List[EventRace]:
        return self.data_races

    @property
    def certified_race_count(self) -> int:
        """Streaming keeps no partition structure, so only the paper's
        set-level guarantee applies (Theorem 4.2 read at the level of
        the whole report): when any data race is reported, at least one
        reported race occurs in some sequentially consistent execution.
        One certified race for a racy report, zero for a clean one."""
        return 1 if self.data_races else 0

    # ------------------------------------------------------------------
    def format(self) -> str:
        lines = [
            f"Streaming data race report ({self.model_name} execution, "
            f"{self.event_count} events online)",
            "=" * 70,
        ]
        if self.race_free:
            lines.append("No data races detected.")
            lines.append(
                "By Condition 3.4(1) the execution was sequentially "
                "consistent."
            )
        else:
            lines.append(
                f"{len(self.data_races)} data race(s) detected online "
                f"(>=1 occurs in a sequentially consistent execution):"
            )
            for race in self.data_races:
                lines.append(f"  {race.describe()}")
            if self.sync_races:
                lines.append(
                    f"{len(self.sync_races)} sync-sync race(s) noted "
                    f"(not data races per Definition 2.4)."
                )
        lines.append(
            f"[retained peak {self.retained_peak} access(es), "
            f"{self.pruned_entries} pruned"
            + (", post-mortem fallback]" if self.used_fallback else "]")
        )
        return "\n".join(lines)

    def to_json(self) -> Dict:
        return {
            "kind": self.kind,
            "format": REPORT_FORMAT,
            "race_free": self.race_free,
            "processor_count": self.processor_count,
            "model_name": self.model_name,
            "event_count": self.event_count,
            "operation_count": self.operation_count,
            "retained_peak": self.retained_peak,
            "pruned_entries": self.pruned_entries,
            "used_fallback": self.used_fallback,
            "races": [_race_record(race) for race in self.races],
        }

    @classmethod
    def from_json(cls, payload: Dict) -> "StreamingReport":
        if payload.get("kind") != cls.kind:
            raise ValueError(
                f"expected a {cls.kind} report payload, "
                f"got kind {payload.get('kind')!r}"
            )
        return cls(
            processor_count=payload["processor_count"],
            model_name=payload["model_name"],
            races=[_race_from_record(r) for r in payload["races"]],
            event_count=payload["event_count"],
            operation_count=payload.get("operation_count", 0),
            retained_peak=payload.get("retained_peak", 0),
            pruned_entries=payload.get("pruned_entries", 0),
            used_fallback=payload.get("used_fallback", False),
        )


class StreamingDetector:
    """Consume events online and report the exact hb1 race set."""

    # ------------------------------------------------------------------
    def analyze_operations(
        self,
        operations: Iterable[MemoryOperation],
        *,
        processor_count: int,
        model_name: str = "unknown",
    ) -> StreamingReport:
        """Consume a memory-operation stream in emission order (which
        linearizes po and the per-location sync chains by construction),
        segmenting computation events incrementally."""
        with obs.span("detect.streaming") as sp:
            engine = _StreamEngine(processor_count)
            # per-proc open computation: [pos, reads, writes]
            open_comp: List[Optional[list]] = [None] * processor_count
            next_pos = [0] * processor_count
            nops = 0
            for op in operations:
                nops += 1
                p = op.proc
                if op.is_sync:
                    current = open_comp[p]
                    if current is not None:
                        engine.close_comp(p, *current)
                        open_comp[p] = None
                    pos = next_pos[p]
                    next_pos[p] += 1
                    engine.process_sync(
                        p, pos, op.addr,
                        op.kind is OperationKind.WRITE, op.role, op.value,
                    )
                else:
                    current = open_comp[p]
                    if current is None:
                        pos = next_pos[p]
                        next_pos[p] += 1
                        current = [pos, set(), set()]
                        open_comp[p] = current
                        engine.open_comp(p, pos)
                    if op.kind is OperationKind.READ:
                        current[1].add(op.addr)
                    else:
                        current[2].add(op.addr)
            for p in range(processor_count):
                current = open_comp[p]
                if current is not None:
                    engine.close_comp(p, *current)
            races = engine.finish()
            if sp.enabled:
                sp.add("operations", nops)
                sp.add("events", engine.event_count)
                sp.add("retained_peak", engine.retained_peak)
                sp.add("pruned_entries", engine.pruned)
                sp.add("races", len(races))
        return StreamingReport(
            processor_count=processor_count,
            model_name=model_name,
            races=races,
            event_count=engine.event_count,
            operation_count=nops,
            retained_peak=engine.retained_peak,
            pruned_entries=engine.pruned,
        )

    def analyze_execution(self, result) -> StreamingReport:
        return self.analyze_operations(
            result.operations,
            processor_count=result.processor_count,
            model_name=result.model_name,
        )

    # ------------------------------------------------------------------
    def analyze(self, trace: Trace) -> StreamingReport:
        """Stream a finished trace: linearize po ∪ sync chains with a
        deterministic Kahn merge and feed the engine.  On a cyclic
        chain structure (weak sync ordering, section 3.1) fall back to
        the post-mortem closure sweep — same race set either way."""
        with obs.span("detect.streaming") as sp:
            engine = _StreamEngine(trace.processor_count)
            columns = getattr(trace, "columns", None)
            counts = [len(proc_events) for proc_events in trace.events]
            next_pos = [0] * trace.processor_count
            order_ptr: Dict[int, int] = {}
            # front[(proc, pos)] for each location's next unconsumed
            # sync event — an event is ready when it is next in po and,
            # if sync, next in its location's chain
            fronts: Dict[Tuple[int, int], int] = {}
            for addr, order in trace.sync_order.items():
                order_ptr[addr] = 0
                if order:
                    fronts[(order[0].proc, order[0].pos)] = addr

            def sync_addr_of(proc: int, pos: int) -> Optional[int]:
                """The event's sync location, or None for computation."""
                if columns is not None:
                    row = columns.row_of(proc, pos)
                    if columns.is_comp(row):
                        return None
                    return int(columns.addr[row])
                event = trace.events[proc][pos]
                return event.addr if isinstance(event, SyncEvent) else None

            remaining = sum(counts)
            stalled = False
            while remaining:
                progressed = False
                for p in range(trace.processor_count):
                    pos = next_pos[p]
                    if pos >= counts[p]:
                        continue
                    addr = sync_addr_of(p, pos)
                    if addr is not None:
                        if fronts.get((p, pos)) != addr:
                            continue  # not yet at the front of its chain
                        if columns is not None:
                            row = columns.row_of(p, pos)
                            engine.process_sync(
                                p, pos, addr, bool(columns.kind[row]),
                                _CODE_ROLE[int(columns.role[row])],
                                int(columns.value[row]),
                            )
                        else:
                            event = trace.events[p][pos]
                            engine.process_sync(
                                p, pos, addr,
                                event.op_kind is OperationKind.WRITE,
                                event.role, event.value,
                            )
                        del fronts[(p, pos)]
                        order = trace.sync_order[addr]
                        order_ptr[addr] += 1
                        if order_ptr[addr] < len(order):
                            nxt = order[order_ptr[addr]]
                            fronts[(nxt.proc, nxt.pos)] = addr
                    else:
                        if columns is not None:
                            row = columns.row_of(p, pos)
                            engine.process_comp(
                                p, pos,
                                columns.event_reads(row),
                                columns.event_writes(row),
                            )
                        else:
                            event = trace.events[p][pos]
                            engine.process_comp(
                                p, pos, event.reads, event.writes
                            )
                    next_pos[p] += 1
                    remaining -= 1
                    progressed = True
                    break
                if not progressed:
                    stalled = True
                    break

            if stalled:
                # po ∪ sync chains are cyclic: no consumption order
                # exists, so compute the same race set post-mortem
                from .hb1 import HappensBefore1
                from .races import find_races

                races = find_races(trace, HappensBefore1(trace))
            else:
                races = engine.finish()
            if sp.enabled:
                sp.add("events", trace.event_count)
                sp.add("retained_peak", engine.retained_peak)
                sp.add("pruned_entries", engine.pruned)
                sp.add("races", len(races))
                sp.add("fallback", 1 if stalled else 0)
        return StreamingReport(
            processor_count=trace.processor_count,
            model_name=trace.model_name,
            races=races,
            event_count=trace.event_count,
            retained_peak=engine.retained_peak,
            pruned_entries=engine.pruned,
            used_fallback=stalled,
        )
