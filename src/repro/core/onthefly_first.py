"""On-the-fly *first-race* location — the paper's stated future work.

Section 5 closes: "Future work includes investigating how our method
might be employed on-the-fly to locate the first data races."  This
module is that prototype.  It extends the streaming detector with an
online approximation of the affects relation (Definition 3.3):

* when a race is detected, each endpoint seeds *contamination* for its
  processor from the endpoint's clock tick onward;
* contamination propagates exactly like happens-before: an operation is
  contaminated iff its processor's vector clock has absorbed any seed
  (so release/acquire pairing carries contamination across processors,
  mirroring the hb1 clauses of Definition 3.3);
* a detected race is reported as *first* iff neither endpoint was
  already contaminated — i.e. it is not (known to be) affected by any
  earlier race.

The approximation is one-sided by construction of the streaming order:
races are observed at their second endpoint, so a seed is always
planted no later than any operation it could affect; what can be missed
is chaining through races whose own endpoints were evicted from the
bounded history.  The benchmark ``bench_onthefly_first`` compares the
prototype's first set against the post-mortem first partitions.
"""

from __future__ import annotations

import warnings
from typing import Dict, List, Optional

from ..machine.operations import MemoryOperation
from .onthefly import OnTheFlyDetector, OnTheFlyRace, _Access
from .vector_clock import VectorClock


class FirstRaceOnTheFlyDetector(OnTheFlyDetector):
    """Streaming detector that classifies races as first / non-first."""

    def __init__(
        self,
        processor_count: int,
        reader_history: int = 4,
        writer_history: int = 1,
    ) -> None:
        super().__init__(processor_count, reader_history, writer_history)
        # earliest contaminated tick per processor (None = clean)
        self._thresholds: List[Optional[int]] = [None] * processor_count
        self.first_races: List[OnTheFlyRace] = []
        self.non_first_races: List[OnTheFlyRace] = []

    # ------------------------------------------------------------------
    def _contaminated(self, clock: VectorClock) -> bool:
        """Has *clock* absorbed any contamination seed?"""
        for proc, threshold in enumerate(self._thresholds):
            if threshold is not None and clock[proc] >= threshold:
                return True
        return False

    def _seed(self, proc: int, tick: int) -> None:
        current = self._thresholds[proc]
        if current is None or tick < current:
            self._thresholds[proc] = tick

    # ------------------------------------------------------------------
    def _on_race(self, race: OnTheFlyRace, access: _Access,
                 op: MemoryOperation) -> None:
        current_clock = self.clocks[op.proc]
        affected = (
            self._contaminated(access.clock)
            or self._contaminated(current_clock)
        )
        if affected:
            self.non_first_races.append(race)
        else:
            self.first_races.append(race)
        # Both endpoints now contaminate everything that happens after
        # them (Definition 3.3 clauses (2) and (3) via transitivity of
        # the clock propagation).
        self._seed(access.proc, access.tick)
        self._seed(op.proc, current_clock[op.proc])


def locate_first_races_on_the_fly(
    operations: List[MemoryOperation],
    processor_count: int,
    reader_history: int = 4,
    writer_history: int = 1,
) -> Dict[str, List[OnTheFlyRace]]:
    """One streaming pass; returns ``{"first": [...], "non_first": [...]}``.

    .. deprecated::
        Use ``repro.detect(result, detector="onthefly")``, which
        returns an :class:`~repro.core.onthefly.OnTheFlyReport` in the
        shared report protocol.
    """
    warnings.warn(
        "locate_first_races_on_the_fly is deprecated; use "
        "repro.detect(result, detector='onthefly')",
        DeprecationWarning,
        stacklevel=2,
    )
    detector = FirstRaceOnTheFlyDetector(
        processor_count, reader_history, writer_history
    )
    detector.process_all(operations)
    return {
        "first": detector.first_races,
        "non_first": detector.non_first_races,
    }
