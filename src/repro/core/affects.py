"""The affects relation (Definition 3.3), computed on G'.

A race <x,y> affects an operation/event z iff z is x or y, or x (or y)
happens-before z, or the effect chains through another race.  The paper
proves that adding a doubly directed edge per race to the hb1 graph
makes this exactly reachability: a path exists in G' from A (or B) to C
iff <A,B> affects C.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Set

from ..graph import DiGraph, TransitiveClosure, reachable_from_any
from ..trace.events import EventId
from .races import EventRace


def affected_events(gprime: DiGraph, race: EventRace) -> Set[EventId]:
    """Every event affected by *race*: its own endpoints plus all
    G'-reachable events."""
    return reachable_from_any(gprime, [race.a, race.b])


def race_affects_event(gprime: DiGraph, race: EventRace, event: EventId) -> bool:
    """<race.a, race.b> A event (Definition 3.3)."""
    return event in affected_events(gprime, race)


def race_affects_race(
    gprime: DiGraph, race: EventRace, other: EventRace
) -> bool:
    """<x,y> A <x',y'> iff the first race affects x' or y'."""
    affected = affected_events(gprime, race)
    return other.a in affected or other.b in affected


class AffectsIndex:
    """Batch affects queries over one G' via a shared transitive closure.

    ``unaffected_races`` identifies the races affected by no *other*
    race — intuitively the execution's first data races, the set
    Condition 3.4(2) guarantees to lie in a sequentially consistent
    prefix.
    """

    def __init__(self, gprime: DiGraph, races: Iterable[EventRace]) -> None:
        self.gprime = gprime
        self.races = list(races)
        self._closure = TransitiveClosure(gprime)

    def affects(self, race: EventRace, other: EventRace) -> bool:
        """True iff *race* affects *other* (self-affection excluded by
        identity: a race trivially affects itself via clause (1), so
        callers asking about "other" races should pass distinct ones)."""
        for src in (race.a, race.b):
            for dst in (other.a, other.b):
                if src == dst or self._closure.ordered(src, dst):
                    return True
        return False

    def affects_event(self, race: EventRace, event: EventId) -> bool:
        return (
            event == race.a
            or event == race.b
            or self._closure.ordered(race.a, event)
            or self._closure.ordered(race.b, event)
        )

    def unaffected_races(self) -> list:
        """Races not affected by any *other* race.

        Two races in the same G' cycle mutually affect each other and so
        are never "unaffected"; the partition machinery (section 4.2)
        exists precisely to handle that, reporting whole first
        partitions instead.
        """
        out = []
        for race in self.races:
            if not any(
                other is not race and self.affects(other, race)
                for other in self.races
            ):
                out.append(race)
        return out

    def affected_event_map(self) -> Dict[FrozenSet[EventId], Set[EventId]]:
        """race endpoints -> all affected events, for every race."""
        return {
            frozenset((race.a, race.b)): affected_events(self.gprime, race)
            for race in self.races
        }
