"""Vector clocks.

The on-the-fly baseline (section 5 of the paper discusses on-the-fly
detection as the alternative to post-mortem analysis) tracks the
happens-before-1 relation incrementally with one vector clock per
processor, joined at paired release/acquire synchronization.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple


class VectorClock:
    """A fixed-width vector clock over processor ids."""

    __slots__ = ("_ticks",)

    def __init__(self, width: int, ticks: Tuple[int, ...] = ()) -> None:
        if ticks:
            if len(ticks) != width:
                raise ValueError("ticks length must equal width")
            self._ticks: List[int] = list(ticks)
        else:
            self._ticks = [0] * width

    # ------------------------------------------------------------------
    @property
    def width(self) -> int:
        return len(self._ticks)

    def __getitem__(self, proc: int) -> int:
        return self._ticks[proc]

    def tick(self, proc: int) -> None:
        """Advance *proc*'s component (a local step)."""
        self._ticks[proc] += 1

    def join(self, other: "VectorClock") -> None:
        """Pointwise maximum, in place (acquire side of a sync pair)."""
        if other.width != self.width:
            raise ValueError("clock widths differ")
        for i in range(self.width):
            if other._ticks[i] > self._ticks[i]:
                self._ticks[i] = other._ticks[i]

    def copy(self) -> "VectorClock":
        return VectorClock(self.width, tuple(self._ticks))

    # ------------------------------------------------------------------
    def happens_before(self, other: "VectorClock") -> bool:
        """self <= other pointwise and self != other."""
        le = all(a <= b for a, b in zip(self._ticks, other._ticks))
        return le and self._ticks != other._ticks

    def concurrent_with(self, other: "VectorClock") -> bool:
        return not self.happens_before(other) and not other.happens_before(self)

    def dominates_entry(self, proc: int, tick: int) -> bool:
        """True iff this clock has seen *proc*'s step *tick* — the O(1)
        epoch comparison used by the access-history checks."""
        return self._ticks[proc] >= tick

    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if isinstance(other, VectorClock):
            return self._ticks == other._ticks
        return NotImplemented

    def __hash__(self) -> int:
        return hash(tuple(self._ticks))

    def __iter__(self) -> Iterator[int]:
        return iter(self._ticks)

    def __repr__(self) -> str:
        return f"VC{tuple(self._ticks)}"
