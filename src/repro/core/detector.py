"""The post-mortem detector: the paper's end-to-end pipeline.

Given a trace (from a file or straight from a simulated execution):

1. build the happens-before-1 graph from per-processor event order and
   per-location sync order (section 4.1),
2. find every conflicting, hb1-unordered event pair (the races),
3. build the augmented graph G', partition races by SCC, order
   partitions by reachability, and mark the first partitions
   (section 4.2),
4. report only the first partitions containing data races.

On hardware obeying Condition 3.4 the report is meaningful even when
the execution was not sequentially consistent: an empty report proves
the execution *was* sequentially consistent, and each reported
partition contains at least one race that would also occur on a
sequentially consistent execution.
"""

from __future__ import annotations

import warnings

from .. import obs
from ..machine.simulator import ExecutionResult
from ..trace.build import Trace, build_trace
from .hb1 import HappensBefore1
from .hb1_vc import CyclicHB1Error, VectorClockHB1
from .partitions import partition_races
from .races import find_races
from .report import RaceReport


class PostMortemDetector:
    """Stateless analysis pipeline; one ``analyze`` call per trace."""

    def analyze(self, trace: Trace) -> RaceReport:
        """Run the full pipeline on a post-mortem trace.

        Ordering queries go through the vector-clock backend (batched
        clock-matrix race sweep, no transitive closure built at all) and
        fall back to the closure backend only on cyclic hb1 relations —
        possible on arbitrary weak machines (§3.1), never produced by
        our simulator.
        """
        with obs.span("detect.postmortem"):
            hb = HappensBefore1(trace)
            try:
                ordering = VectorClockHB1(trace, base=hb)
            except CyclicHB1Error:
                ordering = hb
                # Build the closure now, not lazily inside the race
                # sweep, so profiles attribute hb1.closure to its own
                # stage instead of nesting it under races.find.
                hb.closure
            races = find_races(trace, ordering)
            analysis = partition_races(trace, hb, races)
        return RaceReport(trace=trace, hb=hb, races=races, analysis=analysis)

    def analyze_execution(self, result: ExecutionResult) -> RaceReport:
        """Instrument a simulated execution and analyze it."""
        return self.analyze(build_trace(result))


def detect(trace_or_result) -> RaceReport:
    """Deprecated convenience path; use :func:`repro.detect`.

    Kept (with its original Trace-or-ExecutionResult contract, so a
    path still raises ``TypeError``) for callers that imported it from
    ``repro.core.detector``; ``repro.detect`` accepts trace-file paths
    and selects among detector variants.
    """
    warnings.warn(
        "repro.core.detector.detect is deprecated; use repro.detect",
        DeprecationWarning,
        stacklevel=2,
    )
    if not isinstance(trace_or_result, (Trace, ExecutionResult)):
        raise TypeError(
            f"expected Trace or ExecutionResult, "
            f"got {type(trace_or_result).__name__}"
        )
    from ..api import detect as unified_detect

    return unified_detect(trace_or_result)
