"""The paper's contribution: happens-before-1 construction, race
detection, the affects relation, augmented-graph race partitioning with
first-partition reporting, SCP machinery with the Condition 3.4
checker, and the on-the-fly baseline."""

from .affects import (
    AffectsIndex,
    affected_events,
    race_affects_event,
    race_affects_race,
)
from .augmented import build_augmented_graph, race_edge_list
from .detector import PostMortemDetector, detect
from .explain import RaceExplanation, explain_race, explain_report
from .hb1 import HappensBefore1
from .hb1_vc import CyclicHB1Error, VectorClockHB1
from .onthefly import (
    OnTheFlyDetector,
    OnTheFlyRace,
    OnTheFlyReport,
    detect_on_the_fly,
)
from .onthefly_first import (
    FirstRaceOnTheFlyDetector,
    locate_first_races_on_the_fly,
)
from .ophb import OpHappensBefore, OpRace, build_op_augmented, find_op_races
from .partitions import PartitionAnalysis, RacePartition, partition_races
from .provenance import (
    NonOrderingWitness,
    ProvenanceError,
    ProvenanceReport,
    RaceProvenance,
    explain_races,
)
from .races import EventRace, data_races, find_races
from .report import RaceReport
from .robustness import (
    OrderEdge,
    RobustnessReport,
    build_order_graph,
    check_robustness,
)
from .scp import (
    Condition34Report,
    SCPrefix,
    check_condition_34,
    close_scp,
    extract_scp,
)
from .timeline import render_timeline
from .vector_clock import VectorClock

__all__ = [
    "AffectsIndex",
    "affected_events",
    "race_affects_event",
    "race_affects_race",
    "build_augmented_graph",
    "race_edge_list",
    "PostMortemDetector",
    "detect",
    "RaceExplanation",
    "explain_race",
    "explain_report",
    "NonOrderingWitness",
    "ProvenanceError",
    "ProvenanceReport",
    "RaceProvenance",
    "explain_races",
    "HappensBefore1",
    "CyclicHB1Error",
    "VectorClockHB1",
    "OnTheFlyDetector",
    "OnTheFlyRace",
    "OnTheFlyReport",
    "detect_on_the_fly",
    "FirstRaceOnTheFlyDetector",
    "locate_first_races_on_the_fly",
    "OpHappensBefore",
    "OpRace",
    "build_op_augmented",
    "find_op_races",
    "PartitionAnalysis",
    "RacePartition",
    "partition_races",
    "EventRace",
    "data_races",
    "find_races",
    "RaceReport",
    "OrderEdge",
    "RobustnessReport",
    "build_order_graph",
    "check_robustness",
    "Condition34Report",
    "SCPrefix",
    "check_condition_34",
    "close_scp",
    "extract_scp",
    "render_timeline",
    "VectorClock",
]
