"""ASCII execution timelines, in the layout of the paper's figures.

The paper draws executions as one column per processor with operations
in program order and annotations between them (Figures 1, 2b, 3).  This
module renders a simulated execution or a trace the same way in plain
text — column per processor, global time flowing downward, with
optional markers for stale reads, the SCP boundary, and so1 pairings:

    P0                     P1                     P2
    write(Q,100)           .                      write(region[0],0)
    write(QEmpty,0)        .                      .
    .                      read(QEmpty,0)         .
    .                      read(Q,37) *stale*     .
    ...

Useful in examples, bug reports, and interactive debugging; rendered by
``weakraces timeline``.
"""

from __future__ import annotations

from typing import Optional

from ..machine.simulator import ExecutionResult
from .ophb import OpHappensBefore
from .scp import SCPrefix, extract_scp


def render_timeline(
    result: ExecutionResult,
    width: int = 26,
    max_rows: Optional[int] = 60,
    mark_scp: bool = True,
    mark_pairs: bool = True,
) -> str:
    """Render *result* as per-processor columns in global issue order.

    Args:
        result: the execution to draw.
        width: column width per processor.
        max_rows: truncate long executions (None = everything).
        mark_scp: draw ``==== end of SCP ====`` across a processor's
            column at its SCP cut (section 3.2).
        mark_pairs: annotate acquire reads with the id of the release
            they paired with (so1, Definition 2.2).
    """
    nproc = result.processor_count
    scp: Optional[SCPrefix] = None
    if mark_scp:
        scp = extract_scp(result)
    pair_of = {}
    if mark_pairs:
        hb = OpHappensBefore(result.operations)
        for release_seq, acquire_seq in hb.so1_edges:
            pair_of[acquire_seq] = release_seq

    def cell(text: str) -> str:
        return text[:width - 1].ljust(width)

    header = "".join(cell(f"P{p}") for p in range(nproc))
    lines = [header, "".join(cell("-" * (width - 2)) for _ in range(nproc))]

    cut_drawn = [False] * nproc
    rows = 0
    truncated = 0
    for op in result.operations:
        if max_rows is not None and rows >= max_rows:
            truncated += 1
            continue
        if (
            scp is not None
            and not cut_drawn[op.proc]
            and scp.cuts[op.proc] is not None
            and op.local_index == scp.cuts[op.proc]
        ):
            cut_drawn[op.proc] = True
            marker = ["." for _ in range(nproc)]
            marker[op.proc] = "=== end of SCP ==="
            lines.append("".join(cell(m) for m in marker))
            rows += 1
        text = op.describe(result.addr_name(op.addr))
        # strip the leading "Pn " (the column already says it)
        text = text.split(" ", 1)[1]
        if op.stale:
            text += " *stale*"
        if op.seq in pair_of:
            text += f" <-rel@{pair_of[op.seq]}"
        row = ["." for _ in range(nproc)]
        row[op.proc] = text
        lines.append("".join(cell(r) for r in row))
        rows += 1

    if truncated:
        lines.append(f"... ({truncated} more operations)")
    return "\n".join(line.rstrip() for line in lines)
