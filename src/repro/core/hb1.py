"""The happens-before-1 relation over events (Definitions 2.1–2.3).

hb1 is the irreflexive transitive closure of program order (po) and
synchronization-order-1 (so1).  po is immediate from each processor's
event sequence.  so1 must be *reconstructed* from the trace: the trace
records only the relative order of synchronization events per location
(section 4.1), so a release write is paired with a subsequent acquire
read of the same location when the acquire is the next sync read and
returns the release's value (Definition 2.1(3): "s2 returns the value
written by s1").

On a weak execution the synchronization operations themselves need not
be sequentially consistent, so hb1 may contain cycles (section 3.1);
everything downstream (race detection, partitioning) tolerates that.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .. import obs
from ..graph import DiGraph, TransitiveClosure, is_acyclic
from ..machine.operations import SyncRole
from ..trace.build import Trace
from ..trace.columnar import _ROLE_CODE as _COLUMN_ROLE_CODE
from ..trace.events import EventId, SyncEvent

_COL_ACQUIRE = _COLUMN_ROLE_CODE[SyncRole.ACQUIRE]
_COL_RELEASE = _COLUMN_ROLE_CODE[SyncRole.RELEASE]


class HappensBefore1:
    """The hb1 graph of a trace, with cached reachability.

    Nodes are :class:`EventId`; edges are po (consecutive events of one
    processor) and so1 (paired release -> acquire).  ``ordered(a, b)``
    answers "a hb1 b" via a bitset transitive closure.
    """

    def __init__(self, trace: Trace) -> None:
        self.trace = trace
        self.graph = DiGraph()
        self.po_edges: List[Tuple[EventId, EventId]] = []
        self.so1_edges: List[Tuple[EventId, EventId]] = []
        self._closure: Optional[TransitiveClosure] = None
        with obs.span("hb1.build") as sp:
            self._build()
            if sp.enabled:
                sp.add("events", self.trace.event_count)
                sp.add("po_edges", len(self.po_edges))
                sp.add("so1_edges", len(self.so1_edges))

    # ------------------------------------------------------------------
    def _build(self) -> None:
        # po needs only processor/position, never the event payloads:
        # build it positionally so a columnar trace stays unmaterialized.
        for proc, proc_events in enumerate(self.trace.events):
            previous: Optional[EventId] = None
            for pos in range(len(proc_events)):
                eid = EventId(proc, pos)
                self.graph.add_node(eid)
                if previous is not None:
                    self.graph.add_edge(previous, eid)
                    self.po_edges.append((previous, eid))
                previous = eid
        # so1 pairing reads sync payloads.  On a columnar trace the base
        # pairing rule runs straight off the role/kind/value columns —
        # but only when ``_pair_location`` is not overridden, so
        # subclasses that change the rule (SHB's rf edges) keep their
        # object-path semantics.
        columns = getattr(self.trace, "columns", None)
        if (
            columns is not None
            and type(self)._pair_location is HappensBefore1._pair_location
        ):
            for order in self.trace.sync_order.values():
                self._pair_location_columnar(order, columns)
        else:
            for addr, order in self.trace.sync_order.items():
                self._pair_location(addr, order)

    def _pair_location(self, addr: int, order: List[EventId]) -> None:
        last_sync_write: Optional[SyncEvent] = None
        for eid in order:
            event = self.trace.event(eid)
            assert isinstance(event, SyncEvent)
            if event.writes_addr:
                last_sync_write = event
                continue
            # A sync read: pairs iff it is an acquire, the most recent
            # sync write to the location is a release, and the values
            # match (Definition 2.1).
            if (
                event.role is SyncRole.ACQUIRE
                and last_sync_write is not None
                and last_sync_write.role is SyncRole.RELEASE
                and last_sync_write.value == event.value
                and last_sync_write.eid.proc != event.eid.proc
            ):
                self.graph.add_edge(last_sync_write.eid, event.eid)
                self.so1_edges.append((last_sync_write.eid, event.eid))

    def _pair_location_columnar(self, order: List[EventId], columns) -> None:
        """Definition 2.1 pairing straight off the columns — identical
        decisions to :meth:`_pair_location`, zero event objects."""
        kind, role, value = columns.kind, columns.role, columns.value
        last_write: Optional[EventId] = None
        last_write_row = -1
        for eid in order:
            row = columns.row_of(eid.proc, eid.pos)
            if kind[row]:  # sync write
                last_write = eid
                last_write_row = row
                continue
            if (
                role[row] == _COL_ACQUIRE
                and last_write is not None
                and role[last_write_row] == _COL_RELEASE
                and value[last_write_row] == value[row]
                and last_write.proc != eid.proc
            ):
                self.graph.add_edge(last_write, eid)
                self.so1_edges.append((last_write, eid))

    # ------------------------------------------------------------------
    @property
    def closure(self) -> TransitiveClosure:
        if self._closure is None:
            with obs.span("hb1.closure"):
                self._closure = TransitiveClosure(self.graph)
        return self._closure

    def ordered(self, a: EventId, b: EventId) -> bool:
        """True iff ``a hb1 b``."""
        return self.closure.ordered(a, b)

    def unordered(self, a: EventId, b: EventId) -> bool:
        """True iff neither ``a hb1 b`` nor ``b hb1 a`` — the condition
        under which conflicting events race (Definition 2.4)."""
        return not self.closure.comparable(a, b)

    def is_partial_order(self) -> bool:
        """True when hb1 is acyclic — guaranteed for SC executions,
        possibly false for weak ones (section 3.1)."""
        return is_acyclic(self.graph)
