"""Dynamic robustness verification: does an observed execution have a
sequentially consistent justification?

The paper's detection guarantees rest on Condition 3.4, which the
SC/WO/RCsc/DRF0/DRF1 models satisfy *by construction*.  The
store-buffer models (TSO/PSO) can genuinely leave sequential
consistency, so this module checks the property per trace, following
the dynamic-robustness line of work (Margalit et al. 2025): an
execution is **robust** when some total order of its operations is
consistent with

* **po** — program order (per-processor issue order),
* **rf** — reads-from (each read after the write it observed),
* **co** — coherence order (per-location write order; in this
  simulator writes commit at issue, so co is the issue-seq order of
  each location's writes — ground truth, not a guess), and
* **fr** — from-reads (a read before the co-successors of the write it
  observed; a read of the initial value before every write to its
  location),

i.e. when the execution graph ``po ∪ rf ∪ co ∪ fr`` is acyclic
(Shasha & Snir).  Acyclic ⇒ any topological order is an SC witness
that replays every read against the same write.  Cyclic ⇒ the cycle
itself is the minimal certificate that no SC justification exists for
the observed (po, rf, co).

The verdict is packaged as a :class:`RobustnessReport` carrying the
witness order or the violating cycle plus the SC-prefix boundary
(:mod:`repro.core.scp`), and serializes through the shared
``to_json``/``from_json`` report protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..graph import (
    CycleError,
    DiGraph,
    shortest_path,
    strongly_connected_components,
    topological_sort,
)
from ..machine.operations import MemoryOperation
from ..machine.simulator import ExecutionResult
from .scp import SCPrefix, close_scp

ROBUSTNESS_FORMAT = 1

#: Edge kinds in precedence order: when one seq pair carries several
#: relations (e.g. rf between po-adjacent operations) the strongest
#: structural label wins.
EDGE_KINDS = ("po", "rf", "co", "fr")


@dataclass(frozen=True)
class OrderEdge:
    """One labelled edge of the execution graph (by operation seq)."""

    src: int
    dst: int
    kind: str  # "po" | "rf" | "co" | "fr"


@dataclass
class RobustnessReport:
    """The robustness verdict for one execution.

    ``witness`` is a total order of operation seqs (an SC justification)
    when robust; ``cycle`` is the minimal violating cycle — labelled
    edges, closed (last edge returns to the first node) — when not.
    ``scp_cuts``/``scp_size`` locate the SC-prefix boundary: the point
    up to which the execution is, per processor, still a prefix of some
    SC execution (exact taint ground truth for simulator executions, a
    first-stale-read under-approximation for bare operation streams).
    """

    kind = "robustness"

    robust: bool
    model_name: str
    operation_count: int
    stale_reads: int
    witness: List[int] = field(default_factory=list)
    cycle: List[OrderEdge] = field(default_factory=list)
    scp_cuts: List[Optional[int]] = field(default_factory=list)
    scp_size: int = 0
    scp_whole: bool = True
    #: op seq -> human description, for cycle rendering (not serialized
    #: beyond the cycle's own endpoints).
    descriptions: Dict[int, str] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def verdict(self) -> str:
        return "robust" if self.robust else "non-robust"

    def summary(self) -> str:
        if self.robust:
            return (
                f"robust: SC witness over {self.operation_count} "
                f"operation(s) ({self.model_name} execution)"
            )
        return (
            f"non-robust: {len(self.cycle)}-edge violating cycle "
            f"({'+'.join(sorted({e.kind for e in self.cycle}))}); "
            f"SC prefix covers {self.scp_size}/{self.operation_count} "
            f"operation(s)"
        )

    def format(self) -> str:
        lines = [
            f"Robustness verdict ({self.model_name} execution, "
            f"{self.operation_count} operations)",
            "=" * 70,
        ]
        if self.robust:
            lines.append(
                "ROBUST: the execution has a sequentially consistent "
                "justification."
            )
            lines.append(
                f"  witness: issue order of {len(self.witness)} "
                f"operation(s) consistent with po+rf+co+fr"
            )
            return "\n".join(lines)
        lines.append(
            "NON-ROBUST: no total order explains the observed "
            "reads-from under program and coherence order."
        )
        lines.append(f"  violating cycle ({len(self.cycle)} edges):")
        for edge in self.cycle:
            src = self.descriptions.get(edge.src, f"op {edge.src}")
            dst = self.descriptions.get(edge.dst, f"op {edge.dst}")
            lines.append(f"    {src} --{edge.kind}--> {dst}")
        lines.append(
            f"  SC prefix: {self.scp_size}/{self.operation_count} "
            f"operation(s), cuts={self.scp_cuts}"
        )
        if self.stale_reads:
            lines.append(f"  stale reads in execution: {self.stale_reads}")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    def to_json(self) -> Dict:
        return {
            "kind": self.kind,
            "format": ROBUSTNESS_FORMAT,
            "robust": self.robust,
            "model": self.model_name,
            "operations": self.operation_count,
            "stale_reads": self.stale_reads,
            "witness": list(self.witness),
            "cycle": [
                {
                    "from": e.src,
                    "to": e.dst,
                    "kind": e.kind,
                    "from_desc": self.descriptions.get(e.src, ""),
                    "to_desc": self.descriptions.get(e.dst, ""),
                }
                for e in self.cycle
            ],
            "scp": {
                "cuts": list(self.scp_cuts),
                "size": self.scp_size,
                "whole_execution": self.scp_whole,
            },
        }

    @classmethod
    def from_json(cls, payload: Dict) -> "RobustnessReport":
        if payload.get("kind") != cls.kind:
            raise ValueError(
                f"expected a {cls.kind} report payload, "
                f"got kind {payload.get('kind')!r}"
            )
        descriptions: Dict[int, str] = {}
        cycle = []
        for record in payload.get("cycle", []):
            cycle.append(
                OrderEdge(record["from"], record["to"], record["kind"])
            )
            if record.get("from_desc"):
                descriptions[record["from"]] = record["from_desc"]
            if record.get("to_desc"):
                descriptions[record["to"]] = record["to_desc"]
        scp = payload.get("scp", {})
        return cls(
            robust=payload["robust"],
            model_name=payload.get("model", ""),
            operation_count=payload.get("operations", 0),
            stale_reads=payload.get("stale_reads", 0),
            witness=list(payload.get("witness", [])),
            cycle=cycle,
            scp_cuts=list(scp.get("cuts", [])),
            scp_size=scp.get("size", 0),
            scp_whole=scp.get("whole_execution", True),
            descriptions=descriptions,
        )


# ----------------------------------------------------------------------
# execution-graph construction
# ----------------------------------------------------------------------

def build_order_graph(
    operations: List[MemoryOperation],
) -> Tuple[DiGraph, Dict[Tuple[int, int], str]]:
    """The execution graph po ∪ rf ∪ co ∪ fr over operation seqs,
    plus a kind label per edge (first kind in :data:`EDGE_KINDS`
    precedence wins when relations coincide)."""
    graph = DiGraph()
    labels: Dict[Tuple[int, int], str] = {}

    def add(src: int, dst: int, kind: str) -> None:
        if src == dst:
            return
        graph.add_edge(src, dst)
        labels.setdefault((src, dst), kind)

    last_of_proc: Dict[int, int] = {}
    writes_by_addr: Dict[int, List[int]] = {}
    for op in operations:
        graph.add_node(op.seq)
        previous = last_of_proc.get(op.proc)
        if previous is not None:
            add(previous, op.seq, "po")
        last_of_proc[op.proc] = op.seq
        if op.is_write:
            writes_by_addr.setdefault(op.addr, []).append(op.seq)

    by_seq = {op.seq: op for op in operations}
    for op in operations:
        if not op.is_read:
            continue
        writes = writes_by_addr.get(op.addr, [])
        if op.observed_write is not None and op.observed_write in by_seq:
            add(op.observed_write, op.seq, "rf")
            # fr: the read precedes the observed write's co-successor.
            # co is issue order, so that is the first same-location
            # write with a larger seq.
            for w in writes:
                if w > op.observed_write:
                    add(op.seq, w, "fr")
                    break
        elif writes:
            # read of the initial value: before every write, i.e.
            # before the co-minimal one.
            add(op.seq, writes[0], "fr")

    for writes in writes_by_addr.values():
        for a, b in zip(writes, writes[1:]):
            add(a, b, "co")

    return graph, labels


def _minimal_cycle(
    graph: DiGraph, labels: Dict[Tuple[int, int], str]
) -> List[OrderEdge]:
    """A shortest violating cycle: BFS for the shortest closed path
    through each node of the smallest non-trivial SCC."""
    sccs = [c for c in strongly_connected_components(graph) if len(c) > 1]
    assert sccs, "cyclic graph must have a non-trivial SCC"
    component = min(sccs, key=len)
    sub = graph.subgraph(component)
    best: Optional[List[int]] = None
    for node in sorted(component):
        path = shortest_path(sub, node, node)
        if path is not None and (best is None or len(path) < len(best)):
            best = path
            if len(best) == 3:  # a 2-edge cycle cannot be beaten here
                break
    assert best is not None
    return [
        OrderEdge(src, dst, labels.get((src, dst), "?"))
        for src, dst in zip(best, best[1:])
    ]


def _stale_seeded_cuts(operations: List[MemoryOperation]) -> List[Optional[int]]:
    """Raw SC-prefix cuts for a bare operation stream: cut each
    processor at its first stale read (a sound under-approximation of
    the simulator's taint-derived cuts, which only cut at the first
    operation whose *identity* depends on a stale value)."""
    procs = max((op.proc for op in operations), default=-1) + 1
    cuts: List[Optional[int]] = [None] * procs
    for op in operations:
        if op.stale and op.is_read:
            cut = cuts[op.proc]
            if cut is None or op.local_index < cut:
                cuts[op.proc] = op.local_index
    return cuts


def check_robustness(source) -> RobustnessReport:
    """Verify robustness of an execution: *source* is an
    :class:`~repro.machine.simulator.ExecutionResult` or an iterable of
    :class:`~repro.machine.operations.MemoryOperation` in issue order
    (anything richer — trace files, paths — goes through
    :func:`repro.api.check_robustness`, which resolves and delegates
    here).

    Searches for an SC justification of the observed (po, rf, co) and
    returns a :class:`RobustnessReport` with the witness order or the
    minimal violating cycle, plus the SC-prefix boundary.
    """
    if isinstance(source, ExecutionResult):
        result: Optional[ExecutionResult] = source
        operations = source.operations
        model_name = source.model_name
        raw_cuts: List[Optional[int]] = list(source.raw_scp_cuts)
        describe = source.describe_op
    else:
        result = None
        operations = list(source)
        if not all(isinstance(op, MemoryOperation) for op in operations):
            raise TypeError(
                "check_robustness needs an ExecutionResult or an "
                "iterable of MemoryOperation objects"
            )
        model_name = ""
        raw_cuts = _stale_seeded_cuts(operations)
        describe = lambda op: op.describe()  # noqa: E731

    graph, labels = build_order_graph(operations)
    scp: SCPrefix = close_scp(operations, raw_cuts)
    stale = sum(1 for op in operations if op.stale)
    by_seq = {op.seq: op for op in operations}

    try:
        witness = topological_sort(graph)
    except CycleError:
        cycle = _minimal_cycle(graph, labels)
        descriptions = {
            seq: describe(by_seq[seq])
            for edge in cycle
            for seq in (edge.src, edge.dst)
            if seq in by_seq
        }
        return RobustnessReport(
            robust=False,
            model_name=model_name,
            operation_count=len(operations),
            stale_reads=stale,
            cycle=cycle,
            scp_cuts=list(scp.cuts),
            scp_size=scp.size,
            scp_whole=scp.is_whole_execution,
            descriptions=descriptions,
        )
    return RobustnessReport(
        robust=True,
        model_name=model_name,
        operation_count=len(operations),
        stale_reads=stale,
        witness=list(witness),
        scp_cuts=list(scp.cuts),
        scp_size=scp.size,
        scp_whole=scp.is_whole_execution,
    )
