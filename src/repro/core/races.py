"""Event-level race detection (Definition 2.4 lifted to events, §4.1).

A race is a pair of events that conflict on some location and are not
ordered by hb1.  It is a *data* race when at least one side is a
computation (data) event; a race between two synchronization events is
detected but flagged, since Definition 2.4 excludes it from data races.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from .. import obs
from ..trace.build import Trace
from ..trace.events import ComputationEvent, EventId, SyncEvent
from .hb1 import HappensBefore1


@dataclass(frozen=True)
class EventRace:
    """An unordered conflicting event pair ``<a, b>`` (a < b canonically).

    ``locations`` lists every location the pair conflicts on; a single
    event-level race may stand for many lower-level operation races
    (section 4.1 of the paper).
    """

    a: EventId
    b: EventId
    locations: Tuple[int, ...]
    is_data_race: bool

    @property
    def events(self) -> Tuple[EventId, EventId]:
        return (self.a, self.b)

    @property
    def signature(self) -> str:
        """Stable text key for one race (``P0.E3~P1.E2``) — how the CLI
        names a race across runs of the same trace."""
        return f"{self.a}~{self.b}"

    def involves(self, eid: EventId) -> bool:
        return eid == self.a or eid == self.b

    def describe(self, trace: Optional[Trace] = None, max_names: int = 6) -> str:
        if trace is None:
            names = [str(addr) for addr in self.locations]
        else:
            names = [trace.addr_name(addr) for addr in self.locations]
        if len(names) > max_names:
            extra = len(names) - max_names
            names = names[:max_names] + [f"+{extra} more"]
        locs = ",".join(names)
        kind = "data race" if self.is_data_race else "sync race"
        return f"<{self.a}, {self.b}> on {{{locs}}} ({kind})"


def _accesses_by_location(
    trace: Trace,
) -> Tuple[Dict[int, List[EventId]], Dict[int, List[EventId]]]:
    """Index events by the locations they read and write."""
    columns = getattr(trace, "columns", None)
    if columns is not None:
        return _accesses_by_location_columnar(columns)
    readers: Dict[int, List[EventId]] = {}
    writers: Dict[int, List[EventId]] = {}
    for event in trace.all_events():
        if isinstance(event, SyncEvent):
            target = writers if event.writes_addr else readers
            target.setdefault(event.addr, []).append(event.eid)
        else:
            assert isinstance(event, ComputationEvent)
            for addr in event.reads:
                readers.setdefault(addr, []).append(event.eid)
            for addr in event.writes:
                writers.setdefault(addr, []).append(event.eid)
    return readers, writers


def _accesses_by_location_columnar(
    columns,
) -> Tuple[Dict[int, List[EventId]], Dict[int, List[EventId]]]:
    """The same read/write index straight off the columns — EventIds
    only, no event or bit-vector objects."""
    readers: Dict[int, List[EventId]] = {}
    writers: Dict[int, List[EventId]] = {}
    tag, kind, addr_col = columns.tag, columns.kind, columns.addr
    for proc, count in enumerate(columns.proc_counts):
        base = columns.proc_offsets[proc]
        for pos in range(count):
            row = base + pos
            eid = EventId(proc, pos)
            if tag[row]:  # computation event
                for addr in columns.event_reads(row):
                    readers.setdefault(addr, []).append(eid)
                for addr in columns.event_writes(row):
                    writers.setdefault(addr, []).append(eid)
            else:
                target = writers if kind[row] else readers
                target.setdefault(int(addr_col[row]), []).append(eid)
    return readers, writers


def find_races(trace: Trace, hb: Optional[HappensBefore1] = None) -> List[EventRace]:
    """All races of *trace*: conflicting, hb1-unordered event pairs.

    Returns races sorted by (a, b) for determinism.  Pass a prebuilt
    :class:`HappensBefore1` to avoid rebuilding the relation; pass a
    :class:`~repro.core.hb1_vc.VectorClockHB1` to use the batched
    clock-matrix sweep instead of per-pair closure queries (the two are
    differentially tested to report identical races).
    """
    hb = hb or HappensBefore1(trace)
    with obs.span("races.find") as _sp:
        if getattr(hb, "clock_matrix", None) is not None:
            races = _find_races_batched(trace, hb, _sp)
        elif hasattr(hb, "closure"):
            races = _find_races(trace, hb, _sp)
        else:
            races = _find_races_epoch(trace, hb, _sp)
    return races


def _collect_candidates(
    trace: Trace,
) -> Dict[Tuple[EventId, EventId], List[int]]:
    """Every conflicting cross-processor event pair (canonical a < b),
    mapped to the locations it conflicts on.  Same-processor pairs are
    always po-ordered and skipped up front."""
    readers, writers = _accesses_by_location(trace)
    pairs: Dict[Tuple[EventId, EventId], List[int]] = {}
    for addr, writer_list in writers.items():
        reader_list = readers.get(addr, [])
        for i, w in enumerate(writer_list):
            for other in writer_list[i + 1:]:
                if other.proc != w.proc:
                    key = (w, other) if w < other else (other, w)
                    bucket = pairs.get(key)
                    if bucket is None:
                        pairs[key] = [addr]
                    else:
                        bucket.append(addr)
            for r in reader_list:
                if r.proc != w.proc:
                    key = (w, r) if w < r else (r, w)
                    bucket = pairs.get(key)
                    if bucket is None:
                        pairs[key] = [addr]
                    else:
                        bucket.append(addr)
    return pairs


def _make_race(trace: Trace, a: EventId, b: EventId, locations: List[int]) -> EventRace:
    columns = getattr(trace, "columns", None)
    if columns is not None:
        is_data = (
            columns.is_comp(columns.row_of(a.proc, a.pos))
            or columns.is_comp(columns.row_of(b.proc, b.pos))
        )
    else:
        event_a, event_b = trace.event(a), trace.event(b)
        is_data = event_a.is_computation or event_b.is_computation
    return EventRace(
        a=a,
        b=b,
        locations=tuple(sorted(set(locations))),
        is_data_race=is_data,
    )


def _find_races_batched(trace: Trace, vc, _sp) -> List[EventRace]:
    """Race sweep against a clock matrix: all candidate pairs are tested
    in one pass of array comparisons.  ``(a, b)`` is unordered iff
    neither side has seen the other's own component — ``M[row(b),
    a.proc] < a.pos+1 and M[row(a), b.proc] < b.pos+1`` — vectorized
    over the whole candidate batch instead of one closure query per
    pair."""
    import numpy as np

    pairs = _collect_candidates(trace)
    races: List[EventRace] = []
    if pairs:
        keys = list(pairs)
        n = len(keys)
        matrix = vc.clock_matrix
        row_of = vc.row_index
        ia = np.empty(n, dtype=np.intp)
        ib = np.empty(n, dtype=np.intp)
        pa = np.empty(n, dtype=np.intp)
        pb = np.empty(n, dtype=np.intp)
        oa = np.empty(n, dtype=np.int64)
        ob = np.empty(n, dtype=np.int64)
        for k, (a, b) in enumerate(keys):
            ia[k] = row_of[a]
            ib[k] = row_of[b]
            pa[k] = a.proc
            pb[k] = b.proc
            oa[k] = a.pos + 1
            ob[k] = b.pos + 1
        unordered = (matrix[ib, pa] < oa) & (matrix[ia, pb] < ob)
        for k in np.flatnonzero(unordered):
            a, b = keys[k]
            races.append(_make_race(trace, a, b, pairs[(a, b)]))
    races.sort(key=lambda race: (race.a, race.b))
    if _sp.enabled:
        _sp.add("pairs_tested", len(pairs))
        _sp.add("vc_batch_rows", len(pairs))
        _sp.add("pairs_reported", len(races))
        _sp.add("data_races", sum(1 for r in races if r.is_data_race))
    return races


def _find_races_epoch(trace: Trace, vc, _sp) -> List[EventRace]:
    """Per-pair epoch-test sweep for vector-clock backends without a
    matrix (numpy unavailable)."""
    pairs = _collect_candidates(trace)
    races = [
        _make_race(trace, a, b, locations)
        for (a, b), locations in pairs.items()
        if vc.unordered(a, b)
    ]
    races.sort(key=lambda race: (race.a, race.b))
    if _sp.enabled:
        _sp.add("pairs_tested", len(pairs))
        _sp.add("pairs_reported", len(races))
        _sp.add("data_races", sum(1 for r in races if r.is_data_race))
    return races


def _find_races(
    trace: Trace, hb: HappensBefore1, _sp
) -> List[EventRace]:
    readers, writers = _accesses_by_location(trace)

    # Hot path: for each location, every writer x (writer or reader)
    # pair is a conflict; a pair is a race iff hb1-unordered.  Ordered
    # pairs are remembered so multi-location conflicts don't re-query.
    closure = hb.closure
    index_of = closure.index_of
    ordered_index = closure.ordered_index
    dense: Dict[EventId, int] = {}

    def didx(eid: EventId) -> int:
        i = dense.get(eid)
        if i is None:
            i = index_of(eid)
            dense[eid] = i
        return i

    racing: Dict[Tuple[EventId, EventId], List[int]] = {}
    settled_ordered: Set[Tuple[EventId, EventId]] = set()

    def note(x: EventId, y: EventId, addr: int) -> None:
        key = (x, y) if x < y else (y, x)
        bucket = racing.get(key)
        if bucket is not None:
            bucket.append(addr)
            return
        if key in settled_ordered:
            return
        i, j = didx(key[0]), didx(key[1])
        if ordered_index(i, j) or ordered_index(j, i):
            settled_ordered.add(key)
        else:
            racing[key] = [addr]

    for addr, writer_list in writers.items():
        reader_list = readers.get(addr, [])
        for i, w in enumerate(writer_list):
            # same-processor events are always po-ordered: skip them
            for other in writer_list[i + 1:]:
                if other.proc != w.proc:
                    note(w, other, addr)
            for r in reader_list:
                if r.proc != w.proc:
                    note(w, r, addr)

    races: List[EventRace] = []
    for (a, b), locations in racing.items():
        races.append(_make_race(trace, a, b, locations))
    races.sort(key=lambda race: (race.a, race.b))
    if _sp.enabled:
        # pairs_tested counts distinct conflicting pairs whose ordering
        # was actually queried; pairs_reported is the races among them
        _sp.add("pairs_tested", len(racing) + len(settled_ordered))
        _sp.add("pairs_reported", len(races))
        _sp.add("data_races", sum(1 for r in races if r.is_data_race))
    return races


def data_races(races: List[EventRace]) -> List[EventRace]:
    """Filter to data races (Definition 2.4)."""
    return [race for race in races if race.is_data_race]
