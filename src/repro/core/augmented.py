"""The augmented happens-before-1 graph G' (section 4.2).

G' is the hb1 graph plus, for each race, a doubly directed edge between
the two events involved.  By construction, for races <A,B> and <C,D>, a
path exists in G' from A (or B) to C (or D) iff <A,B> affects <C,D>
(Definition 3.3) — G' reachability *is* the affects relation.
"""

from __future__ import annotations

from typing import Iterable, List

from ..graph import DiGraph
from .hb1 import HappensBefore1
from .races import EventRace


def build_augmented_graph(
    hb: HappensBefore1, races: Iterable[EventRace]
) -> DiGraph:
    """hb1 plus a doubly directed edge per race.

    All races participate — including sync-sync races — because the
    affects relation (Definition 3.3(3)) chains through races generally,
    not only data races.
    """
    gprime = hb.graph.copy()
    for race in races:
        gprime.add_edge(race.a, race.b)
        gprime.add_edge(race.b, race.a)
    return gprime


def race_edge_list(races: Iterable[EventRace]) -> List[tuple]:
    """The doubly-directed edge pairs contributed by *races* (used when
    rendering figures: race edges are drawn dashed/bidirectional)."""
    edges = []
    for race in races:
        edges.append((race.a, race.b))
        edges.append((race.b, race.a))
    return edges
