"""Race reports: what the detector hands the programmer.

On a system obeying Condition 3.4, the detector either (a) reports no
data races — and the programmer may then assume the whole execution was
sequentially consistent (Condition 3.4(1)) — or (b) reports the *first
partitions* of data races, each guaranteed to contain at least one race
that also occurs in some sequentially consistent execution of the
program (Theorem 4.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..graph import to_dot
from ..trace.build import Trace
from ..trace.events import ComputationEvent, EventId, SyncEvent
from .hb1 import HappensBefore1
from .partitions import PartitionAnalysis, RacePartition
from .races import EventRace

REPORT_FORMAT = 1


def _race_record(race: EventRace) -> Dict:
    return {
        "a": [race.a.proc, race.a.pos],
        "b": [race.b.proc, race.b.pos],
        "locations": list(race.locations),
        "is_data_race": race.is_data_race,
    }


def _race_from_record(record: Dict) -> EventRace:
    return EventRace(
        a=EventId(*record["a"]),
        b=EventId(*record["b"]),
        locations=tuple(record["locations"]),
        is_data_race=record["is_data_race"],
    )


@dataclass
class RaceReport:
    """The full outcome of post-mortem analysis of one trace."""

    #: Serialized report ``kind``; subclasses (the predictive SHB/WCP
    #: reports) override it and inherit the to_json/from_json plumbing.
    kind = "postmortem"

    trace: Trace
    hb: HappensBefore1
    races: List[EventRace]
    analysis: PartitionAnalysis

    # ------------------------------------------------------------------
    @property
    def data_races(self) -> List[EventRace]:
        return [race for race in self.races if race.is_data_race]

    @property
    def sync_races(self) -> List[EventRace]:
        return [race for race in self.races if not race.is_data_race]

    @property
    def race_free(self) -> bool:
        """No data races detected."""
        return not self.data_races

    @property
    def execution_was_sequentially_consistent(self) -> bool:
        """On Condition-3.4 hardware, no data races implies the whole
        execution was sequentially consistent (clause 1)."""
        return self.race_free

    @property
    def first_partitions(self) -> List[RacePartition]:
        """The partitions to report to the programmer (section 4.2) —
        only those containing data races are actionable."""
        return [p for p in self.analysis.first_partitions if p.has_data_race]

    @property
    def reported_races(self) -> List[EventRace]:
        """The data races inside first partitions."""
        return [
            race for p in self.first_partitions for race in p.data_races
        ]

    @property
    def certified_race_count(self) -> int:
        """How many *distinct real races* this report certifies.

        The paper's guarantee is partition-shaped: each first data
        partition contains at least one race that also occurs in some
        sequentially consistent execution (Theorem 4.2) — one certified
        race per partition, without saying which.  Predictive backends
        override this with per-race guarantees; hunts and benchmarks
        compare detectors by this count.
        """
        return len(self.first_partitions)

    @property
    def suppressed_races(self) -> List[EventRace]:
        """Data races *not* reported: they lie in non-first partitions
        and may never occur in any sequentially consistent execution —
        reporting them would mislead the programmer (section 3.1)."""
        reported = set()
        for race in self.reported_races:
            reported.add((race.a, race.b))
        return [
            race
            for race in self.data_races
            if (race.a, race.b) not in reported
        ]

    # ------------------------------------------------------------------
    def format(self) -> str:
        """Multi-line human-readable report."""
        lines = [
            f"Post-mortem data race report ({self.trace.model_name} execution, "
            f"{self.trace.event_count} events)",
            "=" * 70,
        ]
        if self.race_free:
            lines.append("No data races detected.")
            lines.append(
                "By Condition 3.4(1) the execution was sequentially consistent."
            )
            return "\n".join(lines)
        lines.append(
            f"{len(self.data_races)} data race(s) in "
            f"{len([p for p in self.analysis.partitions if p.has_data_race])} "
            f"partition(s); reporting {len(self.first_partitions)} first "
            f"partition(s)."
        )
        for partition in self.first_partitions:
            lines.append("")
            lines.append(
                f"First partition #{partition.component_index} "
                f"(>=1 race here occurs in a sequentially consistent execution):"
            )
            for race in partition.data_races:
                lines.append(f"  {race.describe(self.trace)}")
                lines.append(f"    {self.trace.label(race.a)}")
                lines.append(f"    {self.trace.label(race.b)}")
        suppressed = self.suppressed_races
        if suppressed:
            lines.append("")
            lines.append(
                f"{len(suppressed)} further data race(s) suppressed "
                f"(non-first partitions; possibly artifacts of the races above):"
            )
            for race in suppressed:
                lines.append(f"  {race.describe(self.trace)}")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # The shared report protocol: every detector report serializes with
    # ``to_json`` and reconstructs with ``from_json`` (hunt artifacts
    # and ``weakraces ... --json`` rely on this being uniform).
    def to_json(self) -> Dict:
        """The full report as one JSON document, trace included."""
        from ..trace.tracefile import trace_to_json

        race_index = {race: i for i, race in enumerate(self.races)}
        return {
            "kind": self.kind,
            "format": REPORT_FORMAT,
            "race_free": self.race_free,
            "trace": trace_to_json(self.trace),
            "races": [_race_record(race) for race in self.races],
            "partitions": [
                {
                    "component_index": p.component_index,
                    "is_first": p.is_first,
                    "events": sorted(
                        [e.proc, e.pos] for e in p.events
                    ),
                    "races": [race_index[race] for race in p.races],
                }
                for p in self.analysis.partitions
            ],
        }

    @classmethod
    def from_json(cls, payload: Dict) -> "RaceReport":
        """Rebuild a report from :meth:`to_json` output.

        The trace, races, and partition structure are restored from the
        payload verbatim; the derived graphs (hb1, G', condensation)
        are recomputed from the restored trace, so the returned report
        supports the same queries as the original.  Symbol names are
        not serialized — a restored report labels locations ``@addr``.
        """
        from ..graph import condensation
        from ..trace.tracefile import trace_from_json
        from .augmented import build_augmented_graph

        if payload.get("kind") != cls.kind:
            raise ValueError(
                f"expected a {cls.kind} report payload, "
                f"got kind {payload.get('kind')!r}"
            )
        trace = trace_from_json(payload["trace"])
        races = [_race_from_record(r) for r in payload["races"]]
        hb = HappensBefore1(trace)
        gprime = build_augmented_graph(hb, races)
        partitions = [
            RacePartition(
                component_index=record["component_index"],
                races=[races[i] for i in record["races"]],
                events={EventId(p, pos) for p, pos in record["events"]},
                is_first=record["is_first"],
            )
            for record in payload["partitions"]
        ]
        analysis = PartitionAnalysis(
            gprime=gprime,
            cond=condensation(gprime),
            partitions=partitions,
        )
        return cls(trace=trace, hb=hb, races=races, analysis=analysis)

    # ------------------------------------------------------------------
    def to_dot(self, include_partitions: bool = True,
               highlight: Optional[set] = None) -> str:
        """Render the augmented happens-before-1 graph G' as DOT, in the
        style of the paper's Figure 3: po/so1 edges solid, race edges
        dashed and bidirectional, partitions boxed.  *highlight* events
        (e.g. a first partition, for ``weakraces explain --dot``) are
        filled and their partition boxes drawn bold."""
        trace = self.trace
        highlight = highlight or set()
        race_pairs = set()
        for race in self.races:
            race_pairs.add((race.a, race.b))
            race_pairs.add((race.b, race.a))

        def label_of(eid: EventId) -> str:
            event = trace.event(eid)
            if isinstance(event, SyncEvent):
                return f"{eid}\\n{event.label(trace.addr_name(event.addr))}"
            assert isinstance(event, ComputationEvent)
            return f"{eid}\\n{event.label(trace.addr_name)}"

        def edge_attrs(src: EventId, dst: EventId) -> Dict[str, str]:
            if (src, dst) in race_pairs:
                return {"style": "dashed", "dir": "both", "color": "red"}
            return {}

        def node_attrs(eid: EventId) -> Dict[str, str]:
            if eid in highlight:
                return {"style": "filled", "fillcolor": "lightgoldenrod1"}
            return {}

        clusters: Optional[Dict[str, List[EventId]]] = None
        highlighted_clusters: set = set()
        if include_partitions:
            clusters = {}
            for partition in self.analysis.partitions:
                tag = "first" if partition.is_first else "non-first"
                label = f"partition {partition.component_index} ({tag})"
                clusters[label] = sorted(partition.events)
                if highlight and partition.events & highlight:
                    highlighted_clusters.add(label)

        def cluster_attrs(label: str) -> Dict[str, str]:
            if label in highlighted_clusters:
                return {"color": "red", "style": "bold"}
            return {}

        # Draw each race edge only once (dir=both renders the pair).
        drawn = self.hb.graph.copy()
        for race in self.races:
            drawn.add_edge(race.a, race.b)

        return to_dot(
            drawn,
            name="Gprime",
            label_of=label_of,
            node_attrs=node_attrs if highlight else None,
            edge_attrs=edge_attrs,
            clusters=clusters,
            cluster_attrs=cluster_attrs if highlighted_clusters else None,
        )
