"""Race partitioning and first-partition identification (section 4.2).

Because G' may contain cycles, individual "first races" are not well
defined; the paper instead partitions races by the strongly connected
components of G' and orders partitions by G'-reachability (Definition
4.1).  A partition is *first* if no other partition containing at least
one data race is ordered before it.  Theorem 4.1: there are no first
partitions containing data races iff the execution exhibited no data
races.  Theorem 4.2: each first partition containing data races holds
at least one race belonging to a sequentially consistent prefix.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from .. import obs
from ..graph import Condensation, DiGraph, TransitiveClosure, condensation
from ..trace.build import Trace
from ..trace.events import EventId
from .augmented import build_augmented_graph
from .hb1 import HappensBefore1
from .races import EventRace


@dataclass
class RacePartition:
    """The races whose events fall in one SCC of G'."""

    component_index: int
    races: List[EventRace]
    events: Set[EventId] = field(default_factory=set)
    is_first: bool = False

    @property
    def has_data_race(self) -> bool:
        return any(race.is_data_race for race in self.races)

    @property
    def data_races(self) -> List[EventRace]:
        return [race for race in self.races if race.is_data_race]

    def describe(self, trace: Optional[Trace] = None) -> str:
        tag = "first" if self.is_first else "non-first"
        lines = [f"Partition #{self.component_index} ({tag}):"]
        for race in self.races:
            lines.append(f"  {race.describe(trace)}")
        return "\n".join(lines)


@dataclass
class PartitionAnalysis:
    """Everything section 4.2 computes for one execution's races."""

    gprime: DiGraph
    cond: Condensation
    partitions: List[RacePartition]

    def __post_init__(self) -> None:
        # Plain attributes, not dataclass fields: neither the closure
        # cache nor the race index belongs in __init__/repr/eq.
        self._closure_cache: Optional[TransitiveClosure] = None
        # Each race lies in exactly one partition (the doubly directed
        # race edge puts both endpoints in one SCC), so a prebuilt
        # index answers partition_of in O(1) instead of scanning every
        # partition's race list.
        self._race_to_partition: Dict[EventRace, RacePartition] = {
            race: partition
            for partition in self.partitions
            for race in partition.races
        }

    @property
    def first_partitions(self) -> List[RacePartition]:
        return [p for p in self.partitions if p.is_first]

    @property
    def first_races(self) -> List[EventRace]:
        return [race for p in self.first_partitions for race in p.races]

    @property
    def non_first_partitions(self) -> List[RacePartition]:
        return [p for p in self.partitions if not p.is_first]

    def partition_of(self, race: EventRace) -> RacePartition:
        partition = self._race_to_partition.get(race)
        if partition is None:
            raise KeyError(f"race {race} not in any partition")
        return partition

    @property
    def data_partitions(self) -> List[RacePartition]:
        """Partitions containing at least one data race — the only ones
        the Definition 4.1 ordering ever consults."""
        return [p for p in self.partitions if p.has_data_race]

    def preceding_data_partitions(
        self, partition: RacePartition
    ) -> List[RacePartition]:
        """The data-race partitions ordered before *partition* by
        Definition 4.1 (empty iff *partition* is first)."""
        return [
            p for p in self.data_partitions
            if p is not partition and self.precedes(p, partition)
        ]

    def following_data_partitions(
        self, partition: RacePartition
    ) -> List[RacePartition]:
        """The data-race partitions *partition* is ordered before."""
        return [
            p for p in self.data_partitions
            if p is not partition and self.precedes(partition, p)
        ]

    def precedes(self, p1: RacePartition, p2: RacePartition) -> bool:
        """Definition 4.1: Part1 P Part2 iff a G' path leads from an
        event of Part1 to an event of Part2."""
        if p1.component_index == p2.component_index:
            return False
        return self._dag_closure().ordered(p1.component_index, p2.component_index)

    def _dag_closure(self) -> TransitiveClosure:
        if self._closure_cache is None:
            self._closure_cache = TransitiveClosure(self.cond.dag)
        return self._closure_cache


def partition_races(
    trace: Trace,
    hb: HappensBefore1,
    races: List[EventRace],
    gprime: Optional[DiGraph] = None,
) -> PartitionAnalysis:
    """Partition *races* by SCC of G' and mark the first partitions.

    The doubly directed race edge makes both endpoints of a race
    mutually reachable, so each race lies in exactly one SCC.
    """
    with obs.span("races.partition") as _sp:
        analysis = _partition_races(trace, hb, races, gprime)
        if _sp.enabled:
            _sp.add("sccs", len(analysis.cond.components))
            _sp.add("partitions", len(analysis.partitions))
            _sp.add("first_partitions", len(analysis.first_partitions))
            if analysis.cond.components:
                _sp.add(
                    "largest_scc",
                    max(len(c) for c in analysis.cond.components),
                )
    return analysis


def _partition_races(
    trace: Trace,
    hb: HappensBefore1,
    races: List[EventRace],
    gprime: Optional[DiGraph] = None,
) -> PartitionAnalysis:
    gprime = gprime or build_augmented_graph(hb, races)
    cond = condensation(gprime)

    by_component: Dict[int, RacePartition] = {}
    for race in races:
        ci = cond.index_of[race.a]
        assert ci == cond.index_of[race.b], "race endpoints must share an SCC"
        partition = by_component.get(ci)
        if partition is None:
            partition = RacePartition(
                component_index=ci,
                races=[],
                events=set(cond.components[ci]),
            )
            by_component[ci] = partition
        partition.races.append(race)

    partitions = sorted(by_component.values(), key=lambda p: p.component_index)
    analysis = PartitionAnalysis(gprime=gprime, cond=cond, partitions=partitions)

    # A partition is first iff no *other* partition containing at least
    # one data race precedes it (Definition 4.1 and the paragraph after).
    data_partitions = [p for p in partitions if p.has_data_race]
    for partition in partitions:
        preceded = any(
            other is not partition and analysis.precedes(other, partition)
            for other in data_partitions
        )
        partition.is_first = not preceded
    return analysis
