"""On-the-fly race detection baseline (section 5).

Post-mortem analysis writes full trace files; on-the-fly methods
"buffer partial trace information in memory and detect data races as
they occur", trading secondary storage for accuracy: with bounded
per-location access histories, some races — including first races — can
go undetected.  This module implements the classic access-history
algorithm (in the style of [DiS90]/[HKM90]) over the simulator's
operation stream: a single forward pass, one vector clock per
processor, and a bounded reader/writer history per location.

The accuracy loss is parameterized by ``reader_history``/
``writer_history``; the benchmark ``bench_onthefly`` sweeps it to
reproduce the paper's qualitative claim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from ..machine.operations import MemoryOperation, SyncRole
from .vector_clock import VectorClock


@dataclass(frozen=True)
class OnTheFlyRace:
    """A race flagged during execution, as an operation seq pair."""

    a: int
    b: int
    addr: int

    def key(self) -> Tuple[int, int]:
        return (min(self.a, self.b), max(self.a, self.b))


@dataclass
class _Access:
    """One remembered access: who, at what clock tick, which op."""

    proc: int
    tick: int
    seq: int
    clock: VectorClock


@dataclass
class _History:
    """Bounded access history for one location."""

    writers: List[_Access] = field(default_factory=list)
    readers: List[_Access] = field(default_factory=list)


class OnTheFlyDetector:
    """Single-pass, bounded-memory detector over an operation stream.

    Feed operations in execution order via :meth:`process`; collected
    races are in :attr:`races`.  ``reader_history`` / ``writer_history``
    bound how many concurrent accesses per location are remembered —
    smaller bounds use less memory and miss more races, exactly the
    trade-off section 5 describes.
    """

    def __init__(
        self,
        processor_count: int,
        reader_history: int = 4,
        writer_history: int = 1,
    ) -> None:
        if processor_count <= 0:
            raise ValueError("processor_count must be positive")
        if reader_history < 1 or writer_history < 1:
            raise ValueError("history bounds must be at least 1")
        self.processor_count = processor_count
        self.reader_history = reader_history
        self.writer_history = writer_history
        self.clocks = [VectorClock(processor_count) for _ in range(processor_count)]
        for proc, clock in enumerate(self.clocks):
            clock.tick(proc)
        self._histories: Dict[int, _History] = {}
        # last release write per sync location: (value, clock snapshot)
        self._released: Dict[int, Tuple[int, VectorClock]] = {}
        self.races: List[OnTheFlyRace] = []
        self._seen: Set[Tuple[int, int]] = set()
        self.evicted_accesses = 0

    # ------------------------------------------------------------------
    def process(self, op: MemoryOperation) -> None:
        """Consume the next operation of the execution."""
        if op.is_sync:
            self._process_sync(op)
        else:
            self._process_data(op)

    def process_all(self, operations: List[MemoryOperation]) -> None:
        for op in operations:
            self.process(op)

    # ------------------------------------------------------------------
    def _process_sync(self, op: MemoryOperation) -> None:
        clock = self.clocks[op.proc]
        if op.role is SyncRole.ACQUIRE:
            released = self._released.get(op.addr)
            if released is not None and released[0] == op.value:
                clock.join(released[1])
        elif op.role is SyncRole.RELEASE:
            clock.tick(op.proc)
            self._released[op.addr] = (op.value, clock.copy())
        elif op.role is SyncRole.SYNC_ONLY and op.is_write:
            # The write half of a Test&Set publishes nothing, but it
            # does overwrite the sync location's value, invalidating
            # pairing with the previous release (the lock is now held).
            released = self._released.get(op.addr)
            if released is not None and released[0] != op.value:
                self._released[op.addr] = (op.value, released[1])
        clock.tick(op.proc)

    def _process_data(self, op: MemoryOperation) -> None:
        clock = self.clocks[op.proc]
        history = self._histories.setdefault(op.addr, _History())
        if op.is_read:
            self._check_against(op, history.writers)
            self._remember(history.readers, op, clock, self.reader_history)
        else:
            self._check_against(op, history.writers)
            self._check_against(op, history.readers)
            self._remember(history.writers, op, clock, self.writer_history)

    def _check_against(self, op: MemoryOperation, accesses: List[_Access]) -> None:
        clock = self.clocks[op.proc]
        for access in accesses:
            if access.proc == op.proc:
                continue
            if not clock.dominates_entry(access.proc, access.tick):
                key = (min(access.seq, op.seq), max(access.seq, op.seq))
                if key not in self._seen:
                    self._seen.add(key)
                    race = OnTheFlyRace(a=key[0], b=key[1], addr=op.addr)
                    self.races.append(race)
                    self._on_race(race, access, op)

    def _on_race(self, race: OnTheFlyRace, access: _Access,
                 op: MemoryOperation) -> None:
        """Hook for subclasses (e.g. first-race classification)."""

    def _remember(
        self,
        accesses: List[_Access],
        op: MemoryOperation,
        clock: VectorClock,
        bound: int,
    ) -> None:
        accesses.append(
            _Access(proc=op.proc, tick=clock[op.proc], seq=op.seq, clock=clock.copy())
        )
        while len(accesses) > bound:
            accesses.pop(0)
            self.evicted_accesses += 1

    # ------------------------------------------------------------------
    @property
    def memory_footprint(self) -> int:
        """Remembered accesses right now — the bounded buffer occupancy
        that on-the-fly methods keep in place of trace files."""
        return sum(
            len(h.writers) + len(h.readers) for h in self._histories.values()
        )


def detect_on_the_fly(
    operations: List[MemoryOperation],
    processor_count: int,
    reader_history: int = 4,
    writer_history: int = 1,
) -> List[OnTheFlyRace]:
    """Run the on-the-fly detector over a full operation stream."""
    detector = OnTheFlyDetector(processor_count, reader_history, writer_history)
    detector.process_all(operations)
    return detector.races


@dataclass
class OnTheFlyReport:
    """What one streaming pass produced, in the shared report protocol.

    Produced by ``repro.detect(result, detector="onthefly")``; races
    are operation-seq pairs (the streaming detector works below the
    event abstraction), split first / non-first by the online affects
    approximation of :mod:`repro.core.onthefly_first`.
    """

    processor_count: int
    model_name: str
    races: List[OnTheFlyRace]
    first_races: List[OnTheFlyRace]
    non_first_races: List[OnTheFlyRace]
    evicted_accesses: int = 0

    @property
    def race_free(self) -> bool:
        return not self.races

    def format(self) -> str:
        lines = [
            f"On-the-fly race report ({self.model_name} execution): "
            f"{len(self.races)} race(s), "
            f"{len(self.first_races)} classified first"
        ]
        for race in self.first_races:
            lines.append(f"  first: <op{race.a}, op{race.b}> @ {race.addr}")
        for race in self.non_first_races:
            lines.append(
                f"  non-first: <op{race.a}, op{race.b}> @ {race.addr}"
            )
        if self.evicted_accesses:
            lines.append(
                f"  ({self.evicted_accesses} access(es) evicted from the "
                f"bounded history; races may have been missed)"
            )
        return "\n".join(lines)

    # -- shared report protocol ----------------------------------------
    def to_json(self) -> dict:
        def rec(race: OnTheFlyRace) -> dict:
            return {"a": race.a, "b": race.b, "addr": race.addr}

        return {
            "kind": "onthefly",
            "format": 1,
            "race_free": self.race_free,
            "processor_count": self.processor_count,
            "model": self.model_name,
            "races": [rec(r) for r in self.races],
            "first_races": [rec(r) for r in self.first_races],
            "non_first_races": [rec(r) for r in self.non_first_races],
            "evicted_accesses": self.evicted_accesses,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "OnTheFlyReport":
        if payload.get("kind") != "onthefly":
            raise ValueError(
                f"expected an onthefly report payload, "
                f"got kind {payload.get('kind')!r}"
            )

        def rec(record: dict) -> OnTheFlyRace:
            return OnTheFlyRace(
                a=record["a"], b=record["b"], addr=record["addr"]
            )

        return cls(
            processor_count=payload["processor_count"],
            model_name=payload.get("model", "unknown"),
            races=[rec(r) for r in payload["races"]],
            first_races=[rec(r) for r in payload["first_races"]],
            non_first_races=[rec(r) for r in payload["non_first_races"]],
            evicted_accesses=payload.get("evicted_accesses", 0),
        )
