"""Sequentially consistent prefixes and Condition 3.4 (section 3.2).

An SCP of an execution E is an hb1-prefix-closed operation set that is
also the prefix of some sequentially consistent execution of the same
program, with matching races (Definitions 3.1/3.2).  Condition 3.4 then
demands: (1) a data-race-free execution is sequentially consistent, and
(2) some SCP exists such that every data race either occurs in it or is
affected (Definition 3.3) by a data race occurring in it.

The simulator supplies the raw material: operations are identified by
location + program point (section 2.1 — values don't matter), so a
processor's operation stream diverges from every SC execution only once
a stale value has steered its control flow or address computation.  The
processor tracks exactly that through taint, yielding a raw per-
processor cut; this module closes the cut under hb1 (Definition 3.1)
and checks both clauses of Condition 3.4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set

from ..graph import reachable_from_any
from ..machine.simulator import ExecutionResult
from .ophb import OpHappensBefore, OpRace, build_op_augmented, find_op_races


@dataclass
class SCPrefix:
    """A sequentially consistent prefix, as per-processor cut points.

    ``cuts[p]`` is the local operation index of processor *p*'s first
    operation outside the prefix (None = all of *p*'s operations are
    inside).  ``included`` is the corresponding set of global seqs.
    """

    cuts: List[Optional[int]]
    included: Set[int]

    def contains(self, seq_or_op) -> bool:
        seq = getattr(seq_or_op, "seq", seq_or_op)
        return seq in self.included

    def contains_race(self, race: OpRace) -> bool:
        """A race occurs in the SCP iff both its operations do."""
        return race.a in self.included and race.b in self.included

    @property
    def size(self) -> int:
        return len(self.included)

    @property
    def is_whole_execution(self) -> bool:
        return all(cut is None for cut in self.cuts)


def close_scp(
    operations,
    raw_cuts: List[Optional[int]],
    hb: Optional[OpHappensBefore] = None,
) -> SCPrefix:
    """hb1-prefix closure of per-processor raw cuts (Definition 3.1):
    if an included operation has an excluded hb1 predecessor, the cut
    of its processor moves up to it.  The iteration is monotone (cuts
    only decrease) and therefore terminates.

    The cut list is padded with ``None`` to cover every processor that
    appears in *operations*, so a short (or empty) list is safe.
    """
    hb = hb or OpHappensBefore(list(operations))
    cuts: List[Optional[int]] = list(raw_cuts)
    ops = hb.operations
    procs = max((op.proc for op in ops), default=-1) + 1
    if len(cuts) < procs:
        cuts.extend([None] * (procs - len(cuts)))

    def included_seqs() -> Set[int]:
        out = set()
        for op in ops:
            cut = cuts[op.proc]
            if cut is None or op.local_index < cut:
                out.add(op.seq)
        return out

    included = included_seqs()
    changed = True
    while changed:
        changed = False
        for src, dst in hb.graph.edges():
            if dst in included and src not in included:
                op = hb.op(dst)
                cut = cuts[op.proc]
                if cut is None or op.local_index < cut:
                    cuts[op.proc] = op.local_index
                    changed = True
        if changed:
            included = included_seqs()
    return SCPrefix(cuts=cuts, included=included)


def extract_scp(
    result: ExecutionResult, hb: Optional[OpHappensBefore] = None
) -> SCPrefix:
    """The simulator-ground-truth SCP of an execution: the taint-derived
    raw cuts, closed under hb1 (see :func:`close_scp`)."""
    return close_scp(result.operations, result.raw_scp_cuts, hb)


@dataclass
class Condition34Report:
    """The verdict of checking Condition 3.4 on one execution."""

    data_race_free: bool
    no_stale_reads: bool
    clause1_ok: bool
    scp: SCPrefix
    op_races: List[OpRace] = field(default_factory=list)
    data_races_in_scp: List[OpRace] = field(default_factory=list)
    unaccounted_races: List[OpRace] = field(default_factory=list)

    @property
    def clause2_ok(self) -> bool:
        return not self.unaccounted_races

    @property
    def ok(self) -> bool:
        return self.clause1_ok and self.clause2_ok

    def summary(self) -> str:
        return (
            f"Condition 3.4: clause1={'ok' if self.clause1_ok else 'VIOLATED'} "
            f"clause2={'ok' if self.clause2_ok else 'VIOLATED'} "
            f"(races={len(self.op_races)}, scp_size={self.scp.size}, "
            f"unaccounted={len(self.unaccounted_races)})"
        )

    def to_json(self) -> dict:
        """Machine-readable verdict (``weakraces check --json``)."""
        def race(r: OpRace) -> dict:
            return {
                "a": r.a, "b": r.b, "addr": r.addr,
                "data_race": r.is_data_race,
            }
        return {
            "kind": "condition34",
            "ok": self.ok,
            "clause1_ok": self.clause1_ok,
            "clause2_ok": self.clause2_ok,
            "data_race_free": self.data_race_free,
            "no_stale_reads": self.no_stale_reads,
            "scp": {
                "cuts": list(self.scp.cuts),
                "size": self.scp.size,
                "whole_execution": self.scp.is_whole_execution,
            },
            "op_races": [race(r) for r in self.op_races],
            "data_races_in_scp": [race(r) for r in self.data_races_in_scp],
            "unaccounted_races": [race(r) for r in self.unaccounted_races],
        }


def check_condition_34(result: ExecutionResult) -> Condition34Report:
    """Verify both clauses of Condition 3.4 against ground truth.

    Clause (1): if the execution exhibits no data races, it must be
    sequentially consistent.  In the simulator, "no stale reads" is
    exactly "the global issue order is an SC witness" (every read
    returned the latest committed write), so clause (1) reduces to:
    data-race-free implies no stale reads.

    Clause (2): every data race must occur in the SCP or be affected by
    a data race occurring in the SCP.  Affects is G'-reachability, so a
    race is accounted for iff one of its endpoints is an endpoint of —
    or reachable in G' from an endpoint of — an SCP data race.
    """
    hb = OpHappensBefore(result.operations)
    races = find_op_races(result.operations, hb)
    data = [race for race in races if race.is_data_race]
    no_stale = not any(op.stale for op in result.operations)
    data_race_free = not data
    clause1_ok = (not data_race_free) or no_stale

    scp = extract_scp(result, hb)
    in_scp = [race for race in data if scp.contains_race(race)]

    unaccounted: List[OpRace] = []
    outside = [race for race in data if not scp.contains_race(race)]
    if outside:
        gprime = build_op_augmented(hb, races)
        seeds = {race.a for race in in_scp} | {race.b for race in in_scp}
        affected = reachable_from_any(gprime, seeds) if seeds else set()
        for race in outside:
            if race.a not in affected and race.b not in affected:
                unaccounted.append(race)

    return Condition34Report(
        data_race_free=data_race_free,
        no_stale_reads=no_stale,
        clause1_ok=clause1_ok,
        scp=scp,
        op_races=races,
        data_races_in_scp=in_scp,
        unaccounted_races=unaccounted,
    )
