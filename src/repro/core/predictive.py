"""Predictive race detection backends: SHB and WCP.

The paper's hb1 detector reports races *observed* unordered in the one
execution at hand, and its multi-race guarantee is partition-shaped:
each first partition holds at least one real race (Theorem 4.2), so a
hunted trace yields roughly one actionable verdict.  Two later lines of
work extend what a single trace can certify, and both bolt directly
onto this repo's event/vector-clock machinery:

* **SHB** — "What Happens-After the First Race?" (Mathur, Kini,
  Viswanathan 2018, see PAPERS.md).  Augment happens-before with
  reads-from edges and re-detect per variable against the last write /
  reads-since-last-write: every race found that way is individually
  *schedulable* (some valid reordering exhibits it), so reporting can
  soundly continue past the first race.  :class:`SHBDetector` keeps the
  hb1 race set and partition analysis bit-identical to the postmortem
  baseline and adds the per-race soundness classification on top — the
  differential guarantee is ``shb.races == hb1.races`` with first
  partitions unchanged, plus ``sound_races`` certified individually.

* **WCP** — "Dynamic Race Prediction in Linear Time" (Kini, Mathur,
  Viswanathan 2017, see PAPERS.md).  Weaken happens-before: a release
  orders a later acquire of the same location only when the two
  critical sections conflict on data.  Orderings that existed only
  because two independent critical sections shared a lock disappear,
  and conflicting accesses they separated become *predicted* races —
  races of a reordering of the observed execution.  The adaptation to
  this trace format is deliberately conservative (critical-section
  windows are widened to the whole processor prefix/suffix when the
  bracketing acquire/release is missing, and any shared access — sync
  or data — on another location counts as a conflict), so an edge is
  only dropped when the sections demonstrably touch disjoint data.
  WCP's soundness guarantee covers the *first* race it reports; later
  predicted races are candidates, and the report labels them so.

Both backends run their modified edge sets through the *same*
:class:`~repro.core.hb1_vc.VectorClockHB1` sweep (the relation object
is passed as ``base``), so the clock-matrix race sweep, the epoch
tests, and the cyclic-hb1 closure fallback are shared, not duplicated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from .. import obs
from ..trace.build import Trace
from ..machine.operations import SyncRole
from ..trace.events import EventId, SyncEvent
from .hb1 import HappensBefore1
from .hb1_vc import CyclicHB1Error, VectorClockHB1
from .partitions import partition_races
from .races import EventRace, find_races
from .report import RaceReport


class ScheduleHappensBefore(HappensBefore1):
    """hb1 plus reads-from edges — the SHB relation of Mathur et al.

    hb1 pairs a release with a later acquire (Definition 2.1); SHB
    additionally orders every synchronization read after the most
    recent value-matched synchronization write of its location
    (role-agnostic), approximating the reads-from relation with exactly
    the information the trace records (per-location sync order plus
    values, section 4.1).  The extra edges only strengthen the order,
    so SHB-unordered pairs are a subset of hb1-unordered pairs — which
    is why the SHB backend *classifies* the hb1 race set instead of
    shrinking it.
    """

    def __init__(self, trace: Trace) -> None:
        self.rf_edges: List[Tuple[EventId, EventId]] = []
        super().__init__(trace)

    def _pair_location(self, addr: int, order: List[EventId]) -> None:
        super()._pair_location(addr, order)
        writes: List[SyncEvent] = []
        for eid in order:
            event = self.trace.event(eid)
            assert isinstance(event, SyncEvent)
            if event.writes_addr:
                writes.append(event)
                continue
            for w in reversed(writes):
                if w.value != event.value:
                    continue
                if (
                    w.eid.proc != event.eid.proc
                    and not self.graph.has_edge(w.eid, event.eid)
                ):
                    self.graph.add_edge(w.eid, event.eid)
                    self.rf_edges.append((w.eid, event.eid))
                break


class WeakCausallyPrecedes(HappensBefore1):
    """hb1 with non-conflicting critical-section orderings removed.

    A release->acquire so1 edge survives only when the two critical
    sections it connects conflict on some location other than the lock
    itself.  The releaser's section spans from its opening acquire (or
    the processor's start, when the release is not bracketed — e.g. a
    producer's flag release) through the release; the acquirer's spans
    from the acquire through its closing release (or the processor's
    end).  Sync accesses to other locations count as accesses.  Both
    widenings and the sync-access rule are conservative: when in doubt
    the edge is *kept*, so WCP's order only weakens where the sections
    demonstrably touch disjoint data.
    """

    def __init__(self, trace: Trace) -> None:
        super().__init__(trace)
        self.dropped_so1_edges: List[Tuple[EventId, EventId]] = []
        with obs.span("wcp.filter") as sp:
            kept: List[Tuple[EventId, EventId]] = []
            for rel, acq in self.so1_edges:
                if self._sections_conflict(rel, acq):
                    kept.append((rel, acq))
                else:
                    self.graph.remove_edge(rel, acq)
                    self.dropped_so1_edges.append((rel, acq))
            self.so1_edges = kept
            if sp.enabled:
                sp.add("so1_kept", len(kept))
                sp.add("so1_dropped", len(self.dropped_so1_edges))

    # ------------------------------------------------------------------
    def _sections_conflict(self, rel: EventId, acq: EventId) -> bool:
        lock_addr = self.trace.event(rel).addr
        rel_lo = 0
        for pos in range(rel.pos - 1, -1, -1):
            event = self.trace.events[rel.proc][pos]
            if (
                isinstance(event, SyncEvent)
                and event.addr == lock_addr
                and event.role is SyncRole.ACQUIRE
            ):
                rel_lo = pos
                break
        acq_hi = len(self.trace.events[acq.proc]) - 1
        for pos in range(acq.pos + 1, acq_hi + 1):
            event = self.trace.events[acq.proc][pos]
            if (
                isinstance(event, SyncEvent)
                and event.addr == lock_addr
                and event.role is SyncRole.RELEASE
            ):
                acq_hi = pos
                break
        r1, w1 = self._window_accesses(rel.proc, rel_lo, rel.pos, lock_addr)
        r2, w2 = self._window_accesses(acq.proc, acq.pos, acq_hi, lock_addr)
        return bool(w1 & (r2 | w2)) or bool((r1 | w1) & w2)

    def _window_accesses(
        self, proc: int, lo: int, hi: int, lock_addr: int
    ) -> Tuple[Set[int], Set[int]]:
        reads: Set[int] = set()
        writes: Set[int] = set()
        for event in self.trace.events[proc][lo:hi + 1]:
            if isinstance(event, SyncEvent):
                if event.addr == lock_addr:
                    continue
                (writes if event.writes_addr else reads).add(event.addr)
            else:
                reads.update(event.reads)
                writes.update(event.writes)
        return reads, writes


# ----------------------------------------------------------------------
# reports
# ----------------------------------------------------------------------

@dataclass
class SHBReport(RaceReport):
    """The postmortem report plus SHB per-race soundness.

    ``races`` and the partition analysis are identical to the hb1
    baseline (the differential guarantee); ``sound_races`` is the
    subset each of which SHB certifies *individually* schedulable —
    detected against the per-variable last-write/last-read state and
    SHB-unordered (the two conditions of Mathur et al.'s soundness
    theorem).
    """

    kind = "shb"

    sound_races: List[EventRace] = field(default_factory=list)
    rf_edge_count: int = 0

    @property
    def reported_races(self) -> List[EventRace]:
        """First-partition data races, then further sound data races:
        everything with an individual or partition-level guarantee."""
        reported = [
            race for p in self.first_partitions for race in p.data_races
        ]
        seen = {(race.a, race.b) for race in reported}
        for race in self.sound_races:
            if race.is_data_race and (race.a, race.b) not in seen:
                reported.append(race)
                seen.add((race.a, race.b))
        return reported

    @property
    def certified_race_count(self) -> int:
        """Each sound data race is certified individually; a first
        partition with no sound race still guarantees one (Theorem
        4.2), so it contributes one."""
        sound = {
            (race.a, race.b)
            for race in self.sound_races
            if race.is_data_race
        }
        uncovered = sum(
            1 for p in self.first_partitions
            if not any((race.a, race.b) in sound for race in p.data_races)
        )
        return len(sound) + uncovered

    def format(self) -> str:
        lines = [super().format()]
        if self.race_free:
            return lines[0]
        sound = [race for race in self.sound_races if race.is_data_race]
        lines.append("")
        lines.append(
            f"SHB analysis ({self.rf_edge_count} reads-from edge(s)): "
            f"{len(sound)} of {len(self.data_races)} data race(s) "
            f"individually certified schedulable."
        )
        for race in sound:
            lines.append(f"  {race.describe(self.trace)} [sound]")
        return "\n".join(lines)

    def to_json(self) -> Dict:
        payload = super().to_json()
        race_index = {race: i for i, race in enumerate(self.races)}
        payload["sound_races"] = [
            race_index[race] for race in self.sound_races
        ]
        payload["rf_edges"] = self.rf_edge_count
        return payload

    @classmethod
    def from_json(cls, payload: Dict) -> "SHBReport":
        report = super().from_json(payload)
        report.sound_races = [
            report.races[i] for i in payload.get("sound_races", [])
        ]
        report.rf_edge_count = payload.get("rf_edges", 0)
        return report


@dataclass
class WCPReport(RaceReport):
    """The postmortem report plus WCP-predicted races.

    ``races`` is the observed hb1 race set *plus* the predicted ones
    (conflicting pairs unordered once non-conflicting critical-section
    edges are dropped), so the WCP race set structurally contains the
    hb1 set.  The partition analysis covers the observed races only —
    first partitions match the baseline.  Predicted races are races of
    a *reordering* of this execution; WCP's soundness theorem covers
    the first of them, so they are surfaced as predictions, not
    individually certified.
    """

    kind = "wcp"

    predicted_races: List[EventRace] = field(default_factory=list)
    dropped_so1: int = 0

    @property
    def observed_races(self) -> List[EventRace]:
        predicted = {(race.a, race.b) for race in self.predicted_races}
        return [
            race for race in self.races
            if (race.a, race.b) not in predicted
        ]

    @property
    def reported_races(self) -> List[EventRace]:
        reported = [
            race for p in self.first_partitions for race in p.data_races
        ]
        seen = {(race.a, race.b) for race in reported}
        for race in self.predicted_races:
            if race.is_data_race and (race.a, race.b) not in seen:
                reported.append(race)
                seen.add((race.a, race.b))
        return reported

    @property
    def certified_race_count(self) -> int:
        """One per observed first partition (Theorem 4.2), plus one for
        the predictions when they are all this report has: WCP's
        soundness theorem covers the *first* WCP race, so a trace whose
        only races are predicted still certifies exactly one real race
        in some reordering."""
        certified = len(self.first_partitions)
        if certified == 0 and any(
            race.is_data_race for race in self.predicted_races
        ):
            certified = 1
        return certified

    def format(self) -> str:
        lines = [super().format()]
        predicted = [r for r in self.predicted_races if r.is_data_race]
        if not predicted and not self.dropped_so1:
            return lines[0]
        lines.append("")
        lines.append(
            f"WCP analysis: dropped {self.dropped_so1} non-conflicting "
            f"critical-section edge(s); {len(predicted)} predicted data "
            f"race(s) in reorderings of this execution."
        )
        for race in predicted:
            lines.append(f"  {race.describe(self.trace)} [predicted]")
        if predicted:
            lines.append(
                "  (prediction soundness covers the first predicted race; "
                "verify others by replay)"
            )
        return "\n".join(lines)

    def to_json(self) -> Dict:
        payload = super().to_json()
        race_index = {race: i for i, race in enumerate(self.races)}
        payload["predicted_races"] = [
            race_index[race] for race in self.predicted_races
        ]
        payload["dropped_so1"] = self.dropped_so1
        return payload

    @classmethod
    def from_json(cls, payload: Dict) -> "WCPReport":
        report = super().from_json(payload)
        report.predicted_races = [
            report.races[i] for i in payload.get("predicted_races", [])
        ]
        report.dropped_so1 = payload.get("dropped_so1", 0)
        return report


# ----------------------------------------------------------------------
# detectors
# ----------------------------------------------------------------------

def _baseline(trace: Trace):
    """The postmortem pipeline's hb1 + races + partitions (shared by
    both predictive detectors so their observed layer is bit-identical
    to the baseline)."""
    hb = HappensBefore1(trace)
    try:
        ordering = VectorClockHB1(trace, base=hb)
    except CyclicHB1Error:
        ordering = hb
        hb.closure  # eager: profiles attribute the closure to its stage
    races = find_races(trace, ordering)
    analysis = partition_races(trace, hb, races)
    return hb, races, analysis


class SHBDetector:
    """Stateless SHB analysis pipeline; one ``analyze`` call per trace."""

    def analyze(self, trace: Trace) -> SHBReport:
        with obs.span("detect.shb") as sp:
            hb, races, analysis = _baseline(trace)
            shb = ScheduleHappensBefore(trace)
            sound: List[EventRace] = []
            try:
                shb_vc = VectorClockHB1(
                    trace, base=shb, track_variables=True
                )
            except CyclicHB1Error:
                # A cyclic SHB relation has no linearization, so the
                # per-variable sweep (and with it the soundness
                # argument) does not apply; report the baseline with
                # nothing individually certified.
                shb_vc = None
            if shb_vc is not None:
                adjacent = shb_vc.adjacent_conflicts
                sound = [
                    race for race in races
                    if race.is_data_race
                    and (race.a, race.b) in adjacent
                    and shb_vc.unordered(race.a, race.b)
                ]
            if sp.enabled:
                sp.add("rf_edges", len(shb.rf_edges))
                sp.add("sound_races", len(sound))
        return SHBReport(
            trace=trace,
            hb=hb,
            races=races,
            analysis=analysis,
            sound_races=sound,
            rf_edge_count=len(shb.rf_edges),
        )


class WCPDetector:
    """Stateless WCP analysis pipeline; one ``analyze`` call per trace."""

    def analyze(self, trace: Trace) -> WCPReport:
        with obs.span("detect.wcp") as sp:
            hb, observed, analysis = _baseline(trace)
            wcp = WeakCausallyPrecedes(trace)
            predicted: List[EventRace] = []
            combined = observed
            if wcp.dropped_so1_edges:
                try:
                    wcp_ordering = VectorClockHB1(trace, base=wcp)
                except CyclicHB1Error:
                    wcp_ordering = wcp
                    wcp.closure
                wcp_races = find_races(trace, wcp_ordering)
                observed_pairs = {(r.a, r.b) for r in observed}
                predicted = [
                    race for race in wcp_races
                    if (race.a, race.b) not in observed_pairs
                ]
                if predicted:
                    combined = sorted(
                        observed + predicted, key=lambda r: (r.a, r.b)
                    )
            if sp.enabled:
                sp.add("so1_dropped", len(wcp.dropped_so1_edges))
                sp.add("predicted_races", len(predicted))
        return WCPReport(
            trace=trace,
            hb=hb,
            races=combined,
            analysis=analysis,
            predicted_races=predicted,
            dropped_so1=len(wcp.dropped_so1_edges),
        )
