"""Operation-level hb1 and races — the ground-truth layer.

The detector proper works on events (section 4.1); this module applies
Definitions 2.2–2.4 directly to individual memory operations of a
simulated execution.  It may use simulator ground truth (each read
records which write it observed), because its role is *verifying* the
paper's claims — Condition 3.4, Theorems 4.1/4.2 — not detecting races
from realistic traces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..graph import DiGraph, TransitiveClosure
from ..machine.operations import MemoryOperation, SyncRole


@dataclass(frozen=True)
class OpRace:
    """A race between two operations, identified by global seq."""

    a: int
    b: int
    addr: int
    is_data_race: bool

    def involves(self, seq: int) -> bool:
        return seq == self.a or seq == self.b


class OpHappensBefore:
    """hb1 over individual operations, built from ground truth.

    po: consecutive operations of one processor.  so1: a release write
    to an acquire read that *observed* it (the simulator records the
    observed write, so pairing is exact here).
    """

    def __init__(self, operations: List[MemoryOperation]) -> None:
        self.operations = operations
        self.graph = DiGraph()
        self.so1_edges: List[Tuple[int, int]] = []
        self._by_seq: Dict[int, MemoryOperation] = {}
        self._closure: Optional[TransitiveClosure] = None
        self._build()

    def _build(self) -> None:
        last_of_proc: Dict[int, int] = {}
        for op in self.operations:
            self.graph.add_node(op.seq)
            self._by_seq[op.seq] = op
            previous = last_of_proc.get(op.proc)
            if previous is not None:
                self.graph.add_edge(previous, op.seq)
            last_of_proc[op.proc] = op.seq
        for op in self.operations:
            if op.role is not SyncRole.ACQUIRE or op.observed_write is None:
                continue
            release = self._by_seq.get(op.observed_write)
            if (
                release is not None
                and release.role is SyncRole.RELEASE
                and release.proc != op.proc
            ):
                self.graph.add_edge(release.seq, op.seq)
                self.so1_edges.append((release.seq, op.seq))

    @property
    def closure(self) -> TransitiveClosure:
        if self._closure is None:
            self._closure = TransitiveClosure(self.graph)
        return self._closure

    def ordered(self, a: int, b: int) -> bool:
        return self.closure.ordered(a, b)

    def unordered(self, a: int, b: int) -> bool:
        return not self.closure.comparable(a, b)

    def op(self, seq: int) -> MemoryOperation:
        return self._by_seq[seq]


def find_op_races(
    operations: List[MemoryOperation], hb: Optional[OpHappensBefore] = None
) -> List[OpRace]:
    """All operation-level races (Definition 2.4)."""
    hb = hb or OpHappensBefore(operations)
    by_addr: Dict[int, List[MemoryOperation]] = {}
    for op in operations:
        by_addr.setdefault(op.addr, []).append(op)

    races: List[OpRace] = []
    for addr, ops in by_addr.items():
        for i, x in enumerate(ops):
            for y in ops[i + 1:]:
                if x.proc == y.proc:
                    continue
                if not (x.is_write or y.is_write):
                    continue
                if hb.unordered(x.seq, y.seq):
                    races.append(
                        OpRace(
                            a=min(x.seq, y.seq),
                            b=max(x.seq, y.seq),
                            addr=addr,
                            is_data_race=(x.is_data or y.is_data),
                        )
                    )
    races.sort(key=lambda race: (race.a, race.b))
    return races


def build_op_augmented(hb: OpHappensBefore, races: List[OpRace]) -> DiGraph:
    """G' at operation level: hb1 plus doubly directed race edges."""
    gprime = hb.graph.copy()
    for race in races:
        gprime.add_edge(race.a, race.b)
        gprime.add_edge(race.b, race.a)
    return gprime
