"""The unified detection entry point: ``repro.detect``.

Every detector variant, every source kind, one front door::

    report = repro.detect(source, detector="postmortem", profile=None)

``source`` may be a :class:`~repro.trace.build.Trace`, an
:class:`~repro.machine.simulator.ExecutionResult`, or a trace-file path
(str / ``os.PathLike``, as written by ``weakraces trace`` /
:func:`repro.trace.tracefile.write_trace`).

``detector`` selects the variant:

* ``"postmortem"`` — the paper's pipeline (§4.1–4.2); returns a
  :class:`~repro.core.report.RaceReport`.
* ``"naive"`` — the report-everything strawman (§3.1); returns a
  :class:`~repro.analysis.naive.NaiveReport`.
* ``"onthefly"`` — the streaming bounded-history detector with online
  first-race classification (§5); returns an
  :class:`~repro.core.onthefly.OnTheFlyReport`.  Requires an
  ``ExecutionResult`` (it consumes the operation stream, which trace
  files deliberately do not record — §4.1).
* ``"shb"`` — the postmortem pipeline plus SHB per-race soundness
  (Mathur et al. 2018): the same race set and first partitions, with
  ``sound_races`` each individually certified schedulable; returns an
  :class:`~repro.core.predictive.SHBReport`.
* ``"wcp"`` — the postmortem pipeline plus WCP race *prediction* (Kini
  et al. 2017): non-conflicting critical-section orderings are dropped
  and races of reorderings surface as ``predicted_races``; returns a
  :class:`~repro.core.predictive.WCPReport`.

All returned reports share one protocol: ``format()``,
``to_json()``, and ``from_json()`` (see :func:`report_from_json`), so
CLI ``--json`` output and hunt artifacts serialize uniformly.

``profile`` threads the observability layer through the call: pass a
:class:`repro.obs.Profiler` to record into it, or a path to write a
JSONL profile of this detection (see ``docs/detection_pipeline.md``,
"Profiling the pipeline").
"""

from __future__ import annotations

import os
from typing import Optional, Union

from . import obs
from .analysis.naive import NaiveDetector, NaiveReport
from .core.onthefly import OnTheFlyReport
from .core.onthefly_first import FirstRaceOnTheFlyDetector
from .core.report import RaceReport
from .machine.simulator import ExecutionResult
from .trace.build import Trace, build_trace
from .trace.tracefile import read_trace

DETECTOR_NAMES = ("postmortem", "naive", "onthefly", "shb", "wcp")

ReportType = Union[RaceReport, NaiveReport, OnTheFlyReport]


def _resolve_source(source) -> Union[Trace, ExecutionResult]:
    if isinstance(source, (str, os.PathLike)):
        return read_trace(source)
    if isinstance(source, (Trace, ExecutionResult)):
        return source
    raise TypeError(
        f"expected Trace, ExecutionResult, or trace-file path, "
        f"got {type(source).__name__}"
    )


def _detect(source, detector: str) -> ReportType:
    resolved = _resolve_source(source)
    if detector == "onthefly":
        if not isinstance(resolved, ExecutionResult):
            raise TypeError(
                "detector='onthefly' consumes the operation stream and "
                "needs an ExecutionResult; trace files do not record "
                "individual operations (paper section 4.1)"
            )
        with obs.span("detect.onthefly") as sp:
            streaming = FirstRaceOnTheFlyDetector(resolved.processor_count)
            streaming.process_all(resolved.operations)
            if sp.enabled:
                sp.add("operations", len(resolved.operations))
                sp.add("races", len(streaming.races))
                sp.add("evicted_accesses", streaming.evicted_accesses)
        return OnTheFlyReport(
            processor_count=resolved.processor_count,
            model_name=resolved.model_name,
            races=streaming.races,
            first_races=streaming.first_races,
            non_first_races=streaming.non_first_races,
            evicted_accesses=streaming.evicted_accesses,
        )
    trace = (
        build_trace(resolved)
        if isinstance(resolved, ExecutionResult)
        else resolved
    )
    if detector == "postmortem":
        from .core.detector import PostMortemDetector

        return PostMortemDetector().analyze(trace)
    if detector == "shb":
        from .core.predictive import SHBDetector

        return SHBDetector().analyze(trace)
    if detector == "wcp":
        from .core.predictive import WCPDetector

        return WCPDetector().analyze(trace)
    assert detector == "naive"
    return NaiveDetector().analyze(trace)


def detect(
    source,
    *,
    detector: str = "postmortem",
    profile=None,
) -> ReportType:
    """Run one detector variant on *source* (see module docstring).

    Args:
        source: a ``Trace``, an ``ExecutionResult``, or a trace-file
            path (``str`` / ``os.PathLike``).
        detector: ``"postmortem"`` (default), ``"naive"``,
            ``"onthefly"``, ``"shb"``, or ``"wcp"``.
        profile: ``None`` (no profiling), a :class:`repro.obs.Profiler`
            to record into, or a path — a fresh profiler is activated
            for the call and written there as JSONL.  When the detector
            raises, the partial profile is still written (with an
            ``error`` meta field) before the exception propagates.

    Returns:
        The detector's report; all variants support ``format()`` and
        ``to_json()``.
    """
    if detector not in DETECTOR_NAMES:
        raise ValueError(
            f"unknown detector {detector!r}; "
            f"known: {', '.join(DETECTOR_NAMES)}"
        )
    if profile is None:
        return _detect(source, detector)
    if isinstance(profile, obs.Profiler):
        with profile.activate(), obs.span("detect"):
            return _detect(source, detector)
    if isinstance(profile, (str, os.PathLike)):
        profiler = obs.Profiler()
        meta = {"command": "detect", "detector": detector}
        try:
            with profiler.activate(), obs.span("detect"):
                report = _detect(source, detector)
        except Exception as exc:
            # The spans recorded up to the failure are exactly what a
            # post-mortem of the failure needs; losing them because the
            # detector raised would defeat the point of profiling.
            meta["error"] = f"{type(exc).__name__}: {exc}"
            obs.write_profile(profiler, profile, meta=meta)
            raise
        obs.write_profile(profiler, profile, meta=meta)
        return report
    raise TypeError(
        f"profile must be None, a Profiler, or a path, "
        f"got {type(profile).__name__}"
    )


def explain(source, *, include_sync: bool = False):
    """Detect races on *source* and build witness-checked provenance
    for each one (``weakraces explain`` in library form).

    *source* is anything :func:`detect` accepts, or an existing
    post-mortem :class:`~repro.core.report.RaceReport`.  Returns a
    :class:`~repro.core.provenance.ProvenanceReport`: per data race,
    the hb1 non-ordering witness (BFS cross-checked against the
    closure backend), its SCC/partition in G', and the Definition 4.1
    ordering evidence that makes its partition first (or not).
    """
    from .core.provenance import explain_races

    report = source if isinstance(source, RaceReport) else _detect(
        source, "postmortem"
    )
    return explain_races(report, include_sync=include_sync)


def report_from_json(payload: dict) -> ReportType:
    """Rebuild any detector report from its ``to_json()`` payload,
    dispatching on the payload's ``kind``.

    An unknown or missing ``kind`` (garbage, ``None``, or a payload
    from a future format this reader does not know) raises
    :class:`ValueError` naming the offending kind and listing every
    kind this build understands.
    """
    from .core.predictive import SHBReport, WCPReport

    readers = {
        "postmortem": RaceReport.from_json,
        "naive": NaiveReport.from_json,
        "onthefly": OnTheFlyReport.from_json,
        "shb": SHBReport.from_json,
        "wcp": WCPReport.from_json,
    }
    kind = payload.get("kind")
    reader = readers.get(kind)
    if reader is None:
        raise ValueError(
            f"unknown report kind {kind!r}; "
            f"known kinds: {', '.join(sorted(readers))}"
        )
    return reader(payload)


__all__ = ["DETECTOR_NAMES", "detect", "explain", "report_from_json"]
