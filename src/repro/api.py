"""The unified detection entry point: ``repro.detect``.

Every detector variant, every source kind, one front door::

    report = repro.detect(source, detector="postmortem", profile=None)

``source`` may be any *trace source*:

* a :class:`~repro.trace.build.Trace` (including a lazy mmap-backed
  :class:`~repro.trace.columnar.ColumnarTrace`);
* an :class:`~repro.machine.simulator.ExecutionResult`;
* a trace-file path (str / ``os.PathLike``) — the format is sniffed
  from the magic bytes: columnar (``WRCT``), v1 binary (``WRTR``), or
  JSON-lines (see :func:`load_trace`);
* an open binary file object containing any of those formats;
* an iterator/iterable of
  :class:`~repro.machine.operations.MemoryOperation` in global emission
  order (e.g. the simulator's ``on_operation`` stream).

``detector`` selects the variant:

* ``"postmortem"`` — the paper's pipeline (§4.1–4.2); returns a
  :class:`~repro.core.report.RaceReport`.
* ``"naive"`` — the report-everything strawman (§3.1); returns a
  :class:`~repro.analysis.naive.NaiveReport`.
* ``"onthefly"`` — the streaming bounded-history detector with online
  first-race classification (§5); returns an
  :class:`~repro.core.onthefly.OnTheFlyReport`.  Requires an
  ``ExecutionResult`` (it consumes the operation stream, which trace
  files deliberately do not record — §4.1).
* ``"streaming"`` — the exact online detector
  (:mod:`repro.core.streaming`): consumes events with O(P·V) state, no
  trace materialized, and reports the identical race set to the
  post-mortem hb1 sweep; returns a
  :class:`~repro.core.streaming.StreamingReport`.
* ``"shb"`` — the postmortem pipeline plus SHB per-race soundness
  (Mathur et al. 2018): the same race set and first partitions, with
  ``sound_races`` each individually certified schedulable; returns an
  :class:`~repro.core.predictive.SHBReport`.
* ``"wcp"`` — the postmortem pipeline plus WCP race *prediction* (Kini
  et al. 2017): non-conflicting critical-section orderings are dropped
  and races of reorderings surface as ``predicted_races``; returns an
  :class:`~repro.core.predictive.WCPReport`.

All returned reports share one protocol: ``format()``,
``to_json()``, and ``from_json()`` (see :func:`report_from_json`), so
CLI ``--json`` output and hunt artifacts serialize uniformly.

``profile`` threads the observability layer through the call: pass a
:class:`repro.obs.Profiler` to record into it, or a path to write a
JSONL profile of this detection (see ``docs/detection_pipeline.md``,
"Profiling the pipeline").
"""

from __future__ import annotations

import io
import os
from pathlib import Path
from typing import List, Optional, Union

from . import obs
from .analysis.naive import NaiveDetector, NaiveReport
from .core.onthefly import OnTheFlyReport
from .core.onthefly_first import FirstRaceOnTheFlyDetector
from .core.report import RaceReport
from .core.streaming import StreamingDetector, StreamingReport
from .machine.operations import MemoryOperation
from .machine.simulator import ExecutionResult
from .trace.binfile import (
    MAGIC as _BINARY_MAGIC,
    _read_binary_trace,
    _read_binary_trace_stream,
    write_binary_trace,
)
from .trace.build import Trace, TraceBuilder, build_trace
from .trace.columnar import (
    COLUMNAR_MAGIC,
    _columnar_from_buffer,
    open_columnar,
    to_columnar,
)
from .trace.tracefile import _parse_trace_lines, _read_trace, write_trace

DETECTOR_NAMES = ("postmortem", "naive", "onthefly", "streaming", "shb", "wcp")

TRACE_FORMATS = ("jsonl", "binary", "columnar")

_SUFFIX_FORMATS = {
    ".jsonl": "jsonl",
    ".json": "jsonl",
    ".trace": "jsonl",
    ".bin": "binary",
    ".wrtr": "binary",
    ".col": "columnar",
    ".columnar": "columnar",
    ".wrct": "columnar",
}

ReportType = Union[RaceReport, NaiveReport, OnTheFlyReport, StreamingReport]


# ----------------------------------------------------------------------
# trace loading / saving: one front door for all three formats
# ----------------------------------------------------------------------

def sniff_trace_format(path: Union[str, os.PathLike]) -> str:
    """Identify a trace file's format from its magic bytes:
    ``"columnar"`` (``WRCT``), ``"binary"`` (``WRTR``), else
    ``"jsonl"``."""
    with open(path, "rb") as fh:
        head = fh.read(4)
    if head == COLUMNAR_MAGIC:
        return "columnar"
    if head == _BINARY_MAGIC:
        return "binary"
    return "jsonl"


def load_trace(source: Union[str, os.PathLike]) -> Trace:
    """Load a trace file in any supported format, auto-detected by
    magic bytes.

    Columnar files open *lazily*: the returned
    :class:`~repro.trace.columnar.ColumnarTrace` exposes numpy views
    over an mmap and materializes event objects only on demand.  Binary
    and JSON-lines files are fully decoded.
    """
    fmt = sniff_trace_format(source)
    if fmt == "columnar":
        return open_columnar(source)
    if fmt == "binary":
        return _read_binary_trace(source)
    return _read_trace(source)


def save_trace(
    trace: Trace,
    path: Union[str, os.PathLike],
    format: Optional[str] = None,
) -> str:
    """Write *trace* to *path* as ``"jsonl"``, ``"binary"``, or
    ``"columnar"``; with ``format=None`` the format is inferred from
    the path suffix (``.bin``/``.wrtr`` → binary, ``.col``/``.wrct``/
    ``.columnar`` → columnar, anything else → jsonl).  Returns the
    format written."""
    if format is None:
        format = _SUFFIX_FORMATS.get(Path(path).suffix.lower(), "jsonl")
    if format not in TRACE_FORMATS:
        raise ValueError(
            f"unknown trace format {format!r}; "
            f"known: {', '.join(TRACE_FORMATS)}"
        )
    if format == "columnar":
        to_columnar(trace, path)
    elif format == "binary":
        write_binary_trace(trace, path)
    else:
        write_trace(trace, path)
    return format


def _trace_from_file_object(fh) -> Trace:
    """Resolve an open file object: sniff the leading bytes and parse
    whichever of the three formats they announce."""
    data = fh.read()
    if isinstance(data, str):
        lines = [line for line in data.splitlines() if line.strip()]
        return _parse_trace_lines(lines, getattr(fh, "name", "<trace>"))
    if data[:4] == COLUMNAR_MAGIC:
        return _columnar_from_buffer(data)
    if data[:4] == _BINARY_MAGIC:
        return _read_binary_trace_stream(io.BytesIO(data))
    text = data.decode("utf-8")
    lines = [line for line in text.splitlines() if line.strip()]
    return _parse_trace_lines(lines, getattr(fh, "name", "<trace>"))


def _trace_from_operations(ops: List[MemoryOperation]) -> Trace:
    """Segment a bare operation stream into a trace, inferring the
    processor count and memory size from the operations themselves."""
    processor_count = max((op.proc for op in ops), default=0) + 1
    memory_size = max((op.addr for op in ops), default=0) + 1
    builder = TraceBuilder(
        processor_count=processor_count, memory_size=memory_size
    )
    for op in ops:
        builder.add_operation(op)
    return builder.finish()


def _resolve_source(source) -> Union[Trace, ExecutionResult, list]:
    """Normalize any trace source to a Trace, an ExecutionResult, or a
    list of MemoryOperations (the streaming detector consumes the last
    directly; everything else segments it into a Trace)."""
    if isinstance(source, (str, os.PathLike)):
        return load_trace(source)
    if isinstance(source, (Trace, ExecutionResult)):
        return source
    if hasattr(source, "read"):
        return _trace_from_file_object(source)
    if hasattr(source, "__iter__") or hasattr(source, "__next__"):
        ops = list(source)
        if all(isinstance(op, MemoryOperation) for op in ops):
            return ops
        raise TypeError(
            "iterable sources must yield MemoryOperation objects"
        )
    raise TypeError(
        f"expected Trace, ExecutionResult, trace-file path, open trace "
        f"file, or MemoryOperation iterable, got {type(source).__name__}"
    )


def _detect(source, detector: str) -> ReportType:
    resolved = _resolve_source(source)
    if detector == "streaming":
        streaming = StreamingDetector()
        if isinstance(resolved, ExecutionResult):
            return streaming.analyze_execution(resolved)
        if isinstance(resolved, list):
            processor_count = max(
                (op.proc for op in resolved), default=0
            ) + 1
            return streaming.analyze_operations(
                resolved, processor_count=processor_count
            )
        return streaming.analyze(resolved)
    if detector == "onthefly":
        if not isinstance(resolved, ExecutionResult):
            raise TypeError(
                "detector='onthefly' consumes the operation stream and "
                "needs an ExecutionResult; trace files do not record "
                "individual operations (paper section 4.1)"
            )
        with obs.span("detect.onthefly") as sp:
            streaming = FirstRaceOnTheFlyDetector(resolved.processor_count)
            streaming.process_all(resolved.operations)
            if sp.enabled:
                sp.add("operations", len(resolved.operations))
                sp.add("races", len(streaming.races))
                sp.add("evicted_accesses", streaming.evicted_accesses)
        return OnTheFlyReport(
            processor_count=resolved.processor_count,
            model_name=resolved.model_name,
            races=streaming.races,
            first_races=streaming.first_races,
            non_first_races=streaming.non_first_races,
            evicted_accesses=streaming.evicted_accesses,
        )
    if isinstance(resolved, ExecutionResult):
        trace = build_trace(resolved)
    elif isinstance(resolved, list):
        trace = _trace_from_operations(resolved)
    else:
        trace = resolved
    if detector == "postmortem":
        from .core.detector import PostMortemDetector

        return PostMortemDetector().analyze(trace)
    if detector == "shb":
        from .core.predictive import SHBDetector

        return SHBDetector().analyze(trace)
    if detector == "wcp":
        from .core.predictive import WCPDetector

        return WCPDetector().analyze(trace)
    assert detector == "naive"
    return NaiveDetector().analyze(trace)


def detect(
    source,
    *,
    detector: str = "postmortem",
    profile=None,
) -> ReportType:
    """Run one detector variant on *source* (see module docstring).

    Args:
        source: a ``Trace``, an ``ExecutionResult``, a trace-file path
            (``str`` / ``os.PathLike``, any format — sniffed), an open
            trace file object, or an iterable of ``MemoryOperation``.
        detector: ``"postmortem"`` (default), ``"naive"``,
            ``"onthefly"``, ``"streaming"``, ``"shb"``, or ``"wcp"``.
        profile: ``None`` (no profiling), a :class:`repro.obs.Profiler`
            to record into, or a path — a fresh profiler is activated
            for the call and written there as JSONL.  When the detector
            raises, the partial profile is still written (with an
            ``error`` meta field) before the exception propagates.

    Returns:
        The detector's report; all variants support ``format()`` and
        ``to_json()``.
    """
    if detector not in DETECTOR_NAMES:
        raise ValueError(
            f"unknown detector {detector!r}; "
            f"known: {', '.join(DETECTOR_NAMES)}"
        )
    if profile is None:
        return _detect(source, detector)
    if isinstance(profile, obs.Profiler):
        with profile.activate(), obs.span("detect"):
            return _detect(source, detector)
    if isinstance(profile, (str, os.PathLike)):
        profiler = obs.Profiler()
        meta = {"command": "detect", "detector": detector}
        try:
            with profiler.activate(), obs.span("detect"):
                report = _detect(source, detector)
        except Exception as exc:
            # The spans recorded up to the failure are exactly what a
            # post-mortem of the failure needs; losing them because the
            # detector raised would defeat the point of profiling.
            meta["error"] = f"{type(exc).__name__}: {exc}"
            obs.write_profile(profiler, profile, meta=meta)
            raise
        obs.write_profile(profiler, profile, meta=meta)
        return report
    raise TypeError(
        f"profile must be None, a Profiler, or a path, "
        f"got {type(profile).__name__}"
    )


def check_robustness(source):
    """Robustness verdict for *source*: does the observed execution
    have a sequentially consistent justification?

    *source* is anything :func:`detect` accepts **except** a bare
    trace: an :class:`~repro.machine.simulator.ExecutionResult` or an
    iterable of :class:`~repro.machine.operations.MemoryOperation`.
    Trace files and :class:`~repro.trace.build.Trace` objects do not
    record read values or observed writers (paper section 4.1), and
    the reads-from relation is exactly what robustness is about.

    Returns a :class:`~repro.core.robustness.RobustnessReport` with
    the SC witness order when robust, or the minimal po/rf/co/fr
    violating cycle plus the SC-prefix boundary when not.
    """
    from .core.robustness import check_robustness as _check

    resolved = _resolve_source(source)
    if isinstance(resolved, Trace):
        raise TypeError(
            "check_robustness needs the reads-from relation and so "
            "consumes the operation stream; pass an ExecutionResult "
            "or a MemoryOperation iterable — trace files do not "
            "record observed writers (paper section 4.1)"
        )
    return _check(resolved)


def explain(source, *, include_sync: bool = False):
    """Detect races on *source* and build witness-checked provenance
    for each one (``weakraces explain`` in library form).

    *source* is anything :func:`detect` accepts, or an existing
    post-mortem :class:`~repro.core.report.RaceReport`.  Returns a
    :class:`~repro.core.provenance.ProvenanceReport`: per data race,
    the hb1 non-ordering witness (BFS cross-checked against the
    closure backend), its SCC/partition in G', and the Definition 4.1
    ordering evidence that makes its partition first (or not).
    """
    from .core.provenance import explain_races

    report = source if isinstance(source, RaceReport) else _detect(
        source, "postmortem"
    )
    return explain_races(report, include_sync=include_sync)


def report_from_json(payload: dict) -> ReportType:
    """Rebuild any detector report from its ``to_json()`` payload,
    dispatching on the payload's ``kind``.

    An unknown or missing ``kind`` (garbage, ``None``, or a payload
    from a future format this reader does not know) raises
    :class:`ValueError` naming the offending kind and listing every
    kind this build understands.
    """
    from .core.predictive import SHBReport, WCPReport
    from .core.robustness import RobustnessReport

    readers = {
        "postmortem": RaceReport.from_json,
        "naive": NaiveReport.from_json,
        "onthefly": OnTheFlyReport.from_json,
        "streaming": StreamingReport.from_json,
        "shb": SHBReport.from_json,
        "wcp": WCPReport.from_json,
        "robustness": RobustnessReport.from_json,
    }
    kind = payload.get("kind")
    reader = readers.get(kind)
    if reader is None:
        raise ValueError(
            f"unknown report kind {kind!r}; "
            f"known kinds: {', '.join(sorted(readers))}"
        )
    return reader(payload)


__all__ = [
    "DETECTOR_NAMES",
    "TRACE_FORMATS",
    "check_robustness",
    "detect",
    "explain",
    "load_trace",
    "report_from_json",
    "save_trace",
    "sniff_trace_format",
]
