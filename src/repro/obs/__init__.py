"""repro.obs — pipeline observability: spans, counters, profiles.

The hot path calls :func:`span`/:func:`count` (near-zero-cost no-ops
until a :class:`Profiler` is activated); CLI/API entry points activate
a profiler and export JSONL via :mod:`repro.obs.export`.  See
``docs/detection_pipeline.md`` ("Profiling the pipeline") for the span
names and the file schema.
"""

from .profiler import (
    NULL_SPAN,
    AggregateRecord,
    Profiler,
    Span,
    SpanRecord,
    active,
    aggregate_records,
    count,
    enabled,
    span,
)
from .export import (
    PROFILE_FORMAT,
    read_profile,
    validate_profile,
    write_profile,
)

__all__ = [
    "NULL_SPAN",
    "AggregateRecord",
    "Profiler",
    "Span",
    "SpanRecord",
    "active",
    "aggregate_records",
    "count",
    "enabled",
    "span",
    "PROFILE_FORMAT",
    "read_profile",
    "validate_profile",
    "write_profile",
]
