"""repro.obs — pipeline observability: spans, metrics, events, profiles.

Two complementary layers:

* the span profiler (:mod:`repro.obs.profiler` + :mod:`repro.obs.export`)
  answers "where did the time go" for one bounded run;
* the telemetry layer (:mod:`repro.obs.metrics` typed registry,
  :mod:`repro.obs.events` structured JSONL event log,
  :mod:`repro.obs.live` status line, :mod:`repro.obs.exporters`
  Prometheus exposition, :mod:`repro.obs.server` HTTP endpoint, and
  :mod:`repro.obs.top` dashboard) answers "what is happening right
  now" for long-running hunts.

The hot path calls :func:`span`/:func:`count` (near-zero-cost no-ops
until a :class:`Profiler` is activated); CLI/API entry points activate
a profiler/registry and export JSONL.  See
``docs/detection_pipeline.md`` ("Observability") for span/metric names
and the file schemas.
"""

from . import events, live, metrics

# exporters/server/top are deliberately NOT imported here: each is
# also an entry point (``python -m repro.obs.exporters``) or pulls in
# http/urllib machinery the hot path never needs — import them as
# submodules (``from repro.obs import server``) on demand.
from .profiler import (
    NULL_SPAN,
    AggregateRecord,
    Profiler,
    Span,
    SpanRecord,
    active,
    aggregate_records,
    count,
    enabled,
    merge_aggregate_maps,
    span,
)
from .export import (
    PROFILE_FORMAT,
    read_profile,
    check_profile,
    validate_profile,
    write_profile,
)

__all__ = [
    "events",
    "live",
    "metrics",
    "NULL_SPAN",
    "AggregateRecord",
    "Profiler",
    "Span",
    "SpanRecord",
    "active",
    "aggregate_records",
    "count",
    "enabled",
    "merge_aggregate_maps",
    "span",
    "PROFILE_FORMAT",
    "read_profile",
    "check_profile",
    "validate_profile",
    "write_profile",
]
