"""Profile export: the JSONL schema, plus read-back and validation.

A profile file is JSON-lines:

* line 1 — a meta record::

      {"t": "meta", "format": 1, "command": "...", ...}

* then one record per span, depth-first (``"t": "span"`` — see
  :meth:`repro.obs.profiler.SpanRecord.to_dict`: ``name``, ``path``,
  ``depth``, ``start_sec``, ``dur_sec``, ``counters``,
  ``peak_rss_kb``);

* optionally one ``{"t": "counters", "counters": {...}}`` record with
  the profiler's top-level counters;

* optionally ``{"t": "agg", ...}`` records — per-span-path totals
  aggregated across fork workers (``path``, ``count``, ``total_sec``,
  ``min_sec``, ``max_sec``, ``counters``, ``peak_rss_kb``).

``python -m repro.obs.export FILE...`` validates files against this
schema (the CI profile-smoke step uses it).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..ioutil import atomic_write_text, read_jsonl_tolerant
from .profiler import Profiler

PROFILE_FORMAT = 1

_SPAN_KEYS = {"name", "path", "depth", "start_sec", "dur_sec", "counters"}
_AGG_KEYS = {"path", "count", "total_sec", "min_sec", "max_sec", "counters"}


def write_profile(
    profiler: Profiler,
    path: Union[str, Path],
    meta: Optional[dict] = None,
) -> None:
    """Write *profiler* to *path* in the JSONL schema above.

    The whole document is materialized once at run end (profiles are
    not streamed), so it is written atomically — a crash mid-export
    never leaves a torn profile behind."""
    header = {"t": "meta", "format": PROFILE_FORMAT}
    if meta:
        header.update(meta)
    lines = [json.dumps(header, sort_keys=True)]
    lines.extend(
        json.dumps(record, sort_keys=True)
        for record in profiler.to_records()
    )
    if profiler.counters:
        lines.append(json.dumps(
            {"t": "counters", "counters": dict(profiler.counters)},
            sort_keys=True,
        ))
    lines.extend(
        json.dumps(agg.to_dict(), sort_keys=True)
        for _, agg in sorted(profiler.aggregates.items())
    )
    atomic_write_text(path, "\n".join(lines) + "\n")


def read_profile(path: Union[str, Path]) -> Dict[str, list]:
    """Load a profile file into ``{"meta": ..., "spans": [...],
    "counters": {...}, "aggregates": [...]}``."""
    path = Path(path)
    meta: Optional[dict] = None
    spans: List[dict] = []
    aggregates: List[dict] = []
    counters: Dict[str, int] = {}
    with path.open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            kind = record.get("t")
            if kind == "meta":
                meta = record
            elif kind == "span":
                spans.append(record)
            elif kind == "agg":
                aggregates.append(record)
            elif kind == "counters":
                counters.update(record.get("counters", {}))
    return {
        "meta": meta,
        "spans": spans,
        "counters": counters,
        "aggregates": aggregates,
    }


def check_profile(
    path: Union[str, Path],
) -> Tuple[List[str], List[str]]:
    """Check *path* against the schema; returns ``(problems,
    warnings)``.  An undecodable final line (the shape a killed
    process's buffered tail write leaves) is a warning; undecodable
    bytes anywhere else are a problem."""
    records, problems, warnings = read_jsonl_tolerant(path)
    if problems:
        return problems, warnings
    if not records:
        if not warnings:
            problems.append("empty profile file")
        return problems, warnings
    meta = records[0]
    if meta.get("t") != "meta":
        problems.append("first record is not a meta record")
    elif "format" not in meta:
        problems.append("meta record has no format version")
    else:
        version = meta["format"]
        if not isinstance(version, int) or isinstance(version, bool):
            problems.append(f"format version is not an integer: {version!r}")
        elif version != PROFILE_FORMAT:
            problems.append(
                f"unknown format version {version!r} "
                f"(this reader understands {PROFILE_FORMAT})"
            )
    for i, record in enumerate(records[1:], start=2):
        kind = record.get("t")
        if kind == "span":
            missing = _SPAN_KEYS - record.keys()
            if missing:
                problems.append(
                    f"line {i}: span missing {sorted(missing)}"
                )
            elif record["dur_sec"] < 0:
                problems.append(f"line {i}: negative span duration")
        elif kind == "agg":
            missing = _AGG_KEYS - record.keys()
            if missing:
                problems.append(f"line {i}: agg missing {sorted(missing)}")
        elif kind == "counters":
            if not isinstance(record.get("counters"), dict):
                problems.append(f"line {i}: counters record without dict")
        elif kind == "meta":
            problems.append(f"line {i}: duplicate meta record")
        else:
            problems.append(f"line {i}: unknown record type {kind!r}")
    return problems, warnings


def validate_profile(path: Union[str, Path]) -> List[str]:
    """:func:`check_profile` problems only (the historical interface);
    truncated-tail warnings do not fail validation."""
    problems, _ = check_profile(path)
    return problems


def main(argv: Optional[List[str]] = None) -> int:
    """Validate profile files given on the command line."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.export",
        description="validate pipeline profile JSONL files",
    )
    parser.add_argument("files", nargs="+")
    args = parser.parse_args(argv)
    status = 0
    for name in args.files:
        problems, warnings = check_profile(name)
        for warning in warnings:
            print(f"{name}: warning: {warning}")
        if problems:
            status = 1
            for problem in problems:
                print(f"{name}: {problem}")
        else:
            loaded = read_profile(name)
            print(
                f"{name}: ok ({len(loaded['spans'])} span(s), "
                f"{len(loaded['aggregates'])} aggregate(s))"
            )
    return status


if __name__ == "__main__":  # pragma: no cover - exercised via CI smoke
    import sys

    sys.exit(main())
