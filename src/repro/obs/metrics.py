"""repro.obs.metrics — a typed metrics registry for long-running work.

The span profiler (:mod:`repro.obs.profiler`) answers "where did the
time go" for one bounded run; this module answers "what is happening
right now, and at what rate" for work that keeps going — the ROADMAP's
production-scale hunts.  Four instrument types, all label-aware:

* :class:`Counter` — monotonically increasing totals
  (``hunt_tries_total{policy="ring", status="racy"}``);
* :class:`Gauge` — a value that goes up and down (``hunt_done``);
* :class:`Histogram` — observations bucketed by fixed upper bounds,
  with running count/sum (``hunt_job_duration_seconds``);
* :class:`TimeSeries` — a bounded ring buffer of ``(t, value)`` points
  for rate curves (``hunt_throughput``); old points fall off the front.

A :class:`MetricsRegistry` owns instruments by name.  Instruments are
get-or-create (:meth:`MetricsRegistry.counter` etc. return the existing
instrument when the name is already registered, and raise on a
type/label mismatch), so call sites never coordinate creation.

Cross-process merge: fork workers (or repeated runs) serialize a
registry with :meth:`MetricsRegistry.to_records` — plain dicts, cheap
to pickle or JSON — and any registry folds them back in with
:meth:`MetricsRegistry.merge_records`.  Counters and histograms sum,
gauges keep the last value applied, time series interleave by
timestamp and keep the newest ``capacity`` points; merging is
commutative for everything except gauges (documented, and the hunt
only sets gauges parent-side).

Like the profiler, collection is opt-in: the hunt engine folds
per-outcome metrics into a registry only when one is active (one
module-attribute check per *hunt*, not per job), so the disabled-mode
overhead budget of ``benchmarks/bench_profiling.py`` is unaffected.

Hunt metric names (written by :func:`repro.analysis.parallel.run_hunt`,
read by :class:`repro.obs.live.HuntStatusLine`):

=============================  =========  ==================================
name                           type       labels / meaning
=============================  =========  ==================================
``hunt_tries_total``           Counter    ``policy``, ``status`` (racy |
                                          clean | error | skipped, plus
                                          ``retried`` for attempts a
                                          later retry superseded),
                                          ``detector`` (the hunt's
                                          analysis backend)
``hunt_trace_cache_hits_total``  Counter  analyses served from the cache
``hunt_job_duration_seconds``  Histogram  per-job wall time
``hunt_done`` / ``hunt_total``  Gauge     completed / planned jobs
``hunt_racy``                  Gauge      racy runs so far
``hunt_elapsed_seconds``       Gauge      wall time since the hunt began
``hunt_throughput``            TimeSeries ``(elapsed, jobs/sec)`` samples
``hunt_failures_total``        Counter    ``kind`` — settled-error
                                          classification (deterministic
                                          | exhausted | unretried)
``hunt_info``                  Gauge      ``hunt_id``, ``detector``,
                                          ``model`` — constant ``1``;
                                          joins scrapes to event logs,
                                          checkpoints, and results
``hunt_coverage_fingerprints`` Gauge     distinct trace fingerprints
``hunt_coverage_provenance_partitions``  Gauge — distinct first-race
                                          provenance partition signatures
``hunt_coverage``              TimeSeries ``(elapsed, count)`` growth
                                          curve, labelled ``kind``
                                          (fingerprints | partitions)
``hunt_scrapes_total``         Counter    ``endpoint`` — telemetry-server
                                          requests served
=============================  =========  ==================================

The fold is split across the batch wire (see
:class:`repro.analysis.parallel.BatchOutcome`): pool workers pre-fold
the *status-independent* instruments — the duration histogram and the
cache-hit counter — into one ``to_records()`` payload per batch, which
the parent ``merge_records()``s as batches arrive; the status counter
(whose error→retried reclassification only the parent can decide) and
every gauge/time series fold parent-side per outcome.  Totals are
identical to the serial fold either way.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "TimeSeries",
    "MetricsRegistry",
    "active",
    "collect",
    "enabled",
    "DEFAULT_BUCKETS",
]

#: Default histogram bucket upper bounds (seconds-flavoured, like the
#: hunt's job durations); the implicit +inf bucket is always present.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0,
)

LabelValues = Tuple[str, ...]


class MetricError(ValueError):
    """Instrument misuse: wrong labels, or a name re-registered with a
    different type or label set."""


class _Instrument:
    """Shared label plumbing for all instrument types."""

    kind = "instrument"

    def __init__(self, name: str, help: str, labels: Sequence[str]) -> None:
        self.name = name
        self.help = help
        self.labels: Tuple[str, ...] = tuple(labels)

    def _key(self, label_kwargs: Dict[str, str]) -> LabelValues:
        if set(label_kwargs) != set(self.labels):
            raise MetricError(
                f"{self.kind} {self.name!r} takes labels "
                f"{list(self.labels)}, got {sorted(label_kwargs)}"
            )
        return tuple(str(label_kwargs[label]) for label in self.labels)

    def _label_dict(self, key: LabelValues) -> Dict[str, str]:
        return dict(zip(self.labels, key))


class Counter(_Instrument):
    """A monotonically increasing total, per label set."""

    kind = "counter"

    def __init__(self, name: str, help: str = "",
                 labels: Sequence[str] = ()) -> None:
        super().__init__(name, help, labels)
        self._values: Dict[LabelValues, float] = {}

    def inc(self, n: float = 1, **labels: str) -> None:
        if n < 0:
            raise MetricError(
                f"counter {self.name!r} cannot decrease (inc({n}))"
            )
        key = self._key(labels)
        self._values[key] = self._values.get(key, 0) + n

    def value(self, **labels: str) -> float:
        return self._values.get(self._key(labels), 0)

    def total(self) -> float:
        """Sum over every label set."""
        return sum(self._values.values())

    def series(self) -> List[dict]:
        return [
            {"labels": self._label_dict(key), "value": value}
            for key, value in sorted(self._values.items())
        ]

    def _merge(self, series: List[dict]) -> None:
        for entry in series:
            key = self._key(entry["labels"])
            self._values[key] = self._values.get(key, 0) + entry["value"]


class Gauge(_Instrument):
    """A value that goes up and down, per label set."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "",
                 labels: Sequence[str] = ()) -> None:
        super().__init__(name, help, labels)
        self._values: Dict[LabelValues, float] = {}

    def set(self, value: float, **labels: str) -> None:
        self._values[self._key(labels)] = value

    def add(self, n: float = 1, **labels: str) -> None:
        key = self._key(labels)
        self._values[key] = self._values.get(key, 0) + n

    def value(self, **labels: str) -> Optional[float]:
        return self._values.get(self._key(labels))

    def series(self) -> List[dict]:
        return [
            {"labels": self._label_dict(key), "value": value}
            for key, value in sorted(self._values.items())
        ]

    def _merge(self, series: List[dict]) -> None:
        # Last applied wins: gauges describe current state, not totals.
        for entry in series:
            self._values[self._key(entry["labels"])] = entry["value"]


class Histogram(_Instrument):
    """Observations bucketed by fixed upper bounds, with count and sum.

    Bucket counts are non-cumulative per bucket (the record format sums
    cleanly across workers); quantile estimates interpolate within the
    bucket containing the target rank.
    """

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 labels: Sequence[str] = (),
                 buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        super().__init__(name, help, labels)
        bounds = tuple(sorted(buckets))
        if not bounds:
            raise MetricError(f"histogram {self.name!r} needs >=1 bucket")
        self.bounds = bounds
        # per label set: [per-bucket counts..., +inf count], count, sum
        self._data: Dict[LabelValues, Tuple[List[int], int, float]] = {}

    def _cell(self, key: LabelValues) -> Tuple[List[int], int, float]:
        cell = self._data.get(key)
        if cell is None:
            cell = ([0] * (len(self.bounds) + 1), 0, 0.0)
            self._data[key] = cell
        return cell

    def observe(self, value: float, **labels: str) -> None:
        key = self._key(labels)
        counts, count, total = self._cell(key)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                counts[i] += 1
                break
        else:
            counts[-1] += 1
        self._data[key] = (counts, count + 1, total + value)

    def count(self, **labels: str) -> int:
        cell = self._data.get(self._key(labels))
        return cell[1] if cell else 0

    def sum(self, **labels: str) -> float:
        cell = self._data.get(self._key(labels))
        return cell[2] if cell else 0.0

    def mean(self, **labels: str) -> Optional[float]:
        cell = self._data.get(self._key(labels))
        if not cell or cell[1] == 0:
            return None
        return cell[2] / cell[1]

    def quantile(self, q: float, **labels: str) -> Optional[float]:
        """Estimate the *q*-quantile (0..1) from the bucket counts.

        Ranks are assumed uniform within the bucket holding the target
        rank, so the estimate interpolates linearly between the
        bucket's bounds (the lowest bucket interpolates up from 0),
        like Prometheus's ``histogram_quantile``.  Error bound: the
        true quantile lies in the same bucket ``(lo, hi]``, so the
        estimate is off by at most the bucket width ``hi - lo`` — and
        is exact when observations really are uniform in the bucket.
        Ranks landing in the implicit +inf bucket clamp to the largest
        finite bound, which can under-estimate without bound; size the
        top bucket above the expected maximum.
        """
        if not 0.0 <= q <= 1.0:
            raise MetricError(
                f"histogram {self.name!r}: quantile {q} not in [0, 1]"
            )
        cell = self._data.get(self._key(labels))
        if not cell or cell[1] == 0:
            return None
        counts, count, _ = cell
        target = q * count
        lo = 0.0
        seen = 0
        for i, bound in enumerate(self.bounds):
            below = seen
            seen += counts[i]
            if seen >= target:
                if counts[i] == 0:
                    return bound
                frac = (target - below) / counts[i]
                return lo + (bound - lo) * min(max(frac, 0.0), 1.0)
            lo = bound
        return self.bounds[-1]

    def series(self) -> List[dict]:
        return [
            {
                "labels": self._label_dict(key),
                "buckets": list(counts),
                "count": count,
                "sum": total,
            }
            for key, (counts, count, total) in sorted(self._data.items())
        ]

    def _merge(self, series: List[dict]) -> None:
        for entry in series:
            key = self._key(entry["labels"])
            counts, count, total = self._cell(key)
            incoming = entry["buckets"]
            if len(incoming) != len(counts):
                raise MetricError(
                    f"histogram {self.name!r}: bucket count mismatch "
                    f"({len(incoming)} != {len(counts)})"
                )
            for i, n in enumerate(incoming):
                counts[i] += n
            self._data[key] = (
                counts, count + entry["count"], total + entry["sum"]
            )


class TimeSeries(_Instrument):
    """A bounded ring buffer of ``(t, value)`` samples, per label set.

    ``capacity`` bounds memory for arbitrarily long runs; recording the
    ``capacity + 1``-th point drops the oldest.
    """

    kind = "timeseries"

    def __init__(self, name: str, help: str = "",
                 labels: Sequence[str] = (), capacity: int = 256) -> None:
        super().__init__(name, help, labels)
        if capacity < 1:
            raise MetricError(f"timeseries {self.name!r} capacity must be >=1")
        self.capacity = capacity
        self._points: Dict[LabelValues, List[Tuple[float, float]]] = {}

    def record(self, t: float, value: float, **labels: str) -> None:
        points = self._points.setdefault(self._key(labels), [])
        points.append((t, value))
        if len(points) > self.capacity:
            del points[: len(points) - self.capacity]

    def points(self, **labels: str) -> List[Tuple[float, float]]:
        return list(self._points.get(self._key(labels), ()))

    def latest(self, **labels: str) -> Optional[Tuple[float, float]]:
        points = self._points.get(self._key(labels))
        return points[-1] if points else None

    def series(self) -> List[dict]:
        return [
            {
                "labels": self._label_dict(key),
                "points": [[t, v] for t, v in points],
            }
            for key, points in sorted(self._points.items())
        ]

    def _merge(self, series: List[dict]) -> None:
        for entry in series:
            key = self._key(entry["labels"])
            points = self._points.setdefault(key, [])
            points.extend((t, v) for t, v in entry["points"])
            points.sort(key=lambda point: point[0])
            if len(points) > self.capacity:
                del points[: len(points) - self.capacity]


_TYPES = {
    cls.kind: cls for cls in (Counter, Gauge, Histogram, TimeSeries)
}


class MetricsRegistry:
    """Instruments by name, with get-or-create accessors and merge.

    Instruments themselves are not thread-safe; single-threaded folds
    (the hunt's parent-side ``observe`` callback) need no locking.  When
    another thread *reads* the registry concurrently — the telemetry
    server rendering ``/metrics`` while a hunt folds outcomes — both
    sides bracket their access with :meth:`hold`::

        with registry.hold():
            text = render_prometheus(registry)

    The lock is reentrant, so a writer already holding it can call
    helpers that take it again.
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, _Instrument] = {}
        self._lock = threading.RLock()

    def hold(self) -> "threading.RLock":
        """Reentrant lock serialising cross-thread registry access."""
        return self._lock

    # -- get-or-create -------------------------------------------------
    def _get(self, cls, name: str, help: str,
             labels: Sequence[str], **extra) -> _Instrument:
        existing = self._instruments.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise MetricError(
                    f"{name!r} is registered as a {existing.kind}, "
                    f"not a {cls.kind}"
                )
            if existing.labels != tuple(labels):
                raise MetricError(
                    f"{existing.kind} {name!r} is registered with labels "
                    f"{list(existing.labels)}, not {list(labels)}"
                )
            return existing
        instrument = cls(name, help=help, labels=labels, **extra)
        self._instruments[name] = instrument
        return instrument

    def counter(self, name: str, help: str = "",
                labels: Sequence[str] = ()) -> Counter:
        return self._get(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "",
              labels: Sequence[str] = ()) -> Gauge:
        return self._get(Gauge, name, help, labels)

    def histogram(self, name: str, help: str = "",
                  labels: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        return self._get(Histogram, name, help, labels, buckets=buckets)

    def timeseries(self, name: str, help: str = "",
                   labels: Sequence[str] = (),
                   capacity: int = 256) -> TimeSeries:
        return self._get(TimeSeries, name, help, labels, capacity=capacity)

    def get(self, name: str) -> Optional[_Instrument]:
        """The instrument registered under *name*, if any (no create)."""
        return self._instruments.get(name)

    def names(self) -> List[str]:
        return sorted(self._instruments)

    # -- export / merge ------------------------------------------------
    def to_records(self) -> List[dict]:
        """One plain dict per instrument — picklable, JSONable, and the
        unit of cross-process merge."""
        records = []
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            record = {
                "t": "metric",
                "kind": instrument.kind,
                "name": name,
                "help": instrument.help,
                "labels": list(instrument.labels),
                "series": instrument.series(),
            }
            if isinstance(instrument, Histogram):
                record["bounds"] = list(instrument.bounds)
            if isinstance(instrument, TimeSeries):
                record["capacity"] = instrument.capacity
            records.append(record)
        return records

    def merge_records(self, records: Iterable[dict]) -> None:
        """Fold serialized instruments (from :meth:`to_records`) into
        this registry, creating missing instruments on the fly."""
        for record in records:
            if record.get("t") != "metric":
                continue
            cls = _TYPES.get(record["kind"])
            if cls is None:
                raise MetricError(f"unknown metric kind {record['kind']!r}")
            extra = {}
            if cls is Histogram:
                extra["buckets"] = tuple(record.get("bounds", DEFAULT_BUCKETS))
            if cls is TimeSeries:
                extra["capacity"] = record.get("capacity", 256)
            instrument = self._get(
                cls, record["name"], record.get("help", ""),
                tuple(record.get("labels", ())), **extra,
            )
            instrument._merge(record["series"])

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry into this one (via its records)."""
        self.merge_records(other.to_records())

    def snapshot(self) -> Dict[str, dict]:
        """``{name: record}`` view of :meth:`to_records`."""
        return {record["name"]: record for record in self.to_records()}


# ----------------------------------------------------------------------
# module-level active registry (mirrors the profiler's activation slot)
# ----------------------------------------------------------------------

_ACTIVE: Optional[MetricsRegistry] = None


def active() -> Optional[MetricsRegistry]:
    """The registry currently collecting in this process, if any."""
    return _ACTIVE


def enabled() -> bool:
    """True when a registry is collecting in this process."""
    return _ACTIVE is not None


class _Collection:
    """Sets/restores the module-level active registry."""

    __slots__ = ("_registry", "_previous")

    def __init__(self, registry: MetricsRegistry) -> None:
        self._registry = registry
        self._previous: Optional[MetricsRegistry] = None

    def __enter__(self) -> MetricsRegistry:
        global _ACTIVE
        self._previous = _ACTIVE
        _ACTIVE = self._registry
        return self._registry

    def __exit__(self, exc_type, exc, tb) -> bool:
        global _ACTIVE
        _ACTIVE = self._previous
        return False


def collect(registry: Optional[MetricsRegistry] = None) -> _Collection:
    """Context manager: make *registry* (or a fresh one) the active
    collection target::

        with metrics.collect() as reg:
            hunt_races(...)
        print(reg.counter("hunt_tries_total",
                          labels=("policy", "status", "detector")).total())
    """
    return _Collection(registry if registry is not None else MetricsRegistry())
