"""repro.obs.events — a schema-versioned structured event log.

Where the profiler records *spans* (how long each stage took) and the
metrics registry records *rates*, the event log records *what
happened*: one wide JSONL record per unit of work, written as it
completes, so a long-running hunt leaves an auditable, tail-able
history instead of only a final summary.

The schema (``EVENTS_FORMAT`` = 1) is JSON-lines:

* line 1 — a meta record::

      {"t": "meta", "schema": 1, "kind": "hunt", "workload": ..., ...}

* ``{"t": "try", ...}`` — one record per hunt try: ``index``,
  ``seed``, ``policy``, ``status`` (racy | clean | error | retried |
  skipped), ``duration_sec``, ``cache_hit``, ``fingerprint``
  (canonical trace fingerprint, "" when the cache is off), ``races``
  (count found), ``operations``, ``completed`` (False = step bound
  hit), plus retry provenance ``attempt``/``retries`` (optional for
  backward compatibility; ``status="retried"`` marks an attempt that
  a later retry superseded).  Newer writers add, still optionally:
  ``detector`` (the analysis backend), ``certified`` (the report's
  certified race count), ``failure_kind`` (settled-error
  classification), and ``partitions`` (first-race provenance coverage
  keys, see :func:`repro.core.provenance.partition_coverage_keys`);

* ``{"t": "stage", ...}`` — one record per detection stage, folded
  across all workers: ``path`` (span path, e.g.
  ``hunt.job/detect.postmortem/races.find``), ``count``,
  ``total_sec``, ``min_sec``, ``max_sec``, ``counters``;

* ``{"t": "summary", ...}`` — the run's closing totals (a subset of
  ``HuntResult.to_json()``).

:func:`check_events` checks a file against this schema — including
rejecting unknown ``schema`` versions — and ``weakraces events FILE``
validates, summarizes, or tails a log.  Records are flushed per line,
so ``weakraces events --tail`` (or plain ``tail -f``) works while the
hunt is still running.  Because the stream is append-only (an atomic
whole-file rewrite per record would break ``tail -f``), its crash
mode is a truncated final line: validation downgrades that one case
to a *warning* (the log merely lost its last record) while mid-file
garbage stays a hard problem.

Writing is opt-in (``weakraces hunt --events FILE`` or
``hunt_races(on_outcome=HuntEventLog(...).on_outcome)``); when no log
is attached the hot path pays nothing.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..ioutil import read_jsonl_tolerant

EVENTS_FORMAT = 1

TRY_STATUSES = ("racy", "clean", "error", "retried", "skipped")

_TRY_KEYS = {
    "index", "seed", "policy", "status", "duration_sec",
    "cache_hit", "fingerprint", "races", "operations", "completed",
}
_STAGE_KEYS = {"path", "count", "total_sec", "min_sec", "max_sec", "counters"}


class EventLogWriter:
    """Line-buffered JSONL event writer; a context manager.

    The meta record (schema version + caller-supplied context) is
    written immediately on construction, so even an interrupted run
    leaves a valid, identifiable log prefix.
    """

    def __init__(self, path: Union[str, Path], kind: str,
                 meta: Optional[dict] = None) -> None:
        self.path = Path(path)
        self._fh = self.path.open("w", encoding="utf-8")
        header = {"t": "meta", "schema": EVENTS_FORMAT, "kind": kind}
        if meta:
            header.update(meta)
        self.write(header)

    def write(self, record: dict) -> None:
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self._fh.flush()

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "EventLogWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


class HuntEventLog:
    """The hunt's event stream: one ``try`` record per job outcome.

    ``on_outcome`` plugs straight into
    :func:`repro.analysis.hunting.hunt_races`'s hook of the same name;
    stage aggregates and the closing summary are appended by the CLI
    once the merged :class:`~repro.analysis.hunting.HuntResult` exists.
    """

    def __init__(self, path: Union[str, Path],
                 meta: Optional[dict] = None,
                 detector: str = "") -> None:
        self.writer = EventLogWriter(path, kind="hunt", meta=meta)
        self.detector = detector
        self.tries = 0

    @property
    def path(self) -> Path:
        return self.writer.path

    def on_outcome(self, outcome) -> None:
        """Record one job outcome (duck-typed
        :class:`repro.analysis.parallel.JobOutcome`)."""
        self.tries += 1
        record = {
            "t": "try",
            "index": outcome.job.index,
            "seed": outcome.job.seed,
            "policy": outcome.job.policy_name,
            "status": outcome.status,
            "duration_sec": round(outcome.duration, 6),
            "cache_hit": outcome.cache_hit,
            "fingerprint": outcome.fingerprint,
            "races": outcome.race_count,
            "operations": outcome.operations,
            "completed": outcome.completed,
            "error": outcome.error,
            "attempt": outcome.job.attempt,
            "retries": outcome.retries,
            "certified": getattr(outcome, "certified_races", 0),
        }
        if self.detector:
            record["detector"] = self.detector
        failure_kind = getattr(outcome, "failure_kind", "")
        if failure_kind:
            record["failure_kind"] = failure_kind
        partitions = getattr(outcome, "partition_keys", ())
        if partitions:
            record["partitions"] = list(partitions)
        robust = getattr(outcome, "robust", None)
        if robust is not None:
            record["robust"] = robust
        self.writer.write(record)

    def write_stages(self, stage_profile: Optional[Dict[str, dict]]) -> None:
        """Append one ``stage`` record per aggregated span path (from
        ``HuntResult.stage_profile``; a no-op when profiling was off)."""
        if not stage_profile:
            return
        for path in sorted(stage_profile):
            agg = dict(stage_profile[path])
            agg.pop("t", None)
            agg.pop("peak_rss_kb", None)
            agg["t"] = "stage"
            agg.setdefault("path", path)
            self.writer.write(agg)

    def write_summary(self, payload: dict) -> None:
        record = {"t": "summary"}
        record.update(payload)
        self.writer.write(record)

    def close(self) -> None:
        self.writer.close()

    def __enter__(self) -> "HuntEventLog":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


# ----------------------------------------------------------------------
# read-back, validation, summarization
# ----------------------------------------------------------------------

def read_events(path: Union[str, Path]) -> Dict[str, object]:
    """Load an event log into ``{"meta": ..., "tries": [...],
    "stages": [...], "summary": ...}``.  A truncated final line (the
    tail-write crash shape; see :func:`check_events`) is skipped —
    every complete record still loads."""
    meta: Optional[dict] = None
    tries: List[dict] = []
    stages: List[dict] = []
    summary: Optional[dict] = None
    records, _, _ = read_jsonl_tolerant(path)
    for record in records:
        kind = record.get("t")
        if kind == "meta":
            meta = record
        elif kind == "try":
            tries.append(record)
        elif kind == "stage":
            stages.append(record)
        elif kind == "summary":
            summary = record
    return {"meta": meta, "tries": tries, "stages": stages,
            "summary": summary}


def check_events(
    path: Union[str, Path],
) -> Tuple[List[str], List[str]]:
    """Check *path* against the event-log schema; returns
    ``(problems, warnings)``.  Files declaring an unknown ``schema``
    version are rejected, never silently accepted.

    A log whose *final* line is undecodable gets a warning, not a
    problem: the writer appends and flushes per record, so a process
    killed mid-append leaves exactly that shape, and every complete
    record before it is still trustworthy.  Undecodable bytes anywhere
    else mean real corruption and stay problems.
    """
    records, problems, warnings = read_jsonl_tolerant(path)
    if problems:
        return problems, warnings
    if not records:
        if not warnings:
            problems.append("empty event log")
        return problems, warnings
    meta = records[0]
    if meta.get("t") != "meta":
        problems.append("first record is not a meta record")
    else:
        schema = meta.get("schema")
        if not isinstance(schema, int) or isinstance(schema, bool):
            problems.append(f"meta.schema is not an integer: {schema!r}")
        elif schema != EVENTS_FORMAT:
            problems.append(
                f"unknown schema version {schema!r} "
                f"(this reader understands {EVENTS_FORMAT})"
            )
    for i, record in enumerate(records[1:], start=2):
        kind = record.get("t")
        if kind == "try":
            missing = _TRY_KEYS - record.keys()
            if missing:
                problems.append(f"line {i}: try missing {sorted(missing)}")
                continue
            if record["status"] not in TRY_STATUSES:
                problems.append(
                    f"line {i}: unknown try status {record['status']!r}"
                )
            if record["duration_sec"] < 0:
                problems.append(f"line {i}: negative try duration")
        elif kind == "stage":
            missing = _STAGE_KEYS - record.keys()
            if missing:
                problems.append(f"line {i}: stage missing {sorted(missing)}")
        elif kind == "summary":
            pass  # free-form totals
        elif kind == "meta":
            problems.append(f"line {i}: duplicate meta record")
        else:
            problems.append(f"line {i}: unknown record type {kind!r}")
    return problems, warnings


def validate_events(path: Union[str, Path]) -> List[str]:
    """:func:`check_events` problems only (the historical interface);
    truncated-tail warnings do not fail validation."""
    problems, _ = check_events(path)
    return problems


def format_try(record: dict) -> str:
    """One human-readable line per try record (the ``--tail`` view)."""
    flags = []
    if record.get("cache_hit"):
        flags.append("cache")
    if not record.get("completed", True):
        flags.append("step-bound")
    if record.get("attempt"):
        flags.append(f"attempt {record['attempt'] + 1}")
    if record.get("error"):
        flags.append(record["error"])
    suffix = f"  [{', '.join(flags)}]" if flags else ""
    fingerprint = record.get("fingerprint") or ""
    fp = f" fp={fingerprint[:12]}" if fingerprint else ""
    return (
        f"#{record['index']:<4} seed={record['seed']:<4} "
        f"{record['policy']:<12} {record['status']:<7} "
        f"races={record['races']:<3} "
        f"{record['duration_sec'] * 1000:7.2f}ms{fp}{suffix}"
    )


def summary_data(loaded: Dict[str, object]) -> Dict[str, object]:
    """Machine-readable aggregation of a loaded event log: per-policy
    and per-detector breakdowns plus totals.  This is what ``weakraces
    events --json`` attaches under ``"breakdown"`` and what the
    ``top --events`` dashboard renders.

    The detector of a try resolves from the record's own ``detector``
    field (newer writers) falling back to the meta record's; logs
    written before either existed aggregate under ``""`` and the
    per-detector table is simply empty.
    """
    meta = loaded.get("meta") or {}
    tries: List[dict] = loaded.get("tries") or []  # type: ignore[assignment]
    ran = [t for t in tries if t["status"] not in ("skipped", "retried")]
    per_policy: Dict[str, Dict[str, int]] = {}
    per_detector: Dict[str, Dict[str, int]] = {}
    by_status: Dict[str, int] = {}
    failures_by_kind: Dict[str, int] = {}
    meta_detector = meta.get("detector") if isinstance(meta, dict) else None
    for record in ran:
        racy = record["status"] == "racy"
        by_status[record["status"]] = by_status.get(record["status"], 0) + 1
        policy = per_policy.setdefault(
            record["policy"], {"tries": 0, "racy": 0})
        policy["tries"] += 1
        policy["racy"] += racy
        detector = record.get("detector") or meta_detector
        if detector:
            cell = per_detector.setdefault(
                str(detector), {"tries": 0, "racy": 0, "certified": 0})
            cell["tries"] += 1
            cell["racy"] += racy
            if racy:
                cell["certified"] += int(record.get("certified", 0) or 0)
        if record["status"] == "error":
            kind = record.get("failure_kind") or "unretried"
            failures_by_kind[kind] = failures_by_kind.get(kind, 0) + 1
    return {
        "tries": len(ran),
        "skipped": sum(1 for t in tries if t["status"] == "skipped"),
        "retried": sum(1 for t in tries if t["status"] == "retried"),
        "by_status": by_status,
        "per_policy": per_policy,
        "per_detector": per_detector,
        "failures_by_kind": failures_by_kind,
        "cache_hits": sum(1 for t in ran if t.get("cache_hit")),
    }


def summarize_events(loaded: Dict[str, object]) -> str:
    """Aggregate a loaded event log (see :func:`read_events`) into a
    human-readable summary: totals, per-policy racy rates, cache hit
    rate, duration percentiles, and the stage table when present."""
    meta = loaded.get("meta") or {}
    tries: List[dict] = loaded.get("tries") or []  # type: ignore[assignment]
    stages: List[dict] = loaded.get("stages") or []  # type: ignore[assignment]
    lines: List[str] = []
    context = " ".join(
        f"{key}={meta[key]}" for key in ("workload", "model", "jobs")
        if key in meta
    )
    lines.append(f"hunt event log{': ' + context if context else ''}")
    # Retried attempts were superseded by a later attempt of the same
    # job; keep them out of the racy-rate and duration statistics.
    ran = [t for t in tries
           if t["status"] not in ("skipped", "retried")]
    skipped = sum(1 for t in tries if t["status"] == "skipped")
    retried = sum(1 for t in tries if t["status"] == "retried")
    by_status: Dict[str, int] = {}
    for record in ran:
        by_status[record["status"]] = by_status.get(record["status"], 0) + 1
    status_text = ", ".join(
        f"{count} {status}" for status, count in sorted(by_status.items())
    )
    lines.append(
        f"  {len(ran)} tries ({status_text or 'none'})"
        + (f", {skipped} skipped by early stop" if skipped else "")
        + (f", {retried} retried attempt(s)" if retried else "")
    )
    cache_hits = sum(1 for record in ran if record.get("cache_hit"))
    if ran:
        lines.append(
            f"  trace cache: {cache_hits}/{len(ran)} hits "
            f"({cache_hits / len(ran):.0%})"
        )
        durations = sorted(record["duration_sec"] for record in ran)

        def pct(q: float) -> float:
            return durations[min(int(q * len(durations)), len(durations) - 1)]

        lines.append(
            f"  job duration: p50={pct(0.5) * 1000:.2f}ms "
            f"p95={pct(0.95) * 1000:.2f}ms max={durations[-1] * 1000:.2f}ms"
        )
    per_policy: Dict[str, List[int]] = {}
    for record in ran:
        racy, total = per_policy.setdefault(record["policy"], [0, 0])
        per_policy[record["policy"]] = [
            racy + (record["status"] == "racy"), total + 1,
        ]
    for policy, (racy, total) in sorted(per_policy.items()):
        lines.append(f"  {policy}: {racy}/{total} racy")
    per_detector = summary_data(loaded)["per_detector"]
    if per_detector:
        lines.append("  detectors:")
        for detector, cell in sorted(per_detector.items()):  # type: ignore
            lines.append(
                f"    {detector}: {cell['racy']}/{cell['tries']} racy, "
                f"{cell['certified']} certified race(s)"
            )
    if stages:
        lines.append("  stages (aggregated across workers):")
        for record in stages:
            lines.append(
                f"    {record['path']}: n={record['count']} "
                f"total={record['total_sec'] * 1000:.2f}ms"
            )
    summary = loaded.get("summary")
    if isinstance(summary, dict) and "elapsed_sec" in summary:
        lines.append(
            f"  run total: {summary.get('tries')} tries in "
            f"{summary['elapsed_sec']}s "
            f"({summary.get('executions_per_sec', '?')} exec/s)"
        )
    return "\n".join(lines)
