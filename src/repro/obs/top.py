"""repro.obs.top — a terminal dashboard for hunts.

``weakraces top --attach HOST:PORT`` polls a live hunt's telemetry
server (see :mod:`repro.obs.server`) and repaints a one-screen,
curses-free ANSI dashboard: progress, throughput, per-policy and
per-detector racy rates, a job-duration histogram sparkline, coverage
counters, cache hit rate, and the failure-classification table.
``weakraces top --events FILE`` renders the same dashboard from a
``hunt --events`` JSONL log instead — post-hoc, or over a growing file
while the hunt runs.

The module splits cleanly into a data layer and a render layer:

* :class:`TopSnapshot` — one dashboard's worth of numbers, with
  constructors :func:`snapshot_from_http` (GET ``/status`` +
  ``/metrics``, the exposition parsed by the strict vendored parser in
  :mod:`repro.obs.exporters`) and :func:`snapshot_from_events`
  (:func:`repro.obs.events.read_events` + ``summary_data``);
* :func:`render_top` — pure snapshot → text, which is what the tests
  drive;
* :func:`run_top` — the repaint loop (ANSI home + clear-to-end, no
  curses), with ``--once`` for scripts and a graceful "hunt finished"
  exit when a previously healthy endpoint goes away.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from . import events as _events
from .exporters import ExpositionError, parse_exposition

__all__ = [
    "TopError",
    "TopSnapshot",
    "snapshot_from_http",
    "snapshot_from_events",
    "sparkline",
    "render_top",
    "run_top",
]

#: sparkline glyphs, lowest to highest
_SPARKS = "▁▂▃▄▅▆▇█"

#: duration bounds used when binning an event log ourselves (matches
#: the hunt histogram's DEFAULT_BUCKETS, +inf implicit)
_EVENT_BUCKET_BOUNDS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0,
)


class TopError(RuntimeError):
    """The dashboard could not fetch or parse its data source."""


@dataclass
class TopSnapshot:
    """Everything one dashboard frame needs, source-agnostic."""

    source: str                       # "http://..." or an events path
    hunt_id: Optional[str] = None
    info: Dict[str, object] = field(default_factory=dict)
    settled: int = 0
    total: int = 0
    racy: int = 0
    elapsed_sec: float = 0.0
    throughput: Optional[float] = None
    tries_by_status: Dict[str, float] = field(default_factory=dict)
    per_policy: Dict[str, Dict[str, float]] = field(default_factory=dict)
    per_detector: Dict[str, Dict[str, float]] = field(default_factory=dict)
    failures_by_kind: Dict[str, float] = field(default_factory=dict)
    #: robustness verdict counts ({"robust": n, "non-robust": m});
    #: empty when the hunt did not verify robustness
    robust_by_verdict: Dict[str, float] = field(default_factory=dict)
    cache_hits: float = 0.0
    coverage_fingerprints: int = 0
    coverage_partitions: int = 0
    duration_quantiles: Optional[Dict[str, float]] = None
    # (upper_bound_label, count) per bucket, non-cumulative, +Inf last
    duration_buckets: List[Tuple[str, float]] = field(default_factory=list)
    finished: bool = False


# ----------------------------------------------------------------------
# data layer
# ----------------------------------------------------------------------

def _fetch(url: str, timeout: float) -> bytes:
    try:
        with urllib.request.urlopen(url, timeout=timeout) as response:
            return response.read()
    except (urllib.error.URLError, OSError, ValueError) as exc:
        raise TopError(f"cannot fetch {url}: {exc}") from None


def _duration_buckets_from_metrics(text: str) -> List[Tuple[str, float]]:
    """Extract the job-duration histogram from exposition text as
    non-cumulative ``(le-label, count)`` pairs (validated first)."""
    families = parse_exposition(text)
    family = families.get("hunt_job_duration_seconds")
    if family is None:
        return []
    pairs: List[Tuple[float, str, float]] = []
    for sample in family.samples:
        if sample.name.endswith("_bucket") and "le" in sample.labels:
            le = sample.labels["le"]
            bound = float("inf") if le == "+Inf" else float(le)
            pairs.append((bound, le, sample.value))
    pairs.sort(key=lambda item: item[0])
    out: List[Tuple[str, float]] = []
    previous = 0.0
    for _, le, cumulative in pairs:
        out.append((le, cumulative - previous))
        previous = cumulative
    return out


def snapshot_from_http(base_url: str,
                       timeout: float = 5.0) -> TopSnapshot:
    """One frame from a live telemetry server (``/status`` +
    ``/metrics``).  Raises :class:`TopError` on connection or parse
    failures."""
    base = base_url.rstrip("/")
    if not base.startswith("http"):
        base = "http://" + base
    try:
        status = json.loads(_fetch(base + "/status", timeout))
    except ValueError as exc:
        raise TopError(f"{base}/status: invalid JSON: {exc}") from None
    try:
        buckets = _duration_buckets_from_metrics(
            _fetch(base + "/metrics", timeout).decode("utf-8"))
    except ExpositionError as exc:
        raise TopError(f"{base}/metrics: {exc}") from None
    seeds = status.get("seeds") or {}
    per_policy = {
        policy: {"tries": tries}
        for policy, tries in (status.get("tries_by_policy") or {}).items()
    }
    per_detector = {
        detector: {"tries": tries}
        for detector, tries in (status.get("tries_by_detector") or {}).items()
    }
    coverage = status.get("coverage") or {}
    cache = status.get("cache") or {}
    return TopSnapshot(
        source=base,
        hunt_id=status.get("hunt_id"),
        info=status.get("hunt") or {},
        settled=int(seeds.get("settled", 0) or 0),
        total=int(seeds.get("total", 0) or 0),
        racy=int(status.get("racy", 0) or 0),
        elapsed_sec=float(status.get("elapsed_sec", 0.0) or 0.0),
        throughput=status.get("throughput_per_sec"),
        tries_by_status=status.get("tries_by_status") or {},
        per_policy=per_policy,
        per_detector=per_detector,
        failures_by_kind=status.get("failures_by_kind") or {},
        robust_by_verdict=status.get("robustness_by_verdict") or {},
        cache_hits=float(cache.get("hits", 0) or 0),
        coverage_fingerprints=int(coverage.get("fingerprints", 0) or 0),
        coverage_partitions=int(
            coverage.get("provenance_partitions", 0) or 0),
        duration_quantiles=status.get("job_duration_sec"),
        duration_buckets=buckets,
    )


def snapshot_from_events(path: str) -> TopSnapshot:
    """One frame from a ``hunt --events`` JSONL log (works on a log
    still being appended to — the tolerant reader skips a torn final
    line)."""
    import os
    if not os.path.exists(path):
        raise TopError(f"cannot read {path}: no such file")
    try:
        loaded = _events.read_events(path)
    except OSError as exc:
        raise TopError(f"cannot read {path}: {exc}") from None
    meta = loaded.get("meta") or {}
    if not isinstance(meta, dict):
        meta = {}
    breakdown = _events.summary_data(loaded)
    tries: List[dict] = loaded.get("tries") or []  # type: ignore[assignment]
    ran = [t for t in tries if t["status"] not in ("skipped", "retried")]
    robust_by_verdict: Dict[str, float] = {}
    for record in ran:
        verdict = record.get("robust")
        if verdict is not None:
            key = "robust" if verdict else "non-robust"
            robust_by_verdict[key] = robust_by_verdict.get(key, 0) + 1
    fingerprints = {t["fingerprint"] for t in ran if t.get("fingerprint")}
    partitions: set = set()
    for record in ran:
        partitions.update(record.get("partitions") or ())
    durations = sorted(t["duration_sec"] for t in ran)
    counts = [0.0] * (len(_EVENT_BUCKET_BOUNDS) + 1)
    for value in durations:
        for i, bound in enumerate(_EVENT_BUCKET_BOUNDS):
            if value <= bound:
                counts[i] += 1
                break
        else:
            counts[-1] += 1
    labels = [str(bound) for bound in _EVENT_BUCKET_BOUNDS] + ["+Inf"]
    quantiles = None
    if durations:
        def pct(q: float) -> float:
            return durations[min(int(q * len(durations)),
                                 len(durations) - 1)]
        quantiles = {
            "p50": pct(0.5), "p90": pct(0.9), "p99": pct(0.99),
            "mean": sum(durations) / len(durations),
            "count": len(durations),
        }
    summary = loaded.get("summary")
    finished = isinstance(summary, dict)
    total = meta.get("tries")
    elapsed = 0.0
    racy = int(breakdown["by_status"].get("racy", 0))  # type: ignore[union-attr]
    if finished:
        elapsed = float(summary.get("elapsed_sec", 0.0) or 0.0)
    per_policy = {
        policy: dict(cell)
        for policy, cell in breakdown["per_policy"].items()  # type: ignore
    }
    for policy, cell in per_policy.items():
        cell["racy"] = cell.get("racy", 0)
    return TopSnapshot(
        source=str(path),
        hunt_id=meta.get("hunt_id"),
        info={key: meta[key] for key in
              ("workload", "model", "detector", "jobs", "policies")
              if key in meta},
        settled=int(breakdown["tries"]),  # type: ignore[arg-type]
        total=int(total) if isinstance(total, int) else len(ran),
        racy=racy,
        elapsed_sec=elapsed,
        throughput=(int(breakdown["tries"]) / elapsed  # type: ignore
                    if elapsed > 0 else None),
        tries_by_status=dict(breakdown["by_status"]),  # type: ignore[arg-type]
        per_policy=per_policy,
        per_detector={d: dict(c) for d, c in
                      breakdown["per_detector"].items()},  # type: ignore
        failures_by_kind=dict(
            breakdown["failures_by_kind"]),  # type: ignore[arg-type]
        robust_by_verdict=robust_by_verdict,
        cache_hits=float(breakdown["cache_hits"]),  # type: ignore[arg-type]
        coverage_fingerprints=len(fingerprints),
        coverage_partitions=len(partitions),
        duration_quantiles=quantiles,
        duration_buckets=list(zip(labels, counts)),
        finished=finished,
    )


# ----------------------------------------------------------------------
# render layer (pure)
# ----------------------------------------------------------------------

def sparkline(counts: Sequence[float]) -> str:
    """Counts → one glyph per bucket (▁..█), linear in the max."""
    if not counts:
        return ""
    peak = max(counts)
    if peak <= 0:
        return _SPARKS[0] * len(counts)
    out = []
    for count in counts:
        index = 0 if count <= 0 else 1 + int(
            (count / peak) * (len(_SPARKS) - 2) + 0.5)
        out.append(_SPARKS[min(index, len(_SPARKS) - 1)])
    return "".join(out)


def _bar(fraction: float, width: int = 28) -> str:
    filled = int(max(0.0, min(1.0, fraction)) * width + 0.5)
    return "#" * filled + "-" * (width - filled)


def render_top(snap: TopSnapshot) -> str:
    """The dashboard frame for *snap* (no I/O, no ANSI — the repaint
    loop adds cursor control)."""
    lines: List[str] = []
    title_bits = [
        str(snap.info.get(key))
        for key in ("workload", "model", "detector")
        if snap.info.get(key)
    ]
    title = " ".join(title_bits) or "hunt"
    lines.append(f"weakraces top — {title}"
                 + (f"  [hunt {snap.hunt_id}]" if snap.hunt_id else ""))
    lines.append(f"source: {snap.source}"
                 + ("  (finished)" if snap.finished else ""))
    fraction = snap.settled / snap.total if snap.total else 0.0
    rate = (f"{snap.throughput:.1f}/s"
            if snap.throughput is not None else "-")
    lines.append(
        f"progress [{_bar(fraction)}] {snap.settled}/{snap.total} "
        f"({fraction:.0%})  rate {rate}  elapsed {snap.elapsed_sec:.1f}s"
    )
    racy_rate = snap.racy / snap.settled if snap.settled else 0.0
    status_text = ", ".join(
        f"{int(count)} {status}"
        for status, count in sorted(snap.tries_by_status.items())
    ) or "none"
    lines.append(f"racy {snap.racy} ({racy_rate:.0%})  tries: {status_text}")
    if snap.robust_by_verdict:
        verified = sum(snap.robust_by_verdict.values())
        non_robust = snap.robust_by_verdict.get("non-robust", 0)
        verdict = "SOUNDNESS DEGRADED" if non_robust else "sc-justified"
        lines.append(
            f"robustness: "
            f"{int(snap.robust_by_verdict.get('robust', 0))} robust, "
            f"{int(non_robust)} non-robust of {int(verified)} verified "
            f"({verdict})"
        )
    cache_rate = snap.cache_hits / snap.settled if snap.settled else 0.0
    lines.append(
        f"cache {int(snap.cache_hits)} hits ({cache_rate:.0%})  "
        f"coverage: {snap.coverage_fingerprints} fingerprint(s), "
        f"{snap.coverage_partitions} provenance partition(s)"
    )
    if snap.duration_buckets:
        counts = [count for _, count in snap.duration_buckets]
        quant = snap.duration_quantiles or {}
        quant_text = "  ".join(
            f"{name} {quant[name] * 1000:.2f}ms"
            for name in ("p50", "p90", "p99") if quant.get(name) is not None
        )
        lines.append(
            f"job duration {sparkline(counts)} "
            f"(le {snap.duration_buckets[0][0]}s..+Inf)"
            + (f"  {quant_text}" if quant_text else "")
        )
    if snap.per_policy:
        lines.append("policies:")
        for policy, cell in sorted(snap.per_policy.items()):
            tries = int(cell.get("tries", 0))
            racy = cell.get("racy")
            racy_text = f"{int(racy)}/{tries} racy" if racy is not None \
                else f"{tries} tries"
            lines.append(f"  {policy:<16} {racy_text}")
    if snap.per_detector:
        lines.append("detectors:")
        for detector, cell in sorted(snap.per_detector.items()):
            tries = int(cell.get("tries", 0))
            racy = cell.get("racy")
            certified = cell.get("certified")
            text = f"{tries} tries"
            if racy is not None:
                text = f"{int(racy)}/{tries} racy"
            if certified is not None:
                text += f", {int(certified)} certified"
            lines.append(f"  {detector:<16} {text}")
    if snap.failures_by_kind:
        failure_text = ", ".join(
            f"{int(count)} {kind}"
            for kind, count in sorted(snap.failures_by_kind.items())
        )
        lines.append(f"failures: {failure_text}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# repaint loop
# ----------------------------------------------------------------------

def run_top(*, attach: Optional[str] = None,
            events_path: Optional[str] = None,
            interval: float = 1.0, once: bool = False,
            stream=None, clock=time.monotonic,
            sleep=time.sleep) -> int:
    """Drive the dashboard until interrupted.

    Exit status: 0 on a clean end (``--once``, Ctrl-C, or a live hunt
    that finished — the endpoint going away after at least one good
    frame), 2 when the source cannot be fetched or parsed at all.
    """
    import sys as _sys
    out = stream if stream is not None else _sys.stdout
    if (attach is None) == (events_path is None):
        print("top: exactly one of --attach or --events is required",
              file=_sys.stderr)
        return 2

    def take() -> TopSnapshot:
        if attach is not None:
            return snapshot_from_http(attach)
        return snapshot_from_events(events_path)

    painted_ok = False
    try:
        while True:
            try:
                snap = take()
            except TopError as exc:
                if painted_ok and attach is not None:
                    # the hunt (and its server) ended between polls
                    out.write("\nhunt finished (telemetry endpoint gone)\n")
                    out.flush()
                    return 0
                print(f"top: {exc}", file=_sys.stderr)
                return 2
            frame = render_top(snap)
            if once:
                out.write(frame + "\n")
                out.flush()
                return 0
            # home the cursor and clear to end-of-screen: flicker-free
            # repaint without curses
            out.write("\x1b[H\x1b[2J" if not painted_ok else "\x1b[H")
            out.write(frame + "\n\x1b[J")
            out.flush()
            painted_ok = True
            if snap.finished:
                out.write("hunt finished\n")
                out.flush()
                return 0
            sleep(max(interval, 0.1))
    except KeyboardInterrupt:
        out.write("\n")
        out.flush()
        return 0
