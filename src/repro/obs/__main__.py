"""``python -m repro.obs FILE...`` — validate profile JSONL files."""

import sys

from .export import main

sys.exit(main())
