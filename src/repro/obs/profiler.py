"""Structured pipeline instrumentation: spans and counters.

The detection pipeline is a sequence of stages (simulate -> instrument
-> hb1 -> races -> partitions) whose relative cost is what every
performance change must be justified against.  This module provides the
measurement substrate: **spans** (nestable wall-clock intervals with
named integer counters and peak-RSS capture) recorded by a
:class:`Profiler`, plus module-level accessors used by the hot path.

Collection is off by default and near-zero-cost when disabled: the
module keeps a single active-profiler slot, and when it is empty
``span()`` returns one shared no-op handle — one attribute load and one
``None`` check per instrumented stage (stages, not iterations: call
sites wrap whole pipeline stages and derive their counters from totals
the stage already tracks).  ``benchmarks/bench_profiling.py`` pins the
disabled-mode overhead below 3% of the hunt workload.

Aggregation across processes: fork workers each record into a local
:class:`Profiler` and ship ``to_records()`` (plain dicts) back over the
pool pipe; the parent folds them with :func:`aggregate_records` into
per-span-path totals (count / total / min / max seconds, summed
counters, max peak RSS).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional

try:
    import resource

    def _peak_rss_kb() -> Optional[int]:
        """Process peak resident set size, in KiB (Linux ru_maxrss)."""
        return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)

except ImportError:  # pragma: no cover - non-POSIX platforms

    def _peak_rss_kb() -> Optional[int]:
        return None


# ----------------------------------------------------------------------
# span records
# ----------------------------------------------------------------------

@dataclass
class SpanRecord:
    """One finished (or in-flight) span."""

    name: str
    path: str  # "/"-joined ancestor names, root-first
    depth: int
    start: float  # seconds since the profiler's epoch
    duration: float = 0.0
    counters: Dict[str, int] = field(default_factory=dict)
    peak_rss_kb: Optional[int] = None
    children: List["SpanRecord"] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "t": "span",
            "name": self.name,
            "path": self.path,
            "depth": self.depth,
            "start_sec": round(self.start, 6),
            "dur_sec": round(self.duration, 6),
            "counters": dict(self.counters),
            "peak_rss_kb": self.peak_rss_kb,
        }


class Span:
    """Live handle for an open span; a context manager.

    ``enabled`` is True so call sites can guard counter computations
    that are only worth doing when a profiler is recording::

        with obs.span("trace.build") as sp:
            ...
            if sp.enabled:
                sp.add("events", trace.event_count)
    """

    __slots__ = ("_profiler", "record")

    enabled = True

    def __init__(self, profiler: "Profiler", record: SpanRecord) -> None:
        self._profiler = profiler
        self.record = record

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._profiler._close_span(self)
        return False

    def add(self, name: str, n: int = 1) -> None:
        """Add *n* to this span's counter *name*."""
        counters = self.record.counters
        counters[name] = counters.get(name, 0) + n


class _NullSpan:
    """The shared do-nothing handle returned while profiling is off."""

    __slots__ = ()

    enabled = False

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def add(self, name: str, n: int = 1) -> None:
        pass


NULL_SPAN = _NullSpan()


# ----------------------------------------------------------------------
# cross-process aggregation
# ----------------------------------------------------------------------

@dataclass
class AggregateRecord:
    """Per-span-path totals folded over many recorded spans."""

    path: str
    count: int = 0
    total_sec: float = 0.0
    min_sec: float = float("inf")
    max_sec: float = 0.0
    counters: Dict[str, int] = field(default_factory=dict)
    peak_rss_kb: Optional[int] = None

    def fold(self, span_dict: dict) -> None:
        dur = float(span_dict.get("dur_sec", 0.0))
        self.count += 1
        self.total_sec += dur
        self.min_sec = min(self.min_sec, dur)
        self.max_sec = max(self.max_sec, dur)
        for name, value in (span_dict.get("counters") or {}).items():
            self.counters[name] = self.counters.get(name, 0) + int(value)
        rss = span_dict.get("peak_rss_kb")
        if rss is not None:
            self.peak_rss_kb = max(self.peak_rss_kb or 0, int(rss))

    def fold_aggregate(self, other: "AggregateRecord") -> None:
        """Merge another aggregate for the same path into this one —
        the batch-level fold: workers pre-aggregate a whole batch's
        span records and the parent folds one aggregate per path per
        batch instead of one record per span per job."""
        self.count += other.count
        self.total_sec += other.total_sec
        self.min_sec = min(self.min_sec, other.min_sec)
        self.max_sec = max(self.max_sec, other.max_sec)
        for name, value in other.counters.items():
            self.counters[name] = self.counters.get(name, 0) + value
        if other.peak_rss_kb is not None:
            self.peak_rss_kb = max(self.peak_rss_kb or 0, other.peak_rss_kb)

    @classmethod
    def from_dict(cls, payload: dict) -> "AggregateRecord":
        """Rebuild an aggregate from its :meth:`to_dict` wire form."""
        return cls(
            path=payload["path"],
            count=int(payload.get("count", 0)),
            total_sec=float(payload.get("total_sec", 0.0)),
            min_sec=float(payload.get("min_sec", float("inf"))),
            max_sec=float(payload.get("max_sec", 0.0)),
            counters={
                str(k): int(v)
                for k, v in (payload.get("counters") or {}).items()
            },
            peak_rss_kb=payload.get("peak_rss_kb"),
        )

    def to_dict(self) -> dict:
        return {
            "t": "agg",
            "path": self.path,
            "count": self.count,
            "total_sec": round(self.total_sec, 6),
            "min_sec": round(self.min_sec, 6),
            "max_sec": round(self.max_sec, 6),
            "counters": dict(self.counters),
            "peak_rss_kb": self.peak_rss_kb,
        }


def aggregate_records(
    record_lists: Iterable[List[dict]],
) -> Dict[str, AggregateRecord]:
    """Fold many flat span-record lists into per-path aggregates.

    Input elements are ``Profiler.to_records()`` outputs (one per
    worker job); the result maps span path -> totals, and is
    deterministic for any input order (pure sums/extrema).
    """
    out: Dict[str, AggregateRecord] = {}
    for records in record_lists:
        for rec in records:
            if rec.get("t") != "span":
                continue
            path = rec["path"]
            agg = out.get(path)
            if agg is None:
                agg = AggregateRecord(path=path)
                out[path] = agg
            agg.fold(rec)
    return out


def merge_aggregate_maps(
    target: Dict[str, AggregateRecord],
    incoming: Dict[str, AggregateRecord],
) -> None:
    """Fold *incoming* per-path aggregates into *target* in place.

    The batch-wire fold: each fork worker ships one aggregate map per
    batch (pre-folded over every job span in the batch), and the parent
    merges maps instead of walking per-job span lists.  Deterministic
    for any merge order up to float summation of ``total_sec``."""
    for path, agg in incoming.items():
        mine = target.get(path)
        if mine is None:
            target[path] = agg
        else:
            mine.fold_aggregate(agg)


# ----------------------------------------------------------------------
# the profiler
# ----------------------------------------------------------------------

class Profiler:
    """Collects a span tree, top-level counters, and aggregates.

    Use :meth:`activate` to make it the process-wide recording target
    for the module-level :func:`span`/:func:`count` accessors::

        prof = Profiler()
        with prof.activate():
            report = repro.detect(result)
        prof.write_jsonl("pipeline.jsonl")
    """

    def __init__(self) -> None:
        self.epoch = time.perf_counter()
        self.spans: List[SpanRecord] = []
        self.counters: Dict[str, int] = {}
        self.aggregates: Dict[str, AggregateRecord] = {}
        self._stack: List[SpanRecord] = []

    # -- recording -----------------------------------------------------
    def span(self, name: str) -> Span:
        """Open a span nested under the currently open one."""
        parent = self._stack[-1] if self._stack else None
        path = f"{parent.path}/{name}" if parent is not None else name
        record = SpanRecord(
            name=name,
            path=path,
            depth=len(self._stack),
            start=time.perf_counter() - self.epoch,
        )
        (parent.children if parent is not None else self.spans).append(record)
        self._stack.append(record)
        return Span(self, record)

    def _close_span(self, span: Span) -> None:
        record = span.record
        record.duration = (time.perf_counter() - self.epoch) - record.start
        record.peak_rss_kb = _peak_rss_kb()
        # Tolerate out-of-order exits (exceptions unwind several levels).
        while self._stack:
            if self._stack.pop() is record:
                break

    def count(self, name: str, n: int = 1) -> None:
        """Add *n* to counter *name* on the innermost open span, or to
        the profiler's top-level counters when no span is open."""
        target = self._stack[-1].counters if self._stack else self.counters
        target[name] = target.get(name, 0) + n

    def add_aggregates(self, aggregates: Dict[str, AggregateRecord]) -> None:
        """Merge cross-process aggregates (see :func:`aggregate_records`)."""
        merge_aggregate_maps(self.aggregates, aggregates)

    # -- activation ----------------------------------------------------
    def activate(self) -> "_Activation":
        """Context manager: route module-level spans/counters here."""
        return _Activation(self)

    # -- export --------------------------------------------------------
    def _walk(self, records: List[SpanRecord]) -> Iterator[SpanRecord]:
        for record in records:
            yield record
            yield from self._walk(record.children)

    def to_records(self) -> List[dict]:
        """Flat span dicts in depth-first order (JSONL body lines)."""
        return [record.to_dict() for record in self._walk(self.spans)]

    def to_json(self) -> dict:
        """The whole profile as one JSON document."""
        return {
            "format": 1,
            "spans": self.to_records(),
            "counters": dict(self.counters),
            "aggregates": [
                agg.to_dict() for _, agg in sorted(self.aggregates.items())
            ],
        }

    def summary(self) -> str:
        """Human-readable span tree + aggregate table."""
        lines: List[str] = []

        def fmt_counters(counters: Dict[str, int]) -> str:
            if not counters:
                return ""
            body = ", ".join(f"{k}={v}" for k, v in sorted(counters.items()))
            return f"  [{body}]"

        def walk(records: List[SpanRecord], indent: int) -> None:
            for record in records:
                lines.append(
                    f"{'  ' * indent}{record.name}: "
                    f"{record.duration * 1000:.2f}ms"
                    f"{fmt_counters(record.counters)}"
                )
                walk(record.children, indent + 1)

        walk(self.spans, 0)
        if self.counters:
            lines.append(f"counters:{fmt_counters(self.counters)}")
        if self.aggregates:
            lines.append("aggregated across workers:")
            for path, agg in sorted(self.aggregates.items()):
                lines.append(
                    f"  {path}: n={agg.count} total={agg.total_sec * 1000:.2f}ms "
                    f"min={agg.min_sec * 1000:.2f}ms "
                    f"max={agg.max_sec * 1000:.2f}ms"
                    f"{fmt_counters(agg.counters)}"
                )
        return "\n".join(lines) if lines else "(empty profile)"

    def write_jsonl(self, path, meta: Optional[dict] = None) -> None:
        from .export import write_profile

        write_profile(self, path, meta=meta)


class _Activation:
    """Sets/restores the module-level active profiler."""

    __slots__ = ("_profiler", "_previous")

    def __init__(self, profiler: Profiler) -> None:
        self._profiler = profiler
        self._previous: Optional[Profiler] = None

    def __enter__(self) -> Profiler:
        global _ACTIVE
        self._previous = _ACTIVE
        _ACTIVE = self._profiler
        return self._profiler

    def __exit__(self, exc_type, exc, tb) -> bool:
        global _ACTIVE
        _ACTIVE = self._previous
        return False


# ----------------------------------------------------------------------
# module-level accessors (the hot-path API)
# ----------------------------------------------------------------------

_ACTIVE: Optional[Profiler] = None


def active() -> Optional[Profiler]:
    """The currently recording profiler, if any."""
    return _ACTIVE


def enabled() -> bool:
    """True when a profiler is recording in this process."""
    return _ACTIVE is not None


def span(name: str):
    """Open a span on the active profiler; a shared no-op when off."""
    prof = _ACTIVE
    if prof is None:
        return NULL_SPAN
    return prof.span(name)


def count(name: str, n: int = 1) -> None:
    """Bump a counter on the active profiler; no-op when off."""
    prof = _ACTIVE
    if prof is not None:
        prof.count(name, n)
