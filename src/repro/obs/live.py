"""repro.obs.live — a rolling status line for long-running hunts.

``weakraces hunt --live`` attaches a :class:`HuntStatusLine` to the
hunt's progress callback.  Each tick reads the active
:class:`~repro.obs.metrics.MetricsRegistry` (throughput samples, cache
hits, racy fraction) and repaints one ``\\r``-terminated line::

    hunt  37/256 (14%)  312.4 jobs/s  racy 12%  cache 48%  eta 0.7s

Rendering is throttled (default 10 Hz) so terminal writes never gate
the hunt; ``render()`` is pure (no I/O) and is what the tests drive.
"""

from __future__ import annotations

import sys
import time
from typing import Optional, TextIO

from . import metrics as _metrics


def _format_eta(seconds: float) -> str:
    if seconds < 60:
        return f"{seconds:.1f}s"
    minutes, secs = divmod(int(seconds), 60)
    if minutes < 60:
        return f"{minutes}m{secs:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h{minutes:02d}m"


class HuntStatusLine:
    """Renders hunt progress from the metrics registry.

    Use :meth:`progress` as the hunt's progress callback; it updates
    the registry-independent fallbacks (done/total/racy) and repaints.
    The registry — when one is collecting — supplies the derived rates:
    throughput from the ``hunt_throughput`` time series, cache hit rate
    from ``hunt_trace_cache_hits_total``.
    """

    def __init__(self, registry: Optional[_metrics.MetricsRegistry] = None,
                 stream: Optional[TextIO] = None,
                 min_interval: float = 0.1,
                 clock=time.monotonic) -> None:
        self.registry = registry
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval = min_interval
        self._clock = clock
        self._started = clock()
        self._last_paint = 0.0
        self._last_width = 0
        self._done = 0
        self._total = 0
        self._racy = 0

    # -- progress-callback protocol ------------------------------------
    def progress(self, done: int, total: int, racy: int) -> None:
        self._done, self._total, self._racy = done, total, racy
        now = self._clock()
        if done < total and now - self._last_paint < self.min_interval:
            return
        self._last_paint = now
        self._paint(self.render(now - self._started))

    def render(self, elapsed: Optional[float] = None,
               final: bool = False, note: Optional[str] = None) -> str:
        """The status line for the current state (no I/O).

        With *final* the line describes a hunt that has stopped: the
        rate is the whole-run average (``done / elapsed``, never a
        stale mid-run throughput sample) and no ETA is shown — an ETA
        or an old rate on the terminal's last line would misreport a
        hunt that early-stopped or was interrupted.  *note* appends a
        trailing marker (e.g. ``interrupted``).
        """
        if elapsed is None:
            elapsed = self._clock() - self._started
        done, total, racy = self._done, self._total, self._racy
        registry = self.registry if self.registry is not None \
            else _metrics.active()
        rate = done / elapsed if elapsed > 0 else 0.0
        cache_text = ""
        if registry is not None:
            if not final:
                throughput = registry.get("hunt_throughput")
                if isinstance(throughput, _metrics.TimeSeries):
                    latest = throughput.latest()
                    if latest is not None:
                        rate = latest[1]
            hits = registry.get("hunt_trace_cache_hits_total")
            if isinstance(hits, _metrics.Counter) and done:
                cache_text = f"  cache {hits.total() / done:.0%}"
        parts = [f"hunt {done}/{total}"]
        if total:
            parts.append(f"({done / total:.0%})")
        parts.append(f"{rate:.1f} jobs/s")
        if done:
            parts.append(f"racy {racy / done:.0%}")
        if cache_text:
            parts.append(cache_text.strip())
        if not final and rate > 0 and total > done:
            parts.append(f"eta {_format_eta((total - done) / rate)}")
        if note:
            parts.append(note)
        return "  ".join(parts)

    # -- painting ------------------------------------------------------
    def _paint(self, line: str) -> None:
        padding = " " * max(0, self._last_width - len(line))
        self._last_width = len(line)
        self.stream.write("\r" + line + padding)
        self.stream.flush()

    def finish(self, note: Optional[str] = None) -> None:
        """Paint the true final state — unthrottled — and move to a
        fresh line.

        Throttling can swallow the last :meth:`progress` repaints (an
        early stop or SIGINT lands whenever it lands), so the terminal
        would otherwise keep showing the last *painted* snapshot, not
        the final counts.  This always repaints from the latest state,
        drops the ETA, and replaces any stale throughput sample with
        the whole-run average; *note* marks abnormal ends (e.g.
        ``"interrupted"``).
        """
        self._paint(self.render(final=True, note=note))
        self.stream.write("\n")
        self.stream.flush()
