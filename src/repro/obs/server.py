"""repro.obs.server — a live telemetry endpoint for running hunts.

``weakraces hunt --serve HOST:PORT`` starts a :class:`TelemetryServer`
— a stdlib :class:`~http.server.ThreadingHTTPServer` on a daemon
thread — in the *parent* process.  The hunt's parent-side ``observe``
fold is the single metrics producer (workers ship batched records they
would ship anyway), so serving adds zero per-try work on the worker
side; the only cross-thread coordination is the registry's reentrant
:meth:`~repro.obs.metrics.MetricsRegistry.hold` lock, taken briefly per
outcome fold and per scrape.

Three endpoints:

``/metrics``
    Prometheus text exposition 0.0.4 (see :mod:`repro.obs.exporters`),
    content type ``text/plain; version=0.0.4``.
``/status``
    A JSON snapshot assembled by :func:`hunt_status`: hunt identity
    (``hunt_id``, workload, model, detector, policies), seeds settled
    and remaining, racy count, throughput, per-status/-policy/-detector
    try counts, failure classification, cache hit rate, coverage
    counters, and job-duration quantiles.
``/healthz``
    ``200 ok`` while the server thread is up — a liveness probe.

Port ``0`` binds an ephemeral port; the chosen one is in
:attr:`TelemetryServer.port` / :attr:`TelemetryServer.url` (the CLI
prints the URL to stderr so scripts can scrape it).
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple

from . import metrics as _metrics
from .exporters import render_prometheus

__all__ = [
    "TelemetryServer",
    "hunt_status",
    "parse_serve_address",
]


def parse_serve_address(text: str) -> Tuple[str, int]:
    """``"HOST:PORT"`` → ``(host, port)``; port 0 means "pick one"."""
    host, sep, port_text = text.rpartition(":")
    if not sep or not host:
        raise ValueError(
            f"--serve expects HOST:PORT (e.g. 127.0.0.1:9099), got {text!r}"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(f"--serve port must be an integer, got {port_text!r}")
    if not 0 <= port <= 65535:
        raise ValueError(f"--serve port out of range: {port}")
    return host, port


def _gauge_value(registry: _metrics.MetricsRegistry, name: str,
                 default: Optional[float] = None) -> Optional[float]:
    instrument = registry.get(name)
    if isinstance(instrument, _metrics.Gauge) and not instrument.labels:
        value = instrument.value()
        if value is not None:
            return value
    return default


def _counter_breakdown(registry: _metrics.MetricsRegistry, name: str,
                       label: str) -> Dict[str, float]:
    """Sum a counter's series over one label dimension."""
    instrument = registry.get(name)
    out: Dict[str, float] = {}
    if isinstance(instrument, _metrics.Counter):
        for entry in instrument.series():
            key = entry["labels"].get(label, "")
            out[key] = out.get(key, 0) + entry["value"]
    return out


def hunt_status(registry: _metrics.MetricsRegistry,
                info: Optional[Dict[str, object]] = None) -> dict:
    """The ``/status`` snapshot, assembled from the hunt metric names
    documented in :mod:`repro.obs.metrics` plus the static *info* the
    CLI passes at server construction (hunt_id, workload, model, ...).

    Callers sharing the registry with a writer thread should bracket
    this with ``registry.hold()`` (the server does).
    """
    info = dict(info or {})
    done = int(_gauge_value(registry, "hunt_done", 0) or 0)
    total = int(_gauge_value(registry, "hunt_total",
                             info.get("tries") or 0) or 0)
    racy = int(_gauge_value(registry, "hunt_racy", 0) or 0)
    elapsed = _gauge_value(registry, "hunt_elapsed_seconds", 0.0) or 0.0

    throughput = None
    series = registry.get("hunt_throughput")
    if isinstance(series, _metrics.TimeSeries):
        latest = series.latest()
        if latest is not None:
            throughput = latest[1]

    hits = 0.0
    cache = registry.get("hunt_trace_cache_hits_total")
    if isinstance(cache, _metrics.Counter):
        hits = cache.total()

    duration = registry.get("hunt_job_duration_seconds")
    quantiles = None
    if isinstance(duration, _metrics.Histogram) and duration.count() > 0:
        quantiles = {
            "p50": duration.quantile(0.5),
            "p90": duration.quantile(0.9),
            "p99": duration.quantile(0.99),
            "mean": duration.mean(),
            "count": duration.count(),
        }

    status = {
        "t": "hunt_status",
        "hunt_id": info.get("hunt_id"),
        "hunt": info,
        "seeds": {
            "settled": done,
            "remaining": max(0, total - done),
            "total": total,
        },
        "racy": racy,
        "elapsed_sec": elapsed,
        "throughput_per_sec": throughput,
        "tries_by_status": _counter_breakdown(
            registry, "hunt_tries_total", "status"),
        "tries_by_policy": _counter_breakdown(
            registry, "hunt_tries_total", "policy"),
        "tries_by_detector": _counter_breakdown(
            registry, "hunt_tries_total", "detector"),
        "failures_by_kind": _counter_breakdown(
            registry, "hunt_failures_total", "kind"),
        "robustness_by_verdict": _counter_breakdown(
            registry, "hunt_robust_tries_total", "verdict"),
        "cache": {
            "hits": hits,
            "hit_rate": (hits / done) if done else None,
        },
        "coverage": {
            "fingerprints": int(_gauge_value(
                registry, "hunt_coverage_fingerprints", 0) or 0),
            "provenance_partitions": int(_gauge_value(
                registry, "hunt_coverage_provenance_partitions", 0) or 0),
        },
        "job_duration_sec": quantiles,
    }
    return status


class TelemetryServer:
    """Serve a registry (and static hunt info) over HTTP.

    Lifecycle::

        server = TelemetryServer(registry, info={"hunt_id": hunt_id, ...})
        url = server.start()        # binds, spawns the daemon thread
        ...                         # hunt runs; scrapers GET url/metrics
        server.stop()               # shuts the listener down

    The handler never touches hunt state directly — only the registry
    (under its :meth:`~repro.obs.metrics.MetricsRegistry.hold` lock)
    and the immutable *info* dict — so a slow or hostile scraper cannot
    perturb the hunt beyond brief lock holds.
    """

    def __init__(self, registry: _metrics.MetricsRegistry,
                 info: Optional[Dict[str, object]] = None,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        self.registry = registry
        self.info: Dict[str, object] = dict(info or {})
        self.host = host
        self.port = port
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle -----------------------------------------------------
    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> str:
        """Bind, start serving on a daemon thread, return the URL."""
        server = self

        class Handler(BaseHTTPRequestHandler):
            # silence the default stderr access log
            def log_message(self, format: str, *args) -> None:  # noqa: A002
                pass

            def do_GET(self) -> None:
                try:
                    server._handle(self)
                except (BrokenPipeError, ConnectionResetError):
                    pass  # scraper went away mid-response

        self._httpd = ThreadingHTTPServer((self.host, self.port), Handler)
        self._httpd.daemon_threads = True
        self.port = self._httpd.server_address[1]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-telemetry",
            daemon=True,
        )
        self._thread.start()
        return self.url

    def stop(self) -> None:
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    # -- request handling ----------------------------------------------
    def _count_scrape(self, endpoint: str) -> None:
        self.registry.counter(
            "hunt_scrapes_total",
            "Telemetry-server requests served, by endpoint.",
            labels=("endpoint",),
        ).inc(endpoint=endpoint)

    def _handle(self, request: BaseHTTPRequestHandler) -> None:
        path = request.path.split("?", 1)[0]
        if path == "/healthz":
            body = b"ok\n"
            content_type = "text/plain; charset=utf-8"
        elif path == "/metrics":
            with self.registry.hold():
                self._count_scrape("metrics")
                body = render_prometheus(self.registry).encode("utf-8")
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        elif path == "/status":
            with self.registry.hold():
                self._count_scrape("status")
                status = hunt_status(self.registry, self.info)
            body = (json.dumps(status, sort_keys=True) + "\n").encode("utf-8")
            content_type = "application/json"
        else:
            body = b"not found\n"
            request.send_response(404)
            request.send_header("Content-Type", "text/plain; charset=utf-8")
            request.send_header("Content-Length", str(len(body)))
            request.end_headers()
            request.wfile.write(body)
            return
        request.send_response(200)
        request.send_header("Content-Type", content_type)
        request.send_header("Content-Length", str(len(body)))
        request.end_headers()
        request.wfile.write(body)
