"""repro.obs.exporters — Prometheus text exposition for the registry.

:func:`render_prometheus` turns a :class:`~repro.obs.metrics.MetricsRegistry`
(or its :meth:`~repro.obs.metrics.MetricsRegistry.to_records` payload) into
Prometheus text exposition format 0.0.4 — the format every scraper since
has accepted:

* one ``# HELP`` / ``# TYPE`` pair per family, samples after;
* label values escaped per spec (``\\`` → ``\\\\``, ``"`` → ``\\"``,
  newline → ``\\n``), HELP text escaped the same minus the quote;
* histograms rendered *cumulatively* with ``le`` bucket labels, a
  ``+Inf`` bucket equal to ``_count``, plus ``_sum`` and ``_count``
  series (internal storage is per-bucket, converted at render time);
* :class:`~repro.obs.metrics.TimeSeries` instruments export as a gauge
  carrying the latest sample (the ring buffer itself stays JSON-only).

:func:`parse_exposition` is the other half: a strict, vendored parser
used by the golden tests and the CI smoke job to prove the rendered
payload is well-formed *by construction checking, not by eyeballing* —
it validates names, label syntax, escape sequences, duplicate samples,
TYPE placement, and histogram invariants (cumulative buckets, ``+Inf``
present and equal to ``_count``).  ``python -m repro.obs.exporters
FILE...`` runs it from the command line; CI curls ``/metrics`` from a
live hunt and feeds the payload through it.
"""

from __future__ import annotations

import math
import re
import sys
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from .metrics import MetricsRegistry

__all__ = [
    "ExpositionError",
    "MetricFamily",
    "Sample",
    "render_prometheus",
    "render_records",
    "parse_exposition",
    "main",
]

_METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: exposition kinds the parser accepts in ``# TYPE`` lines
_TYPES = ("counter", "gauge", "histogram", "summary", "untyped")


class ExpositionError(ValueError):
    """Malformed exposition text, or an unexportable registry."""


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------

def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"') \
        .replace("\n", "\\n")


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label(str(value))}"'
        for name, value in labels.items()
    )
    return "{" + inner + "}"


def _check_name(name: str) -> str:
    if not _METRIC_NAME_RE.match(name):
        raise ExpositionError(f"invalid metric name {name!r}")
    return name


def _check_labels(labels: Iterable[str]) -> None:
    for label in labels:
        if not _LABEL_NAME_RE.match(label) or label.startswith("__"):
            raise ExpositionError(f"invalid label name {label!r}")
        if label == "le":
            raise ExpositionError(
                "label name 'le' is reserved for histogram buckets"
            )


def render_records(records: Iterable[dict]) -> str:
    """Render serialized instruments (``MetricsRegistry.to_records``
    payloads — also what workers ship over the batch wire) as
    Prometheus text exposition 0.0.4."""
    lines: List[str] = []
    seen: set = set()
    for record in records:
        if record.get("t") != "metric":
            continue
        name = _check_name(record["name"])
        if name in seen:
            raise ExpositionError(f"duplicate metric family {name!r}")
        seen.add(name)
        _check_labels(record.get("labels", ()))
        kind = record["kind"]
        help_text = record.get("help", "")
        series = record.get("series", [])
        exposed = {
            "counter": "counter",
            "gauge": "gauge",
            "histogram": "histogram",
            "timeseries": "gauge",
        }.get(kind)
        if exposed is None:
            raise ExpositionError(f"unexportable instrument kind {kind!r}")
        if help_text:
            lines.append(f"# HELP {name} {_escape_help(help_text)}")
        lines.append(f"# TYPE {name} {exposed}")
        if kind in ("counter", "gauge"):
            for entry in series:
                lines.append(
                    f"{name}{_format_labels(entry['labels'])} "
                    f"{_format_value(entry['value'])}"
                )
        elif kind == "timeseries":
            # latest sample only; the full ring buffer is a JSON affair
            for entry in series:
                if entry["points"]:
                    _, value = entry["points"][-1]
                    lines.append(
                        f"{name}{_format_labels(entry['labels'])} "
                        f"{_format_value(value)}"
                    )
        else:  # histogram
            bounds = record.get("bounds", ())
            for entry in series:
                labels = entry["labels"]
                cumulative = 0
                for bound, count in zip(bounds, entry["buckets"]):
                    cumulative += count
                    bucket_labels = dict(labels)
                    bucket_labels["le"] = _format_value(float(bound))
                    lines.append(
                        f"{name}_bucket{_format_labels(bucket_labels)} "
                        f"{_format_value(cumulative)}"
                    )
                inf_labels = dict(labels)
                inf_labels["le"] = "+Inf"
                lines.append(
                    f"{name}_bucket{_format_labels(inf_labels)} "
                    f"{_format_value(entry['count'])}"
                )
                lines.append(
                    f"{name}_sum{_format_labels(labels)} "
                    f"{_format_value(entry['sum'])}"
                )
                lines.append(
                    f"{name}_count{_format_labels(labels)} "
                    f"{_format_value(entry['count'])}"
                )
    return "\n".join(lines) + "\n" if lines else ""


def render_prometheus(registry: MetricsRegistry) -> str:
    """Render a live registry.  Callers sharing the registry with a
    writer thread should bracket this with ``registry.hold()``."""
    return render_records(registry.to_records())


# ----------------------------------------------------------------------
# vendored strict parser — the golden tests' and CI's referee
# ----------------------------------------------------------------------

@dataclass
class Sample:
    """One exposition sample line, parsed."""

    name: str
    labels: Dict[str, str]
    value: float


@dataclass
class MetricFamily:
    """All samples sharing a family name (histogram children included)."""

    name: str
    type: str = "untyped"
    help: str = ""
    samples: List[Sample] = field(default_factory=list)


def _unescape_label(value: str, line_no: int) -> str:
    out: List[str] = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\":
            if i + 1 >= len(value):
                raise ExpositionError(
                    f"line {line_no}: dangling escape in label value"
                )
            nxt = value[i + 1]
            if nxt == "\\":
                out.append("\\")
            elif nxt == '"':
                out.append('"')
            elif nxt == "n":
                out.append("\n")
            else:
                raise ExpositionError(
                    f"line {line_no}: invalid escape '\\{nxt}' in label value"
                )
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def _parse_labels(block: str, line_no: int) -> Dict[str, str]:
    labels: Dict[str, str] = {}
    i = 0
    while i < len(block):
        match = re.match(r"\s*([a-zA-Z_][a-zA-Z0-9_]*)\s*=\s*\"", block[i:])
        if not match:
            raise ExpositionError(
                f"line {line_no}: malformed label block at {block[i:]!r}"
            )
        name = match.group(1)
        if name in labels:
            raise ExpositionError(
                f"line {line_no}: duplicate label {name!r}"
            )
        i += match.end()
        # scan the quoted value, honouring escapes
        start = i
        while i < len(block):
            if block[i] == "\\":
                i += 2
                continue
            if block[i] == '"':
                break
            i += 1
        if i >= len(block):
            raise ExpositionError(
                f"line {line_no}: unterminated label value for {name!r}"
            )
        labels[name] = _unescape_label(block[start:i], line_no)
        i += 1  # past the closing quote
        rest = re.match(r"\s*(,)?\s*", block[i:])
        i += rest.end()
        if rest.group(1) is None and i < len(block):
            raise ExpositionError(
                f"line {line_no}: expected ',' between labels"
            )
    return labels


def _parse_value(text: str, line_no: int) -> float:
    text = text.strip()
    if text in ("+Inf", "Inf"):
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    try:
        return float(text)
    except ValueError:
        raise ExpositionError(
            f"line {line_no}: unparseable sample value {text!r}"
        ) from None


_SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)"       # metric name
    r"(?:\{(.*)\})?"                      # optional label block
    r"\s+(\S+)"                           # value
    r"(?:\s+(-?\d+))?\s*$"                # optional timestamp (ms)
)

_HISTOGRAM_SUFFIXES = ("_bucket", "_sum", "_count")


def _family_of(name: str, types: Dict[str, str]) -> str:
    """Map a child sample name to its family (histogram suffixes)."""
    for suffix in _HISTOGRAM_SUFFIXES:
        if name.endswith(suffix):
            base = name[: -len(suffix)]
            if types.get(base) in ("histogram", "summary"):
                return base
    return name


def parse_exposition(text: str) -> Dict[str, MetricFamily]:
    """Parse (and strictly validate) exposition text.

    Returns ``{family_name: MetricFamily}``.  Raises
    :class:`ExpositionError` on any spec violation: bad names, bad
    escapes, duplicate samples, samples before their ``# TYPE``,
    non-cumulative histogram buckets, or a missing/mismatched ``+Inf``
    bucket.
    """
    families: Dict[str, MetricFamily] = {}
    types: Dict[str, str] = {}
    seen_samples: set = set()
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.rstrip()
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            rest = line[len("# HELP "):]
            parts = rest.split(None, 1)
            name = parts[0] if parts else ""
            if not _METRIC_NAME_RE.match(name):
                raise ExpositionError(
                    f"line {line_no}: invalid HELP metric name {name!r}"
                )
            family = families.setdefault(name, MetricFamily(name))
            family.help = parts[1] if len(parts) > 1 else ""
            continue
        if line.startswith("# TYPE "):
            parts = line[len("# TYPE "):].split()
            if len(parts) != 2:
                raise ExpositionError(f"line {line_no}: malformed TYPE line")
            name, kind = parts
            if not _METRIC_NAME_RE.match(name):
                raise ExpositionError(
                    f"line {line_no}: invalid TYPE metric name {name!r}"
                )
            if kind not in _TYPES:
                raise ExpositionError(
                    f"line {line_no}: unknown metric type {kind!r}"
                )
            if name in types:
                raise ExpositionError(
                    f"line {line_no}: duplicate TYPE for {name!r}"
                )
            family = families.setdefault(name, MetricFamily(name))
            if family.samples:
                raise ExpositionError(
                    f"line {line_no}: TYPE for {name!r} after its samples"
                )
            family.type = kind
            types[name] = kind
            continue
        if line.startswith("#"):
            continue  # comment
        match = _SAMPLE_RE.match(line)
        if not match:
            raise ExpositionError(
                f"line {line_no}: unparseable sample line {line!r}"
            )
        name, label_block, value_text = match.group(1, 2, 3)
        labels = _parse_labels(label_block, line_no) if label_block else {}
        for label in labels:
            if label.startswith("__"):
                raise ExpositionError(
                    f"line {line_no}: reserved label name {label!r}"
                )
        value = _parse_value(value_text, line_no)
        dedup_key = (name, tuple(sorted(labels.items())))
        if dedup_key in seen_samples:
            raise ExpositionError(
                f"line {line_no}: duplicate sample for {name!r} "
                f"with labels {labels!r}"
            )
        seen_samples.add(dedup_key)
        family_name = _family_of(name, types)
        family = families.setdefault(family_name, MetricFamily(family_name))
        family.samples.append(Sample(name, labels, value))
    _validate_histograms(families)
    return families


def _validate_histograms(families: Dict[str, MetricFamily]) -> None:
    for family in families.values():
        if family.type != "histogram":
            continue
        buckets: Dict[Tuple[Tuple[str, str], ...],
                      List[Tuple[float, float]]] = {}
        counts: Dict[Tuple[Tuple[str, str], ...], float] = {}
        for sample in family.samples:
            if sample.name == family.name + "_bucket":
                if "le" not in sample.labels:
                    raise ExpositionError(
                        f"{family.name}: bucket sample without 'le' label"
                    )
                rest = tuple(sorted(
                    (k, v) for k, v in sample.labels.items() if k != "le"
                ))
                bound = _parse_value(sample.labels["le"], 0)
                buckets.setdefault(rest, []).append((bound, sample.value))
            elif sample.name == family.name + "_count":
                counts[tuple(sorted(sample.labels.items()))] = sample.value
        for rest, pairs in buckets.items():
            pairs.sort(key=lambda pair: pair[0])
            if not pairs or pairs[-1][0] != math.inf:
                raise ExpositionError(
                    f"{family.name}: series {dict(rest)!r} has no "
                    f"'+Inf' bucket"
                )
            last = -math.inf
            for bound, cumulative in pairs:
                if cumulative < last:
                    raise ExpositionError(
                        f"{family.name}: non-cumulative buckets in "
                        f"series {dict(rest)!r}"
                    )
                last = cumulative
            if rest in counts and pairs[-1][1] != counts[rest]:
                raise ExpositionError(
                    f"{family.name}: '+Inf' bucket ({pairs[-1][1]}) != "
                    f"_count ({counts[rest]}) in series {dict(rest)!r}"
                )


# ----------------------------------------------------------------------
# command line — ``python -m repro.obs.exporters FILE...``
# ----------------------------------------------------------------------

def main(argv: Optional[List[str]] = None) -> int:
    """Validate exposition files (e.g. a scraped ``/metrics`` payload);
    exit 1 on the first malformed one."""
    paths = list(sys.argv[1:] if argv is None else argv)
    if not paths:
        print("usage: python -m repro.obs.exporters FILE...",
              file=sys.stderr)
        return 2
    for path in paths:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                families = parse_exposition(handle.read())
        except OSError as exc:
            print(f"{path}: {exc}", file=sys.stderr)
            return 1
        except ExpositionError as exc:
            print(f"{path}: malformed exposition: {exc}", file=sys.stderr)
            return 1
        samples = sum(len(f.samples) for f in families.values())
        print(f"{path}: ok ({len(families)} families, {samples} samples)")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
