"""Crash-safe file I/O shared across the pipeline.

Two failure shapes matter for the post-mortem workflow (the hunt's
value is its accumulated artifacts, so a crash must never corrupt
them):

* **Whole-document files** (JSON summaries, profiles, checkpoints,
  recordings, DOT graphs) are written with
  :func:`atomic_write_text` / :func:`atomic_write_json`: the bytes go
  to a same-directory temp file, are fsync'd, and are then renamed
  over the destination.  Readers see either the old complete file or
  the new complete file — never a torn one.

* **Append-only JSONL streams** (event logs) cannot be renamed into
  place without breaking ``tail -f``; their crash mode is a truncated
  final line.  :func:`read_jsonl_tolerant` classifies that tail-write
  case as a *warning* while still treating mid-file garbage as a hard
  problem, so validators can accept a log that merely lost its last
  record.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import List, Optional, Tuple, Union


def atomic_write_text(path: Union[str, Path], text: str) -> None:
    """Write *text* to *path* via write-tmp + fsync + rename, so a
    crash mid-write never leaves a torn file at *path*."""
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        prefix=path.name + ".", suffix=".tmp", dir=path.parent or "."
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(text)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def atomic_write_json(path: Union[str, Path], payload: object, *,
                      indent: Optional[int] = 2) -> None:
    """Atomically write *payload* as sorted-key JSON (trailing
    newline included)."""
    atomic_write_text(
        path, json.dumps(payload, indent=indent, sort_keys=True) + "\n"
    )


def read_jsonl_tolerant(
    path: Union[str, Path],
) -> Tuple[List[dict], List[str], List[str]]:
    """Parse a JSONL file line by line; returns ``(records, problems,
    warnings)``.

    An undecodable *final* line is the signature of a process killed
    mid-append (the tail-write case) and becomes a warning; an
    undecodable line anywhere else is mid-file garbage and becomes a
    problem.  Line numbers in messages are 1-based over the raw file.
    """
    problems: List[str] = []
    warnings: List[str] = []
    try:
        with Path(path).open("r", encoding="utf-8") as fh:
            raw = fh.readlines()
    except OSError as exc:
        return [], [f"unreadable: {exc}"], []
    numbered = [
        (lineno, line.strip())
        for lineno, line in enumerate(raw, start=1)
        if line.strip()
    ]
    records: List[dict] = []
    for position, (lineno, line) in enumerate(numbered):
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as exc:
            if position == len(numbered) - 1:
                warnings.append(
                    f"line {lineno}: truncated final record "
                    f"(tail write interrupted?): {exc}"
                )
            else:
                problems.append(f"line {lineno}: invalid JSON: {exc}")
    return records, problems, warnings
