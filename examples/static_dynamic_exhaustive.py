#!/usr/bin/env python
"""Three tiers of race analysis on one program, per paper section 1.

The paper opens by sorting detection techniques into *static* (analyze
the text, conservative superset, applies to weak systems unchanged) and
*dynamic* (analyze one execution, precise but execution-specific), with
the research consensus that "tools should support both ... in a
complementary fashion".  This reproduction adds a third tier for small
programs: *exhaustive* exploration of every SC schedule, which decides
Definition 2.4's program-level data-race-freedom exactly.

The demo program is subtle on purpose: its shared counter is locked,
but the monitor thread falls back to an *unlocked* peek whenever it
fails to win an auxiliary Test&Set that the worker releases late — so
the race exists only on schedules where the monitor loses the
Test&Set.  Watch the three tiers triangulate it.

Run:  python examples/static_dynamic_exhaustive.py
"""

from repro import (
    PostMortemDetector,
    explore_program,
    find_static_races,
    make_model,
    run_program,
)
from repro.machine import ProgramBuilder


def subtle_program():
    b = ProgramBuilder()
    counter = b.var("counter")
    lock = b.var("lock")
    aux = b.var("aux", initial=1)  # held by the worker until it finishes
    with b.thread() as t:  # worker: properly locked increment
        t.lock(lock)
        value = t.read(counter)
        t.add(value, 1, dst=value)
        t.write(counter, value)
        t.unlock(lock)
        t.unset(aux)               # ...releases aux only at the very end
    with b.thread() as t:  # monitor
        # Busy work first, so that on most schedules the worker has
        # already released aux — making the race schedule-dependent.
        scratch = b.var("monitor_scratch")
        i = t.mov(0)
        t.label("busy")
        t.write(scratch, i)
        t.add(i, 1, dst=i)
        more = t.cmp_lt(i, 1)
        t.jump_if_nonzero(more, "busy")
        got = t.test_and_set(aux)
        t.jump_if_zero(got, "won")
        t.read(counter)            # lost aux -> impatient UNLOCKED peek
        t.jump("done")
        t.label("won")
        t.lock(lock)               # won aux -> polite locked read
        t.read(counter)
        t.unlock(lock)
        t.label("done")
    return b.build()


def main() -> None:
    program = subtle_program()

    print("Tier 1 — static lockset analysis (conservative, whole-program)")
    print("=" * 66)
    static = find_static_races(program)
    print(static.format())
    print()

    print("Tier 2 — dynamic detection (one execution at a time)")
    print("=" * 66)
    detector = PostMortemDetector()
    racy_runs = 0
    for seed in range(8):
        result = run_program(program, make_model("WO"), seed=seed)
        report = detector.analyze_execution(result)
        racy_runs += not report.race_free
    print(f"8 WO runs: {racy_runs} exhibited the race, "
          f"{8 - racy_runs} were clean")
    print("(a single clean run proves nothing about the program!)")
    print()

    print("Tier 3 — exhaustive SC exploration (Definition 2.4, exact)")
    print("=" * 66)
    verdict = explore_program(program)
    print(f"program is data-race-free: {verdict.program_is_data_race_free}")
    print(f"explored {verdict.states_visited} states")
    if verdict.racing_schedule:
        print(f"witness schedule: {verdict.racing_schedule}")
    print()
    print("Static flagged the unlocked peek; some dynamic runs missed it;")
    print("exhaustive exploration settles it with a replayable witness.")


if __name__ == "__main__":
    main()
