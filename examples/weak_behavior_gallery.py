#!/usr/bin/env python
"""A gallery of weak-memory behaviour: the store-buffering litmus.

Dekker-style mutual exclusion with ordinary data-operation flags is the
textbook victim of weak memory: each processor raises its flag and then
checks the other's, and on a weak machine both writes can sit buffered
while both reads return stale zeros — both processors end up in the
critical section, an outcome sequential consistency forbids.

This example runs the litmus across all seven models, shows the paper's
machinery catching it (the flags race; Condition 3.4 still holds; the
detector's report points at the flags), and contrasts the Test&Set-
locked variant, which is data-race-free and therefore sequentially
consistent — and exclusive — on every model.

Run:  python examples/weak_behavior_gallery.py
"""

from repro import (
    ALL_MODEL_NAMES,
    PostMortemDetector,
    check_condition_34,
    is_program_data_race_free,
    make_model,
    run_program,
)
from repro.machine import StubbornPropagation
from repro.programs import (
    both_entered,
    count_sb_violations,
    locked_mutual_exclusion_program,
    run_store_buffering_witness,
    store_buffering_program,
)


def main() -> None:
    print("Store buffering (Dekker attempt with data-op flags)")
    print("=" * 60)
    drf = is_program_data_race_free(store_buffering_program())
    print(f"exhaustive SC exploration says data-race-free: {drf}")
    print()
    print(f"{'model':>6s} {'both-enter witness':>20s} "
          f"{'violations/50 seeds':>20s}")
    for name in ALL_MODEL_NAMES:
        witness = run_store_buffering_witness(make_model(name))
        violations = count_sb_violations(make_model(name), seeds=50)
        print(f"{name:>6s} {str(both_entered(witness)):>20s} "
              f"{violations:>20d}")
    print()

    witness = run_store_buffering_witness(make_model("WO"))
    report = PostMortemDetector().analyze_execution(witness)
    print("Detector on the WO both-enter execution:")
    print(report.format())
    print()
    print(f"Condition 3.4 on that execution: "
          f"{check_condition_34(witness).summary()}")
    print()

    print("Locked variant (Test&Set critical sections)")
    print("=" * 60)
    locked = locked_mutual_exclusion_program()
    print(f"exhaustive SC exploration says data-race-free: "
          f"{is_program_data_race_free(locked)}")
    for name in ALL_MODEL_NAMES:
        overlaps = 0
        for seed in range(20):
            result = run_program(
                locked, make_model(name), seed=seed,
                propagation=StubbornPropagation(),
            )
            overlaps += result.value_of("overlap")
        print(f"{name:>6s}: critical-section overlaps in 20 runs: {overlaps}")
    print()
    print("Moral: fix the data race (the detector shows you where), and")
    print("the weak machine gives you sequential consistency for free.")


if __name__ == "__main__":
    main()
