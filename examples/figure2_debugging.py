#!/usr/bin/env python
"""A full debugging session on the Figure 2 work-queue bug.

Walks through everything the paper describes for its running example:

1. the buggy weak execution, with the stale dequeue visible,
2. what a *naive* port of SC race detection would report (all races,
   including impossible ones),
3. what the first-partition method reports instead,
4. the sequentially consistent prefix (SCP) and Condition 3.4 check,
5. the augmented happens-before-1 graph G' as Graphviz DOT
   (``figure3.dot``; render with ``dot -Tpng figure3.dot``).

Run:  python examples/figure2_debugging.py
"""

from repro import (
    NaiveDetector,
    explain_report,
    PostMortemDetector,
    check_condition_34,
    extract_scp,
    make_model,
    run_figure2,
)
from repro.trace.build import build_trace


def main() -> None:
    result = run_figure2(make_model("WO"))
    trace = build_trace(result)

    print("=" * 70)
    print("1. The weak execution")
    print("=" * 70)
    print(f"model={result.model_name}, operations={len(result.operations)}, "
          f"events={trace.event_count}")
    for op in result.stale_reads:
        print(f"  non-SC behaviour: {result.describe_op(op)} "
              f"(the SC value would have been "
              f"{result.final_memory[op.addr]})")

    print()
    print("=" * 70)
    print("2. Naive detection (SC technique applied verbatim)")
    print("=" * 70)
    naive = NaiveDetector().analyze(trace)
    print(naive.format())
    print("  -> includes races that cannot occur on any SC execution!")

    print()
    print("=" * 70)
    print("3. First-partition detection (the paper's method)")
    print("=" * 70)
    report = PostMortemDetector().analyze(trace)
    print(report.format())

    print()
    print("=" * 70)
    print("3b. Why each race was classified that way (affects chains)")
    print("=" * 70)
    print(explain_report(report))

    print()
    print("=" * 70)
    print("4. The sequentially consistent prefix and Condition 3.4")
    print("=" * 70)
    scp = extract_scp(result)
    for proc, cut in enumerate(scp.cuts):
        ops = result.per_proc[proc]
        where = "whole stream" if cut is None else f"first {cut} of {len(ops)} ops"
        print(f"  P{proc}: SCP covers {where}")
    condition = check_condition_34(result)
    print(f"  {condition.summary()}")

    print()
    print("=" * 70)
    print("5. Figure 3: the augmented graph G'")
    print("=" * 70)
    with open("figure3.dot", "w", encoding="utf-8") as fh:
        fh.write(report.to_dot())
    print("  wrote figure3.dot (race edges dashed, partitions boxed)")


if __name__ == "__main__":
    main()
