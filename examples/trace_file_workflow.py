#!/usr/bin/env python
"""The post-mortem workflow of paper section 4: trace now, debug later.

A production run is instrumented and writes a compact trace file
(per-processor event order, per-location sync order, READ/WRITE
bit-vectors).  A separate analysis step — possibly on another machine,
possibly days later — reconstructs happens-before-1 and reports first
partitions.  This split is exactly why the event/bit-vector design
matters: the trace is a small fraction of a per-operation log.

Run:  python examples/trace_file_workflow.py
"""

import os
import tempfile

from repro import PostMortemDetector, make_model, run_program
from repro.analysis.metrics import trace_overhead
from repro.programs import random_racy_program
from repro.trace import build_trace, read_trace, write_trace


def production_run(path: str) -> None:
    """Phase 1: run instrumented, persist the trace, exit."""
    program = random_racy_program(seed=1234, processors=4,
                                  ops_per_thread=20, race_prob=0.2)
    result = run_program(program, make_model("RCsc"), seed=99)
    trace = build_trace(result)
    write_trace(trace, path)
    overhead = trace_overhead(result, trace)
    print(f"[producer] executed {overhead.operations} operations")
    print(f"[producer] trace holds {overhead.events} event records "
          f"({overhead.record_ratio:.2%} of a per-operation log)")
    print(f"[producer] trace file: {os.path.getsize(path)} bytes -> {path}")


def debugging_session(path: str) -> None:
    """Phase 2: load the trace file and analyze post-mortem."""
    trace = read_trace(path)
    print(f"[debugger] loaded {trace.event_count} events "
          f"from a {trace.model_name} execution")
    report = PostMortemDetector().analyze(trace)
    print()
    print(report.format())


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "production.trace")
        production_run(path)
        print()
        debugging_session(path)


if __name__ == "__main__":
    main()
