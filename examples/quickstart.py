#!/usr/bin/env python
"""Quickstart: find the data races the paper's Figure 2 bug plants.

Simulates the buggy work-queue program (the Test&Set instructions were
"accidentally" omitted) on a weakly ordered machine, then runs the
post-mortem detector.  The detector reports only the *first partition*
of data races — the queue accesses that are the actual bug — and
suppresses the cascade of artifact races between the two workers'
overlapping regions.

Run:  python examples/quickstart.py
"""

from repro import PostMortemDetector, make_model, run_figure2


def main() -> None:
    # A weakly-ordered machine, driven into the exact reordering of the
    # paper's Figure 2b: the new value of QEmpty reaches P2 before the
    # new value of Q, so P2 dequeues the stale address 37.
    result = run_figure2(make_model("WO"))

    print(f"simulated {len(result.operations)} memory operations "
          f"on {result.model_name}")
    for op in result.stale_reads:
        print(f"stale read observed: {result.describe_op(op)}")
    print()

    report = PostMortemDetector().analyze_execution(result)
    print(report.format())

    print()
    print("The race on {Q, QEmpty} is the bug to fix: wrap the queue")
    print("accesses in Test&Set/Unset critical sections.  The suppressed")
    print("region races could never happen on a sequentially consistent")
    print("machine - chasing them would be a wild goose chase.")


if __name__ == "__main__":
    main()
