#!/usr/bin/env python
"""On-the-fly vs post-mortem detection (paper section 5).

On-the-fly detectors keep only a bounded access history per location in
memory instead of writing trace files; the price is missed races when
the history overflows.  This example sweeps the reader-history bound on
a many-readers workload and shows the detection/memory trade-off, next
to the post-mortem detector's complete answer.

Run:  python examples/onthefly_vs_postmortem.py
"""

from repro import PostMortemDetector, make_model, run_program
from repro.core.onthefly import OnTheFlyDetector
from repro.machine.program import ProgramBuilder
from repro.machine.scheduler import ScriptedScheduler
from repro.machine.simulator import Simulator


def many_readers_program(readers: int):
    """Every reader races with the single final writer."""
    b = ProgramBuilder()
    x = b.var("x")
    for _ in range(readers):
        with b.thread() as t:
            t.read(x)
    with b.thread() as t:
        t.write(x, 1)
    return b.build()


def main() -> None:
    readers = 8
    program = many_readers_program(readers)
    # All readers run before the writer, so every one is remembered (or
    # evicted) before the conflicting write arrives.
    script = list(range(readers)) + [readers]
    result = Simulator(
        program, make_model("SC"),
        scheduler=ScriptedScheduler(script), seed=0,
    ).run()

    report = PostMortemDetector().analyze_execution(result)
    print(f"ground truth: {len(report.data_races)} data races "
          f"(post-mortem, complete trace)")
    print()
    print(f"{'reader history':>15s} {'races found':>12s} "
          f"{'evictions':>10s} {'buffered accesses':>18s}")
    for bound in (1, 2, 4, 8):
        detector = OnTheFlyDetector(
            result.processor_count, reader_history=bound
        )
        detector.process_all(result.operations)
        print(f"{bound:15d} {len(detector.races):12d} "
              f"{detector.evicted_accesses:10d} "
              f"{detector.memory_footprint:18d}")
    print()
    print("Bounded histories trade memory for missed races - the")
    print("accuracy loss the paper attributes to on-the-fly methods.")
    print("With history >= concurrent readers, detection is complete.")


if __name__ == "__main__":
    main()
