#!/usr/bin/env python
"""The performance motivation for weak memory models (paper section 2.2).

Runs data-race-free kernels under all seven memory models and tabulates
stall cycles.  On write-heavy DRF code:

* SC stalls on every data write (stall-until-complete);
* WO/DRF0 buffer data writes but drain them at *every* synchronization
  operation;
* RCsc/DRF1 drain only at releases, sailing through acquires.

Detection works at full speed on all of them (the point of the paper:
no slow SC debug mode needed).

Run:  python examples/memory_model_comparison.py
"""

from repro import ALL_MODEL_NAMES, PostMortemDetector, make_model, run_program
from repro.programs import (
    fanin_barrier_program,
    locked_counter_program,
    producer_consumer_program,
    region_then_lock_program,
)

KERNELS = [
    ("locked-counter", locked_counter_program(4, 6)),
    ("producer-consumer", producer_consumer_program(12)),
    ("fanin-barrier", fanin_barrier_program(3, 12)),
    ("region-then-lock", region_then_lock_program(3, 10, 4)),
]


def main() -> None:
    detector = PostMortemDetector()
    header = f"{'kernel':20s}" + "".join(f"{m:>10s}" for m in ALL_MODEL_NAMES)
    print(header)
    print("-" * len(header))
    for name, program in KERNELS:
        stalls = {}
        for model_name in ALL_MODEL_NAMES:
            result = run_program(program, make_model(model_name), seed=13)
            assert result.completed
            report = detector.analyze_execution(result)
            assert report.race_free, f"{name} must be DRF"
            stalls[model_name] = result.total_stall_cycles
        row = f"{name:20s}" + "".join(
            f"{stalls[m]:10d}" for m in ALL_MODEL_NAMES
        )
        print(row)
    print()
    print("stall cycles; lower is better.  Expect SC > WO = DRF0 >= RCsc = DRF1.")
    print("Every execution above was verified race-free by the detector,")
    print("so by Condition 3.4(1) each weak run was sequentially consistent")
    print("- the programmer saw SC semantics at weak-model speed.")


if __name__ == "__main__":
    main()
