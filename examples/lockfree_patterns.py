#!/usr/bin/env python
"""Lock-free synchronization under the paper's lens.

The paper's framework classifies operations as data or synchronization;
lock-free code pushes *all* shared access into synchronization (CAS and
acquire reads), so it is data-race-free without any lock — the detector
certifies every execution sequentially consistent, and the weak models
still run it fast.  This example:

1. races a naive counter, a Test&Set-locked counter and a lock-free
   CAS counter across the models (correctness + stall cycles),
2. shows the CAS slot allocator publishing *data* safely because slot
   claims are unique,
3. uses the race hunter to show how many schedules expose the naive
   counter's bug, and draws one racy execution as a timeline.

Run:  python examples/lockfree_patterns.py
"""

from repro import ALL_MODEL_NAMES, PostMortemDetector, make_model, run_program
from repro.analysis.hunting import hunt_races
from repro.core.timeline import render_timeline
from repro.programs import (
    cas_counter_program,
    cas_slot_allocator_program,
    locked_counter_program,
    racy_counter_program,
)

DET = PostMortemDetector()


def counters() -> None:
    print("Three counters, 4 processors x 6 increments (expect 24)")
    print("=" * 64)
    print(f"{'model':>6s} {'naive':>14s} {'locked':>16s} {'lock-free':>18s}")
    for model in ALL_MODEL_NAMES:
        row = []
        for prog in (racy_counter_program(4, 6),
                     locked_counter_program(4, 6),
                     cas_counter_program(4, 6)):
            result = run_program(prog, make_model(model), seed=13)
            report = DET.analyze_execution(result)
            verdict = "racy" if not report.race_free else "clean"
            row.append(
                f"{result.value_of('counter')}/{verdict}"
                f"/{result.total_stall_cycles}st"
            )
        print(f"{model:>6s} {row[0]:>14s} {row[1]:>16s} {row[2]:>18s}")
    print("(value / race verdict / stall cycles)")
    print()


def allocator() -> None:
    print("CAS slot allocator: claims are sync, payloads are data")
    print("=" * 64)
    result = run_program(
        cas_slot_allocator_program(4), make_model("RCsc"), seed=3
    )
    base = result.symbols.addr_of("slots")
    slots = [result.final_memory[base + i] for i in range(4)]
    report = DET.analyze_execution(result)
    print(f"slots: {slots} (each processor's payload, unique slot)")
    print(f"race-free: {report.race_free} -> every execution is SC")
    print()


def hunt() -> None:
    print("Hunting the naive counter's races across schedules")
    print("=" * 64)
    result = hunt_races(
        racy_counter_program(2, 2), lambda: make_model("WO"), tries=12
    )
    print(result.summary())
    print()
    print("One racy execution, drawn paper-figure style:")
    print(render_timeline(result.first_racy, max_rows=14, width=24))


def main() -> None:
    counters()
    allocator()
    hunt()


if __name__ == "__main__":
    main()
