#!/usr/bin/env python
"""Record a racy production run, then replay it in a debugging session.

Sections 1 and 5 of the paper argue that because weak hardware
preserves a sequentially consistent prefix up to the first races, the
ordinary debugging toolbox still applies to the part of the execution
that contains the first bugs.  The tool this example demonstrates is
deterministic replay: the production run records every nondeterministic
choice (scheduler picks, buffered-write deliveries) alongside its trace
file; the debugging session replays the *identical* execution, inspects
the stale read, and confirms the detector's report is reproducible.

Run:  python examples/replay_debugging.py
"""

import os
import tempfile

from repro import PostMortemDetector, make_model
from repro.machine.propagation import StubbornPropagation
from repro.machine.replay import (
    ExecutionRecording,
    executions_equal,
    record_execution,
    replay_execution,
)
from repro.programs import buggy_workqueue_program
from repro.trace import build_trace, write_trace


def production(workdir: str) -> None:
    program = buggy_workqueue_program()
    # Stubborn propagation maximizes observable weakness: buffered
    # writes become visible only at synchronization flushes.
    result, recording = record_execution(
        program, make_model("WO"), seed=1,
        propagation=StubbornPropagation(),
    )
    write_trace(build_trace(result), os.path.join(workdir, "run.trace"))
    recording.save(os.path.join(workdir, "run.replay"))
    print(f"[production] ran {len(result.operations)} operations on WO")
    print(f"[production] stale reads observed: "
          f"{[result.describe_op(op) for op in result.stale_reads]}")
    print(f"[production] saved run.trace and run.replay")


def debugging(workdir: str) -> None:
    program = buggy_workqueue_program()  # same source
    recording = ExecutionRecording.load(os.path.join(workdir, "run.replay"))
    replayed = replay_execution(program, make_model("WO"), recording)
    print(f"[debugger] replayed {len(replayed.operations)} operations")

    # Prove it is the same execution, then debug it.
    original, _ = record_execution(
        program, make_model("WO"), seed=1,
        propagation=StubbornPropagation(),
    )
    print(f"[debugger] replay bit-identical to original: "
          f"{executions_equal(original, replayed)}")

    report = PostMortemDetector().analyze_execution(replayed)
    print()
    print(report.format())
    print()
    for op in replayed.stale_reads:
        print(f"[debugger] breakpoint-worthy moment: "
              f"{replayed.describe_op(op)} — on any SC machine this "
              f"read would have returned "
              f"{replayed.final_memory[op.addr]}")


def main() -> None:
    with tempfile.TemporaryDirectory() as workdir:
        production(workdir)
        print()
        debugging(workdir)


if __name__ == "__main__":
    main()
