"""Differential matrix: workload corpus × detectors × TSO/PSO.

Every detector variant must run on every corpus execution under the
store-buffer models, streaming must stay byte-equal to the post-mortem
sweep there, and the robustness verdict must be internally consistent
on every trace: SC executions always robust, a violating cycle only
ever justified by at least one stale read.
"""

from __future__ import annotations

import pytest

import repro
from repro.analysis.parallel import HUNT_DETECTORS
from repro.core.robustness import check_robustness
from repro.machine.models import make_model
from repro.machine.simulator import run_program
from repro.programs import (
    buggy_workqueue_program,
    figure1a_program,
    figure1b_program,
    iriw_program,
    lock_shadow_program,
    locked_counter_program,
    producer_consumer_program,
    racy_counter_program,
    single_race_program,
)
from repro.programs.litmus import store_buffering_program

CORPUS = [
    racy_counter_program,
    buggy_workqueue_program,
    figure1a_program,
    figure1b_program,
    single_race_program,
    locked_counter_program,
    producer_consumer_program,
    iriw_program,
    lock_shadow_program,
]

STORE_BUFFER_MODELS = ["TSO", "PSO"]


def _race_keys(report):
    return [(r.a, r.b, r.locations, r.is_data_race) for r in report.races]


@pytest.mark.parametrize("build", CORPUS, ids=lambda p: p.__name__)
@pytest.mark.parametrize("model", STORE_BUFFER_MODELS)
def test_every_detector_runs_on_store_buffer_models(build, model):
    """All hunt detectors settle every corpus workload under TSO/PSO
    without error, and the exact detectors agree on the race set."""
    result = run_program(build(), make_model(model), seed=7)
    reports = {
        name: repro.detect(result, detector=name)
        for name in HUNT_DETECTORS
    }
    assert _race_keys(reports["streaming"]) == \
        _race_keys(reports["postmortem"])
    # the naive flat detector over-approximates the sound report
    assert len(reports["naive"].races) >= sum(
        1 for r in reports["postmortem"].races if r.is_data_race
    )
    for name, report in reports.items():
        payload = report.to_json()
        assert payload.get("kind"), name
        clone = repro.report_from_json(payload)
        assert clone.to_json() == payload, name
    assert reports["streaming"].to_json()["model_name"] == model


@pytest.mark.parametrize("build", CORPUS, ids=lambda p: p.__name__)
@pytest.mark.parametrize("model", ["SC"] + STORE_BUFFER_MODELS)
@pytest.mark.parametrize("seed", [0, 7])
def test_robustness_verdict_consistent(build, model, seed):
    """Verdict invariants over the full matrix: SC is always robust;
    a violating cycle requires a stale read (fr is the only backward
    edge) and always carries one; witness and cycle are exclusive."""
    result = run_program(build(), make_model(model), seed=seed)
    report = check_robustness(result)
    assert report.stale_reads == len(result.stale_reads)
    if model == "SC":
        assert report.robust
    if not result.stale_reads:
        assert report.robust
    if report.robust:
        assert report.cycle == []
        assert len(report.witness) == len(result.operations)
    else:
        assert report.witness == []
        assert any(edge.kind == "fr" for edge in report.cycle)
        assert report.scp_size < report.operation_count


@pytest.mark.parametrize("model", STORE_BUFFER_MODELS)
def test_store_buffering_separates_sc_from_store_buffers(model):
    """The differential headline: some seed shows the SB weak outcome
    (non-robust) under TSO/PSO while SC never does."""
    weak = False
    for seed in range(16):
        weak_result = run_program(store_buffering_program(),
                                  make_model(model), seed=seed)
        weak = weak or not check_robustness(weak_result).robust
        sc_result = run_program(store_buffering_program(),
                                make_model("SC"), seed=seed)
        assert check_robustness(sc_result).robust
    assert weak, f"{model} never produced the non-robust SB outcome"
