"""CLI tests (in-process via main())."""

import pytest

from repro.cli import main


def test_models_lists_all(capsys):
    assert main(["models"]) == 0
    out = capsys.readouterr().out
    for name in ("SC", "WO", "RCsc", "DRF0", "DRF1"):
        assert name in out


def test_run_clean_workload_exit_zero(capsys):
    code = main(["run", "locked-counter", "--model", "WO", "--seed", "1"])
    assert code == 0
    assert "No data races detected" in capsys.readouterr().out


def test_run_racy_workload_exit_one(capsys):
    code = main(["run", "figure1a", "--model", "SC"])
    assert code == 1
    assert "First partition" in capsys.readouterr().out


def test_run_figure2(capsys):
    code = main(["run", "figure2", "--model", "WO"])
    assert code == 1
    out = capsys.readouterr().out
    assert "Q" in out
    assert "suppressed" in out


def test_run_with_naive_baseline(capsys):
    main(["run", "figure2", "--model", "WO", "--naive"])
    out = capsys.readouterr().out
    assert "Naive race report" in out


def test_run_writes_dot(tmp_path, capsys):
    dot = tmp_path / "g.dot"
    main(["run", "figure1a", "--dot", str(dot)])
    assert dot.exists()
    assert dot.read_text().startswith("digraph")


def test_trace_then_analyze(tmp_path, capsys):
    trace_path = tmp_path / "wq.trace"
    assert main(["trace", "figure2", str(trace_path), "--model", "WO"]) == 0
    out = capsys.readouterr().out
    assert "wrote" in out
    code = main(["analyze", str(trace_path)])
    assert code == 1
    assert "First partition" in capsys.readouterr().out


def test_check_condition_34(capsys):
    assert main(["check", "figure2", "--model", "WO"]) == 0
    out = capsys.readouterr().out
    assert "clause1=ok" in out
    assert "clause2=ok" in out


def test_check_clean_program(capsys):
    assert main(["check", "producer-consumer", "--model", "RCsc"]) == 0


def test_unknown_workload_rejected():
    with pytest.raises(SystemExit):
        main(["run", "not-a-workload"])


def test_unknown_model_rejected():
    with pytest.raises(SystemExit):
        main(["run", "figure1a", "--model", "XC"])


def test_static_command(capsys):
    code = main(["static", "racy-counter"])
    assert code == 1
    assert "potential data race" in capsys.readouterr().out


def test_static_clean_command(capsys):
    code = main(["static", "locked-counter"])
    assert code == 0
    assert "statically data-race-free" in capsys.readouterr().out


def test_drf_check_command(capsys):
    assert main(["drf-check", "figure1b"]) == 0
    assert "data-race-free" in capsys.readouterr().out
    assert main(["drf-check", "single-race"]) == 1
    out = capsys.readouterr().out
    assert "NOT data-race-free" in out
    assert "witness" in out


def test_drf_check_limit(capsys):
    code = main(["drf-check", "locked-counter", "--max-states", "5"])
    assert code == 2
    assert "incomplete" in capsys.readouterr().err


def test_disasm_and_run_file(tmp_path, capsys):
    assert main(["disasm", "figure1b"]) == 0
    text = capsys.readouterr().out
    assert ".thread" in text
    source = tmp_path / "prog.rasm"
    source.write_text(text)
    assert main(["run-file", str(source), "--model", "WO"]) == 0
    assert "No data races" in capsys.readouterr().out


def test_run_file_syntax_error(tmp_path, capsys):
    source = tmp_path / "bad.rasm"
    source.write_text(".thread\n    bogus %r\n")
    assert main(["run-file", str(source)]) == 2
    assert "unknown mnemonic" in capsys.readouterr().err


def test_record_then_replay(tmp_path, capsys):
    rec = tmp_path / "run.replay"
    code = main(["record", "racy-counter", str(rec),
                 "--model", "RCsc", "--seed", "5"])
    assert code == 1  # races found
    first = capsys.readouterr().out
    assert "recorded" in first
    code = main(["replay", "racy-counter", str(rec)])
    assert code == 1
    second = capsys.readouterr().out
    assert "replayed" in second
    # same report both times
    assert first.split("=" * 70)[1] == second.split("=" * 70)[1]


def test_replay_wrong_workload_fails(tmp_path, capsys):
    rec = tmp_path / "run.replay"
    main(["record", "figure1a", str(rec)])
    capsys.readouterr()
    code = main(["replay", "producer-consumer", str(rec)])
    assert code == 2
    assert "replay failed" in capsys.readouterr().err


def test_run_explain_flag(capsys):
    code = main(["run", "figure2", "--explain"])
    assert code == 1
    out = capsys.readouterr().out
    assert "SUPPRESSED" in out
    assert "affects" in out or "-->" in out


def test_analyze_rejects_corrupt_trace(tmp_path, capsys):
    import json
    trace_path = tmp_path / "t.trace"
    main(["trace", "figure1a", str(trace_path)])
    capsys.readouterr()
    # corrupt: give an event an out-of-range bit
    lines = trace_path.read_text().splitlines()
    for i, line in enumerate(lines):
        record = json.loads(line)
        if record.get("t") == "comp":
            record["reads"] = format(1 << 500, "x")
            lines[i] = json.dumps(record)
            break
    trace_path.write_text("\n".join(lines) + "\n")
    assert main(["analyze", str(trace_path)]) == 2
    assert "invalid trace" in capsys.readouterr().err


def test_timeline_command(capsys):
    assert main(["timeline", "figure2", "--rows", "8"]) == 0
    out = capsys.readouterr().out
    assert "*stale*" in out
    assert "end of SCP" in out
    assert out.splitlines()[0].split() == ["P0", "P1", "P2"]


def test_outcomes_command(capsys):
    code = main(["outcomes", "store-buffering", "--model", "SC",
                 "--vars", "critical[0]", "critical[1]"])
    assert code == 0
    out = capsys.readouterr().out
    assert "3 outcome(s)" in out
    code = main(["outcomes", "store-buffering", "--model", "WO",
                 "--vars", "critical[0]", "critical[1]"])
    assert code == 0
    out = capsys.readouterr().out
    assert "4 outcome(s)" in out
    assert "critical[0]=1, critical[1]=1" in out


def test_outcomes_limit(capsys):
    code = main(["outcomes", "queue", "--model", "WO",
                 "--max-states", "50"])
    assert code == 2
    assert "incomplete" in capsys.readouterr().err


def test_new_workloads_run(capsys):
    assert main(["run", "cas-counter", "--model", "RCsc"]) == 0
    assert main(["run", "iriw", "--model", "WO"]) == 1  # racy


# ----------------------------------------------------------------------
# weakraces explain
# ----------------------------------------------------------------------

def test_explain_racy_workload(capsys):
    code = main(["explain", "workqueue-buggy", "--model", "WO",
                 "--seed", "0"])
    assert code == 1  # races found, like run
    out = capsys.readouterr().out
    assert "Race provenance" in out
    assert "[REPORTED]" in out
    assert "verified against closure" in out
    assert "FIRST partition" in out


def test_explain_clean_workload(capsys):
    code = main(["explain", "locked-counter", "--model", "WO"])
    assert code == 0
    assert "nothing to explain" in capsys.readouterr().out


def test_explain_json(capsys):
    import json
    code = main(["explain", "figure2", "--model", "WO", "--json"])
    assert code == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["kind"] == "provenance"
    assert doc["all_verified"] is True
    assert any(r["reported"] for r in doc["races"])
    assert any(not r["reported"] for r in doc["races"])  # suppressed


def test_explain_single_race_by_signature(capsys):
    import json
    main(["explain", "workqueue-buggy", "--seed", "0", "--json"])
    doc = json.loads(capsys.readouterr().out)
    signature = doc["races"][0]["race"]["signature"]
    code = main(["explain", "workqueue-buggy", "--seed", "0",
                 "--race", signature])
    assert code == 1
    out = capsys.readouterr().out
    assert "witness:" in out
    assert "Race provenance" not in out  # single-race view, not the report


def test_explain_unknown_signature_exit_2(capsys):
    code = main(["explain", "workqueue-buggy", "--seed", "0",
                 "--race", "P9.E9~P9.E8"])
    assert code == 2
    err = capsys.readouterr().err
    assert "no race 'P9.E9~P9.E8'" in err
    assert "known:" in err


def test_explain_writes_dot(tmp_path, capsys):
    dot = tmp_path / "gprime.dot"
    code = main(["explain", "workqueue-buggy", "--seed", "0",
                 "--dot", str(dot)])
    assert code == 1
    text = dot.read_text()
    assert text.startswith("digraph")
    assert "lightgoldenrod1" in text  # first-partition highlight
    assert f"DOT graph written to {dot}" in capsys.readouterr().out


# ----------------------------------------------------------------------
# weakraces hunt --events / --live and weakraces events
# ----------------------------------------------------------------------

def test_hunt_writes_event_log_then_events_summarizes(tmp_path, capsys):
    log = tmp_path / "hunt-events.jsonl"
    code = main(["hunt", "workqueue-buggy", "--tries", "6",
                 "--events", str(log)])
    assert code == 1  # racy workload
    captured = capsys.readouterr()
    assert f"hunt events written to {log}" in captured.err
    assert log.exists()
    code = main(["events", str(log)])
    assert code == 0
    out = capsys.readouterr().out
    assert "hunt event log" in out
    assert "workload=workqueue-buggy" in out
    assert "6 tries" in out
    assert "run total" in out


def test_events_tail_and_json(tmp_path, capsys):
    import json
    log = tmp_path / "hunt-events.jsonl"
    main(["hunt", "racy-counter", "--tries", "5", "--events", str(log)])
    capsys.readouterr()
    code = main(["events", str(log), "--tail", "3"])
    assert code == 0
    lines = capsys.readouterr().out.splitlines()
    assert len(lines) == 3
    assert all(line.startswith("#") for line in lines)
    code = main(["events", str(log), "--json"])
    assert code == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["meta"]["schema"] == 1
    assert len(doc["tries"]) == 5
    assert doc["summary"]["tries"] == 5


def test_events_rejects_invalid_log(tmp_path, capsys):
    bad = tmp_path / "bad.jsonl"
    bad.write_text('{"t": "meta", "schema": 99, "kind": "hunt"}\n')
    code = main(["events", str(bad)])
    assert code == 2
    assert "unknown schema version 99" in capsys.readouterr().err


def test_hunt_live_status_line(capsys):
    code = main(["hunt", "racy-counter", "--tries", "4", "--live"])
    assert code == 1
    err = capsys.readouterr().err
    assert "hunt 4/4" in err  # final repaint from finish()
    assert "jobs/s" in err


def test_events_json_carries_breakdown(tmp_path, capsys):
    import json
    log = tmp_path / "hunt-events.jsonl"
    main(["hunt", "workqueue-buggy", "--tries", "5", "--detector", "shb",
          "--events", str(log)])
    capsys.readouterr()
    assert main(["events", str(log)]) == 0
    assert "detectors:" in capsys.readouterr().out
    assert main(["events", str(log), "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    breakdown = doc["breakdown"]
    assert breakdown["tries"] == 5
    assert "shb" in breakdown["per_detector"]
    assert breakdown["per_detector"]["shb"]["tries"] == 5


def test_hunt_serve_prints_url_and_correlates_hunt_id(tmp_path, capsys):
    import json
    log = tmp_path / "hunt-events.jsonl"
    code = main(["hunt", "workqueue-buggy", "--tries", "5", "--json",
                 "--serve", "127.0.0.1:0", "--events", str(log)])
    assert code == 1
    captured = capsys.readouterr()
    assert "telemetry serving on http://127.0.0.1:" in captured.err
    assert "/metrics /status /healthz" in captured.err
    result = json.loads(captured.out)
    meta = json.loads(log.read_text().splitlines()[0])
    summary = json.loads(log.read_text().splitlines()[-1])
    assert result["hunt_id"]
    assert meta["hunt_id"] == result["hunt_id"]
    assert summary["hunt_id"] == result["hunt_id"]


def test_hunt_serve_rejects_bad_address(capsys):
    code = main(["hunt", "racy-counter", "--tries", "2",
                 "--serve", "9099"])
    assert code == 2
    assert "--serve expects HOST:PORT" in capsys.readouterr().err


def test_hunt_profile_meta_carries_hunt_id(tmp_path, capsys):
    import json
    profile = tmp_path / "hunt.profile.jsonl"
    out = tmp_path / "result.json"
    code = main(["hunt", "racy-counter", "--tries", "3", "--json",
                 "--profile", str(profile)])
    assert code == 1
    captured = capsys.readouterr()
    result = json.loads(captured.out)
    header = json.loads(profile.read_text().splitlines()[0])
    assert header["t"] == "meta"
    assert header["command"] == "hunt"
    assert header["hunt_id"] == result["hunt_id"]
    del out


def test_top_once_from_events(tmp_path, capsys):
    log = tmp_path / "hunt-events.jsonl"
    main(["hunt", "workqueue-buggy", "--tries", "5", "--events", str(log)])
    capsys.readouterr()
    code = main(["top", "--events", str(log), "--once"])
    assert code == 0
    out = capsys.readouterr().out
    assert "weakraces top — workqueue-buggy" in out
    assert "5/5 (100%)" in out
    assert "job duration" in out


def test_top_bad_source_exits_2(tmp_path, capsys):
    code = main(["top", "--events", str(tmp_path / "nope.jsonl"),
                 "--once"])
    assert code == 2
    assert "top:" in capsys.readouterr().err


def test_hunt_worker_failures_exit_3(monkeypatch, capsys):
    import json
    from repro.analysis import hunting
    from repro.machine.propagation import PropagationPolicy

    class _Exploding(PropagationPolicy):
        def step(self, memory, rng):
            raise RuntimeError("boom")

    real_registry = hunting.policy_registry

    def registry(processor_count):
        out = real_registry(processor_count)
        out["boom"] = _Exploding
        return out

    monkeypatch.setattr(hunting, "policy_registry", registry)
    code = main(["hunt", "racy-counter", "--tries", "2",
                 "--policies", "boom", "--json"])
    assert code == 3  # worker crashes trump found/not-found
    captured = capsys.readouterr()
    assert "2 job(s) crashed or timed out" in captured.err
    doc = json.loads(captured.out)
    assert len(doc["failures"]) == 2
    # satellite: --json surfaces the worker tracebacks
    for failure in doc["failures"]:
        assert "RuntimeError: boom" in failure["traceback"]


# ----------------------------------------------------------------------
# --detector on run / analyze / hunt
# ----------------------------------------------------------------------

def test_run_detector_shb(capsys):
    code = main(["run", "racy-counter", "--seed", "3",
                 "--detector", "shb"])
    assert code == 1
    out = capsys.readouterr().out
    assert "SHB analysis" in out
    assert "[sound]" in out


def test_run_detector_wcp_predicts_lock_shadow(capsys):
    # seed 1 hides the unguarded race from hb1; WCP predicts it
    code = main(["run", "lock-shadow", "--seed", "1",
                 "--detector", "wcp"])
    assert code == 1
    out = capsys.readouterr().out
    assert "[predicted]" in out


def test_run_detector_json_kind(capsys):
    import json
    main(["run", "racy-counter", "--detector", "wcp", "--json"])
    doc = json.loads(capsys.readouterr().out)
    assert doc["kind"] == "wcp"
    assert "predicted_races" in doc


def test_run_graph_flags_rejected_for_graphless_detectors(
        tmp_path, capsys):
    code = main(["run", "racy-counter", "--detector", "onthefly",
                 "--dot", str(tmp_path / "g.dot")])
    assert code == 2
    assert "--dot" in capsys.readouterr().err
    assert not (tmp_path / "g.dot").exists()


def test_analyze_detector_shb(tmp_path, capsys):
    trace_path = tmp_path / "racy.trace"
    main(["trace", "racy-counter", str(trace_path), "--seed", "3"])
    capsys.readouterr()
    code = main(["analyze", str(trace_path), "--detector", "shb"])
    assert code == 1
    assert "SHB analysis" in capsys.readouterr().out


def test_hunt_detector_flag(capsys):
    import json
    code = main(["hunt", "lock-shadow", "--detector", "wcp",
                 "--tries", "6", "--json"])
    assert code == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["detector"] == "wcp"
    assert doc["racy_runs"] == 6
    assert doc["certified_races"] >= 6


def test_hunt_detector_summary_note(capsys):
    code = main(["hunt", "racy-counter", "--detector", "shb",
                 "--tries", "4"])
    assert code == 1
    assert "detector=shb" in capsys.readouterr().out


def test_check_robustness_flag(capsys):
    code = main(["check", "store-buffering", "--model", "TSO",
                 "--seed", "3", "--robustness"])
    out = capsys.readouterr().out
    assert "Robustness verdict" in out
    assert "NON-ROBUST" in out
    assert "--fr-->" in out
    assert "SC prefix" in out
    # exit status still reflects Condition 3.4, which holds here
    assert code == 0


def test_check_robustness_json_round_trips(capsys):
    import json
    from repro.api import report_from_json
    from repro.core.robustness import RobustnessReport
    assert main(["check", "store-buffering", "--model", "TSO",
                 "--seed", "3", "--robustness", "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    report = report_from_json(doc["robustness"])
    assert isinstance(report, RobustnessReport)
    assert not report.robust
    assert len(report.cycle) == 4


def test_check_without_robustness_flag_omits_verdict(capsys):
    import json
    assert main(["check", "store-buffering", "--model", "TSO",
                 "--seed", "3", "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert "robustness" not in doc


def test_hunt_verify_robustness_json(capsys):
    import json
    code = main(["hunt", "store-buffering", "--model", "TSO",
                 "--tries", "16", "--verify-robustness", "--json"])
    assert code in (0, 1)
    doc = json.loads(capsys.readouterr().out)
    rob = doc["robustness"]
    assert rob["verified_tries"] == 16
    assert rob["non_robust"] >= 1
    assert rob["soundness"] == "degraded"
    assert rob["first_non_robust"]["kind"] == "robustness"


def test_hunt_verify_robustness_summary(capsys):
    main(["hunt", "store-buffering", "--model", "TSO",
          "--tries", "16", "--verify-robustness"])
    out = capsys.readouterr().out
    assert "robustness:" in out
    assert "SOUNDNESS DEGRADED" in out


def test_hunt_verify_robustness_events_summary(tmp_path, capsys):
    import json
    path = tmp_path / "hunt.jsonl"
    main(["hunt", "store-buffering", "--model", "TSO",
          "--tries", "8", "--verify-robustness",
          "--events", str(path)])
    records = [json.loads(line) for line in path.read_text().splitlines()]
    summary = [r for r in records if r["t"] == "summary"][0]
    assert summary["verified_tries"] == 8
    assert summary["soundness"] in ("sc-justified", "degraded")
    tries = [r for r in records if r["t"] == "try"]
    assert all("robust" in r for r in tries)
