"""Crash-safety integration tests: real ``weakraces hunt`` processes
killed by injected faults or signals, then resumed from their
checkpoints.  These run the CLI in subprocesses because SIGKILL and
signal handling cannot be exercised in-process."""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]

# the keys of HuntResult.stats(): pure functions of the job set, so
# they must match byte-for-byte between a resumed and an uninterrupted
# hunt.  Timing/worker metadata (elapsed_sec, trace_cache_hits,
# resumed_jobs, ...) legitimately differs.
DETERMINISTIC_KEYS = (
    "model", "tries", "racy_runs", "clean_runs", "step_bound_runs",
    "found", "seed", "policy", "recording_verified", "per_policy",
    "per_seed",
)

HUNT = ["hunt", "racy-counter", "--model", "WO", "--tries", "24",
        "--policies", "stubborn", "ring"]


def _run(args, faults=None, **kwargs):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    env.pop("REPRO_FAULTS", None)
    if faults is not None:
        env["REPRO_FAULTS"] = json.dumps(faults)
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        cwd=REPO, env=env, capture_output=True, text=True,
        timeout=120, **kwargs,
    )


def _stats_view(stdout):
    doc = json.loads(stdout)
    view = {key: doc[key] for key in DETERMINISTIC_KEYS}
    # failures are deterministic too, minus the traceback text
    view["failures"] = [
        {k: f[k] for k in ("seed", "policy", "error", "kind", "retries")}
        for f in doc["failures"]
    ]
    return view


# ----------------------------------------------------------------------
# SIGKILL mid-hunt, then resume
# ----------------------------------------------------------------------

@pytest.mark.parametrize("resume_jobs", ["1", "4"])
def test_sigkill_then_resume_matches_uninterrupted(tmp_path, resume_jobs):
    baseline = _run(HUNT + ["--json"])
    assert baseline.returncode == 1, baseline.stderr

    ckpt = tmp_path / "hunt.ckpt"
    killed = _run(
        HUNT + ["--checkpoint", str(ckpt), "--checkpoint-interval", "1"],
        faults={"kill_parent_after": 5},
    )
    assert killed.returncode == -signal.SIGKILL, killed.stderr
    assert ckpt.exists()

    resumed = _run(
        HUNT + ["--json", "--jobs", resume_jobs,
                "--checkpoint", str(ckpt), "--resume"],
    )
    assert resumed.returncode == 1, resumed.stderr
    assert _stats_view(resumed.stdout) == _stats_view(baseline.stdout)
    resumed_doc = json.loads(resumed.stdout)
    assert resumed_doc["resumed_jobs"] >= 5
    assert resumed_doc["interrupted"] is False
    # the final checkpoint is marked complete and resumable again:
    # a second resume restores everything and runs zero new jobs
    again = _run(HUNT + ["--json", "--checkpoint", str(ckpt), "--resume"])
    assert again.returncode == 1, again.stderr
    assert json.loads(again.stdout)["resumed_jobs"] == 24
    assert _stats_view(again.stdout) == _stats_view(baseline.stdout)


def test_sigkill_mid_batch_parallel_then_resume(tmp_path):
    """SIGKILL a batched pool hunt mid-batch: the checkpoint holds
    exactly the settled outcomes (batch boundaries are invisible to
    it), and resuming — serial or batched — merges to the baseline's
    deterministic stats.  kill_parent_after=9 lands inside a dispatch
    batch for --jobs 4 --batch-size 4 (batches of 4, parent dies after
    the 9th settle, i.e. mid way through unfolding a batch)."""
    baseline = _run(HUNT + ["--json"])
    assert baseline.returncode == 1, baseline.stderr

    ckpt = tmp_path / "hunt.ckpt"
    killed = _run(
        HUNT + ["--jobs", "4", "--batch-size", "4",
                "--checkpoint", str(ckpt), "--checkpoint-interval", "1"],
        faults={"kill_parent_after": 9},
    )
    assert killed.returncode == -signal.SIGKILL, killed.stderr
    assert ckpt.exists()

    for resume_args in (["--jobs", "1"], ["--jobs", "4", "--batch-size", "2"]):
        resumed = _run(
            HUNT + ["--json", *resume_args,
                    "--checkpoint", str(ckpt), "--resume"],
        )
        assert resumed.returncode == 1, resumed.stderr
        assert _stats_view(resumed.stdout) == _stats_view(baseline.stdout)
        assert json.loads(resumed.stdout)["resumed_jobs"] >= 9


def test_repeated_kills_make_progress_to_completion(tmp_path):
    """Resume is crash-safe itself: keep killing the hunt and
    resuming; each round preserves at least the prior settled work."""
    baseline = _run(HUNT + ["--json"])
    ckpt = tmp_path / "hunt.ckpt"
    cmd = HUNT + ["--checkpoint", str(ckpt), "--checkpoint-interval", "1"]

    killed = _run(cmd, faults={"kill_parent_after": 4})
    assert killed.returncode == -signal.SIGKILL
    killed = _run(cmd + ["--resume"], faults={"kill_parent_after": 4})
    assert killed.returncode == -signal.SIGKILL

    final = _run(cmd + ["--resume", "--json"])
    assert final.returncode == 1, final.stderr
    doc = json.loads(final.stdout)
    assert doc["resumed_jobs"] >= 8  # both killed rounds contributed
    assert _stats_view(final.stdout) == _stats_view(baseline.stdout)


# ----------------------------------------------------------------------
# graceful interruption
# ----------------------------------------------------------------------

def test_sigint_drains_and_writes_final_checkpoint(tmp_path):
    ckpt = tmp_path / "hunt.ckpt"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    env.pop("REPRO_FAULTS", None)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "hunt", "racy-counter",
         "--model", "WO", "--tries", "200000", "--policies", "stubborn",
         "--checkpoint", str(ckpt), "--checkpoint-interval", "5"],
        cwd=REPO, env=env, stdout=subprocess.PIPE,
        stderr=subprocess.PIPE, text=True,
    )
    try:
        # wait for proof the hunt is actually underway before signaling
        deadline = time.monotonic() + 60
        while not ckpt.exists():
            assert time.monotonic() < deadline, "hunt never checkpointed"
            assert proc.poll() is None, proc.communicate()[1]
            time.sleep(0.05)
        proc.send_signal(signal.SIGINT)
        stdout, stderr = proc.communicate(timeout=60)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()
    assert proc.returncode == 130, stderr
    assert "draining" in stderr
    assert "hunt interrupted" in stdout
    # the final flush happened: the checkpoint is loadable, carries the
    # settled work, and is marked incomplete (a resume would continue)
    from repro.analysis.checkpoint import load_checkpoint

    loaded = load_checkpoint(ckpt)
    assert not loaded.complete
    assert len(loaded.outcomes) >= 5
    assert loaded.spec["tries"] == 200000


def test_group_sigterm_drains_parallel_hunt(tmp_path):
    """SIGTERM delivered to the whole process group (systemd stop,
    ``kill -TERM -pgid``) reaches the pool workers too.  Workers must
    ignore it — a worker that caught the parent's inherited handler
    used to swallow pool shutdown's SIGTERM and deadlock the drain."""
    ckpt = tmp_path / "hunt.ckpt"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    env.pop("REPRO_FAULTS", None)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "hunt", "racy-counter",
         "--model", "WO", "--tries", "20000", "--policies", "stubborn",
         "--jobs", "4", "--checkpoint", str(ckpt),
         "--checkpoint-interval", "5"],
        cwd=REPO, env=env, stdout=subprocess.PIPE,
        stderr=subprocess.PIPE, text=True, start_new_session=True,
    )
    try:
        deadline = time.monotonic() + 60
        while not ckpt.exists():
            assert time.monotonic() < deadline, "hunt never checkpointed"
            assert proc.poll() is None, proc.communicate()[1]
            time.sleep(0.05)
        os.killpg(proc.pid, signal.SIGTERM)
        stdout, stderr = proc.communicate(timeout=60)
    finally:
        if proc.poll() is None:
            os.killpg(proc.pid, signal.SIGKILL)
            proc.communicate()
    assert proc.returncode == 130, stderr
    # exactly one drain note: the parent's; workers stay silent
    assert stderr.count("interrupt received") == 1, stderr
    assert "hunt interrupted" in stdout

    from repro.analysis.checkpoint import load_checkpoint

    loaded = load_checkpoint(ckpt)
    assert not loaded.complete
    assert len(loaded.outcomes) >= 5


# ----------------------------------------------------------------------
# corrupt inputs stay hard errors
# ----------------------------------------------------------------------

def test_torn_checkpoint_is_a_usage_error(tmp_path):
    ckpt = tmp_path / "hunt.ckpt"
    done = _run(HUNT + ["--checkpoint", str(ckpt)])
    assert done.returncode == 1
    raw = ckpt.read_bytes()
    ckpt.write_bytes(raw[: len(raw) // 2])
    resumed = _run(HUNT + ["--checkpoint", str(ckpt), "--resume"])
    assert resumed.returncode == 2
    assert "torn or corrupt" in resumed.stderr


def test_spec_mismatch_is_a_usage_error(tmp_path):
    ckpt = tmp_path / "hunt.ckpt"
    assert _run(HUNT + ["--checkpoint", str(ckpt)]).returncode == 1
    other = _run(
        ["hunt", "racy-counter", "--model", "WO", "--tries", "12",
         "--policies", "stubborn", "ring",
         "--checkpoint", str(ckpt), "--resume"],
    )
    assert other.returncode == 2
    assert "different hunt" in other.stderr
    assert "tries" in other.stderr


# ----------------------------------------------------------------------
# event-log tail tolerance end to end
# ----------------------------------------------------------------------

def test_torn_event_tail_warns_but_validates(tmp_path):
    events = tmp_path / "hunt.jsonl"
    assert _run(HUNT + ["--events", str(events)]).returncode == 1
    with events.open("rb+") as fh:
        fh.truncate(events.stat().st_size - 7)
    checked = _run(["events", str(events)])
    assert checked.returncode == 0, checked.stderr
    assert "truncated final record" in checked.stdout + checked.stderr


def test_mid_file_event_garbage_still_fails_validation(tmp_path):
    events = tmp_path / "hunt.jsonl"
    assert _run(HUNT + ["--events", str(events)]).returncode == 1
    lines = events.read_text().splitlines(keepends=True)
    lines.insert(1, "{torn mid-file\n")
    events.write_text("".join(lines))
    checked = _run(["events", str(events)])
    assert checked.returncode == 2
    assert "invalid JSON" in checked.stdout + checked.stderr
