"""The unified TraceSource API: one ``repro.detect`` entry point that
accepts a Trace, an ExecutionResult, a path in any on-disk format, an
open file object, or a raw operation stream — plus the ``weakraces
convert`` command that moves traces between formats."""

import io

import pytest

import repro
from repro.cli import main
from repro.machine.models import make_model
from repro.machine.simulator import run_program
from repro.programs.figure1 import figure1a_program
from repro.programs.workqueue import run_figure2
from repro.trace.binfile import BinaryTraceError, write_binary_trace
from repro.trace.build import Trace, build_trace
from repro.trace.columnar import ColumnarTrace, to_columnar
from repro.trace.tracefile import write_trace


@pytest.fixture
def result():
    return run_figure2(make_model("WO"))


@pytest.fixture
def trace(result):
    return build_trace(result)


def _race_keys(report):
    return [(r.a, r.b, r.locations, r.is_data_race) for r in report.races]


# ----------------------------------------------------------------------
# sniffing / load / save
# ----------------------------------------------------------------------

def test_sniff_all_formats(trace, tmp_path):
    write_trace(trace, tmp_path / "t.jsonl")
    write_binary_trace(trace, tmp_path / "t.bin")
    to_columnar(trace, tmp_path / "t.wrct")
    assert repro.sniff_trace_format(tmp_path / "t.jsonl") == "jsonl"
    assert repro.sniff_trace_format(tmp_path / "t.bin") == "binary"
    assert repro.sniff_trace_format(tmp_path / "t.wrct") == "columnar"


def test_sniffing_ignores_extension(trace, tmp_path):
    """Detection is by magic, not by suffix."""
    path = tmp_path / "lies.jsonl"
    write_binary_trace(trace, path)
    assert repro.sniff_trace_format(path) == "binary"
    loaded = repro.load_trace(path)
    assert loaded.event_count == trace.event_count


def test_save_trace_infers_format_from_suffix(trace, tmp_path):
    assert repro.save_trace(trace, tmp_path / "a.jsonl") == "jsonl"
    assert repro.save_trace(trace, tmp_path / "a.bin") == "binary"
    assert repro.save_trace(trace, tmp_path / "a.wrct") == "columnar"
    assert repro.save_trace(trace, tmp_path / "a.unknown") == "jsonl"
    with pytest.raises(ValueError, match="format"):
        repro.save_trace(trace, tmp_path / "a.bin", format="nope")


def test_load_trace_columnar_is_lazy(trace, tmp_path):
    path = tmp_path / "t.wrct"
    repro.save_trace(trace, path)
    loaded = repro.load_trace(path)
    assert isinstance(loaded, ColumnarTrace)
    loaded.close()


# ----------------------------------------------------------------------
# detect() source polymorphism: identical races from every source kind
# ----------------------------------------------------------------------

@pytest.mark.parametrize("detector", ["postmortem", "streaming"])
def test_detect_from_every_source_kind(result, trace, tmp_path, detector):
    base = _race_keys(repro.detect(trace, detector=detector))
    assert base  # figure2 races

    paths = {
        "jsonl": tmp_path / "t.jsonl",
        "binary": tmp_path / "t.bin",
        "columnar": tmp_path / "t.wrct",
    }
    for fmt, path in paths.items():
        repro.save_trace(trace, path, format=fmt)
        assert _race_keys(repro.detect(path, detector=detector)) == base
        assert _race_keys(repro.detect(str(path), detector=detector)) == base
        with path.open("rb") as fh:  # open binary file object
            assert _race_keys(repro.detect(fh, detector=detector)) == base

    with paths["jsonl"].open("r") as fh:  # text file object
        assert _race_keys(repro.detect(fh, detector=detector)) == base

    buf = io.BytesIO(paths["binary"].read_bytes())  # in-memory stream
    assert _race_keys(repro.detect(buf, detector=detector)) == base


@pytest.mark.parametrize("detector", ["postmortem", "streaming"])
def test_detect_from_operation_iterator(result, trace, detector):
    base = _race_keys(repro.detect(trace, detector=detector))
    ops = iter(list(result.operations))
    assert _race_keys(repro.detect(ops, detector=detector)) == base


def test_detect_rejects_unknown_source():
    with pytest.raises(TypeError, match="Trace"):
        repro.detect(12345)
    with pytest.raises(TypeError):
        repro.detect(iter([1, 2, 3]))


# ----------------------------------------------------------------------
# deprecated readers still work, but warn
# ----------------------------------------------------------------------

def test_legacy_readers_warn(trace, tmp_path):
    from repro.trace.binfile import read_binary_trace
    from repro.trace.tracefile import read_trace

    jsonl = tmp_path / "t.jsonl"
    binp = tmp_path / "t.bin"
    write_trace(trace, jsonl)
    write_binary_trace(trace, binp)
    with pytest.warns(DeprecationWarning, match="load_trace"):
        assert read_trace(jsonl).event_count == trace.event_count
    with pytest.warns(DeprecationWarning, match="load_trace"):
        assert read_binary_trace(binp).event_count == trace.event_count


# ----------------------------------------------------------------------
# weakraces convert
# ----------------------------------------------------------------------

def test_convert_round_trips_all_formats(tmp_path, capsys):
    jsonl = tmp_path / "t.jsonl"
    assert main(["trace", "figure2", str(jsonl), "--model", "WO"]) == 0
    capsys.readouterr()

    binp = tmp_path / "t.bin"
    colp = tmp_path / "t.wrct"
    back = tmp_path / "back.jsonl"
    assert main(["convert", str(jsonl), str(binp)]) == 0
    assert "jsonl" in capsys.readouterr().out
    assert main(["convert", str(binp), str(colp)]) == 0
    assert "columnar" in capsys.readouterr().out
    assert main(["convert", str(colp), str(back), "--to", "jsonl"]) == 0
    capsys.readouterr()

    base = _race_keys(repro.detect(jsonl))
    for path in (binp, colp, back):
        assert _race_keys(repro.detect(path)) == base


def test_convert_corrupt_input_exit_two(tmp_path, capsys):
    bad = tmp_path / "bad.bin"
    bad.write_bytes(b"WRTR\x00garbage")
    assert main(["convert", str(bad), str(tmp_path / "out.jsonl")]) == 2
    assert "convert:" in capsys.readouterr().err


def test_convert_missing_input_exit_two(tmp_path, capsys):
    assert main([
        "convert", str(tmp_path / "nope.bin"), str(tmp_path / "o.jsonl")
    ]) == 2
    assert "convert:" in capsys.readouterr().err


# ----------------------------------------------------------------------
# analyze auto-detects formats; streaming detector on the CLI
# ----------------------------------------------------------------------

@pytest.mark.parametrize("fmt,name", [
    ("binary", "t.bin"), ("columnar", "t.wrct"),
])
def test_analyze_auto_detects_binary_formats(tmp_path, capsys, fmt, name):
    trace = build_trace(run_program(figure1a_program(), make_model("SC")))
    path = tmp_path / name
    repro.save_trace(trace, path, format=fmt)
    assert main(["analyze", str(path)]) == 1
    assert "First partition" in capsys.readouterr().out


def test_analyze_streaming_detector(tmp_path, capsys):
    trace = build_trace(run_program(figure1a_program(), make_model("SC")))
    path = tmp_path / "t.wrct"
    repro.save_trace(trace, path)
    assert main(["analyze", str(path), "--detector", "streaming"]) == 1
    assert "Streaming" in capsys.readouterr().out


def test_analyze_streaming_rejects_graph_flags(tmp_path, capsys):
    trace = build_trace(run_program(figure1a_program(), make_model("SC")))
    path = tmp_path / "t.jsonl"
    repro.save_trace(trace, path)
    code = main(["analyze", str(path), "--detector", "streaming",
                 "--dot", str(tmp_path / "g.dot")])
    assert code == 2


def test_run_streaming_detector(capsys):
    assert main(["run", "figure1a", "--model", "SC",
                 "--detector", "streaming"]) == 1
    assert "Streaming" in capsys.readouterr().out


def test_torn_binary_trace_analyze_exit_two(tmp_path, capsys):
    from repro.faults.plan import tear_file
    trace = build_trace(run_program(figure1a_program(), make_model("SC")))
    path = tmp_path / "t.bin"
    repro.save_trace(trace, path)
    tear_file(path, drop_bytes=9)
    assert main(["analyze", str(path)]) == 2
    err = capsys.readouterr().err
    assert "at byte" in err
