"""Full pipeline integration: simulate -> trace file -> detect -> report."""

from repro.analysis.metrics import event_race_accuracy, trace_overhead
from repro.analysis.naive import NaiveDetector
from repro.core.detector import PostMortemDetector
from repro.core.onthefly import detect_on_the_fly
from repro.machine.models import make_model
from repro.machine.simulator import run_program
from repro.programs.random_programs import random_racy_program
from repro.programs.workqueue import run_figure2
from repro.trace.build import build_trace
from repro.trace.tracefile import read_trace, write_trace


def test_file_based_pipeline(tmp_path):
    result = run_figure2(make_model("WO"))
    trace = build_trace(result)
    path = tmp_path / "exec.trace"
    write_trace(trace, path)

    loaded = read_trace(path)
    report = PostMortemDetector().analyze(loaded)
    assert not report.race_free
    assert len(report.first_partitions) == 1


def test_three_detectors_agree_on_race_existence():
    """Post-mortem (first-partition), naive, and on-the-fly must agree
    on whether *any* data race exists."""
    for seed in range(8):
        prog = random_racy_program(seed, race_prob=0.5)
        result = run_program(prog, make_model("WO"), seed=seed)
        trace = build_trace(result)
        ours = PostMortemDetector().analyze(trace)
        naive = NaiveDetector().analyze(trace)
        otf = detect_on_the_fly(
            result.operations, result.processor_count,
            reader_history=64, writer_history=64,
        )
        assert (not ours.race_free) == bool(naive.data_races), seed
        assert bool(naive.data_races) == bool(otf), seed


def test_metrics_pipeline():
    result = run_figure2(make_model("WO"))
    trace = build_trace(result)
    report = PostMortemDetector().analyze(trace)

    accuracy = event_race_accuracy(result, trace, report.reported_races)
    assert accuracy.precision == 1.0

    overhead = trace_overhead(result, trace)
    assert overhead.events < overhead.operations


def test_report_stable_across_runs():
    r1 = PostMortemDetector().analyze_execution(run_figure2(make_model("WO")))
    r2 = PostMortemDetector().analyze_execution(run_figure2(make_model("WO")))
    assert r1.format() == r2.format()


def test_public_api_surface():
    import repro
    for name in repro.__all__:
        assert hasattr(repro, name), name
    assert repro.__version__
