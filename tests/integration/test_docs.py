"""Documentation stays runnable: every python block in the tutorial and
the README quickstart must execute cleanly against the current API."""

import contextlib
import io
import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parents[2]


def _python_blocks(path: Path):
    text = path.read_text(encoding="utf-8")
    return re.findall(r"```python\n(.*?)```", text, re.S)


def test_tutorial_blocks_run(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)  # blocks write trace files
    blocks = _python_blocks(ROOT / "docs" / "tutorial.md")
    assert len(blocks) >= 8
    namespace = {}
    for i, block in enumerate(blocks):
        with contextlib.redirect_stdout(io.StringIO()):
            exec(block, namespace)  # noqa: S102 - doc validation


def test_readme_quickstart_runs():
    blocks = _python_blocks(ROOT / "README.md")
    assert blocks, "README lost its quickstart"
    namespace = {}
    with contextlib.redirect_stdout(io.StringIO()):
        exec(blocks[0], namespace)  # noqa: S102
    assert "report" in namespace
    assert not namespace["report"].race_free


def test_design_doc_mentions_every_bench():
    """DESIGN.md's per-experiment index must reference existing bench
    files, and every bench file must appear in DESIGN.md."""
    design = (ROOT / "DESIGN.md").read_text(encoding="utf-8")
    bench_files = {
        p.name for p in (ROOT / "benchmarks").glob("bench_*.py")
    }
    referenced = set(re.findall(r"benchmarks/(bench_\w+\.py)", design))
    assert referenced <= bench_files, referenced - bench_files
    assert bench_files <= referenced, bench_files - referenced


def test_experiments_doc_covers_paper_artifacts():
    text = (ROOT / "EXPERIMENTS.md").read_text(encoding="utf-8")
    for artifact in ("F1", "F2", "F3", "T3.5", "T4", "C1", "C2", "C3",
                     "C4", "C5", "C6", "C7", "C8", "C9", "A1"):
        assert artifact in text, f"EXPERIMENTS.md missing {artifact}"


def test_docs_exist():
    for name in ("memory_models.md", "detection_pipeline.md",
                 "assembly.md", "tutorial.md", "paper_map.md",
                 "limitations.md"):
        assert (ROOT / "docs" / name).is_file(), name


def test_paper_map_paths_exist():
    """Every module/test path the paper map references must exist."""
    import re
    text = (ROOT / "docs" / "paper_map.md").read_text(encoding="utf-8")
    for match in set(re.findall(
        r"`((?:machine|core|trace|analysis|staticanalysis|programs|graph)"
        r"/[\w/]+\.py)", text,
    )):
        assert (ROOT / "src" / "repro" / match).exists(), match
    for match in set(re.findall(
        r"`((?:tests|benchmarks|examples|docs)/[\w/]+\.(?:py|md))", text
    )):
        assert (ROOT / match).exists(), match
