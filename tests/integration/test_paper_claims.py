"""The paper's claims, verified end-to-end across models and seeds.

* Theorem 3.5 / Condition 3.4: every simulated weak implementation
  preserves a sequentially consistent prefix containing (or affecting)
  every data race, and gives SC outright to data-race-free executions.
* Theorem 4.1: no first partitions with data races iff no data races.
* Theorem 4.2: every first partition containing data races has at least
  one race belonging to the SCP.
* Section 2.2: weak models outperform SC on DRF programs.
"""

import pytest

from repro.analysis.metrics import op_races_in_scp
from repro.core.detector import PostMortemDetector
from repro.core.scp import check_condition_34
from repro.machine.models import ALL_MODEL_NAMES, WEAK_MODEL_NAMES, make_model
from repro.machine.propagation import (
    EagerPropagation,
    RandomPropagation,
    StubbornPropagation,
)
from repro.machine.simulator import run_program
from repro.programs.kernels import (
    fanin_barrier_program,
    locked_counter_program,
    producer_consumer_program,
    racy_counter_program,
    region_then_lock_program,
)
from repro.programs.random_programs import random_drf_program, random_racy_program
from repro.programs.workqueue import buggy_workqueue_program, run_figure2
from repro.trace.build import build_trace, event_of_op

DET = PostMortemDetector()
PROPAGATIONS = [StubbornPropagation(), RandomPropagation(0.3), EagerPropagation()]


def _drf_programs():
    return [
        locked_counter_program(2, 3),
        producer_consumer_program(4),
        fanin_barrier_program(2, 2),
        region_then_lock_program(2, 3, 2),
    ] + [random_drf_program(seed) for seed in range(5)]


def _racy_programs():
    return [
        racy_counter_program(2, 3),
        buggy_workqueue_program(),
    ] + [random_racy_program(seed, race_prob=0.6) for seed in range(5)]


class TestCondition34Clause1:
    """DRF executions on weak hardware must be sequentially consistent."""

    @pytest.mark.parametrize("model", WEAK_MODEL_NAMES)
    def test_drf_implies_sc(self, model):
        for i, prog in enumerate(_drf_programs()):
            for prop in PROPAGATIONS:
                result = run_program(
                    prog, make_model(model), seed=i, propagation=prop
                )
                assert result.completed, (model, i)
                assert not result.stale_reads, (model, i, type(prop).__name__)
                report = check_condition_34(result)
                assert report.data_race_free, (model, i)
                assert report.clause1_ok


class TestCondition34Clause2:
    """Races outside the SCP are affected by races inside it."""

    @pytest.mark.parametrize("model", WEAK_MODEL_NAMES)
    def test_racy_executions_accounted(self, model):
        for i, prog in enumerate(_racy_programs()):
            for prop in PROPAGATIONS:
                result = run_program(
                    prog, make_model(model), seed=i, propagation=prop
                )
                assert result.completed
                report = check_condition_34(result)
                assert report.ok, (
                    model, i, type(prop).__name__, report.summary()
                )


class TestTheorem41:
    """No first partitions with data races iff no data races at all."""

    @pytest.mark.parametrize("model", ALL_MODEL_NAMES)
    def test_equivalence(self, model):
        programs = _drf_programs() + _racy_programs()
        for i, prog in enumerate(programs):
            result = run_program(prog, make_model(model), seed=100 + i)
            report = DET.analyze_execution(result)
            has_first_with_data = bool(report.first_partitions)
            has_data_races = bool(report.data_races)
            assert has_first_with_data == has_data_races, (model, i)


class TestTheorem42:
    """Each first partition with data races contains >=1 SCP race."""

    @pytest.mark.parametrize("model", WEAK_MODEL_NAMES)
    def test_first_partitions_contain_scp_race(self, model):
        for i, prog in enumerate(_racy_programs()):
            result = run_program(
                prog, make_model(model), seed=i,
                propagation=StubbornPropagation(),
            )
            trace = build_trace(result)
            report = DET.analyze(trace)
            sc_races, _ = op_races_in_scp(result)
            sc_event_pairs = set()
            for race in sc_races:
                ea, eb = event_of_op(trace, race.a), event_of_op(trace, race.b)
                if ea and eb:
                    sc_event_pairs.add(frozenset((ea, eb)))
            for partition in report.first_partitions:
                keys = {frozenset((r.a, r.b)) for r in partition.data_races}
                assert keys & sc_event_pairs, (model, i, partition.describe(trace))


class TestPerformanceMotivation:
    """Section 2.2: weak models stall less than SC on DRF programs."""

    def test_weak_beats_sc_on_write_heavy_kernels(self):
        for prog in [region_then_lock_program(3, 8, 3),
                     fanin_barrier_program(3, 8)]:
            sc = run_program(prog, make_model("SC"), seed=3)
            for model in WEAK_MODEL_NAMES:
                weak = run_program(prog, make_model(model), seed=3)
                assert weak.total_stall_cycles < sc.total_stall_cycles, model

    def test_release_acquire_distinction_pays(self):
        prog = region_then_lock_program(3, 8, 3)
        wo = run_program(prog, make_model("WO"), seed=3)
        drf0 = run_program(prog, make_model("DRF0"), seed=3)
        rcsc = run_program(prog, make_model("RCsc"), seed=3)
        drf1 = run_program(prog, make_model("DRF1"), seed=3)
        assert rcsc.total_stall_cycles < wo.total_stall_cycles
        assert drf1.total_stall_cycles < drf0.total_stall_cycles


class TestFigure2EndToEnd:
    """The paper's running example, end to end on every weak model."""

    @pytest.mark.parametrize("model", WEAK_MODEL_NAMES)
    def test_detection_story(self, model):
        result = run_figure2(make_model(model))
        report = DET.analyze_execution(result)
        # Non-SC execution with races...
        assert result.stale_reads
        assert not report.race_free
        # Condition 3.4 holds, so the report is trustworthy.
        assert check_condition_34(result).ok
        if make_model(model).store_order_granularity() == "proc":
            # TSO's per-processor FIFO forbids the Figure 2b W->W
            # reordering: QEmpty cannot overtake Q, so P2 reads the
            # *old* QEmpty (stale), skips the dequeue, and the stale-Q
            # cascade never happens.
            assert all(
                result.addr_name(op.addr) == "QEmpty"
                for op in result.stale_reads
            )
            assert not report.suppressed_races
            return
        # ...the detector reports exactly the queue partition first...
        assert len(report.first_partitions) == 1
        first_locations = {
            report.trace.addr_name(a)
            for race in report.first_partitions[0].data_races
            for a in race.locations
        }
        assert first_locations == {"Q", "QEmpty"}
        # ...and suppresses the region artifact races.
        assert report.suppressed_races
